(* tempagg — command-line front end.

   Subcommands:
     query     run a TSQL2-subset query over CSV relations
     explain   show the evaluation plan without running the query
     serve     execute a script of interleaved DDL/DML/queries against
               live incrementally-maintained views, or (--listen) serve
               many TCP clients with admission control + graceful drain
     client    replay a statement script against a running server
     generate  write a synthetic relation (paper Section 6 methodology)
     metrics   report k-orderedness / k-ordered-percentage of a relation
     sort      time-sort a relation CSV

   Relations are CSV files with a [name:type,...,start,stop] header (see
   Relation.Csv_io); `generate` produces them. *)

open Cmdliner

(* CSV or heap file, by extension. *)
let load_relation ?fault ?on_corrupt ?stats path =
  if Filename.check_suffix path ".heap" then begin
    let stats =
      match stats with Some s -> s | None -> Storage.Io_stats.create ()
    in
    match Storage.Heap_file.read_relation ?fault ?on_corrupt ~stats path with
    | rel ->
        (* Recovery is never silent: report retried and skipped pages. *)
        if Storage.Io_stats.retries stats > 0 then
          Printf.eprintf "%s: recovered from %d transient read fault(s)\n%!"
            path
            (Storage.Io_stats.retries stats);
        if Storage.Io_stats.corrupt_pages stats > 0 then
          Printf.eprintf "%s: skipped %d corrupt page(s)\n%!" path
            (Storage.Io_stats.corrupt_pages stats);
        Ok rel
    | exception Invalid_argument msg -> Error (Printf.sprintf "%s: %s" path msg)
    | exception Storage.Heap_file.Corrupt_page { page; _ } ->
        Error
          (Printf.sprintf
             "%s: page %d failed its checksum (re-create the file, or pass \
              --on-error fallback/skip to scan around it)"
             path page)
  end
  else
    match Relation.Csv_io.load path with
    | Ok rel -> Ok rel
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)

let save_relation path rel =
  if Filename.check_suffix path ".heap" then
    Storage.Heap_file.write_relation ~stats:(Storage.Io_stats.create ()) path rel
  else Relation.Csv_io.save path rel

(* Relations are passed as NAME=PATH; a bare PATH is bound to its
   basename without extension. *)
let parse_binding spec =
  match String.index_opt spec '=' with
  | Some i ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
  | None -> (Filename.remove_extension (Filename.basename spec), spec)

(* A partition directory binds as a relation with its shard layout
   attached, so the planner can prune shards and pin parallel plans to
   them. *)
let load_partition ?fault ?on_corrupt path =
  match
    let p = Storage.Partition.load ?fault path in
    (p, Storage.Partition.materialize ?on_corrupt p)
  with
  | pair -> Ok pair
  | exception Invalid_argument msg -> Error (Printf.sprintf "%s: %s" path msg)
  | exception Storage.Heap_file.Corrupt_page { page; _ } ->
      Error
        (Printf.sprintf
           "%s: a shard page (%d) failed its checksum (repair the shard, or \
            pass --on-error fallback/skip to scan around it)"
           path page)

let build_catalog ?fault ?on_corrupt ?stats bindings =
  List.fold_left
    (fun acc spec ->
      Result.bind acc (fun catalog ->
          let name, path = parse_binding spec in
          if Storage.Partition.is_partition_dir path then
            Result.map
              (fun (p, rel) ->
                Tsql.Catalog.with_layout
                  (Tsql.Catalog.add catalog name rel)
                  name
                  (Storage.Partition.shard_layout p))
              (load_partition ?fault ?on_corrupt path)
          else
            Result.map
              (fun rel -> Tsql.Catalog.add catalog name rel)
              (load_relation ?fault ?on_corrupt ?stats path)))
    (Ok (Tsql.Catalog.with_builtins ()))
    bindings

let relations_arg =
  Arg.(
    value & opt_all string []
    & info [ "r"; "relation" ] ~docv:"NAME=PATH"
        ~doc:
          "Bind a relation for use in queries (repeatable): a CSV file, a \
           .heap file, or a partition directory (created by $(b,CREATE \
           TABLE ... PARTITION BY RANGE (vt)) under serve's --data-dir), \
           whose shard layout then drives partition pruning.  A bare PATH \
           binds the file's basename.  The paper's $(i,Employed) relation \
           is always available.")

let query_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"QUERY"
        ~doc:"TSQL2-subset query, e.g. 'SELECT COUNT(Name) FROM Employed'.")

let algorithm_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "algorithm" ] ~docv:"ALGO"
        ~doc:
          "Override the planned evaluation algorithm: $(b,sweep), \
           $(b,aggregation-tree), $(b,linked-list), $(b,balanced-tree), \
           $(b,two-scan), $(b,ktree(K)) or $(b,parallel(D,ALGO)).  \
           Overrides both the optimizer and any USING hint.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Shard the evaluation across N OCaml domains (multicore \
           divide-and-conquer); wraps the chosen algorithm in \
           $(b,parallel(N,...)).")

let join_strategy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "join-strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Override the planned interval-join strategy for JOIN queries: \
           $(b,sweep) (endpoint sweep over a gapless-hash active-tuple map) \
           or $(b,nested-loop).  Overrides the optimizer's \
           cardinality-based choice; ignored for join-free queries.")

let on_error_conv =
  Arg.conv
    ( (fun s ->
        Result.map_error
          (fun e -> `Msg e)
          (Tempagg.Engine.on_error_of_string s)),
      fun ppf p ->
        Format.pp_print_string ppf (Tempagg.Engine.on_error_to_string p) )

let on_error_arg =
  Arg.(
    value
    & opt (some on_error_conv) None
    & info [ "on-error" ] ~docv:"POLICY"
        ~doc:
          "Recovery policy for recoverable failures: $(b,fail) (abort with \
           a structured error), $(b,fallback) (retry along the fallback \
           chain — doubled k, then aggregation tree; flat sweep on a blown \
           memory budget) or $(b,skip) (additionally drop-and-count \
           misordered tuples and corrupt pages).  Overrides the query's ON \
           ERROR clause.  Any degradation is reported on stderr.")

let memory_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "memory-budget" ] ~docv:"BYTES"
        ~doc:
          "Cap the evaluation's live algorithm state (16-byte-node \
           accounting); exceeding it triggers the on-error policy.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock deadline per evaluation, in milliseconds; running \
           past it aborts with a structured error (never retried).")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject-faults" ] ~docv:"SPEC"
        ~doc:
          "Deterministic storage fault injection for .heap reads, e.g. \
           $(b,transient=0.1,torn=0.02,seed=7).  Keys: $(b,transient), \
           $(b,torn), $(b,bitflip) (per-page probabilities) and \
           $(b,seed).  For testing the recovery paths.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record tracing spans for the whole run (catalog load through \
           evaluation) and write them to FILE as Chrome trace_event JSON \
           — load it in about://tracing or Perfetto.  Parallel plans get \
           one span per shard.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "After the run, print a Prometheus-style metrics exposition \
           (I/O counters, degradations, and profile gauges with \
           $(b,--profile)) on stdout.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Run the query with an EXPLAIN-ANALYZE profile: algorithm and \
           rationale, k estimate, every evaluation attempt with its node \
           allocations and peak bytes (aborted fallback attempts \
           included), phase timings and output size.  Printed after the \
           result.  Query command only.")

let no_adaptive_arg =
  Arg.(
    value & flag
    & info [ "no-adaptive" ]
        ~doc:
          "Plan from declared metadata only, ignoring the per-relation \
           statistics store (observed k bounds, measured result sizes).  \
           Outcomes are still recorded for later adaptive runs.")

let exec kind bindings algorithm domains on_error join_strategy memory_budget
    deadline_ms faults trace metrics profile no_adaptive q =
  let adaptive = not no_adaptive in
  let parsed_algorithm =
    match algorithm with
    | None -> Ok None
    | Some name -> Result.map Option.some (Tempagg.Engine.of_string name)
  in
  let parsed_join_strategy =
    match join_strategy with
    | None -> Ok None
    | Some name -> Result.map Option.some (Join.Engine.strategy_of_string name)
  in
  let checked_domains =
    match domains with
    | Some d when d < 1 -> Error "--domains must be at least 1"
    | d -> Ok d
  in
  let parsed_faults =
    match faults with
    | None -> Ok None
    | Some spec -> Result.map Option.some (Storage.Fault.of_string spec)
  in
  (* Arm tracing before the catalog loads so storage spans (heap reads,
     external sorts) land in the same timeline as the evaluation. *)
  if trace <> None then Obs.Trace.arm ();
  let io_stats = Storage.Io_stats.create () in
  let write_trace () =
    match trace with
    | None -> ()
    | Some path ->
        Obs.Trace.disarm ();
        let spans = Obs.Trace.spans () in
        Out_channel.with_open_text path (fun oc ->
            output_string oc (Obs.Trace.to_chrome_json spans));
        Printf.eprintf "trace: wrote %d span(s) to %s\n%!" (List.length spans)
          path
  in
  let print_metrics ?profile_report degradations =
    if metrics then begin
      let registry = Obs.Metrics.create () in
      Storage.Io_stats.to_metrics registry io_stats;
      Tempagg.Engine.degradations_to_metrics registry degradations;
      Option.iter (Obs.Profile.to_metrics registry) profile_report;
      print_string (Obs.Metrics.expose registry)
    end
  in
  let print_degradations =
    List.iter (fun d ->
        Printf.eprintf "degraded: %s\n%!"
          (Tempagg.Engine.degradation_to_string d))
  in
  let outcome =
    Result.bind parsed_algorithm (fun algorithm ->
        Result.bind parsed_join_strategy (fun join_strategy ->
        Result.bind checked_domains (fun domains ->
            Result.bind parsed_faults (fun fault ->
                let on_corrupt =
                  (* Corrupt pages abort the load under fail (the
                     default), and are skipped-and-counted otherwise. *)
                  match on_error with
                  | Some (Tempagg.Engine.Fallback | Tempagg.Engine.Skip) ->
                      `Skip
                  | Some Tempagg.Engine.Fail | None -> `Fail
                in
                Result.bind
                  (build_catalog ?fault ~on_corrupt ~stats:io_stats bindings)
                  (fun catalog ->
                    match kind with
                    | `Run ->
                        if profile then
                          Result.map
                            (fun r -> `Profiled r)
                            (Tsql.Eval.query_profiled ~adaptive ?algorithm
                               ?domains ?on_error ?join_strategy ?memory_budget
                               ?deadline_ms catalog q)
                        else if
                          on_error = None && memory_budget = None
                          && deadline_ms = None
                        then
                          Result.map
                            (fun r -> `Rel r)
                            (Tsql.Eval.query ~adaptive ?algorithm ?domains
                               ?join_strategy catalog q)
                        else
                          Result.map
                            (fun r -> `Robust r)
                            (Tsql.Eval.query_robust ~adaptive ?algorithm
                               ?domains ?on_error ?join_strategy ?memory_budget
                               ?deadline_ms catalog q)
                    | `Explain ->
                        Result.map
                          (fun s -> `Text s)
                          (Tsql.Eval.explain ~adaptive ?algorithm ?domains
                             ?on_error ?join_strategy catalog q))))))
  in
  write_trace ();
  match outcome with
  | Ok (`Rel result) ->
      Tsql.Pretty.print_result result;
      print_metrics [];
      `Ok ()
  | Ok (`Robust { Tsql.Eval.result; degradations }) ->
      Tsql.Pretty.print_result result;
      print_degradations degradations;
      print_metrics degradations;
      `Ok ()
  | Ok (`Profiled { Tsql.Eval.result; profile; degradations }) ->
      Tsql.Pretty.print_result result;
      print_degradations degradations;
      print_string (Obs.Profile.to_string profile);
      print_metrics ~profile_report:profile degradations;
      `Ok ()
  | Ok (`Text text) ->
      print_endline text;
      print_metrics [];
      `Ok ()
  | Error msg -> `Error (false, msg)

let query_cmd =
  let doc = "run a temporal aggregate query" in
  Cmd.v
    (Cmd.info "query" ~doc)
    Term.(
      ret
        (const (exec `Run) $ relations_arg $ algorithm_arg $ domains_arg
       $ on_error_arg $ join_strategy_arg $ memory_budget_arg $ deadline_arg
       $ faults_arg $ trace_arg $ metrics_arg $ profile_arg $ no_adaptive_arg
       $ query_arg))

let explain_cmd =
  let doc = "show the evaluation plan for a query" in
  Cmd.v
    (Cmd.info "explain" ~doc)
    Term.(
      ret
        (const (exec `Explain) $ relations_arg $ algorithm_arg $ domains_arg
       $ on_error_arg $ join_strategy_arg $ memory_budget_arg $ deadline_arg
       $ faults_arg $ trace_arg $ metrics_arg $ profile_arg $ no_adaptive_arg
       $ query_arg))

(* generate *)

let generate n long_lived lifespan seed order k percentage output =
  let spec_result =
    match
      Workload.Spec.make ~long_lived_fraction:long_lived ~lifespan ~seed ~n ()
    with
    | spec -> Ok spec
    | exception Invalid_argument msg -> Error msg
  in
  match
    Result.bind spec_result (fun spec ->
        let rel = Workload.Generate.relation spec in
        match order with
        | `Random -> Ok rel
        | `Sorted -> Ok (Relation.Trel.sort_by_time rel)
        | `Kordered -> (
            let tuples =
              Array.of_list
                (Relation.Trel.tuples (Relation.Trel.sort_by_time rel))
            in
            let prng = Workload.Prng.create ~seed:(seed + 1) in
            match
              Ordering.Perturb.k_ordered
                ~rand:(Workload.Prng.int_bounded prng)
                ~k ~percentage tuples
            with
            | perturbed ->
                Ok
                  (Relation.Trel.of_array
                     (Relation.Trel.schema rel)
                     perturbed)
            | exception Invalid_argument msg -> Error msg))
  with
  | Error msg -> `Error (false, msg)
  | Ok rel ->
      (match output with
      | Some path ->
          save_relation path rel;
          Printf.printf "wrote %d tuples to %s\n" (Relation.Trel.cardinality rel)
            path
      | None -> print_string (Relation.Csv_io.to_string rel));
      `Ok ()

let order_enum =
  Arg.enum [ ("random", `Random); ("sorted", `Sorted); ("k-ordered", `Kordered) ]

let generate_cmd =
  let doc = "generate a synthetic temporal relation (Section 6 workload)" in
  let n =
    Arg.(value & opt int 1024 & info [ "n"; "tuples" ] ~docv:"N" ~doc:"Tuple count.")
  in
  let long =
    Arg.(
      value & opt float 0.
      & info [ "long-lived" ] ~docv:"FRACTION"
          ~doc:"Fraction of long-lived tuples (paper: 0, 0.4, 0.8).")
  in
  let lifespan =
    Arg.(
      value & opt int 1_000_000
      & info [ "lifespan" ] ~docv:"INSTANTS" ~doc:"Relation lifespan.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let order =
    Arg.(
      value & opt order_enum `Random
      & info [ "order" ] ~docv:"ORDER"
          ~doc:"Physical order: $(b,random), $(b,sorted) or $(b,k-ordered).")
  in
  let k =
    Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc:"k for k-ordered output.")
  in
  let percentage =
    Arg.(
      value & opt float 0.02
      & info [ "percentage" ] ~docv:"P"
          ~doc:"k-ordered-percentage for k-ordered output.")
  in
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Output file (default stdout).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(
      ret
        (const generate $ n $ long $ lifespan $ seed $ order $ k $ percentage
       $ output))

(* metrics *)

let metrics path ks =
  match load_relation path with
  | Error msg -> `Error (false, msg)
  | Ok rel ->
      let k = Ordering.Korder.k_of_relation rel in
      Printf.printf "tuples:            %d\n" (Relation.Trel.cardinality rel);
      Printf.printf "time-ordered:      %b\n" (Relation.Trel.is_time_ordered rel);
      Printf.printf "k-orderedness:     %d\n" k;
      List.iter
        (fun probe_k ->
          if probe_k >= k && probe_k > 0 then
            Printf.printf "percentage (k=%d): %.5f\n" probe_k
              (Ordering.Korder.relation_percentage ~k:probe_k rel))
        (if ks = [] then [ max k 1 ] else ks);
      `Ok ()

let metrics_cmd =
  let doc = "report sortedness metrics of a relation (Section 5.2)" in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH" ~doc:"CSV relation.")
  in
  let ks =
    Arg.(
      value & opt_all int []
      & info [ "k" ] ~docv:"K" ~doc:"Report the k-ordered-percentage for this k (repeatable).")
  in
  Cmd.v (Cmd.info "metrics" ~doc) Term.(ret (const metrics $ path $ ks))

(* sort *)

let sort_relation input output =
  match load_relation input with
  | Error msg -> `Error (false, msg)
  | Ok rel ->
      let sorted = Relation.Trel.sort_by_time rel in
      (match output with
      | Some path -> Relation.Csv_io.save path sorted
      | None -> print_string (Relation.Csv_io.to_string sorted));
      `Ok ()

(* convert *)

let convert input output =
  match load_relation input with
  | Error msg -> `Error (false, msg)
  | Ok rel ->
      save_relation output rel;
      Printf.printf "wrote %d tuples to %s\n"
        (Relation.Trel.cardinality rel)
        output;
      `Ok ()

let convert_cmd =
  let doc = "convert a relation between CSV and heap-file formats" in
  let input =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"INPUT" ~doc:"Source relation (.csv or .heap).")
  in
  let output =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"OUTPUT" ~doc:"Destination (.csv or .heap).")
  in
  Cmd.v (Cmd.info "convert" ~doc) Term.(ret (const convert $ input $ output))

(* extsort *)

let extsort memory_tuples fan_in src dst =
  if not (Filename.check_suffix src ".heap" && Filename.check_suffix dst ".heap")
  then `Error (false, "extsort operates on .heap files (see convert)")
  else
    let stats = Storage.Io_stats.create () in
    match
      Storage.External_sort.sort ~memory_tuples ~fan_in ~stats ~src ~dst ()
    with
    | () ->
        Printf.printf "sorted %s -> %s (%d pages read, %d written)\n" src dst
          (Storage.Io_stats.pages_read stats)
          (Storage.Io_stats.pages_written stats);
        `Ok ()
    | exception Invalid_argument msg -> `Error (false, msg)

let extsort_cmd =
  let doc =
    "external-merge-sort a heap file by valid time (run formation + k-way \
     merge)"
  in
  let memory =
    Arg.(
      value & opt int 4096
      & info [ "memory-tuples" ] ~docv:"N" ~doc:"In-memory run size.")
  in
  let fan_in =
    Arg.(value & opt int 16 & info [ "fan-in" ] ~docv:"K" ~doc:"Merge fan-in.")
  in
  let src =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SRC" ~doc:"Input heap file.")
  in
  let dst =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DST" ~doc:"Output heap file.")
  in
  Cmd.v (Cmd.info "extsort" ~doc)
    Term.(ret (const extsort $ memory $ fan_in $ src $ dst))

(* serve *)

(* --slowlog-out alone means "log everything": threshold 0. *)
let make_slowlog slowlog_ms slowlog_out =
  match (slowlog_ms, slowlog_out) with
  | None, None -> None
  | ms, _ ->
      Some (Obs.Slowlog.create ~threshold_ms:(Option.value ms ~default:0.) ())

let write_slowlog slowlog slowlog_out =
  match (slowlog, slowlog_out) with
  | Some log, Some path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Obs.Slowlog.to_json log));
      Printf.eprintf "slowlog: wrote %d entry(ies) to %s\n%!"
        (List.length (Obs.Slowlog.entries log))
        path
  | _ -> ()

(* The network server: the same catalog/session machinery behind a TCP
   listener (or stdin as one connection), with admission control, a
   worker-domain pool, and graceful drain on SIGTERM/SIGINT. *)
let serve_net bindings cache_capacity no_adaptive slowlog_ms slowlog_out
    data_dir split_threshold listen domains queue_depth degrade_watermark
    drain_timeout_ms idle_timeout_ms max_connections memory_budget deadline_ms
    on_error metrics_out recorder_spans recorder_pinned recorder_out
    scrape_every slo_file =
  let transport =
    if String.lowercase_ascii listen = "stdin" then Ok Net.Server.Stdio
    else
      match int_of_string_opt listen with
      | Some p when p >= 0 && p < 65536 -> Ok (Net.Server.Tcp p)
      | _ ->
          Error
            (Printf.sprintf "--listen expects a port number or 'stdin', got %S"
               listen)
  in
  match transport with
  | Error msg -> `Error (false, msg)
  | Ok transport -> (
      if domains < 1 then `Error (false, "--domains must be >= 1")
      else if queue_depth < 0 then `Error (false, "--queue-depth must be >= 0")
      else
        let partition_bindings, file_bindings =
          List.partition
            (fun spec ->
              Storage.Partition.is_partition_dir (snd (parse_binding spec)))
            bindings
        in
        match build_catalog file_bindings with
        | Error msg -> `Error (false, msg)
        | Ok catalog ->
            (* Flight-recorder sizing is global (the rings live inside
               Obs.Trace); set it before any statement records spans. *)
            (match recorder_spans with
            | Some n -> Obs.Trace.set_ring_capacity n
            | None -> ());
            (match recorder_pinned with
            | Some n -> Obs.Recorder.configure ~max_pinned:n ()
            | None -> ());
            let slowlog = make_slowlog slowlog_ms slowlog_out in
            let slo =
              match slo_file with
              | None -> Ok []
              | Some path -> Obs.Slo.parse_file path
            in
            match slo with
            | Error msg -> `Error (false, "--slo: " ^ msg)
            | Ok slo ->
            (* Objectives need the self-relations: --slo implies
               scraping at the default 1 s period. *)
            let scrape_every_ms =
              match (scrape_every, slo) with
              | Some ms, _ -> Some ms
              | None, _ :: _ -> Some 1000
              | None, [] -> None
            in
            let config =
              {
                Net.Server.transport;
                domains;
                queue_depth;
                degrade_watermark;
                drain_timeout_ms;
                idle_timeout_ms;
                max_connections;
                memory_budget;
                deadline_ms;
                degrade_deadline_ms = None;
                on_error;
                cache_capacity;
                adaptive = not no_adaptive;
                data_dir;
                partitions = List.map parse_binding partition_bindings;
                split_threshold;
                slowlog;
                recorder_out;
                scrape_every_ms;
                scrape_config = None;
                slo;
              }
            in
            let srv =
              try Ok (Net.Server.create ~config catalog)
              with Unix.Unix_error (err, _, _) ->
                Error
                  (Printf.sprintf "cannot listen on %s: %s" listen
                     (Unix.error_message err))
            in
            (match srv with
            | Error msg -> `Error (false, msg)
            | Ok srv ->
                (* The banner goes to stderr: in stdin mode stdout is
                   the protocol channel, and in TCP mode scripts grep
                   stderr for the bound port. *)
                (match Net.Server.port srv with
                | Some p ->
                    Printf.eprintf
                      "tempagg: listening on port %d (%d domain(s), queue \
                       depth %d)\n\
                       %!"
                      p domains queue_depth
                | None -> Printf.eprintf "tempagg: serving stdin\n%!");
                let report = Net.Server.run ~signals:true srv in
                let out_report = Net.Server.report_to_string report in
                (match transport with
                | Net.Server.Stdio -> Printf.eprintf "%s%!" out_report
                | Net.Server.Tcp _ -> print_string out_report);
                (match metrics_out with
                | None -> ()
                | Some path ->
                    Join.Telemetry.to_metrics report.Net.Server.metrics;
                    (* Atomic (temp + rename): a scraper racing the
                       drain never reads a torn exposition. *)
                    Obs.Metrics.write_file report.Net.Server.metrics path;
                    Printf.eprintf "metrics: wrote %s\n%!" path);
                write_slowlog slowlog slowlog_out;
                `Ok ()))

let serve_script bindings cache_capacity echo metrics_every trace no_adaptive
    slowlog_ms slowlog_out data_dir split_threshold script =
  if trace <> None then Obs.Trace.arm ();
  let write_trace () =
    match trace with
    | None -> ()
    | Some path ->
        Obs.Trace.disarm ();
        let spans = Obs.Trace.spans () in
        Out_channel.with_open_text path (fun oc ->
            output_string oc (Obs.Trace.to_chrome_json spans));
        Printf.eprintf "trace: wrote %d span(s) to %s\n%!" (List.length spans)
          path
  in
  (* Partition-directory bindings become live partitioned bases (writes
     and ANALYZE maintain them on disk); plain files go through the
     catalog as immutable seeds. *)
  let partition_bindings, file_bindings =
    List.partition
      (fun spec ->
        Storage.Partition.is_partition_dir (snd (parse_binding spec)))
      bindings
  in
  match build_catalog file_bindings with
  | Error msg -> `Error (false, msg)
  | Ok catalog -> (
      match In_channel.with_open_text script In_channel.input_all with
      | exception Sys_error msg -> `Error (false, msg)
      | text -> (
          let session =
            Tsql.Session.create ~cache_capacity ~adaptive:(not no_adaptive)
              ?data_dir ?split_threshold catalog
          in
          match
            List.iter
              (fun spec ->
                let name, path = parse_binding spec in
                Tsql.Session.add_partition session name
                  (Storage.Partition.load path))
              partition_bindings
          with
          | exception Invalid_argument msg -> `Error (false, msg)
          | () -> (
          let slowlog = make_slowlog slowlog_ms slowlog_out in
          match
            Tsql.Serve.run_script ~echo ?metrics_every ?slowlog session text
          with
          | Error msg -> `Error (false, script ^ ": " ^ msg)
          | Ok report ->
              print_string (Tsql.Serve.report_to_string report);
              write_slowlog slowlog slowlog_out;
              write_trace ();
              `Ok ())))

let serve bindings cache_capacity echo metrics_every trace no_adaptive
    slowlog_ms slowlog_out data_dir split_threshold script listen domains
    queue_depth degrade_watermark drain_timeout_ms idle_timeout_ms
    max_connections memory_budget deadline_ms on_error metrics_out
    recorder_spans recorder_pinned recorder_out scrape_every slo_file =
  match (listen, script) with
  | Some _, Some _ ->
      `Error (false, "--script and --listen are mutually exclusive")
  | None, None -> `Error (false, "one of --script or --listen is required")
  | Some listen, None ->
      serve_net bindings cache_capacity no_adaptive slowlog_ms slowlog_out
        data_dir split_threshold listen domains queue_depth degrade_watermark
        drain_timeout_ms idle_timeout_ms max_connections memory_budget
        deadline_ms on_error metrics_out recorder_spans recorder_pinned
        recorder_out scrape_every slo_file
  | None, Some script ->
      serve_script bindings cache_capacity echo metrics_every trace no_adaptive
        slowlog_ms slowlog_out data_dir split_threshold script

let serve_cmd =
  let doc =
    "execute a statement script, or serve many TCP clients with admission \
     control and graceful drain"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs a mutable session over the bound relations: the script may \
         interleave $(b,CREATE VIEW name AS query), $(b,REFRESH VIEW), \
         $(b,DROP VIEW), $(b,INSERT INTO r VALUES (...) DURING [a,b]), \
         $(b,DELETE FROM r WHERE ...) and $(b,SELECT) statements, \
         separated by semicolons ($(b,--) starts a line comment).  Views \
         with a plain by-instant, ungrouped definition are maintained \
         incrementally on every write; others are recomputed lazily.  The \
         report gives per-statement-kind latency percentiles and the \
         session's live-maintenance counters.";
      `P
        "With $(b,--listen) the same session machinery serves many \
         concurrent clients over a line protocol: one statement per line, \
         each answered by $(b,OK n [degraded]) plus $(i,n) payload lines, \
         $(b,ERR msg), or $(b,BUSY reason) when the bounded admission \
         queue sheds the request.  $(b,PING)/$(b,QUIT) are answered \
         inline ($(b,PONG)/$(b,BYE)); PING bypasses admission, so it \
         stays a liveness probe even at saturation.  Requests queued past \
         the degrade watermark run under an ON ERROR fallback policy and \
         a tighter deadline.  SIGTERM/SIGINT drain gracefully: stop \
         accepting, finish or shed queued work within \
         $(b,--drain-timeout-ms), flush, exit 0.  $(b,--listen stdin) \
         serves stdin/stdout as one connection behind the same \
         dispatcher.";
    ]
  in
  let cache =
    Arg.(
      value & opt int 128
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Query-cache capacity in entries.")
  in
  let echo =
    Arg.(
      value & flag
      & info [ "echo" ]
          ~doc:"Print each SELECT result and acknowledgement as it runs.")
  in
  let metrics_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-every" ] ~docv:"N"
          ~doc:
            "Dump a Prometheus metrics exposition every $(docv) statements.")
  in
  let script =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"PATH"
          ~doc:
            "Statement script to execute (script mode; exclusive with \
             $(b,--listen)).")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"PORT"
          ~doc:
            "Serve the line protocol on TCP $(docv) (0 picks an ephemeral \
             port, reported on stderr), or on stdin/stdout with \
             $(b,--listen stdin).")
  in
  let domains =
    Arg.(
      value & opt int 4
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains executing statements (the in-flight budget).")
  in
  let queue_depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"Q"
          ~doc:
            "Admission queue bound: with every domain busy, up to $(docv) \
             statements wait; past that they are shed with $(b,BUSY).")
  in
  let degrade_watermark =
    Arg.(
      value
      & opt (some int) None
      & info [ "degrade-watermark" ] ~docv:"W"
          ~doc:
            "Queue length at which admitted statements degrade (fallback \
             policy + tighter deadline).  Default: half the queue depth.")
  in
  let drain_timeout_ms =
    Arg.(
      value & opt int 5000
      & info [ "drain-timeout-ms" ] ~docv:"MS"
          ~doc:
            "On SIGTERM/SIGINT, grace period for finishing accepted work \
             before still-queued statements are shed and connections \
             closed.")
  in
  let idle_timeout_ms =
    Arg.(
      value & opt int 60_000
      & info [ "idle-timeout-ms" ] ~docv:"MS"
          ~doc:"Reap connections with no traffic for $(docv) milliseconds.")
  in
  let max_connections =
    Arg.(
      value & opt int 1024
      & info [ "max-connections" ] ~docv:"N"
          ~doc:"Connections beyond $(docv) are refused with $(b,BUSY).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"PATH"
          ~doc:
            "After the server drains, write its Prometheus metrics \
             exposition (accepted/active/queued/shed/timed-out plus \
             per-kind latency histograms) to $(docv).")
  in
  let slowlog_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slowlog-ms" ] ~docv:"MS"
          ~doc:
            "Capture statements taking at least $(docv) milliseconds into \
             the slow-query log (0 captures everything).  Slow SELECTs \
             against base relations are re-profiled so the entry carries \
             the full EXPLAIN ANALYZE report.")
  in
  let slowlog_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "slowlog-out" ] ~docv:"PATH"
          ~doc:
            "Write the slow-query log as JSON to $(docv) after the run.  \
             Implies --slowlog-ms 0 when that is not given.")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Directory where $(b,CREATE TABLE ... PARTITION BY RANGE (vt)) \
             places partition directories (one per table).  Defaults to a \
             fresh temporary directory; pass an existing DIR to keep the \
             partitions across runs (re-bind them with \
             $(b,-r NAME=DIR/name)).")
  in
  let split_threshold =
    Arg.(
      value
      & opt (some int) None
      & info [ "split-threshold" ] ~docv:"N"
          ~doc:
            "Maximum tuples a partition shard may hold before a write \
             splits it at its median start instant (default 8192).")
  in
  let recorder_spans =
    Arg.(
      value
      & opt (some int) None
      & info [ "recorder-spans" ] ~docv:"N"
          ~doc:
            "Flight-recorder ring capacity in spans per domain (default \
             2048; 0 disables the always-on recorder).")
  in
  let recorder_pinned =
    Arg.(
      value
      & opt (some int) None
      & info [ "recorder-pinned" ] ~docv:"N"
          ~doc:
            "Traces the flight recorder retains for slow/shed/degraded/\
             errored requests before evicting the oldest (default 64).")
  in
  let recorder_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "recorder-out" ] ~docv:"PATH"
          ~doc:
            "Write the flight-recorder dump (Chrome trace JSON) to $(docv) \
             on SIGUSR1 and again when the server drains.  Without it \
             SIGUSR1 still dumps, to tempagg-recorder.json.")
  in
  let scrape_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "scrape-every" ] ~docv:"MS"
          ~doc:
            "Self-scrape period: every $(docv) milliseconds the server \
             samples its own metrics registry into the $(b,_metrics) and \
             $(b,_requests) temporal relations (counters delta-encoded to \
             rates, per-kind latency histograms to p50/p99 rows), bounded \
             by retention with SPAN-aggregate downsampling.  Every \
             session can then query the server about itself: \
             $(b,SELECT AVG(value) FROM _metrics WHERE name = '...' \
             DURING [a,b]).")
  in
  let slo_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo" ] ~docv:"FILE"
          ~doc:
            "Service-level objectives, one per line: $(i,name) $(i,target) \
             < $(i,threshold) over $(i,window) fast $(i,window) [kind \
             $(i,k)], where target is error_ratio, p50 or p99.  Evaluated \
             on every scrape tick (implies $(b,--scrape-every 1000) when \
             not given) by compiling each objective to TSQL over the \
             self-relations, with multi-window burn rates: both windows \
             burning is a breach, one a warning.  Verdicts feed the \
             tempagg_slo_* metrics, the $(b,SLO) verb / $(b,SHOW SLO) \
             statement, and the final report's alert lines.")
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      ret
        (const serve $ relations_arg $ cache $ echo $ metrics_every $ trace_arg
       $ no_adaptive_arg $ slowlog_ms $ slowlog_out $ data_dir
       $ split_threshold $ script $ listen $ domains $ queue_depth
       $ degrade_watermark $ drain_timeout_ms $ idle_timeout_ms
       $ max_connections $ memory_budget_arg $ deadline_arg $ on_error_arg
       $ metrics_out $ recorder_spans $ recorder_pinned $ recorder_out
       $ scrape_every $ slo_file))

(* client *)

let client connect script strict quiet trace_ids =
  (* The server closing mid-write must surface as EPIPE, not kill us. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let host, port =
    match String.rindex_opt connect ':' with
    | Some i ->
        ( String.sub connect 0 i,
          int_of_string_opt
            (String.sub connect (i + 1) (String.length connect - i - 1)) )
    | None -> ("127.0.0.1", int_of_string_opt connect)
  in
  match port with
  | None -> `Error (false, Printf.sprintf "cannot parse %S as HOST:PORT" connect)
  | Some port -> (
      let text =
        match script with
        | Some path -> (
            try Ok (In_channel.with_open_text path In_channel.input_all)
            with Sys_error msg -> Error msg)
        | None -> Ok (In_channel.input_all In_channel.stdin)
      in
      match text with
      | Error msg -> `Error (false, msg)
      | Ok text -> (
          match Net.Client.connect ~host ~port () with
          | exception Unix.Unix_error (err, _, _) ->
              `Error
                ( false,
                  Printf.sprintf "cannot connect to %s:%d: %s" host port
                    (Unix.error_message err) )
          | c ->
              let ok = ref 0 and err = ref 0 and busy = ref 0 in
              let violation = ref None in
              let finished = ref false in
              (* One request line at a time; blank lines and -- comments
                 get no reply from the server, so skip them here too. *)
              let lines =
                List.filter
                  (fun l ->
                    l <> ""
                    && not (String.length l >= 2 && String.sub l 0 2 = "--"))
                  (List.map String.trim (String.split_on_char '\n' text))
              in
              let seq = ref 0 in
              List.iter
                (fun line ->
                  if !violation = None && not !finished then begin
                    (* With --trace-ids every statement is tagged with a
                       client-chosen request id (c<pid>-<n>) so its
                       flight-recorder trace can be pulled later with
                       TRACE DUMP <id>.  Control verbs (PING, QUIT,
                       METRICS, TRACE DUMP) are answered on the event
                       loop without a request id and stay untagged. *)
                    let control =
                      let upper = String.uppercase_ascii line in
                      upper = "QUIT" || upper = "PING"
                      || Net.Protocol.metrics_request line
                      || Net.Protocol.trace_dump_request line <> None
                    in
                    let trace =
                      if trace_ids && not control then begin
                        let id =
                          Printf.sprintf "c%d-%d" (Unix.getpid ()) !seq
                        in
                        incr seq;
                        Some id
                      end
                      else None
                    in
                    match Net.Client.request ?trace c line with
                    | Ok (Net.Protocol.Ok_reply { degraded; trace; payload })
                      ->
                        incr ok;
                        if not quiet then begin
                          if degraded then
                            Printf.printf "-- degraded: %s\n" line;
                          (match trace with
                          | Some id when trace_ids ->
                              Printf.printf "-- trace: %s\n" id
                          | _ -> ());
                          List.iter print_endline payload
                        end
                    | Ok Net.Protocol.Pong -> incr ok
                    | Ok Net.Protocol.Bye -> finished := true
                    | Ok (Net.Protocol.Err msg) ->
                        incr err;
                        Printf.eprintf "ERR %s (statement: %s)\n%!" msg line
                    | Ok (Net.Protocol.Busy reason) ->
                        incr busy;
                        Printf.eprintf "BUSY %s (statement: %s)\n%!" reason line
                    | Error msg -> violation := Some msg
                  end)
                lines;
              if !violation = None && not !finished then begin
                match Net.Client.request c "QUIT" with
                | Ok Net.Protocol.Bye -> ()
                | Ok _ -> violation := Some "QUIT answered with a non-BYE reply"
                | Error msg -> violation := Some msg
              end;
              Net.Client.close c;
              Printf.printf "client: %d ok, %d err, %d busy\n%!" !ok !err !busy;
              (match !violation with
              | Some msg -> `Error (false, "protocol violation: " ^ msg)
              | None ->
                  if strict && (!err > 0 || !busy > 0) then
                    `Error
                      ( false,
                        Printf.sprintf
                          "--strict: %d ERR / %d BUSY reply(ies)" !err !busy )
                  else `Ok ())))

let client_cmd =
  let doc = "run a statement script against a running tempagg server" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Connects to $(b,tempagg serve --listen), sends one statement per \
         line, and prints each reply payload.  Exits non-zero on a \
         protocol violation (malformed reply, truncated payload, \
         unexpected EOF); with $(b,--strict), also when any statement \
         answered $(b,ERR) or $(b,BUSY).  A $(b,QUIT) is sent at the end \
         when the script does not include one.";
    ]
  in
  let connect =
    Arg.(
      value
      & opt string "127.0.0.1:7411"
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Server address (a bare port means 127.0.0.1).")
  in
  let script =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"PATH"
          ~doc:"Statement script, one per line (default: stdin).")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Fail (non-zero exit) when any reply is ERR or BUSY.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Suppress reply payloads (keep the summary).")
  in
  let trace_ids =
    Arg.(
      value & flag
      & info [ "trace-ids" ]
          ~doc:
            "Tag every statement with a client-chosen request id (TRACE \
             c<pid>-<n> prefix) and print the id echoed in each OK reply \
             — the key for a later TRACE DUMP <id>.")
  in
  Cmd.v (Cmd.info "client" ~doc ~man)
    Term.(ret (const client $ connect $ script $ strict $ quiet $ trace_ids))

let sort_cmd =
  let doc = "sort a relation by valid time (start, then stop)" in
  let input =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH" ~doc:"CSV relation.")
  in
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Output file (default stdout).")
  in
  Cmd.v (Cmd.info "sort" ~doc) Term.(ret (const sort_relation $ input $ output))

let main =
  let doc = "temporal aggregate computation (Kline & Snodgrass, ICDE 1995)" in
  Cmd.group
    (Cmd.info "tempagg" ~version:"1.0.0" ~doc)
    [ query_cmd; explain_cmd; serve_cmd; client_cmd; generate_cmd; metrics_cmd;
      sort_cmd; convert_cmd; extsort_cmd ]

let () = exit (Cmd.eval main)
