(* Reproduction harness for every table and figure in "Computing Temporal
   Aggregates" (Kline & Snodgrass, ICDE 1995), plus the ablations called
   out in DESIGN.md.

     dune exec bench/main.exe                 # default: scaled-down sweep
     dune exec bench/main.exe -- --full       # paper-scale (1K..64K, slow)
     dune exec bench/main.exe -- --sections fig6,fig9
     dune exec bench/main.exe -- --csv out    # also write CSV series
     dune exec bench/main.exe -- --help

   Sections: table1 table2 table3 fig6 fig7 fig8 fig9 fig9_longlived
   sweep live optimizer guard obs adaptive ablation_balanced
   ablation_span ablation_unique ablation_paged ablation_pagerand
   storage_io shard join net selfmon micro.  The obs section also writes BENCH_trace.json
   (Chrome trace_event, loads in Perfetto) and BENCH_metrics.txt
   (Prometheus exposition) next to the --json output when one is
   requested.

   --smoke shrinks every size for CI (seconds, not minutes); --json PATH
   writes every measured point, plus run-identity metadata (git sha,
   timestamp, sizes), as machine-readable JSON.  --compare OLD.json
   checks this run's points against a previous file and exits non-zero
   when any regresses past --compare-threshold percent (default 10);
   --compare-only compares two existing files (--json NEW --compare OLD)
   without running anything.

   Absolute numbers differ from the paper's 1995 SPARCstation, but the
   shapes it reports are checked and recorded in EXPERIMENTS.md: who
   wins, by what factor, and where the curves bend.  By default the
   O(n^2) cases (the linked list everywhere; the aggregation tree on
   sorted input) are capped at --cap-quadratic tuples so the run
   finishes quickly. *)

open Temporal

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  max_size : int;
  cap_quadratic : int;
  repeats : int;
  sections : string list option;
  csv_dir : string option;
  smoke : bool;
  json : string option;
  compare_with : string option;
  compare_only : bool;
  compare_threshold : float;
}

let default_config =
  {
    max_size = 16_384;
    cap_quadratic = 8_192;
    repeats = 2;
    sections = None;
    csv_dir = None;
    smoke = false;
    json = None;
    compare_with = None;
    compare_only = false;
    compare_threshold = 10.;
  }

let usage () =
  print_endline
    "usage: main.exe [--full] [--smoke] [--max-size N] [--cap-quadratic N] \
     [--repeats N] [--sections a,b,c] [--csv DIR] [--json PATH] \
     [--compare OLD.json] [--compare-only] [--compare-threshold PCT]";
  exit 0

let parse_args () =
  let cfg = ref default_config in
  let rec go = function
    | [] -> ()
    | "--help" :: _ | "-h" :: _ -> usage ()
    | "--full" :: rest ->
        cfg :=
          { !cfg with max_size = 65_536; cap_quadratic = 65_536; repeats = 3 };
        go rest
    | "--smoke" :: rest ->
        cfg :=
          {
            !cfg with
            max_size = 1_024;
            cap_quadratic = 512;
            repeats = 1;
            smoke = true;
          };
        go rest
    | "--json" :: path :: rest ->
        cfg := { !cfg with json = Some path };
        go rest
    | "--max-size" :: n :: rest ->
        cfg := { !cfg with max_size = int_of_string n };
        go rest
    | "--cap-quadratic" :: n :: rest ->
        cfg := { !cfg with cap_quadratic = int_of_string n };
        go rest
    | "--repeats" :: n :: rest ->
        cfg := { !cfg with repeats = int_of_string n };
        go rest
    | "--sections" :: s :: rest ->
        cfg := { !cfg with sections = Some (String.split_on_char ',' s) };
        go rest
    | "--csv" :: dir :: rest ->
        cfg := { !cfg with csv_dir = Some dir };
        go rest
    | "--compare" :: path :: rest ->
        cfg := { !cfg with compare_with = Some path };
        go rest
    | "--compare-only" :: rest ->
        cfg := { !cfg with compare_only = true };
        go rest
    | "--compare-threshold" :: pct :: rest ->
        cfg := { !cfg with compare_threshold = float_of_string pct };
        go rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n" arg;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  !cfg

let enabled cfg name =
  match cfg.sections with None -> true | Some l -> List.mem name l

let banner name title =
  Printf.printf
    "\n==============================================================\n";
  Printf.printf "%s: %s\n" name title;
  Printf.printf
    "==============================================================\n%!"

(* [Sys.mkdir] only creates the last component, so "--csv out/run1"
   needs the parents made first.  The guard tolerates a concurrent
   creator racing us between the existence check and the mkdir. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* ------------------------------------------------------------------ *)
(* Machine-readable results (--json)                                    *)
(* ------------------------------------------------------------------ *)

(* One record per measured point, accumulated across sections and
   written as one JSON array at exit.  Hand-rolled writer: this is the
   only JSON the project emits, and the values are flat. *)
type json_record = {
  jr_section : string;
  jr_name : string;
  jr_n : int;
  jr_algorithm : string;
  jr_median_ns : float option;  (* time points *)
  jr_allocs : float option;  (* memory points: 16B-node-model bytes *)
}

let json_records : json_record list ref = ref []

(* Allocation notes for time points: (section, series, n) -> 16B-node-
   model bytes captured by one instrumented evaluation next to the
   timing loop, so time rows in --json carry a real "allocs" value
   instead of null.  Sections whose work has no node model (the live
   trace replay, end-to-end TSQL planning) still emit null. *)
let alloc_notes : (string * string * int, float) Hashtbl.t = Hashtbl.create 256

let note_allocs ~section ~name ~n bytes =
  Hashtbl.replace alloc_notes (section, name, n) bytes

let record_point ~section ~name ~n ~algorithm ?median_ns ?allocs () =
  json_records :=
    {
      jr_section = section;
      jr_name = name;
      jr_n = n;
      jr_algorithm = algorithm;
      jr_median_ns = median_ns;
      jr_allocs = allocs;
    }
    :: !json_records

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_number v =
  (* JSON has no infinities or NaN; clamp the pathological cases. *)
  if Float.is_nan v || Float.is_integer v then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

(* Run identity, stamped into the JSON so two result files can be told
   apart (and compared) after the fact. *)
let git_sha () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let meta_to_string cfg =
  Printf.sprintf
    "{\"git_sha\": \"%s\", \"timestamp\": \"%s\", \"n\": %d, \"domains\": \
     %d, \"smoke\": %b, \"sections\": \"%s\"}"
    (json_escape (git_sha ()))
    (iso8601 (Unix.gettimeofday ()))
    cfg.max_size
    (Domain.recommended_domain_count ())
    cfg.smoke
    (json_escape
       (match cfg.sections with
       | None -> "all"
       | Some l -> String.concat "," l))

let write_json cfg =
  match cfg.json with
  | None -> ()
  | Some path ->
      let dir = Filename.dirname path in
      if dir <> "." then mkdir_p dir;
      let record_to_string r =
        let opt = function None -> "null" | Some v -> json_number v in
        Printf.sprintf
          "  {\"section\": \"%s\", \"name\": \"%s\", \"n\": %d, \
           \"algorithm\": \"%s\", \"median_ns\": %s, \"allocs\": %s}"
          (json_escape r.jr_section) (json_escape r.jr_name) r.jr_n
          (json_escape r.jr_algorithm) (opt r.jr_median_ns) (opt r.jr_allocs)
      in
      Out_channel.with_open_text path (fun oc ->
          output_string oc "{\"meta\": ";
          output_string oc (meta_to_string cfg);
          output_string oc ",\n \"results\": [\n";
          output_string oc
            (String.concat ",\n"
               (List.rev_map record_to_string !json_records));
          output_string oc "\n]}\n");
      Printf.printf "(json written to %s: %d records)\n" path
        (List.length !json_records)

(* ------------------------------------------------------------------ *)
(* Result comparison (--compare)                                        *)
(* ------------------------------------------------------------------ *)

(* Reads a results file back into (section, name, n, algorithm) ->
   median_ns.  The scanner only understands the flat one-record-per-line
   layout this harness writes (both the current {"meta":..,"results":[..]}
   shape and the older bare array), which keeps it dependency-free: any
   line carrying a "section" field is a record, and fields are extracted
   by key. *)
let scan_string_field line key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  let plen = String.length pat and llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

let scan_number_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat and llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < llen
        && (match line.[!stop] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      if !stop = start then None
      else float_of_string_opt (String.sub line start (!stop - start))

let load_results path =
  let text = In_channel.with_open_text path In_channel.input_all in
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun line ->
      match scan_string_field line "section" with
      | None -> ()
      | Some section -> (
          match
            ( scan_string_field line "name",
              scan_number_field line "n",
              scan_string_field line "algorithm" )
          with
          | Some name, Some n, Some algorithm ->
              Hashtbl.replace tbl
                (section, name, int_of_float n, algorithm)
                (scan_number_field line "median_ns")
          | _ -> ()))
    (String.split_on_char '\n' text);
  tbl

(* Compares this run's records (or a second file) against a previous
   results file: per-section counts and worst delta, every point past
   the threshold listed, and the number of regressions returned so main
   can turn it into the exit code. *)
let compare_results ~threshold ~old_path new_records =
  let old_tbl = load_results old_path in
  Printf.printf
    "\n==============================================================\n";
  Printf.printf "compare: this run vs %s (threshold %.1f%%)\n" old_path
    threshold;
  Printf.printf
    "==============================================================\n";
  let per_section : (string, int * int * float * string) Hashtbl.t =
    Hashtbl.create 16
  in
  let regressions = ref 0 and matched = ref 0 in
  List.iter
    (fun (((section, name, n, algorithm) as key), new_ns) ->
      match (new_ns, Hashtbl.find_opt old_tbl key) with
      | Some new_ns, Some (Some old_ns) when old_ns > 0. ->
          incr matched;
          let delta = (new_ns -. old_ns) /. old_ns *. 100. in
          let cnt, reg, worst, worst_what =
            Option.value
              (Hashtbl.find_opt per_section section)
              ~default:(0, 0, neg_infinity, "")
          in
          let what = Printf.sprintf "%s/%s n=%d" name algorithm n in
          let is_reg = delta > threshold in
          if is_reg then begin
            incr regressions;
            Printf.printf "  REGRESSION %-12s %-40s %+8.1f%%\n" section what
              delta
          end;
          Hashtbl.replace per_section section
            ( cnt + 1,
              (reg + if is_reg then 1 else 0),
              Float.max worst delta,
              (if delta > worst then what else worst_what) )
      | _ -> ())
    new_records;
  let sections =
    List.sort_uniq compare
      (Hashtbl.fold (fun s _ acc -> s :: acc) per_section [])
  in
  Report.Table.print
    ~headers:[ "section"; "points"; "regressions"; "worst delta"; "at" ]
    (List.map
       (fun s ->
         let cnt, reg, worst, what = Hashtbl.find per_section s in
         [
           s;
           string_of_int cnt;
           string_of_int reg;
           Printf.sprintf "%+.1f%%" worst;
           what;
         ])
       sections);
  Printf.printf
    "%d comparable point(s); %d regression(s) past %.1f%% (negative deltas \
     are improvements)\n"
    !matched !regressions threshold;
  if !matched = 0 then
    print_endline
      "warning: no comparable points — sections, sizes or names differ \
       between the two runs";
  !regressions

(* Saves a series as CSV (under --csv) and records every point for
   --json.  [kind] says what the series' floats are: seconds (recorded
   as median_ns) or bytes (recorded as allocs). *)
let save_csv ?(kind = `Seconds) ?(record = true) cfg name series =
  if record then
    List.iter
      (fun sname ->
        List.iter
          (fun x ->
            match Report.Series.get series ~x ~series:sname with
            | None -> ()
            | Some v ->
                let median_ns, allocs =
                  match kind with
                  | `Seconds ->
                      ( Some (v *. 1e9),
                        Hashtbl.find_opt alloc_notes (name, sname, x) )
                  | `Bytes -> (None, Some v)
                in
                record_point ~section:name ~name:sname ~n:x ~algorithm:sname
                  ?median_ns ?allocs ())
          (Report.Series.x_values series))
      (Report.Series.series_names series);
  match cfg.csv_dir with
  | None -> ()
  | Some dir ->
      mkdir_p dir;
      let path = Filename.concat dir (name ^ ".csv") in
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Report.Series.to_csv series));
      Printf.printf "(csv written to %s)\n" path

(* ------------------------------------------------------------------ *)
(* Measurement helpers                                                 *)
(* ------------------------------------------------------------------ *)

(* CPU seconds per evaluation; repeats the run until at least 0.1s has
   accumulated so that fast points are still resolvable. *)
let time_run f =
  let rec go reps =
    let t0 = Sys.time () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = Sys.time () -. t0 in
    if dt >= 0.1 || reps >= 4096 then dt /. float_of_int reps else go (reps * 2)
  in
  go 1

let sizes cfg =
  List.filter (fun n -> n <= cfg.max_size) Workload.Spec.table3_sizes

(* Least-squares slope of log t against log n — the empirical complexity
   exponent of a series. *)
let log_slope points =
  match points with
  | _ :: _ :: _ ->
      let xs = List.map (fun (n, _) -> log (float_of_int n)) points in
      let ys = List.map (fun (_, t) -> log t) points in
      let k = float_of_int (List.length points) in
      let sx = List.fold_left ( +. ) 0. xs
      and sy = List.fold_left ( +. ) 0. ys in
      let sxx = List.fold_left (fun a x -> a +. (x *. x)) 0. xs in
      let sxy = List.fold_left2 (fun a x y -> a +. (x *. y)) 0. xs ys in
      Some (((k *. sxy) -. (sx *. sy)) /. ((k *. sxx) -. (sx *. sx)))
  | _ -> None

let slope_note series name =
  let points =
    List.filter_map
      (fun x ->
        Option.map (fun t -> (x, t)) (Report.Series.get series ~x ~series:name))
      (Report.Series.x_values series)
  in
  match log_slope (List.filter (fun (_, t) -> t > 0.) points) with
  | Some s -> Printf.printf "  empirical complexity %-28s ~ n^%.2f\n" name s
  | None -> ()

let ratio_note series a b =
  let xs =
    List.filter
      (fun x ->
        Option.is_some (Report.Series.get series ~x ~series:a)
        && Option.is_some (Report.Series.get series ~x ~series:b))
      (Report.Series.x_values series)
  in
  match List.rev xs with
  | x :: _ ->
      let va = Option.get (Report.Series.get series ~x ~series:a) in
      let vb = Option.get (Report.Series.get series ~x ~series:b) in
      if vb > 0. then
        Printf.printf "  %s / %s at n=%d: %.1fx\n" a b x (va /. vb)
  | [] -> ()

(* Workload construction shared across figures. *)

let spec ~n ~long ~seed =
  Workload.Spec.make ~n ~long_lived_fraction:long ~seed ()

let count_data arr = Array.to_seq (Array.map (fun (iv, _) -> (iv, ())) arr)

let eval_time algorithm arr =
  time_run (fun () ->
      Tempagg.Engine.eval algorithm Tempagg.Monoid.count (count_data arr))

let eval_bytes algorithm arr =
  let _, stats =
    Tempagg.Engine.eval_with_stats algorithm Tempagg.Monoid.count
      (count_data arr)
  in
  float_of_int stats.Tempagg.Instrument.peak_bytes

(* Record a time point and its allocations in one go: the timing loop
   stays uninstrumented (comparable with earlier result files), and one
   extra instrumented evaluation supplies the bytes for the JSON row. *)
let eval_timed ~section ~n add name algorithm arr =
  add name (eval_time algorithm arr);
  note_allocs ~section ~name ~n (eval_bytes algorithm arr)

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  banner "table1" "COUNT over the Employed relation (paper Table 1)";
  let catalog = Tsql.Catalog.with_builtins () in
  print_endline "SELECT COUNT(Name) FROM Employed";
  (match Tsql.Eval.query catalog "SELECT COUNT(Name) FROM Employed" with
  | Ok result -> Tsql.Pretty.print_result result
  | Error msg -> prerr_endline msg);
  print_endline
    "paper: [0,6]:0 [7,7]:1 [8,12]:2 [13,17]:1 [18,20]:3 [21,21]:2 [22,oo]:1"

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  banner "table2"
    "k-ordered-percentage examples, n=10000 k=100 (paper Table 2)";
  let n = 10_000 and k = 100 in
  let sorted = Array.init n Fun.id in
  let pct a = Ordering.Korder.percentage ~compare:Int.compare ~k a in
  let rows =
    [
      ("the tuples are sorted", sorted);
      ( "2 tuples 100 places apart are swapped",
        Ordering.Perturb.realize_displacements [ (100, 2) ] sorted );
      ( "20 tuples are 100 places from being sorted",
        Ordering.Perturb.realize_displacements [ (100, 20) ] sorted );
      ( "1 tuple i places out of order, for each i=1..100",
        Ordering.Perturb.realize_displacements
          (List.init 100 (fun i -> (i + 1, 1)))
          sorted );
      ( "10 tuples i places out of order, for each i=1..100",
        Ordering.Perturb.realize_displacements
          (List.init 100 (fun i -> (i + 1, 10)))
          sorted );
    ]
  in
  Report.Table.print
    ~headers:[ "k-ordered-percentage"; "explanation" ]
    (List.map (fun (expl, a) -> [ Printf.sprintf "%.5g" (pct a); expl ]) rows);
  print_endline "paper: 0, 0.0002, 0.002, 0.00505, 0.0505"

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

let table3 cfg =
  banner "table3" "test parameters (paper Table 3)";
  Report.Table.print
    ~headers:[ "parameter"; "paper values"; "this run" ]
    [
      [ "k-ordered-percentage"; "0.02, 0.08, 0.14"; "same" ];
      [ "long-lived tuples"; "0%, 40%, 80%"; "same" ];
      [
        "relation size (tuples)";
        "1K..64K";
        Printf.sprintf "1K..%dK (quadratic algorithms capped at %dK)"
          (cfg.max_size / 1024) (cfg.cap_quadratic / 1024);
      ];
      [ "relation lifespan"; "1M instants"; "same" ];
      [ "short-lived duration"; "1..1000 instants"; "same" ];
      [ "long-lived duration"; "20%..80% of lifespan"; "same" ];
      [ "k (Figures 7-9)"; "4, 40, 400"; "same" ];
      [ "seeds per point"; "several"; Printf.sprintf "%d" cfg.repeats ];
    ]

(* ------------------------------------------------------------------ *)
(* Figure 6: time on unordered relations                               *)
(* ------------------------------------------------------------------ *)

(* Accumulates a mean over seeds incrementally. *)
let add_mean cfg series ~x ~name v =
  let prev =
    Option.value (Report.Series.get series ~x ~series:name) ~default:0.
  in
  Report.Series.add series ~x ~series:name
    (prev +. (v /. float_of_int cfg.repeats))

let fig6 cfg =
  banner "fig6" "CPU time on randomly ordered relations (paper Figure 6)";
  let series =
    Report.Series.create ~title:"Figure 6" ~x_label:"tuples"
      ~unit_label:"seconds per evaluation"
  in
  List.iter
    (fun n ->
      List.iter
        (fun seed ->
          let add name v = add_mean cfg series ~x:n ~name v in
          let timed = eval_timed ~section:"fig6" ~n add in
          let full_walk_timed name data =
            add name
              (time_run (fun () ->
                   Tempagg.Linked_list.eval ~full_walk:true
                     Tempagg.Monoid.count (count_data data)));
            let inst = Tempagg.Instrument.create () in
            ignore
              (Tempagg.Linked_list.eval ~instrument:inst ~full_walk:true
                 Tempagg.Monoid.count (count_data data));
            note_allocs ~section:"fig6" ~name ~n
              (float_of_int (Tempagg.Instrument.peak_bytes inst))
          in
          List.iter
            (fun long ->
              let data =
                Workload.Generate.random_intervals (spec ~n ~long ~seed)
              in
              timed
                (Printf.sprintf "tree %.0f%%" (long *. 100.))
                Tempagg.Engine.Aggregation_tree data;
              if long = 0. then begin
                if n <= cfg.cap_quadratic then begin
                  timed "linked-list" Tempagg.Engine.Linked_list data;
                  full_walk_timed "list full-walk" data
                end;
                timed "two-scan (prior work)" Tempagg.Engine.Two_scan data;
                timed "balanced (ext)" Tempagg.Engine.Balanced_tree data
              end;
              if long = 0.8 && n <= cfg.cap_quadratic then begin
                timed "linked-list 80%" Tempagg.Engine.Linked_list data;
                (* The paper's full-walk list variant is insensitive to
                   long-lived tuples; measure it for the fidelity note. *)
                full_walk_timed "list full-walk 80%" data
              end)
            Workload.Spec.table3_long_lived)
        (List.init cfg.repeats (fun i -> i + 1)))
    (sizes cfg);
  Report.Series.print series;
  save_csv cfg "fig6" series;
  print_endline
    "shape checks (paper: linked list up to ~300x slower at 64K; tree and \
     list insensitive to long-lived %):";
  ratio_note series "linked-list" "tree 0%";
  ratio_note series "linked-list 80%" "linked-list";
  ratio_note series "list full-walk 80%" "list full-walk";
  ratio_note series "tree 80%" "tree 0%";
  slope_note series "tree 0%";
  slope_note series "linked-list"

(* ------------------------------------------------------------------ *)
(* Figures 7 and 8: time on (almost) ordered relations                 *)
(* ------------------------------------------------------------------ *)

let fig_ordered cfg ~name ~long ~paper_note =
  banner name
    (Printf.sprintf
       "CPU time on ordered/k-ordered relations, %.0f%% long-lived (paper %s)"
       (long *. 100.)
       (if name = "fig7" then "Figure 7" else "Figure 8"));
  let series =
    Report.Series.create ~title:name ~x_label:"tuples"
      ~unit_label:"seconds per evaluation"
  in
  List.iter
    (fun n ->
      List.iter
        (fun seed ->
          let add nm v = add_mean cfg series ~x:n ~name:nm v in
          let timed = eval_timed ~section:name ~n add in
          let sp = spec ~n ~long ~seed in
          let sorted = Workload.Generate.sorted_intervals sp in
          if n <= cfg.cap_quadratic then begin
            timed "linked-list" Tempagg.Engine.Linked_list sorted;
            timed "tree (sorted)" Tempagg.Engine.Aggregation_tree sorted
          end;
          timed "ktree k=1 (sorted)"
            (Tempagg.Engine.Korder_tree { k = 1 })
            sorted;
          List.iter
            (fun k ->
              if k < n then
                let data =
                  Workload.Generate.k_ordered_intervals ~k ~percentage:0.02 sp
                in
                timed
                  (Printf.sprintf "ktree k=%d" k)
                  (Tempagg.Engine.Korder_tree { k })
                  data)
            Workload.Spec.table3_k)
        (List.init cfg.repeats (fun i -> i + 1)))
    (sizes cfg);
  Report.Series.print series;
  save_csv cfg name series;
  Printf.printf "shape checks (paper: %s):\n" paper_note;
  ratio_note series "tree (sorted)" "ktree k=1 (sorted)";
  ratio_note series "linked-list" "ktree k=1 (sorted)";
  ratio_note series "ktree k=400" "ktree k=4";
  slope_note series "tree (sorted)";
  slope_note series "ktree k=1 (sorted)"

let fig7 cfg =
  fig_ordered cfg ~name:"fig7" ~long:0.
    ~paper_note:
      "plain tree degenerates towards O(n^2); smaller k is faster; ktree \
       k=1 on sorted input is best"

let fig8 cfg =
  fig_ordered cfg ~name:"fig8" ~long:0.8
    ~paper_note:
      "long-lived tuples slow the ktree (end-time nodes live longer before \
       gc), leave the linked list unchanged, and make the plain tree \
       bushier (faster than its 0%-long-lived sorted worst case)"

(* ------------------------------------------------------------------ *)
(* Figure 9: memory                                                    *)
(* ------------------------------------------------------------------ *)

let fig_memory cfg ~name ~long ~paper_note =
  banner name
    (Printf.sprintf "peak algorithm memory, %.0f%% long-lived (paper %s)"
       (long *. 100.)
       (if name = "fig9" then "Figure 9" else "Section 6.2 prose"));
  let series =
    Report.Series.create ~title:name ~x_label:"tuples"
      ~unit_label:"peak bytes of algorithm state (16B/node model)"
  in
  List.iter
    (fun n ->
      let sp = spec ~n ~long ~seed:1 in
      let sorted = Workload.Generate.sorted_intervals sp in
      let add nm v = Report.Series.add series ~x:n ~series:nm v in
      if n <= cfg.cap_quadratic then
        add "linked-list" (eval_bytes Tempagg.Engine.Linked_list sorted);
      let random = Workload.Generate.random_intervals sp in
      add "tree" (eval_bytes Tempagg.Engine.Aggregation_tree random);
      add "ktree k=1 (sorted)"
        (eval_bytes (Tempagg.Engine.Korder_tree { k = 1 }) sorted);
      List.iter
        (fun k ->
          if k < n then
            let data =
              Workload.Generate.k_ordered_intervals ~k ~percentage:0.02 sp
            in
            add
              (Printf.sprintf "ktree k=%d" k)
              (eval_bytes (Tempagg.Engine.Korder_tree { k }) data))
        Workload.Spec.table3_k)
    (sizes cfg);
  Report.Series.print series;
  save_csv ~kind:`Bytes cfg name series;
  Printf.printf "shape checks (paper: %s):\n" paper_note;
  ratio_note series "tree" "linked-list";
  ratio_note series "tree" "ktree k=1 (sorted)";
  ratio_note series "ktree k=400" "ktree k=4"

let fig9 cfg =
  fig_memory cfg ~name:"fig9" ~long:0.
    ~paper_note:
      "tree needs the most memory (2 nodes per unique timestamp); smaller \
       k collects sooner; ktree k=1 on sorted input is minimal"

let fig9_longlived cfg =
  fig_memory cfg ~name:"fig9_longlived" ~long:0.8
    ~paper_note:
      "long-lived tuples leave list and tree memory unchanged but inflate \
       the k-ordered tree (end-time nodes stay uncollected much longer)"

(* ------------------------------------------------------------------ *)
(* Sweep: flat delta-sweep and divide-and-conquer over domains         *)
(* ------------------------------------------------------------------ *)

let sweep_bench cfg =
  banner "sweep"
    "flat delta-sweep vs the 1995 trees; divide-and-conquer over domains";
  let series =
    Report.Series.create ~title:"sweep" ~x_label:"tuples"
      ~unit_label:"seconds per evaluation"
  in
  let ns = match sizes cfg with [] -> [ cfg.max_size ] | l -> l in
  List.iter
    (fun n ->
      List.iter
        (fun seed ->
          let add nm v = add_mean cfg series ~x:n ~name:nm v in
          let timed = eval_timed ~section:"sweep" ~n add in
          let sp = spec ~n ~long:0. ~seed in
          let random = Workload.Generate.random_intervals sp in
          let sorted = Workload.Generate.sorted_intervals sp in
          timed "sweep (count)" Tempagg.Engine.Sweep random;
          timed "tree (count)" Tempagg.Engine.Aggregation_tree random;
          timed "ktree k=1 (sorted)"
            (Tempagg.Engine.Korder_tree { k = 1 })
            sorted;
          (* MIN has no inverse, so the sweep cannot cancel deltas and
             falls back to its flat segment tree over the constant-
             interval buckets — measurably slower than the count path. *)
          add "sweep (min: re-combine)"
            (time_run (fun () ->
                 Tempagg.Engine.eval Tempagg.Engine.Sweep
                   (Tempagg.Monoid.minimum ~compare:Int.compare)
                   (Array.to_seq random)));
          let _, min_stats =
            Tempagg.Engine.eval_with_stats Tempagg.Engine.Sweep
              (Tempagg.Monoid.minimum ~compare:Int.compare)
              (Array.to_seq random)
          in
          note_allocs ~section:"sweep" ~name:"sweep (min: re-combine)" ~n
            (float_of_int min_stats.Tempagg.Instrument.peak_bytes))
        (List.init cfg.repeats (fun i -> i + 1)))
    ns;
  (* Domain scaling at the largest size.  Honest caveat: speedup needs
     real cores; on a single-CPU host the parallel variants only add
     sharding and merge overhead. *)
  let n = cfg.max_size in
  let random = Workload.Generate.random_intervals (spec ~n ~long:0. ~seed:1) in
  let parallel_rows =
    List.map
      (fun d ->
        let algorithm =
          if d = 1 then Tempagg.Engine.Sweep
          else
            Tempagg.Engine.Parallel
              { domains = d; inner = Tempagg.Engine.Sweep }
        in
        let t = eval_time algorithm random in
        Report.Series.add series ~x:n
          ~series:(Printf.sprintf "parallel d=%d (count)" d)
          t;
        note_allocs ~section:"sweep"
          ~name:(Printf.sprintf "parallel d=%d (count)" d)
          ~n (eval_bytes algorithm random);
        [
          string_of_int d;
          Tempagg.Engine.name algorithm;
          Printf.sprintf "%.4f" t;
        ])
      [ 1; 2; 4 ]
  in
  Report.Series.print series;
  Printf.printf
    "domain scaling at n = %d, COUNT on random input (%d core(s) online):\n" n
    (Domain.recommended_domain_count ());
  Report.Table.print ~headers:[ "domains"; "algorithm"; "seconds" ]
    parallel_rows;
  save_csv cfg "sweep" series;
  print_endline
    "shape checks (expected: sweep beats the tree on invertible COUNT; the \
     min fallback gives part of that back; parallel helps only with >1 \
     core):";
  ratio_note series "tree (count)" "sweep (count)";
  ratio_note series "sweep (min: re-combine)" "sweep (count)";
  ratio_note series "parallel d=4 (count)" "parallel d=1 (count)";
  slope_note series "sweep (count)";
  slope_note series "tree (count)"

(* ------------------------------------------------------------------ *)
(* Live views: incremental maintenance vs re-evaluation                *)
(* ------------------------------------------------------------------ *)

(* The live subsystem's headline claim: keeping a materialized aggregate
   timeline patched under writes beats re-running a batch evaluation per
   query, across read/write mixes.  Both strategies serve the same
   deterministic trace (inserts, deletes, point and range queries); the
   re-evaluation baseline keeps the tuple set and runs a fresh
   [Engine.eval Sweep] for every query, which is what a view-less system
   does.  Per-op cost is wall-averaged over the trace, so the trace
   lengths differ per strategy (re-evaluation is orders of magnitude
   slower per query; a long trace would take hours at 100K tuples). *)
let live_bench cfg =
  banner "live"
    "live views: incremental maintenance vs re-evaluation per query";
  let n = if cfg.smoke then min 4_096 (max 256 (4 * cfg.max_size)) else 100_000 in
  let series =
    Report.Series.create ~title:"live" ~x_label:"writes per 1000 ops"
      ~unit_label:"seconds per operation"
  in
  let trace_for ~write_ratio ~length =
    Workload.Generate.trace
      (Workload.Spec.ops
         ~insert_ratio:(write_ratio /. 2.)
         ~delete_ratio:(write_ratio /. 2.)
         ~base:(Workload.Spec.make ~n:(max n 1) ~seed:1 ())
         ~initial:n ~length ())
  in
  (* Replays the trace against one live view; queries read the
     materialized timeline in place. *)
  let run_incremental initial ops =
    let view = Live.View.create Tempagg.Monoid.count in
    let handles : (int, Live.View.handle) Hashtbl.t =
      Hashtbl.create (Array.length initial * 2)
    in
    let loaded =
      Live.View.load view
        (Array.to_seq (Array.map (fun (iv, _) -> (iv, ())) initial))
    in
    List.iteri (fun id h -> Hashtbl.replace handles id h) loaded;
    let next_id = ref (Array.length initial) in
    let t0 = Sys.time () in
    Array.iter
      (fun op ->
        match op with
        | Workload.Generate.Insert (iv, _) ->
            Hashtbl.replace handles !next_id (Live.View.insert view iv ());
            incr next_id
        | Workload.Generate.Delete id ->
            ignore (Live.View.delete view (Hashtbl.find handles id));
            Hashtbl.remove handles id
        | Workload.Generate.Query_point c ->
            ignore (Sys.opaque_identity (Live.View.value_at view c))
        | Workload.Generate.Query_range iv ->
            ignore (Sys.opaque_identity (Live.View.range view iv)))
      ops;
    (Sys.time () -. t0) /. float_of_int (Array.length ops)
  in
  (* The baseline: same trace, but every query re-evaluates the whole
     surviving tuple set from scratch with the fastest batch algorithm. *)
  let run_reeval initial ops =
    let tuples : (int, Interval.t) Hashtbl.t =
      Hashtbl.create (Array.length initial * 2)
    in
    Array.iteri (fun id (iv, _) -> Hashtbl.replace tuples id iv) initial;
    let next_id = ref (Array.length initial) in
    let batch () =
      Tempagg.Engine.eval Tempagg.Engine.Sweep Tempagg.Monoid.count
        (Seq.map (fun (_, iv) -> (iv, ())) (Hashtbl.to_seq tuples))
    in
    let t0 = Sys.time () in
    Array.iter
      (fun op ->
        match op with
        | Workload.Generate.Insert (iv, _) ->
            Hashtbl.replace tuples !next_id iv;
            incr next_id
        | Workload.Generate.Delete id -> Hashtbl.remove tuples id
        | Workload.Generate.Query_point c ->
            ignore (Sys.opaque_identity (Timeline.value_at (batch ()) c))
        | Workload.Generate.Query_range iv ->
            ignore (Sys.opaque_identity (Timeline.clip (batch ()) iv)))
      ops;
    (Sys.time () -. t0) /. float_of_int (Array.length ops)
  in
  let headline = ref None in
  List.iter
    (fun write_ratio ->
      let x = int_of_float ((write_ratio *. 1000.) +. 0.5) in
      let inc_len = if cfg.smoke then 2_000 else 20_000 in
      let re_len = if cfg.smoke then 40 else 200 in
      let initial_i, ops_i = trace_for ~write_ratio ~length:inc_len in
      let t_inc = run_incremental initial_i ops_i in
      let initial_r, ops_r = trace_for ~write_ratio ~length:re_len in
      let t_re = run_reeval initial_r ops_r in
      Report.Series.add series ~x ~series:"incremental view" t_inc;
      Report.Series.add series ~x ~series:"re-evaluate per query" t_re;
      record_point ~section:"live"
        ~name:(Printf.sprintf "w=%.3f" write_ratio)
        ~n ~algorithm:"incremental" ~median_ns:(t_inc *. 1e9) ();
      record_point ~section:"live"
        ~name:(Printf.sprintf "w=%.3f" write_ratio)
        ~n ~algorithm:"reeval" ~median_ns:(t_re *. 1e9) ();
      if write_ratio = 0.01 then headline := Some (t_inc, t_re))
    [ 0.001; 0.01; 0.1; 0.5 ];
  Printf.printf "n = %d preloaded tuples, COUNT, mixed trace (writes split \
                 evenly between insert and delete)\n" n;
  Report.Series.print series;
  (* The per-point records above carry the real n and write ratio; the
     generic series dump would mislabel the ratio as n. *)
  save_csv ~record:false cfg "live" series;
  (match !headline with
  | Some (t_inc, t_re) when t_inc > 0. ->
      Printf.printf
        "headline (1%% writes, n=%d): incremental %.0f ns/op vs \
         re-evaluation %.0f ns/op -> %.0fx (bar: >= 5x)\n"
        n (t_inc *. 1e9) (t_re *. 1e9) (t_re /. t_inc)
  | _ -> ());
  print_endline
    "expectation: incremental maintenance patches O(log n + c) segments \
     per write and answers queries from the materialized timeline, so it \
     wins by orders of magnitude whenever reads are common; re-evaluation \
     narrows the gap only as the mix approaches write-only"

(* ------------------------------------------------------------------ *)
(* Optimizer (Section 6.3)                                             *)
(* ------------------------------------------------------------------ *)

let optimizer () =
  banner "optimizer" "query-optimizer strategy rules (paper Section 6.3)";
  let base = Tempagg.Optimizer.default_metadata ~cardinality:65_536 in
  let cases =
    [
      ("unordered, memory available", base);
      ( "unordered, 1MB budget",
        { base with Tempagg.Optimizer.memory_budget = Some 1_000_000 } );
      ("sorted by time", { base with Tempagg.Optimizer.time_ordered = true });
      ( "retroactively bounded k=40",
        { base with Tempagg.Optimizer.retroactive_bound = Some 40 } );
      ( "few constant intervals (365)",
        { base with Tempagg.Optimizer.expected_constant_intervals = Some 365 }
      );
    ]
  in
  Report.Table.print
    ~headers:[ "situation"; "chosen algorithm"; "sort?" ]
    (List.map
       (fun (what, md) ->
         let c = Tempagg.Optimizer.choose md in
         [
           what;
           Tempagg.Engine.name c.Tempagg.Optimizer.algorithm;
           (if c.Tempagg.Optimizer.sort_first then "yes" else "no");
         ])
       cases)

(* ------------------------------------------------------------------ *)
(* Paired overhead measurement                                         *)
(* ------------------------------------------------------------------ *)

(* Paired comparison over interleaved, compacted rounds: every round
   measures all variants back-to-back and the overhead is the median of
   the per-round ratios against that round's baseline.  Pairing within
   a round cancels the slow drift in GC/allocator state that
   independent measurement blocks pick up, which at these run times
   dwarfs the few percent being resolved here.  Used by the guard and
   obs sections, both of which defend a <3% "disarmed is free" bar. *)
let paired_rounds = 7

(* A steadier timer than the global [time_run]: a rep count calibrated
   once per workload (so every variant runs the same number of times —
   adaptive counts can settle on different powers of two for variants
   of near-identical cost, which skews their GC interaction) and enough
   accumulation per measurement (0.25s) to average GC pacing down to
   where a 3% bar is resolvable. *)
let paired_calibrate f =
  let rec go reps =
    let t0 = Sys.time () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    if Sys.time () -. t0 >= 0.25 || reps >= 16_384 then reps else go (reps * 2)
  in
  go 1

let paired_timed reps f =
  let t0 = Sys.time () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Sys.time () -. t0) /. float_of_int reps

let paired_median a =
  let s = Array.copy a in
  Array.sort compare s;
  s.(Array.length s / 2)

(* Returns, per variant, (median seconds, median overhead vs the first
   variant in the same round, in percent). *)
let measure_paired fns =
  let k = List.length fns in
  let rounds = paired_rounds in
  let reps = paired_calibrate (List.hd fns) in
  let times = Array.make_matrix k rounds infinity in
  for r = 0 to rounds - 1 do
    List.iteri
      (fun i f ->
        Gc.compact ();
        times.(i).(r) <- paired_timed reps f)
      fns
  done;
  List.mapi
    (fun i _ ->
      let ratios = Array.init rounds (fun r -> times.(i).(r) /. times.(0).(r)) in
      (paired_median times.(i), (paired_median ratios -. 1.) *. 100.))
    fns

(* ------------------------------------------------------------------ *)
(* Guard overhead                                                      *)
(* ------------------------------------------------------------------ *)

(* The guard must cost nothing when disarmed: with no limits configured
   [Guard.wrap_seq] is the identity and [Guard.hook] is [None], so the
   uninstrumented happy path — plain eval through a disarmed guard —
   must stay within measurement noise (<3%) of bare eval.  An armed
   guard pays one masked compare per tuple and per node allocation, and
   the [eval_robust] entry point additionally materializes the input
   once so retries can replay ephemeral sequences; both are reported as
   context, but only the disarmed row carries the bar. *)
let guard_bench cfg =
  banner "guard" "resource-guard overhead on the happy path";
  let n = min cfg.max_size 16_384 in
  let sp = spec ~n ~long:0. ~seed:1 in
  let random = Workload.Generate.random_intervals sp in
  let sorted = Workload.Generate.sorted_intervals sp in
  let rounds = paired_rounds in
  let cases =
    [
      ("tree, random input", Tempagg.Engine.Aggregation_tree, random);
      ("sweep, random input", Tempagg.Engine.Sweep, random);
      ("ktree k=1, sorted input", Tempagg.Engine.Korder_tree { k = 1 }, sorted);
    ]
  in
  let worst_disarmed = ref neg_infinity in
  let rows =
    List.map
      (fun (what, algorithm, arr) ->
        let disarmed_guard = Tempagg.Guard.create () in
        let variants =
          [
            (fun () ->
              Tempagg.Engine.eval algorithm Tempagg.Monoid.count
                (count_data arr));
            (fun () ->
              Tempagg.Engine.eval algorithm Tempagg.Monoid.count
                (Tempagg.Guard.wrap_seq disarmed_guard (count_data arr)));
            (fun () ->
              let g =
                Tempagg.Guard.create ~memory_budget:max_int ~deadline_ms:1e9 ()
              in
              let inst =
                Tempagg.Instrument.create
                  ~node_bytes:(Tempagg.Engine.node_bytes algorithm)
                  ()
              in
              Tempagg.Guard.attach g inst;
              Tempagg.Engine.eval ~instrument:inst algorithm
                Tempagg.Monoid.count
                (Tempagg.Guard.wrap_seq g (count_data arr)));
            (fun () ->
              match
                Tempagg.Engine.eval_robust algorithm Tempagg.Monoid.count
                  (count_data arr)
              with
              | Ok (tl, []) -> tl
              | Ok (_, _ :: _) -> failwith "guard bench: unexpected degradation"
              | Error e -> failwith (Tempagg.Engine.error_to_string e));
          ]
        in
        match measure_paired variants with
        | [ (plain, _); disarmed; armed; robust ] ->
            let cell (t, pct) = Printf.sprintf "%.4f (%+.1f%%)" t pct in
            worst_disarmed := Float.max !worst_disarmed (snd disarmed);
            [
              what;
              Printf.sprintf "%.4f" plain;
              cell disarmed;
              cell armed;
              cell robust;
            ]
        | _ -> assert false)
      cases
  in
  Printf.printf
    "n = %d tuples, COUNT, seconds per evaluation (median of %d paired \
     rounds)\n"
    n rounds;
  Report.Table.print
    ~headers:
      [ "workload"; "bare eval"; "disarmed guard"; "armed guard";
        "eval_robust" ]
    rows;
  Printf.printf
    "worst disarmed-guard overhead: %+.1f%% (bar: within noise, < 3%%)\n"
    !worst_disarmed;
  print_endline
    "expectation: a disarmed guard is free (wrap_seq is the identity, no \
     hook installed); arming it costs a masked compare per tuple and per \
     node; eval_robust adds one up-front materialization pass so retries \
     can replay a single-pass input"

(* ------------------------------------------------------------------ *)
(* Observability overhead + artifacts                                  *)
(* ------------------------------------------------------------------ *)

(* Writes the observability artifacts next to the --json output: an
   armed Chrome trace of a Parallel sweep (BENCH_trace.json — load it
   in about://tracing or Perfetto, one row per domain) and a Prometheus
   exposition of a profiled run (BENCH_metrics.txt). *)
let write_obs_artifacts cfg =
  match cfg.json with
  | None -> ()
  | Some json_path ->
      let dir = Filename.dirname json_path in
      if dir <> "." then mkdir_p dir;
      let n = min cfg.max_size 16_384 in
      let sp = spec ~n ~long:0. ~seed:1 in
      let random = Workload.Generate.random_intervals sp in
      (* Trace: one armed Parallel run, one shard span per domain. *)
      Obs.Trace.arm ();
      ignore
        (Tempagg.Engine.eval
           (Tempagg.Engine.Parallel { domains = 4; inner = Tempagg.Engine.Sweep })
           Tempagg.Monoid.count (count_data random));
      Obs.Trace.disarm ();
      let trace_path = Filename.concat dir "BENCH_trace.json" in
      Out_channel.with_open_text trace_path (fun oc ->
          output_string oc (Obs.Trace.export_chrome ()));
      Printf.printf "(trace written to %s: %d spans)\n" trace_path
        (List.length (Obs.Trace.spans ()));
      (* Metrics: a profiled robust run folded into a registry. *)
      let registry = Obs.Metrics.create () in
      let profile = Obs.Profile.create () in
      (match
         Tempagg.Engine.eval_robust ~profile Tempagg.Engine.Sweep
           Tempagg.Monoid.count (count_data random)
       with
      | Ok (_, degradations) ->
          Tempagg.Engine.degradations_to_metrics registry degradations
      | Error _ -> ());
      Obs.Profile.to_metrics registry profile;
      let metrics_path = Filename.concat dir "BENCH_metrics.txt" in
      Out_channel.with_open_text metrics_path (fun oc ->
          output_string oc (Obs.Metrics.expose registry));
      Printf.printf "(metrics written to %s)\n" metrics_path

(* Tracing must cost nothing when off: an instrumented hot path —
   [Engine.eval] over the sweep — checks two atomic flags and otherwise
   calls straight through, so with both sinks off (disarmed, ring
   capacity 0) it must stay within measurement noise (<3%) of calling
   [Sweep.eval] directly.  The always-on flight recorder (disarmed,
   default ring capacity) carries the same bar: it adds one bounded
   ring append per span, and the server leaves it on for every request,
   so it cannot be allowed an arm/disarm-style cliff.  The armed column
   (unbounded span record per eval, incl. the arm/disarm pair the
   closure performs to keep buffers from accumulating) is context, not
   a bar. *)
let obs_bench cfg =
  banner "obs" "tracing and flight-recorder overhead on the sweep hot path";
  let n = min cfg.max_size 16_384 in
  let sp = spec ~n ~long:0. ~seed:1 in
  let random = Workload.Generate.random_intervals sp in
  let sorted = Workload.Generate.sorted_intervals sp in
  let worst_disarmed = ref neg_infinity in
  let worst_recorder = ref neg_infinity in
  let rows =
    List.map
      (fun (what, arr) ->
        let variants =
          [
            (fun () -> Tempagg.Sweep.eval Tempagg.Monoid.count (count_data arr));
            (fun () ->
              (* Idempotence guard: only the first rep after a variant
                 switch pays the resize, not every timed iteration. *)
              if Obs.Trace.ring_capacity_now () <> 0 then
                Obs.Trace.set_ring_capacity 0;
              Tempagg.Engine.eval Tempagg.Engine.Sweep Tempagg.Monoid.count
                (count_data arr));
            (fun () ->
              if Obs.Trace.ring_capacity_now () <> 2048 then
                Obs.Trace.set_ring_capacity 2048;
              Tempagg.Engine.eval Tempagg.Engine.Sweep Tempagg.Monoid.count
                (count_data arr));
            (fun () ->
              if Obs.Trace.ring_capacity_now () <> 0 then
                Obs.Trace.set_ring_capacity 0;
              Obs.Trace.arm ();
              let r =
                Tempagg.Engine.eval Tempagg.Engine.Sweep Tempagg.Monoid.count
                  (count_data arr)
              in
              Obs.Trace.disarm ();
              r);
          ]
        in
        let result = measure_paired variants in
        Obs.Trace.set_ring_capacity 2048;
        match result with
        | [ (plain, _); disarmed; recorder; armed ] ->
            let cell (t, pct) = Printf.sprintf "%.4f (%+.1f%%)" t pct in
            worst_disarmed := Float.max !worst_disarmed (snd disarmed);
            worst_recorder := Float.max !worst_recorder (snd recorder);
            record_point ~section:"obs" ~name:what ~n ~algorithm:"sweep"
              ~median_ns:(plain *. 1e9)
              ~allocs:(eval_bytes Tempagg.Engine.Sweep arr) ();
            [
              what;
              Printf.sprintf "%.4f" plain;
              cell disarmed;
              cell recorder;
              cell armed;
            ]
        | _ -> assert false)
      [ ("sweep, random input", random); ("sweep, sorted input", sorted) ]
  in
  Printf.printf
    "n = %d tuples, COUNT, seconds per evaluation (median of %d paired \
     rounds)\n"
    n paired_rounds;
  Report.Table.print
    ~headers:
      [
        "workload"; "bare Sweep.eval"; "tracing off"; "recorder on";
        "armed trace";
      ]
    rows;
  Printf.printf
    "worst tracing-off overhead:       %+.1f%% (bar: within noise, < 3%%)\n"
    !worst_disarmed;
  Printf.printf
    "worst always-on-recorder overhead: %+.1f%% (bar: within noise, < 3%%)\n"
    !worst_recorder;
  print_endline
    "expectation: with both sinks off an eval costs two atomic loads; the \
     always-on recorder adds one bounded ring append per span (one span per \
     eval here); armed tracing records into unbounded buffers (plus the \
     arm/disarm epoch bump the measurement loop performs to keep them \
     bounded)";
  write_obs_artifacts cfg

(* ------------------------------------------------------------------ *)
(* Adaptive planning overhead                                          *)
(* ------------------------------------------------------------------ *)

(* The stats-driven planner must not tax queries whose metadata was
   already right: end-to-end TSQL evaluation with [~adaptive:true]
   (statistics-store lookup + [Optimizer.choose_observed], store warmed
   by prior runs of the same query) must stay within noise (<3%) of
   [~adaptive:false] planning from declared metadata alone.  Measured on
   both a sorted and a shuffled relation so the bar covers the ktree and
   sweep plans alike.  Recording outcomes happens in both variants —
   that is unconditional by design — so the delta isolates the decision
   path. *)
let adaptive_bench cfg =
  banner "adaptive" "stats-driven planning vs declared metadata";
  let n = min cfg.max_size 8_192 in
  let sp = spec ~n ~long:0. ~seed:1 in
  let shuffled = Workload.Generate.relation sp in
  let sorted = Relation.Trel.sort_by_time shuffled in
  let sql = "SELECT COUNT(Name) FROM R" in
  (* The algorithm each variant planned, lifted off the explain text
     ("... using <algorithm>[; on error: ...]"). *)
  let planned catalog ~adaptive =
    match Tsql.Eval.explain ~adaptive catalog sql with
    | Error e -> "error: " ^ e
    | Ok text ->
        let first = List.hd (String.split_on_char '\n' text) in
        let pat = " using " in
        let plen = String.length pat in
        let rec find i =
          if i + plen > String.length first then first
          else if String.sub first i plen = pat then
            String.sub first (i + plen) (String.length first - i - plen)
          else find (i + 1)
        in
        find 0
  in
  let worst = ref neg_infinity in
  let rows =
    List.map
      (fun (what, rel) ->
        let catalog = Tsql.Catalog.add (Tsql.Catalog.create ()) "R" rel in
        let eval ~adaptive () =
          match Tsql.Eval.query ~adaptive catalog sql with
          | Ok r -> r
          | Error e -> failwith e
        in
        (* Warm the store: the steady state being defended is "adaptive
           planning with observations present". *)
        ignore (eval ~adaptive:true ());
        match
          measure_paired
            [ (fun () -> eval ~adaptive:false ());
              (fun () -> eval ~adaptive:true ()) ]
        with
        | [ (declared, _); (adaptive_t, pct) ] ->
            worst := Float.max !worst pct;
            record_point ~section:"adaptive" ~name:what ~n
              ~algorithm:"declared" ~median_ns:(declared *. 1e9) ();
            record_point ~section:"adaptive" ~name:what ~n
              ~algorithm:"adaptive" ~median_ns:(adaptive_t *. 1e9) ();
            [
              what;
              Printf.sprintf "%.4f" declared;
              Printf.sprintf "%.4f (%+.1f%%)" adaptive_t pct;
              planned catalog ~adaptive:false;
              planned catalog ~adaptive:true;
            ]
        | _ -> assert false)
      [ ("sorted input", sorted); ("shuffled input", shuffled) ]
  in
  Printf.printf
    "n = %d tuples, COUNT via TSQL, seconds per query (median of %d paired \
     rounds)\n"
    n paired_rounds;
  Report.Table.print
    ~headers:
      [ "workload"; "declared"; "adaptive"; "declared plan"; "adaptive plan" ]
    rows;
  Printf.printf
    "worst adaptive-planning overhead: %+.1f%% (bar: within noise, < 3%%)\n"
    !worst;
  print_endline
    "expectation: the adaptive path adds one store lookup and a metadata \
     merge per plan — nothing per tuple — so end-to-end cost is unchanged \
     when declared metadata was already right"

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_balanced cfg =
  banner "ablation_balanced"
    "balanced aggregation tree (paper Section 7 future work)";
  let series =
    Report.Series.create ~title:"balanced vs plain tree" ~x_label:"tuples"
      ~unit_label:"seconds per evaluation"
  in
  List.iter
    (fun n ->
      let sp = spec ~n ~long:0. ~seed:1 in
      let sorted = Workload.Generate.sorted_intervals sp in
      let random = Workload.Generate.random_intervals sp in
      let add nm v = Report.Series.add series ~x:n ~series:nm v in
      let timed = eval_timed ~section:"ablation_balanced" ~n add in
      if n <= cfg.cap_quadratic then
        timed "plain (sorted input)" Tempagg.Engine.Aggregation_tree sorted;
      timed "balanced (sorted input)" Tempagg.Engine.Balanced_tree sorted;
      timed "plain (random input)" Tempagg.Engine.Aggregation_tree random;
      timed "balanced (random input)" Tempagg.Engine.Balanced_tree random)
    (sizes cfg);
  Report.Series.print series;
  save_csv cfg "ablation_balanced" series;
  print_endline
    "expectation: balancing turns the sorted worst case from ~n^2 into \
     ~n log n at the price of rotation overhead on random input";
  slope_note series "plain (sorted input)";
  slope_note series "balanced (sorted input)";
  ratio_note series "balanced (random input)" "plain (random input)"

let ablation_span cfg =
  banner "ablation_span" "grouping by span (paper Sections 2, 6.3 and 7)";
  let n = min cfg.max_size 8_192 in
  let sp = spec ~n ~long:0. ~seed:1 in
  let data = Workload.Generate.random_intervals sp in
  let rows =
    List.map
      (fun span_len ->
        let granule =
          if span_len = 1 then Granule.instant else Granule.make span_len
        in
        let t =
          time_run (fun () ->
              Tempagg.Span.eval ~granule Tempagg.Monoid.count
                (count_data data))
        in
        let result, stats =
          Tempagg.Span.eval_with_stats ~granule Tempagg.Monoid.count
            (count_data data)
        in
        [
          string_of_int span_len;
          string_of_int (Timeline.length result);
          Printf.sprintf "%.4f" t;
          string_of_int stats.Tempagg.Instrument.peak_bytes;
        ])
      [ 1; 100; 10_000; 100_000 ]
  in
  Printf.printf "n = %d random tuples, lifespan 1M instants\n" n;
  Report.Table.print
    ~headers:[ "span length"; "result rows"; "seconds"; "peak bytes" ]
    rows;
  print_endline
    "expectation: coarser spans mean far fewer buckets — time and memory \
     drop with the result size (the paper's grouping-by-span discussion)"

(* Quantize timestamps to multiples of [g], emulating coarse granularities
   or batch-written records (fewer unique timestamps, Section 6.3). *)
let quantize_starts g data =
  Array.map
    (fun (iv, v) ->
      let s = Chronon.to_int (Interval.start iv) in
      let e = Chronon.to_int (Interval.stop iv) in
      let s' = s - (s mod g) in
      let e' = max s' (e - (e mod g)) in
      (Interval.of_ints s' e', v))
    data

let ablation_unique cfg =
  banner "ablation_unique"
    "effect of unique-timestamp density (paper Section 6.3 prose)";
  let n = min cfg.max_size 8_192 in
  let sp = spec ~n ~long:0. ~seed:1 in
  let data = Workload.Generate.random_intervals sp in
  let rows =
    List.map
      (fun g ->
        let coarse = quantize_starts g data in
        let t = eval_time Tempagg.Engine.Aggregation_tree coarse in
        let tree = eval_bytes Tempagg.Engine.Aggregation_tree coarse in
        let list_bytes =
          if n <= cfg.cap_quadratic then
            Printf.sprintf "%.0f" (eval_bytes Tempagg.Engine.Linked_list coarse)
          else "-"
        in
        [
          string_of_int g;
          Printf.sprintf "%.4f" t;
          Printf.sprintf "%.0f" tree;
          list_bytes;
        ])
      [ 1; 16; 256; 4_096 ]
  in
  Printf.printf "n = %d random tuples; timestamps rounded to multiples of g\n"
    n;
  Report.Table.print
    ~headers:
      [ "granularity g"; "tree seconds"; "tree peak bytes"; "list peak bytes" ]
    rows;
  print_endline
    "expectation: fewer unique timestamps (the student-records case) shrink \
     the state of every algorithm, especially tree and list"


(* ------------------------------------------------------------------ *)
(* Extension ablations: paged tree, page randomization, storage I/O    *)
(* ------------------------------------------------------------------ *)

let ablation_paged cfg =
  banner "ablation_paged"
    "limited-memory paged aggregation tree (paper Sections 5.1 and 7)";
  let n = min cfg.max_size 8_192 in
  let sp = spec ~n ~long:0.3 ~seed:1 in
  let data = Workload.Generate.random_intervals sp in
  let rows =
    List.map
      (fun budget ->
        let t =
          time_run (fun () ->
              Tempagg.Paged_tree.eval ~budget_nodes:budget Tempagg.Monoid.count
                (count_data data))
        in
        let _, stats =
          Tempagg.Paged_tree.eval_with_stats ~budget_nodes:budget
            Tempagg.Monoid.count (count_data data)
        in
        [
          string_of_int budget;
          Printf.sprintf "%.4f" t;
          string_of_int stats.Tempagg.Paged_tree.peak_live_nodes;
          string_of_int stats.Tempagg.Paged_tree.evictions;
          string_of_int stats.Tempagg.Paged_tree.spilled_bytes;
        ])
      [ 1_000_000; 8_192; 2_048; 512; 128 ]
  in
  Printf.printf "n = %d random tuples (30%% long-lived)\n" n;
  Report.Table.print
    ~headers:
      [ "node budget"; "seconds"; "peak live nodes"; "evictions";
        "spilled bytes" ]
    rows;
  print_endline
    "expectation: peak memory tracks the budget (within the one-region \
     replay factor); time degrades gracefully as spill traffic grows"

let ablation_pagerand cfg =
  banner "ablation_pagerand"
    "page randomization for sorted relations (paper Section 7)";
  let n = min cfg.max_size (min cfg.cap_quadratic 8_192) in
  let sp = spec ~n ~long:0. ~seed:1 in
  let sorted = Workload.Generate.sorted_intervals sp in
  let prng = Workload.Prng.create ~seed:5 in
  let randomized =
    Ordering.Perturb.page_randomized
      ~rand:(Workload.Prng.int_bounded prng)
      ~page_tuples:64 ~buffer_pages:8 sorted
  in
  let shuffled =
    Ordering.Perturb.shuffle ~rand:(Workload.Prng.int_bounded prng) sorted
  in
  let depth_of data =
    let t = Tempagg.Agg_tree.create Tempagg.Monoid.count in
    Array.iter (fun (iv, _) -> Tempagg.Agg_tree.insert t iv ()) data;
    Tempagg.Agg_tree.depth t
  in
  let rows =
    List.map
      (fun (name, data) ->
        [
          name;
          Printf.sprintf "%.4f" (eval_time Tempagg.Engine.Aggregation_tree data);
          string_of_int (depth_of data);
        ])
      [
        ("sorted (worst case)", sorted);
        ("page-randomized (64x8 buffer)", randomized);
        ("fully random", shuffled);
      ]
  in
  Printf.printf "n = %d tuples, aggregation tree\n" n;
  Report.Table.print ~headers:[ "input order"; "seconds"; "tree depth" ] rows;
  print_endline
    "expectation: shuffling each buffer of pages as it is read recovers \
     nearly all of the random-order performance without a real sort"

let storage_io cfg =
  banner "storage_io"
    "disk I/O vs memory: the Section 6.3 optimizer trade-off, measured";
  let n = min cfg.max_size 16_384 in
  let sp = spec ~n ~long:0.2 ~seed:1 in
  let dir = Filename.temp_file "tempagg_bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let archive = Filename.concat dir "rel.heap" in
      let sorted_path = Filename.concat dir "rel.sorted.heap" in
      let io0 = Storage.Io_stats.create () in
      Storage.Heap_file.write_relation ~stats:io0 archive
        (Workload.Generate.relation sp);
      let scan_count stats path =
        let r = Storage.Heap_file.open_reader ~stats path in
        let data =
          Seq.map (fun t -> (Relation.Tuple.valid t, ())) (Storage.Heap_file.scan r)
        in
        (r, data)
      in
      (* Strategy A: single scan, unbounded tree. *)
      let ioa = Storage.Io_stats.create () in
      let insta = Tempagg.Instrument.create () in
      let ra, da = scan_count ioa archive in
      ignore (Tempagg.Agg_tree.eval ~instrument:insta Tempagg.Monoid.count da);
      Storage.Heap_file.close_reader ra;
      (* Strategy B: external sort + ktree(1). *)
      let iob = Storage.Io_stats.create () in
      let instb = Tempagg.Instrument.create () in
      Storage.External_sort.sort ~memory_tuples:2048 ~stats:iob ~src:archive
        ~dst:sorted_path ();
      let rb, db = scan_count iob sorted_path in
      ignore
        (Tempagg.Korder_tree.eval ~instrument:instb ~k:1 Tempagg.Monoid.count db);
      Storage.Heap_file.close_reader rb;
      (* Strategy C: single scan, paged tree. *)
      let ioc = Storage.Io_stats.create () in
      let instc = Tempagg.Instrument.create () in
      let rc, dc = scan_count ioc archive in
      let pt =
        Tempagg.Paged_tree.create ~instrument:instc ~spill_dir:dir
          ~budget_nodes:2048 Tempagg.Monoid.count
      in
      Seq.iter (fun (iv, ()) -> Tempagg.Paged_tree.insert pt iv ()) dc;
      let spilled_pages =
        ignore (Tempagg.Paged_tree.result pt);
        Tempagg.Paged_tree.spilled_bytes pt
        / Storage.Heap_file.default_page_size
      in
      Storage.Heap_file.close_reader rc;
      Printf.printf "n = %d tuples (20%% long-lived), 8K pages\n" n;
      Report.Table.print
        ~headers:
          [ "strategy"; "pages read"; "pages written"; "algorithm peak bytes" ]
        [
          [
            "scan + aggregation tree";
            string_of_int (Storage.Io_stats.pages_read ioa);
            string_of_int (Storage.Io_stats.pages_written ioa);
            string_of_int (Tempagg.Instrument.peak_bytes insta);
          ];
          [
            "external sort + ktree(1)";
            string_of_int (Storage.Io_stats.pages_read iob);
            string_of_int (Storage.Io_stats.pages_written iob);
            string_of_int (Tempagg.Instrument.peak_bytes instb);
          ];
          [
            Printf.sprintf "scan + paged tree (+%d spill pages)" spilled_pages;
            string_of_int (Storage.Io_stats.pages_read ioc);
            string_of_int (Storage.Io_stats.pages_written ioc);
            string_of_int (Tempagg.Instrument.peak_bytes instc);
          ];
        ];
      print_endline
        "Section 6.3: \"if memory is cheaper than disk I/O, the aggregation \
         tree is the best approach; if the disk access time necessary to \
         sort is less costly than the memory the tree requires, the \
         k-ordered aggregation tree [after sorting] is the best approach\"")

(* ------------------------------------------------------------------ *)
(* Partitioned storage: pruning + shard-parallel evaluation            *)
(* ------------------------------------------------------------------ *)

(* The tentpole claim for time-partitioned storage: a query whose
   DURING window covers a small slice of the time domain should not pay
   for the rest of the relation.  Both strategies answer the same
   clipped COUNT from the same on-disk shards; the full scan reads and
   decodes every shard (what an unpartitioned heap file forces), the
   pruned path reads only the shards overlapping the window and
   evaluates them shard-parallel with the joints pinned via
   [shard_offsets].  The win scales with the pruned fraction because
   the dominant cost at this size is page read + decode. *)
let shard_bench cfg =
  banner "shard"
    "time-partitioned storage: pruned shard-parallel evaluation vs \
     unpartitioned full scan";
  let n = if cfg.smoke then 20_000 else 1_000_000 in
  let shards = 8 in
  let lifespan = 1_000_000 in
  let rel = Workload.Generate.relation (spec ~n ~long:0. ~seed:1) in
  let dir = Filename.temp_file "tempagg_shard" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let pdir = Filename.concat dir "rel" in
      if Sys.file_exists pdir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat pdir f))
          (Sys.readdir pdir);
        Sys.rmdir pdir
      end;
      Sys.rmdir dir)
    (fun () ->
      let boundaries =
        Storage.Partition.choose_boundaries ~shards
          ~lifespan:(0, lifespan - 1) []
      in
      let p =
        Storage.Partition.create ~split_threshold:max_int ~boundaries
          ~dir:(Filename.concat dir "rel")
          (Relation.Trel.schema rel)
      in
      List.iter (Storage.Partition.insert p) (Relation.Trel.tuples rel);
      Storage.Partition.flush p;
      let all = Storage.Partition.prune p None in
      let clip w tuples =
        List.filter_map
          (fun tu ->
            Option.map
              (fun iv -> (iv, ()))
              (Interval.intersect (Relation.Tuple.valid tu) w))
          tuples
      in
      let full_scan w () =
        let data =
          List.concat_map (fun i -> clip w (Storage.Partition.shard_tuples p i))
            all
        in
        Tempagg.Engine.eval Tempagg.Engine.Sweep Tempagg.Monoid.count
          (List.to_seq data)
      in
      let pruned_scan w () =
        let keep = Storage.Partition.prune p (Some w) in
        let blocks =
          List.map (fun i -> clip w (Storage.Partition.shard_tuples p i)) keep
        in
        let offsets = Array.make (List.length blocks + 1) 0 in
        List.iteri
          (fun i b -> offsets.(i + 1) <- offsets.(i) + List.length b)
          blocks;
        let data = List.to_seq (List.concat blocks) in
        match keep with
        | [] | [ _ ] ->
            Tempagg.Engine.eval Tempagg.Engine.Sweep Tempagg.Monoid.count data
        | _ ->
            Tempagg.Engine.eval ~shard_offsets:offsets
              (Tempagg.Engine.Parallel
                 { domains = List.length keep; inner = Tempagg.Engine.Sweep })
              Tempagg.Monoid.count data
      in
      let pct a b = lifespan * a / 100, (lifespan * b / 100) - 1 in
      let windows =
        [
          ("narrow 10%", (fun () -> pct 45 55) ());
          ("wide 80%", (fun () -> pct 10 90) ());
        ]
      in
      (* Same answer both ways, once, before timing anything. *)
      List.iter
        (fun (what, (lo, hi)) ->
          let w = Interval.of_ints lo hi in
          if
            Timeline.to_list (full_scan w ())
            <> Timeline.to_list (pruned_scan w ())
          then failwith ("shard bench: pruned result differs on " ^ what))
        windows;
      let headline = ref None in
      let rows =
        List.map
          (fun (what, (lo, hi)) ->
            let w = Interval.of_ints lo hi in
            let kept = List.length (Storage.Partition.prune p (Some w)) in
            let t_full = time_run (full_scan w) in
            let t_pruned = time_run (pruned_scan w) in
            record_point ~section:"shard" ~name:what ~n ~algorithm:"full-scan"
              ~median_ns:(t_full *. 1e9) ();
            record_point ~section:"shard" ~name:what ~n
              ~algorithm:"pruned-parallel" ~median_ns:(t_pruned *. 1e9) ();
            if what = "narrow 10%" then headline := Some (t_full, t_pruned);
            [
              what;
              Printf.sprintf "%d of %d" kept (List.length all);
              Printf.sprintf "%.4f" t_full;
              Printf.sprintf "%.4f" t_pruned;
              (if t_pruned > 0. then Printf.sprintf "%.1fx" (t_full /. t_pruned)
               else "-");
            ])
          windows
      in
      Printf.printf
        "n = %d tuples over a %d-instant lifespan, %d fixed-width shards on \
         disk, COUNT clipped to the window\n"
        n lifespan (List.length all);
      Report.Table.print
        ~headers:
          [ "window"; "shards scanned"; "full scan s"; "pruned s"; "speedup" ]
        rows;
      (match !headline with
      | Some (t_full, t_pruned) when t_pruned > 0. ->
          Printf.printf
            "headline (10%% window, n=%d): full scan %.4f s vs pruned %.4f s \
             -> %.1fx (bar at n=1M: >= 3x)\n"
            n t_full t_pruned (t_full /. t_pruned)
      | _ -> ());
      print_endline
        "expectation: the pruned path skips ~90% of page reads and decodes \
         on the narrow window and wins by several x; on the wide window \
         most shards survive pruning and the two strategies converge")

(* ------------------------------------------------------------------ *)
(* join: endpoint sweep vs nested loop                                 *)
(* ------------------------------------------------------------------ *)

(* The join subsystem's claim: on selective predicates the endpoint
   sweep pays O((n+m) log(n+m)) radix sorting plus output-proportional
   scans of a small active-tuple map, while the nested loop always
   pays the full n*m compiled comparisons.  Short-lived tuples over a
   1M-instant lifespan keep the active maps small, so at 100k tuples
   per side the gap is orders of magnitude.  BEFORE is the sweep's
   ordered prefix scan, but its output is itself quadratic in n, so it
   is measured at the quadratic cap like the paper's O(n^2)
   algorithms. *)
let join_bench cfg =
  banner "join"
    "interval join: gapless-hash endpoint sweep vs nested loop";
  let n = if cfg.smoke then 2_000 else 100_000 in
  let mk seed = Workload.Spec.make ~n ~short_max:100 ~seed () in
  let p =
    Workload.Spec.pair ~overlap_density:0.01 ~left:(mk 11) ~right:(mk 12) ()
  in
  let left_arr, right_arr = Workload.Generate.pair_intervals p in
  let left = Array.map fst left_arr and right = Array.map fst right_arr in
  let preds =
    [
      Join.Predicate.Allen Interval.Overlaps;
      Join.Predicate.Allen Interval.Meets;
      Join.Predicate.Intersects;
    ]
  in
  (* Same pairs both ways on a small prefix, once, before timing. *)
  let check_n = min n 2_000 in
  let sub a = Array.sub a 0 check_n in
  List.iter
    (fun pred ->
      if
        Join.Engine.pairs Join.Engine.Sweep pred (sub left) (sub right)
        <> Join.Engine.pairs Join.Engine.Nested_loop pred (sub left)
             (sub right)
      then
        failwith
          ("join bench: strategies disagree on "
          ^ Join.Predicate.to_string pred))
    (Join.Predicate.Allen Interval.Before :: preds);
  let count strategy pred l r () =
    let c = ref 0 in
    Join.Engine.run strategy pred ~left:l ~right:r (fun _ _ -> incr c);
    !c
  in
  let headline = ref None in
  let measure name pred l r point_n =
    let t_sweep = time_run (count Join.Engine.Sweep pred l r) in
    let t_nested = time_run (count Join.Engine.Nested_loop pred l r) in
    let pairs = count Join.Engine.Sweep pred l r () in
    record_point ~section:"join" ~name ~n:point_n ~algorithm:"sweep-join"
      ~median_ns:(t_sweep *. 1e9) ();
    record_point ~section:"join" ~name ~n:point_n
      ~algorithm:"nested-loop-join" ~median_ns:(t_nested *. 1e9) ();
    if name = "OVERLAPS" then headline := Some (t_nested, t_sweep);
    [
      name;
      string_of_int point_n;
      string_of_int pairs;
      Printf.sprintf "%.4f" t_sweep;
      Printf.sprintf "%.4f" t_nested;
      (if t_sweep > 0. then Printf.sprintf "%.1fx" (t_nested /. t_sweep)
       else "-");
    ]
  in
  let rows =
    List.map
      (fun pred -> measure (Join.Predicate.to_string pred) pred left right n)
      preds
  in
  let nb = min n cfg.cap_quadratic in
  let rows =
    rows
    @ [
        measure "BEFORE"
          (Join.Predicate.Allen Interval.Before)
          (Array.sub left 0 nb) (Array.sub right 0 nb) nb;
      ]
  in
  Printf.printf
    "%d tuples per side (BEFORE capped at %d), short-lived 1-100 over a \
     1M-instant lifespan, overlap density %.0f%%\n"
    n nb
    (p.Workload.Spec.overlap_density *. 100.);
  Report.Table.print
    ~headers:[ "predicate"; "n/side"; "pairs"; "sweep s"; "nested s"; "speedup" ]
    rows;
  match !headline with
  | Some (t_nested, t_sweep) when t_sweep > 0. ->
      Printf.printf
        "headline (OVERLAPS, n=%d per side): nested-loop %.4f s vs sweep \
         %.4f s -> %.1fx (bar at n=100k: >= 5x)\n"
        n t_nested t_sweep (t_nested /. t_sweep)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* net: the TCP server under concurrent client processes               *)
(* ------------------------------------------------------------------ *)

(* Exact percentile over a sorted latency array (µs). *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let net_statement_of_op next_id op =
  let iv_ints iv =
    ( Temporal.Chronon.to_int (Temporal.Interval.start iv),
      Temporal.Chronon.to_int (Temporal.Interval.stop iv) )
  in
  match op with
  | Workload.Generate.Insert (iv, v) ->
      let id = !next_id in
      incr next_id;
      let a, b = iv_ints iv in
      Printf.sprintf "INSERT INTO t VALUES (%d, %d) DURING [%d,%d]" id v a b
  | Workload.Generate.Delete id ->
      Printf.sprintf "DELETE FROM t WHERE id = %d" id
  | Workload.Generate.Query_point c ->
      let c = Temporal.Chronon.to_int c in
      Printf.sprintf "SELECT COUNT(id) FROM t DURING [%d,%d]" c c
  | Workload.Generate.Query_range iv ->
      let a, b = iv_ints iv in
      Printf.sprintf "SELECT COUNT(id) FROM t DURING [%d,%d]" a b

(* The body of one forked client process: replay a trace of [ops_len]
   operations as protocol statements, one outstanding at a time, and
   log "<status> <latency_us>" per request to [file]. *)
let net_client_body ~port ~seed ~initial_n ~ops_len ~file =
  let _, ops =
    Workload.Generate.trace
      (Workload.Spec.ops
         ~base:(Workload.Spec.make ~n:initial_n ~seed ())
         ~initial:initial_n ~length:ops_len ())
  in
  let oc = open_out file in
  let rec connect tries =
    try Net.Client.connect ~port ()
    with Unix.Unix_error _ when tries > 0 ->
      Unix.sleepf 0.05;
      connect (tries - 1)
  in
  let c = connect 40 in
  let next_id = ref initial_n in
  Array.iter
    (fun op ->
      let stmt = net_statement_of_op next_id op in
      let t0 = Unix.gettimeofday () in
      let status =
        match Net.Client.request c stmt with
        | Ok (Net.Protocol.Ok_reply { degraded = true; _ }) -> "degraded"
        | Ok (Net.Protocol.Ok_reply _) -> "ok"
        | Ok (Net.Protocol.Err _) -> "err"
        | Ok (Net.Protocol.Busy _) -> "busy"
        | Ok _ | Error _ -> "violation"
      in
      Printf.fprintf oc "%s %.0f\n" status ((Unix.gettimeofday () -. t0) *. 1e6))
    ops;
  ignore (Net.Client.request c "QUIT");
  Net.Client.close c;
  close_out oc

type net_round_result = {
  nr_admitted : int;
  nr_degraded : int;
  nr_err : int;
  nr_busy : int;
  nr_violations : int;
  nr_rps : float;
  nr_p50_us : float;
  nr_p99_us : float;
  nr_p999_us : float;
  nr_drained : bool;
  nr_client_failures : int;
}

let net_round ~tag ~clients ~domains ~queue_depth ~watermark ~initial_n
    ~ops_len () =
  (* The initial relation is shared through the catalog; each
     connection's writes stay session-local, which is exactly what a
     load test wants (no cross-client interference). *)
  (* length 1 because a trace must be non-empty; only the preload is
     used here. *)
  let initial, _ =
    Workload.Generate.trace
      (Workload.Spec.ops
         ~base:(Workload.Spec.make ~n:initial_n ~seed:11 ())
         ~initial:initial_n ~length:1 ())
  in
  let schema =
    Relation.Schema.of_pairs
      [ ("id", Relation.Value.Tint); ("v", Relation.Value.Tint) ]
  in
  let rel =
    Relation.Trel.of_array schema
      (Array.mapi
         (fun i (iv, v) ->
           Relation.Tuple.make
             [| Relation.Value.Int i; Relation.Value.Int v |]
             iv)
         initial)
  in
  let catalog = Tsql.Catalog.add (Tsql.Catalog.create ()) "t" rel in
  let config =
    {
      Net.Server.default_config with
      Net.Server.transport = Net.Server.Tcp 0;
      domains;
      queue_depth;
      degrade_watermark = watermark;
      drain_timeout_ms = 10_000;
      idle_timeout_ms = 120_000;
    }
  in
  let srv = Net.Server.create ~config catalog in
  let port = Option.get (Net.Server.port srv) in
  let files =
    List.init clients (fun i ->
        Filename.temp_file "tempagg-net-lat" (Printf.sprintf ".%s.%d" tag i))
  in
  (* The server and every client run as forked processes — the parent
     never spawns a domain (the OCaml 5 runtime refuses to fork once
     any domain has ever been created, so all Domain.spawn happens in
     the server child).  Children exit with [_exit] so inherited
     channel buffers are not re-flushed.  The server child's exit code
     reports the drain: 0 iff SIGTERM drained it cleanly — which makes
     the round a real end-to-end signal-handling check. *)
  flush stdout;
  flush stderr;
  let server_pid =
    match Unix.fork () with
    | 0 ->
        let code =
          try
            let report = Net.Server.run ~signals:true srv in
            if report.Net.Server.drained then 0 else 2
          with _ -> 3
        in
        Unix._exit code
    | pid -> pid
  in
  let t_start = Unix.gettimeofday () in
  let pids =
    List.mapi
      (fun i file ->
        match Unix.fork () with
        | 0 ->
            let status =
              try
                net_client_body ~port ~seed:(101 + i) ~initial_n ~ops_len ~file;
                0
              with _ -> 1
            in
            Unix._exit status
        | pid -> pid)
      files
  in
  let client_failures =
    List.fold_left
      (fun acc pid ->
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> acc
        | _ -> acc + 1)
      0 pids
  in
  let wall = Unix.gettimeofday () -. t_start in
  Unix.kill server_pid Sys.sigterm;
  let drained =
    match Unix.waitpid [] server_pid with
    | _, Unix.WEXITED 0 -> true
    | _ -> false
  in
  let admitted_lat = ref [] in
  let degraded = ref 0
  and err = ref 0
  and busy = ref 0
  and violations = ref 0 in
  List.iter
    (fun file ->
      In_channel.with_open_text file (fun ic ->
          let rec go () =
            match In_channel.input_line ic with
            | None -> ()
            | Some line ->
                (match String.split_on_char ' ' line with
                | [ status; us ] -> (
                    let us = float_of_string_opt us in
                    match (status, us) with
                    | "ok", Some us -> admitted_lat := us :: !admitted_lat
                    | "degraded", Some us ->
                        incr degraded;
                        admitted_lat := us :: !admitted_lat
                    | "err", Some us ->
                        incr err;
                        admitted_lat := us :: !admitted_lat
                    | "busy", Some _ -> incr busy
                    | _ -> incr violations)
                | _ -> incr violations);
                go ()
          in
          go ());
      Sys.remove file)
    files;
  let sorted = Array.of_list !admitted_lat in
  Array.sort compare sorted;
  {
    nr_admitted = Array.length sorted;
    nr_degraded = !degraded;
    nr_err = !err;
    nr_busy = !busy;
    nr_violations = !violations;
    nr_rps = float_of_int (Array.length sorted) /. Float.max 1e-9 wall;
    nr_p50_us = percentile sorted 0.50;
    nr_p99_us = percentile sorted 0.99;
    nr_p999_us = percentile sorted 0.999;
    nr_drained = drained;
    nr_client_failures = client_failures;
  }

let net_bench cfg =
  banner "net"
    "multi-client TCP server: load shedding and latency under saturation";
  let initial_n = if cfg.smoke then 2_048 else 16_384 in
  let ops_len = if cfg.smoke then 120 else 500 in
  let show tag clients r =
    Printf.printf
      "  %-10s %d client(s): %6d admitted (%d degraded, %d err), %5d BUSY, \
       %d violation(s); %7.0f req/s; p50 %6.2f ms  p99 %6.2f ms  p999 %6.2f \
       ms  drain %s\n\
       %!"
      tag clients r.nr_admitted r.nr_degraded r.nr_err r.nr_busy
      r.nr_violations r.nr_rps (r.nr_p50_us /. 1e3) (r.nr_p99_us /. 1e3)
      (r.nr_p999_us /. 1e3)
      (if r.nr_drained then "clean" else "FORCED");
    List.iter
      (fun (what, us) ->
        record_point ~section:"net"
          ~name:(tag ^ "-" ^ what)
          ~n:clients ~algorithm:tag ~median_ns:(us *. 1e3) ())
      [ ("p50", r.nr_p50_us); ("p99", r.nr_p99_us); ("p999", r.nr_p999_us) ]
  in
  (* Baseline: enough workers for every client, nothing queues. *)
  let base =
    net_round ~tag:"1x" ~clients:2 ~domains:2 ~queue_depth:8 ~watermark:None
      ~initial_n ~ops_len ()
  in
  show "1x" 2 base;
  (* 2x saturation: 8 synchronous clients against a capacity of 4
     (2 domains in flight + 2 queued).  The server must shed the excess
     with BUSY while admitted latency stays bounded. *)
  let sat =
    net_round ~tag:"2x" ~clients:8 ~domains:2 ~queue_depth:2
      ~watermark:(Some 1) ~initial_n ~ops_len ()
  in
  show "2x" 8 sat;
  let verdict ok msg = Printf.printf "  %s: %s\n" (if ok then "PASS" else "WARN") msg in
  verdict (sat.nr_busy > 0)
    (Printf.sprintf "saturated server sheds with BUSY (%d shed)" sat.nr_busy);
  let ratio = sat.nr_p99_us /. Float.max 1e-9 base.nr_p99_us in
  verdict (ratio <= 3.)
    (Printf.sprintf "admitted p99 at 2x is %.2fx the unsaturated p99 (<= 3x)"
       ratio);
  verdict
    (base.nr_drained && sat.nr_drained)
    "both rounds drained cleanly on shutdown";
  verdict
    (base.nr_violations + sat.nr_violations = 0
    && base.nr_client_failures + sat.nr_client_failures = 0)
    "no protocol violations or client failures"

(* ------------------------------------------------------------------ *)
(* Self-monitoring: scrape cost against its own tick budget            *)
(* ------------------------------------------------------------------ *)

(* The scraper runs on the server's event loop, so its budget is the
   tick period itself: a 1 s tick spending under 3% of a second keeps
   self-monitoring invisible next to request work.  The registry here
   is shaped like a busy server's (labelled gauges, counters, per-kind
   latency histograms), history is grown past the retention horizon so
   the measured ticks pay retention filtering and engine-run compaction
   at steady state, and the overhead verdict is mean scrape time over
   the tick period. *)
let selfmon_bench cfg =
  banner "selfmon"
    "self-scraping: the registry as temporal relations, cost per 1 s tick";
  let registry = Obs.Metrics.create () in
  let gauges =
    Array.init 48 (fun i ->
        Obs.Metrics.gauge registry
          ~labels:[ ("shard", string_of_int i) ]
          "tempagg_bench_gauge")
  in
  let counters =
    Array.init 12 (fun i ->
        Obs.Metrics.counter registry
          ~labels:[ ("worker", string_of_int i) ]
          "tempagg_bench_total")
  in
  let kinds = [| "select"; "insert"; "delete"; "explain-analyze" |] in
  let hists =
    Array.map
      (fun k ->
        Obs.Metrics.histogram registry ~labels:[ ("kind", k) ]
          "tempagg_net_latency_us")
      kinds
  in
  let errs = Obs.Metrics.counter registry "tempagg_net_errors_total" in
  let config =
    {
      Selfmon.Scrape.default_config with
      tick_us = 1_000_000;
      retention_us = 120_000_000;
      raw_us = 60_000_000;
      compact_window_us = 10_000_000;
    }
  in
  let scraper = Selfmon.Scrape.create ~config registry in
  let rng = Random.State.make [| 42 |] in
  let drive_tick () =
    Array.iter
      (fun g -> Obs.Metrics.set g (Random.State.float rng 100.))
      gauges;
    Array.iter
      (fun c -> Obs.Metrics.add c (Random.State.float rng 50.))
      counters;
    Array.iter
      (fun h ->
        for _ = 1 to 8 do
          Obs.Histogram.observe h (50. +. Random.State.float rng 5000.)
        done)
      hists;
    Obs.Metrics.add errs (Random.State.float rng 2.)
  in
  (* Grow history past the retention horizon, then measure. *)
  let warmup = 130 and measured = if cfg.smoke then 30 else 60 in
  let now = ref 0 in
  let tick () =
    drive_tick ();
    now := !now + 1_000_000;
    Selfmon.Scrape.scrape ~now_us:!now scraper
  in
  for _ = 1 to warmup do
    tick ()
  done;
  let total = ref 0. and worst = ref 0. in
  for _ = 1 to measured do
    drive_tick ();
    now := !now + 1_000_000;
    let t0 = Unix.gettimeofday () in
    Selfmon.Scrape.scrape ~now_us:!now scraper;
    let dt = Unix.gettimeofday () -. t0 in
    total := !total +. dt;
    if dt > !worst then worst := dt
  done;
  let mean_s = !total /. float_of_int measured in
  let m_rows, r_rows = Selfmon.Scrape.row_counts scraper in
  (* What querying the self-relations costs once history is at steady
     state — the price a SHOW SLO evaluation or an operator's ad-hoc
     AVG pays. *)
  let catalog = Selfmon.Scrape.catalog scraper in
  let query_cost q =
    let t0 = Unix.gettimeofday () in
    (match Tsql.Eval.query ~adaptive:false catalog q with
    | Ok _ -> ()
    | Error msg -> Printf.printf "  (query failed: %s)\n" msg);
    Unix.gettimeofday () -. t0
  in
  let avg_cost =
    query_cost
      (Printf.sprintf
         "SELECT AVG(value) FROM _metrics DURING [%d,%d] WHERE name = \
          'tempagg_bench_gauge'"
         (!now - 60_000_000) !now)
  in
  let group_cost =
    query_cost
      "SELECT kind, outcome, AVG(rate) FROM _requests GROUP BY kind, outcome"
  in
  let overhead_pct = mean_s /. 1.0 *. 100. in
  Printf.printf
    "%d series, %d scrape(s) at steady state (%d + %d history rows, %d \
     compaction(s))\n"
    (Array.length gauges + Array.length counters + Array.length hists + 1)
    measured m_rows r_rows
    (Selfmon.Scrape.compactions scraper);
  Report.Table.print
    ~headers:[ "cost"; "seconds"; "share of a 1 s tick" ]
    [
      [
        "scrape tick (mean)";
        Printf.sprintf "%.6f" mean_s;
        Printf.sprintf "%.3f%%" overhead_pct;
      ];
      [
        "scrape tick (worst)";
        Printf.sprintf "%.6f" !worst;
        Printf.sprintf "%.3f%%" (!worst *. 100.);
      ];
      [ "AVG over 60 s of _metrics"; Printf.sprintf "%.6f" avg_cost; "-" ];
      [ "GROUP BY over _requests"; Printf.sprintf "%.6f" group_cost; "-" ];
    ];
  record_point ~section:"selfmon" ~name:"scrape-tick" ~n:m_rows
    ~algorithm:"scrape" ~median_ns:(mean_s *. 1e9) ();
  let verdict ok msg =
    Printf.printf "  %s: %s\n" (if ok then "PASS" else "WARN") msg
  in
  verdict (overhead_pct < 3.)
    (Printf.sprintf "mean scrape overhead %.3f%% of the tick budget (< 3%%)"
       overhead_pct);
  verdict
    (Selfmon.Scrape.compactions scraper > 0)
    "measured ticks included engine-run compaction"

let micro () =
  banner "micro" "bechamel micro-benchmarks (4096 tuples, ns per evaluation)";
  let open Bechamel in
  let n = 4_096 in
  let sp = spec ~n ~long:0. ~seed:1 in
  let random = Workload.Generate.random_intervals sp in
  let sorted = Workload.Generate.sorted_intervals sp in
  let kordered =
    Workload.Generate.k_ordered_intervals ~k:40 ~percentage:0.02 sp
  in
  let bench name algorithm data =
    Test.make ~name
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Tempagg.Engine.eval algorithm Tempagg.Monoid.count
                (count_data data))))
  in
  let tests =
    Test.make_grouped ~name:"tempagg"
      [
        (* One per experiment family: Figure 6 uses random order ... *)
        bench "fig6/aggregation-tree" Tempagg.Engine.Aggregation_tree random;
        bench "fig6/linked-list" Tempagg.Engine.Linked_list random;
        bench "fig6/two-scan" Tempagg.Engine.Two_scan random;
        bench "fig6/balanced-tree" Tempagg.Engine.Balanced_tree random;
        (* ... Figures 7/8/9 use sorted and k-ordered input. *)
        bench "fig7/ktree-k1-sorted"
          (Tempagg.Engine.Korder_tree { k = 1 })
          sorted;
        bench "fig7/ktree-k40" (Tempagg.Engine.Korder_tree { k = 40 }) kordered;
        bench "fig7/tree-sorted" Tempagg.Engine.Aggregation_tree sorted;
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg_b = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg_b [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some [ e ] -> Printf.sprintf "%.0f" e
          | _ -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square ols with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "-"
        in
        [ name; est; r2 ] :: acc)
      results []
  in
  Report.Table.print
    ~headers:[ "benchmark"; "ns/run"; "r^2" ]
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let cfg = parse_args () in
  if cfg.compare_only then begin
    (* Compare two existing result files without running anything:
       --json NEW --compare OLD --compare-only. *)
    match (cfg.json, cfg.compare_with) with
    | Some new_path, Some old_path ->
        let new_records =
          Hashtbl.fold
            (fun key v acc -> (key, v) :: acc)
            (load_results new_path) []
        in
        let regressions =
          compare_results ~threshold:cfg.compare_threshold ~old_path
            new_records
        in
        exit (if regressions > 0 then 3 else 0)
    | _ ->
        prerr_endline "--compare-only needs both --json NEW and --compare OLD";
        exit 2
  end;
  Printf.printf "tempagg bench — reproduction of Kline & Snodgrass (ICDE 1995)\n";
  Printf.printf
    "sizes up to %d tuples, quadratic algorithms capped at %d, %d seed(s) \
     per point\n"
    cfg.max_size cfg.cap_quadratic cfg.repeats;
  let t0 = Sys.time () in
  let run name f = if enabled cfg name then f () in
  run "table1" table1;
  run "table2" table2;
  run "table3" (fun () -> table3 cfg);
  run "fig6" (fun () -> fig6 cfg);
  run "fig7" (fun () -> fig7 cfg);
  run "fig8" (fun () -> fig8 cfg);
  run "fig9" (fun () -> fig9 cfg);
  run "fig9_longlived" (fun () -> fig9_longlived cfg);
  run "sweep" (fun () -> sweep_bench cfg);
  run "live" (fun () -> live_bench cfg);
  run "optimizer" optimizer;
  run "guard" (fun () -> guard_bench cfg);
  run "obs" (fun () -> obs_bench cfg);
  run "adaptive" (fun () -> adaptive_bench cfg);
  run "ablation_balanced" (fun () -> ablation_balanced cfg);
  run "ablation_span" (fun () -> ablation_span cfg);
  run "ablation_unique" (fun () -> ablation_unique cfg);
  run "ablation_paged" (fun () -> ablation_paged cfg);
  run "ablation_pagerand" (fun () -> ablation_pagerand cfg);
  run "storage_io" (fun () -> storage_io cfg);
  run "shard" (fun () -> shard_bench cfg);
  run "join" (fun () -> join_bench cfg);
  run "net" (fun () -> net_bench cfg);
  run "selfmon" (fun () -> selfmon_bench cfg);
  run "micro" micro;
  write_json cfg;
  Printf.printf "\ntotal CPU time: %.1fs\n" (Sys.time () -. t0);
  match cfg.compare_with with
  | None -> ()
  | Some old_path ->
      let new_records =
        List.rev_map
          (fun r ->
            ((r.jr_section, r.jr_name, r.jr_n, r.jr_algorithm), r.jr_median_ns))
          !json_records
      in
      let regressions =
        compare_results ~threshold:cfg.compare_threshold ~old_path new_records
      in
      if regressions > 0 then exit 3
