type metadata = {
  cardinality : int;
  time_ordered : bool;
  retroactive_bound : int option;
  memory_budget : int option;
  expected_constant_intervals : int option;
  invertible_aggregate : bool;
  shard_spans : Temporal.Interval.t list;
  query_window : Temporal.Interval.t option;
}

let default_metadata ~cardinality =
  {
    cardinality;
    time_ordered = false;
    retroactive_bound = None;
    memory_budget = None;
    expected_constant_intervals = None;
    invertible_aggregate = false;
    shard_spans = [];
    query_window = None;
  }

type choice = {
  algorithm : Engine.algorithm;
  sort_first : bool;
  on_error : Engine.on_error;
  rationale : string;
  stats_source : string;
  scanned_shards : int;
  pruned_shards : int;
}

(* Evaluation shards spawn one domain each; past the core count the
   merge tax outweighs the parallelism, so surviving storage shards are
   grouped down to this many evaluation shards. *)
let max_eval_shards =
  Stdlib.max 2 (Stdlib.min 8 (Domain.recommended_domain_count ()))

let estimated_tree_bytes ~cardinality = ((4 * cardinality) + 1) * 16

(* A result at least this many times smaller than the relation counts as
   "very few constant intervals" (Section 6.3's single-year-of-days
   example). *)
let few_intervals_factor = 100

let choose_unsharded md =
  match md.expected_constant_intervals with
  | Some m
    when md.cardinality >= few_intervals_factor
         && m * few_intervals_factor <= md.cardinality ->
      {
        algorithm = Engine.Linked_list;
        sort_first = false;
        on_error = Engine.Fail;
        rationale =
          Printf.sprintf
            "expected result of ~%d constant intervals is tiny relative to \
             %d tuples; the linked list is adequate and cheapest in memory"
            m md.cardinality;
          stats_source = "declared metadata";
          scanned_shards = 0;
          pruned_shards = 0;
      }
  | _ -> (
      if md.time_ordered then
        {
          algorithm = Engine.Korder_tree { k = 1 };
          sort_first = false;
          (* The sortedness is declared, not verified: if the declaration
             is wrong, fall back rather than abort. *)
          on_error = Engine.Fallback;
          rationale =
            "relation already sorted by time: k-ordered aggregation tree \
             with k=1 gives the best time and memory";
          stats_source = "declared metadata";
          scanned_shards = 0;
          pruned_shards = 0;
        }
      else
        match md.retroactive_bound with
        | Some k ->
            {
              algorithm = Engine.Korder_tree { k };
              sort_first = false;
              on_error = Engine.Fallback;
              rationale =
                Printf.sprintf
                  "relation declared retroactively bounded (k=%d): k-ordered \
                   aggregation tree applies directly, no sorting required"
                  k;
          stats_source = "declared metadata";
          scanned_shards = 0;
          pruned_shards = 0;
            }
        | None -> (
            let tree_bytes = estimated_tree_bytes ~cardinality:md.cardinality in
            match md.memory_budget with
            | Some budget when tree_bytes > budget ->
                {
                  algorithm = Engine.Korder_tree { k = 1 };
                  sort_first = true;
                  (* Sorted by us, so order violations are impossible;
                     still fall back if the budget proves too tight even
                     for the k-ordered tree. *)
                  on_error = Engine.Fallback;
                  rationale =
                    Printf.sprintf
                      "unordered relation and the aggregation tree's ~%d \
                       bytes exceed the %d-byte budget: sort first, then \
                       k-ordered tree with k=1"
                      tree_bytes budget;
          stats_source = "declared metadata";
          scanned_shards = 0;
          pruned_shards = 0;
                }
            | Some _ | None ->
                if md.invertible_aggregate then
                  {
                    algorithm = Engine.Sweep;
                    sort_first = false;
                    on_error = Engine.Fail;
                    rationale =
                      "unordered relation, memory is available and the \
                       aggregate is invertible: the flat delta-sweep is a \
                       single cache-friendly O(n log n) pass over sorted \
                       endpoint events (its ~4n+1 flat cells fit the same \
                       budget as the tree's nodes)";
          stats_source = "declared metadata";
          scanned_shards = 0;
          pruned_shards = 0;
                  }
                else
                  {
                    algorithm = Engine.Aggregation_tree;
                    sort_first = false;
                    on_error = Engine.Fail;
                    rationale =
                      "unordered relation and memory is available: the \
                       aggregation tree is fastest on random order among \
                       the pointer-based algorithms, and the aggregate is \
                       not invertible, ruling out the delta-sweep's fast \
                       path";
          stats_source = "declared metadata";
          scanned_shards = 0;
          pruned_shards = 0;
                  }))

(* Shard pruning over a partitioned relation: only shards whose time
   range overlaps the query window can contribute to the answer, so the
   plan clips to those and — when more than one survives — evaluates
   them shard-parallel (one evaluation shard per surviving storage
   shard, grouped down to [max_eval_shards] domains; the evaluation
   layer aligns the parallel slices with the shard joints via
   [Engine.eval]'s [shard_offsets]). *)
let apply_shards md c =
  match md.shard_spans with
  | [] -> c
  | spans ->
      let total = List.length spans in
      let surviving =
        match md.query_window with
        | None -> total
        | Some w ->
            List.length
              (List.filter (fun s -> Temporal.Interval.overlaps s w) spans)
      in
      let pruned = total - surviving in
      let c =
        if surviving > 1 then
          {
            c with
            algorithm =
              Engine.Parallel
                {
                  domains = Stdlib.min surviving max_eval_shards;
                  inner = c.algorithm;
                };
            (* One failed shard must degrade, not abort, the others'
               work: [Fail] would discard every shard's result, so the
               sharded plan falls back per shard instead.  An explicit
               [Skip] keeps its stronger meaning. *)
            on_error =
              (match c.on_error with
              | Engine.Fail -> Engine.Fallback
              | p -> p);
          }
        else c
      in
      {
        c with
        scanned_shards = surviving;
        pruned_shards = pruned;
        rationale =
          Printf.sprintf
            "%s; partition pruning kept %d of %d shard(s), pruned %d%s"
            c.rationale surviving total pruned
            (if surviving > 1 then "; surviving shards run in parallel"
             else "");
      }

let choose md = apply_shards md (choose_unsharded md)

(* Merging observed statistics over declared metadata.

   Only properties the store actually proved are taken, and only where
   they beat what was declared: an observed sort order (ANALYZE k
   estimate of 0, or a clean k=0 run) upgrades [time_ordered]; an
   observed k bound fills a *missing* retroactive bound, but only when
   the bound is profitable — a k near n makes the k-ordered tree
   degenerate, so we require k <= max(1, n/4); a measured constant-
   interval count replaces the declared estimate.  Declared metadata is
   never overridden towards pessimism, and the exact cardinality (the
   planner reads it off the relation) is always trusted over the store.

   Whenever the plan leans on an observed ordering claim the recovery
   policy is forced to [Fallback]: statistics describe the past, and a
   write since the last ANALYZE could void them (stores invalidate on
   writes, but the policy must hold even for stale summaries). *)
let choose_observed (s : Obs.Stats.summary) md =
  if s.observations = 0 && not s.analyzed then choose md
  else begin
    let notes = ref [] in
    let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
    let observed_sorted =
      (match s.time_ordered with Some b -> b | None -> false)
      || match s.k_upper with Some 0 -> true | _ -> false
    in
    let ordering_claim = ref false in
    let md =
      if observed_sorted && not md.time_ordered then begin
        ordering_claim := true;
        note "observed time-ordered (k estimate 0)";
        { md with time_ordered = true }
      end
      else md
    in
    let md =
      match (md.time_ordered, md.retroactive_bound, s.k_upper) with
      | false, None, Some k when k > 0 && k <= Stdlib.max 1 (md.cardinality / 4)
        ->
          ordering_claim := true;
          note "observed k<=%d over %d tuples" k md.cardinality;
          { md with retroactive_bound = Some k }
      | _ -> md
    in
    let md =
      match s.constant_intervals with
      | Some m when md.expected_constant_intervals = None ->
          note "observed ~%d constant interval(s)" m;
          { md with expected_constant_intervals = Some m }
      | _ -> md
    in
    let c = choose md in
    match !notes with
    | [] -> c
    | notes ->
        {
          c with
          rationale =
            Printf.sprintf "%s [stats: %s]" c.rationale
              (String.concat "; " (List.rev notes));
          on_error = (if !ordering_claim then Engine.Fallback else c.on_error);
          stats_source = Printf.sprintf "observed (%s)" s.source;
        }
  end

(* Sweep vs nested-loop for an interval join (ROADMAP item 3).  The
   endpoint sweep costs two radix sorts plus active-map bookkeeping
   before it emits a single pair; on tiny inputs the naive nested loop
   finishes inside that setup time.  The crossover is coarse — anything
   past a few thousand candidate comparisons favours the sweep — so the
   rule is a cross-product threshold, with cardinalities taken from the
   statistics store when it has observed the relation (the planner's
   declared counts are the fallback). *)
let nested_loop_cross_limit = 4096

type join_choice = {
  sweep : bool;
  join_rationale : string;
  join_stats_source : string;
}

let choose_join ?left_stats ?right_stats ~left_cardinality ~right_cardinality
    () =
  let observed side (s : Obs.Stats.summary option) declared =
    match s with
    | Some { cardinality = Some n; source; _ } ->
        (n, Some (Printf.sprintf "%s n=%d (%s)" side n source))
    | _ -> (declared, None)
  in
  let n, ln = observed "left" left_stats left_cardinality in
  let m, rn = observed "right" right_stats right_cardinality in
  let notes = List.filter_map Fun.id [ ln; rn ] in
  let stats_source =
    if notes = [] then "declared metadata" else "observed (stats store)"
  in
  let suffix =
    if notes = [] then ""
    else Printf.sprintf " [stats: %s]" (String.concat "; " notes)
  in
  (* Avoid n*m overflow on absurd cardinalities: compare in float. *)
  let cross = float_of_int n *. float_of_int m in
  if cross <= float_of_int nested_loop_cross_limit then
    {
      sweep = false;
      join_rationale =
        Printf.sprintf
          "cross product %dx%d is within the nested-loop threshold (%d \
           comparisons): the naive loop beats the sweep's sort and \
           active-map setup%s"
          n m nested_loop_cross_limit suffix;
      join_stats_source = stats_source;
    }
  else
    {
      sweep = true;
      join_rationale =
        Printf.sprintf
          "cross product %dx%d exceeds the nested-loop threshold (%d): \
           the endpoint sweep touches each tuple once per emitted pair \
           instead of %.0f comparisons%s"
          n m nested_loop_cross_limit cross suffix;
      join_stats_source = stats_source;
    }

let pp_choice ppf c =
  Format.fprintf ppf "%s%s%s — %s"
    (Engine.name c.algorithm)
    (if c.sort_first then " (after sorting)" else "")
    (match c.on_error with
    | Engine.Fail -> ""
    | p -> Printf.sprintf " (on-error %s)" (Engine.on_error_to_string p))
    c.rationale
