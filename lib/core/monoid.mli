(** Aggregates as commutative monoids with per-tuple injection.

    Every algorithm in this library (linked list, aggregation tree,
    k-ordered aggregation tree, two-scan, balanced tree) is generic over
    the aggregate being computed.  The common structure they need is:

    - a partial-aggregate {e state} ['s] forming a commutative monoid
      ({!field:empty}, {!field:combine});
    - an {e injection} of a tuple's attribute value into a state
      ({!field:inject});
    - a final {e output} step ({!field:output}).

    Count and sum use the additive monoid; min and max use the
    corresponding semilattice lifted with an identity (option); average
    pairs sum with count.  The aggregation tree depends on commutativity
    and associativity: a constant interval's value is the combination of
    the states stored on its root-to-leaf path, in whatever order tuples
    arrived (paper, Section 5.1).

    Laws (property-tested in [test/test_monoid.ml]):
    [combine empty s = s], [combine s empty = s],
    [combine a (combine b c) = combine (combine a b) c],
    [combine a b = combine b a]. *)

type ('v, 's, 'r) t = {
  name : string;
  empty : 's;
  inject : 'v -> 's;
  combine : 's -> 's -> 's;
  output : 's -> 'r;
  inverse : ('s -> 's) option;
      (** When present, the monoid is a commutative {e group}:
          [combine s (inverse s) = empty].  Count, sum, average and
          variance are invertible (delta summation); min and max,
          being idempotent semilattices, are not.  Invertibility lets
          the {!Sweep} evaluator retract a tuple's contribution when
          its interval ends instead of recombining the active set. *)
}

val invertible : _ t -> bool
(** [invertible m] is [true] iff {!field:inverse} is present. *)

val subtract : ('v, 's, 'r) t -> ('s -> 's -> 's) option
(** [subtract m] is [Some (fun acc s -> combine acc (inverse s))] when
    the monoid is a group, [None] otherwise — the delta retraction used
    by incremental maintenance to remove a tuple's contribution from a
    materialized state without recombining the survivors. *)

val count : ('v, int, int) t
(** Number of tuples overlapping each instant. *)

val sum_int : (int, int, int) t
val sum_float : (float, float, float) t

val minimum : compare:('v -> 'v -> int) -> ('v, 'v option, 'v option) t
(** [None] over intervals no tuple overlaps. *)

val maximum : compare:('v -> 'v -> int) -> ('v, 'v option, 'v option) t

val min_int : (int, int option, int option) t
val max_int : (int, int option, int option) t

val avg_int : (int, int * int, float option) t
(** State is (sum, count); output [None] where count is 0.  Matches the
    paper's 8-byte average state: 4 for the sum, 4 for the count. *)

val avg_float : (float, float * int, float option) t

val pair : ('v, 's1, 'r1) t -> ('v, 's2, 'r2) t -> ('v, 's1 * 's2, 'r1 * 'r2) t
(** Compute two aggregates of the same input in one pass. *)

val contramap : ('w -> 'v) -> ('v, 's, 'r) t -> ('w, 's, 'r) t
(** Adapt the input value type. *)

val map_output : ('r -> 'q) -> ('v, 's, 'r) t -> ('v, 's, 'q) t

val state_bytes : _ t -> int
(** The paper's per-aggregate state cost model (Section 6): 4 bytes for
    count/sum/min/max (plus an empty-marker bit, which we fold into the
    4), 8 for average.  Used by the memory instrumentation. *)

val variance : (float, int * float * float, float option) t
(** Population variance; state is (count, sum, sum of squares). *)

val stddev : (float, int * float * float, float option) t
(** Population standard deviation (square root of {!variance}). *)
