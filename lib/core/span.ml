open Temporal

let quantize ~origin ~horizon ~granule data =
  Seq.map
    (fun (iv, v) ->
      if
        Chronon.( < ) (Interval.start iv) origin
        || Chronon.( > ) (Interval.stop iv) horizon
      then
        invalid_arg
          (Printf.sprintf "Span.eval: %s outside [%s,%s]"
             (Interval.to_string iv) (Chronon.to_string origin)
             (Chronon.to_string horizon));
      let lo, hi = Granule.quantize granule iv in
      let start = Chronon.of_int lo in
      let stop =
        match hi with
        | Some hi -> Chronon.of_int hi
        | None -> Chronon.forever
      in
      (Interval.make start stop, v))
    data

(* Maps a segment of the span-index timeline back to real, span-aligned
   chronons, clipped to [origin,horizon]. *)
let unquantize ~origin ~horizon ~granule iv =
  let lo = Chronon.to_int (Interval.start iv) in
  let start =
    Chronon.max origin (Interval.start (Granule.span_of granule lo))
  in
  let stop =
    if Chronon.is_finite (Interval.stop iv) then
      let hi = Chronon.to_int (Interval.stop iv) in
      Chronon.min horizon (Interval.stop (Granule.span_of granule hi))
    else horizon
  in
  Interval.make start stop

let eval_aux ?(origin = Chronon.origin) ?(horizon = Chronon.forever)
    ?(algorithm = Engine.Aggregation_tree) ?instrument ~granule monoid data =
  if Chronon.( > ) (granule : Granule.t).Granule.anchor origin then
    invalid_arg "Span.eval: granule anchor after origin";
  let index_origin = Chronon.of_int (Granule.index_of granule origin) in
  let index_horizon =
    if Chronon.is_finite horizon then
      Chronon.of_int (Granule.index_of granule horizon)
    else Chronon.forever
  in
  let quantized = quantize ~origin ~horizon ~granule data in
  let index_timeline =
    Engine.eval ~origin:index_origin ~horizon:index_horizon ?instrument
      algorithm monoid quantized
  in
  Timeline.of_list
    (List.map
       (fun (iv, r) -> (unquantize ~origin ~horizon ~granule iv, r))
       (Timeline.to_list index_timeline))

let eval ?origin ?horizon ?algorithm ~granule monoid data =
  eval_aux ?origin ?horizon ?algorithm ~granule monoid data

let eval_robust ?(origin = Chronon.origin) ?(horizon = Chronon.forever)
    ?(algorithm = Engine.Aggregation_tree) ?on_error ?memory_budget
    ?deadline_ms ?profile ~granule monoid data =
  if Chronon.( > ) (granule : Granule.t).Granule.anchor origin then
    Error
      (Engine.Eval_failed "Span.eval: granule anchor after origin")
  else
    let index_origin = Chronon.of_int (Granule.index_of granule origin) in
    let index_horizon =
      if Chronon.is_finite horizon then
        Chronon.of_int (Granule.index_of granule horizon)
      else Chronon.forever
    in
    let quantized = quantize ~origin ~horizon ~granule data in
    Result.map
      (fun (index_timeline, degradations) ->
        ( Timeline.of_list
            (List.map
               (fun (iv, r) -> (unquantize ~origin ~horizon ~granule iv, r))
               (Timeline.to_list index_timeline)),
          degradations ))
      (Engine.eval_robust ~origin:index_origin ~horizon:index_horizon
         ?on_error ?memory_budget ?deadline_ms ?profile algorithm monoid
         quantized)

let eval_with_stats ?origin ?horizon ?algorithm ~granule monoid data =
  let inst =
    Instrument.create
      ~node_bytes:
        (Engine.node_bytes
           (Option.value algorithm ~default:Engine.Aggregation_tree))
      ()
  in
  let timeline =
    eval_aux ?origin ?horizon ?algorithm ~instrument:inst ~granule monoid data
  in
  (timeline, Instrument.snapshot inst)
