open Temporal

let check_interval origin horizon iv =
  if
    Chronon.( < ) (Interval.start iv) origin
    || Chronon.( > ) (Interval.stop iv) horizon
  then
    invalid_arg
      (Printf.sprintf "Sweep: %s outside [%s,%s]" (Interval.to_string iv)
         (Chronon.to_string origin)
         (Chronon.to_string horizon))

(* LSD radix sort of [points.(0 .. len-1)] (non-negative ints — chronons
   are never negative), permuting [slots] in tandem so each sorted point
   still knows which tuple endpoint produced it.  8-bit digits; the
   number of counting passes adapts to the largest value, so typical
   lifespans (~1M instants) sort in three passes of pure array traffic —
   far cheaper than a comparison sort's ~n log n closure calls. *)
let radix_sort points slots len =
  let max_v = ref 0 in
  for i = 0 to len - 1 do
    if Array.unsafe_get points i > !max_v then
      max_v := Array.unsafe_get points i
  done;
  let tmp_p = Array.make len 0 and tmp_s = Array.make len 0 in
  let count = Array.make 256 0 in
  let src_p = ref points and src_s = ref slots in
  let dst_p = ref tmp_p and dst_s = ref tmp_s in
  let shift = ref 0 in
  (* The shift bound matters: keys can be [max_int] (a forever stop
     saturates there), and a hardware shift of 64 wraps to 0, so the
     [asr] alone would never reach a zero quotient. *)
  while !shift < Sys.int_size && !max_v asr !shift > 0 do
    Array.fill count 0 256 0;
    let sp = !src_p and ss = !src_s and dp = !dst_p and ds = !dst_s in
    for i = 0 to len - 1 do
      let d = (Array.unsafe_get sp i asr !shift) land 0xff in
      Array.unsafe_set count d (Array.unsafe_get count d + 1)
    done;
    let acc = ref 0 in
    for d = 0 to 255 do
      let c = Array.unsafe_get count d in
      Array.unsafe_set count d !acc;
      acc := !acc + c
    done;
    for i = 0 to len - 1 do
      let v = Array.unsafe_get sp i in
      let d = (v asr !shift) land 0xff in
      let pos = Array.unsafe_get count d in
      Array.unsafe_set count d (pos + 1);
      Array.unsafe_set dp pos v;
      Array.unsafe_set ds pos (Array.unsafe_get ss i)
    done;
    let p = !src_p and s = !src_s in
    src_p := !dst_p;
    src_s := !dst_s;
    dst_p := p;
    dst_s := s;
    shift := !shift + 8
  done;
  if !src_p != points then begin
    Array.blit !src_p 0 points 0 len;
    Array.blit !src_s 0 slots 0 len
  end

(* Collect the constant-interval start points as a flat, sorted, unique
   int array: the origin plus, for every tuple [s,e], s (where the tuple
   enters) and e+1 (where it leaves), clipped to (origin, horizon].
   Also returns [rank], mapping tuple endpoints to bucket indices:
   [rank.(2i)] is the bucket where tuple [i] enters (0 when its start is
   clipped to the origin) and [rank.(2i + 1)] the bucket of its exit
   boundary — only meaningful when that exit was recorded, i.e. when the
   stop is finite and before the horizon.  Carrying the ranks out of the
   sort means the scatter passes need no per-tuple binary searches. *)
let boundary_array ~origin ~horizon tuples =
  let n = Array.length tuples in
  let len = (2 * n) + 1 in
  let points = Array.make len 0 in
  let slots = Array.make len (-1) in
  points.(0) <- Chronon.to_int origin;
  let filled = ref 1 in
  Array.iteri
    (fun t (iv, _) ->
      check_interval origin horizon iv;
      let s = Interval.start iv in
      if Chronon.( > ) s origin then begin
        points.(!filled) <- Chronon.to_int s;
        slots.(!filled) <- 2 * t;
        incr filled
      end;
      let e = Interval.stop iv in
      if Chronon.is_finite e && Chronon.( < ) e horizon then begin
        points.(!filled) <- Chronon.to_int e + 1;
        slots.(!filled) <- (2 * t) + 1;
        incr filled
      end)
    tuples;
  radix_sort points slots !filled;
  (* Dedup in place, assigning each endpoint its bucket as we go.  The
     origin is the strict minimum (every recorded point exceeds it), so
     points.(0) survives and unrecorded entry slots default to bucket 0. *)
  let rank = Array.make (2 * n) 0 in
  let m = ref 1 in
  for i = 1 to !filled - 1 do
    if points.(i) <> points.(!m - 1) then begin
      points.(!m) <- points.(i);
      incr m
    end;
    let s = slots.(i) in
    if s >= 0 then rank.(s) <- !m - 1
  done;
  (Array.sub points 0 !m, rank)

(* Invertible path: scatter each tuple as a +state delta at its entry
   bucket and an (inverse state) delta at its exit bucket, then emit the
   running combination in one left-to-right sweep (delta summation). *)
let eval_invertible ~horizon ~inst ~inverse monoid tuples (starts, rank) =
  let m = Array.length starts in
  let deltas = Array.make m monoid.Monoid.empty in
  for _ = 1 to m do
    Instrument.alloc inst
  done;
  Array.iteri
    (fun t (iv, v) ->
      let st = monoid.Monoid.inject v in
      let enter = rank.(2 * t) in
      deltas.(enter) <- monoid.Monoid.combine deltas.(enter) st;
      let e = Interval.stop iv in
      if Chronon.is_finite e && Chronon.( < ) e horizon then begin
        let exit = rank.((2 * t) + 1) in
        deltas.(exit) <- monoid.Monoid.combine deltas.(exit) (inverse st)
      end)
    tuples;
  let state = ref monoid.Monoid.empty in
  let values =
    Array.map
      (fun delta ->
        state := monoid.Monoid.combine !state delta;
        !state)
      deltas
  in
  values

(* Non-invertible path (min/max): a flat segment tree over the constant
   intervals.  Each tuple's state is combined into the O(log m) canonical
   nodes covering its bucket range; a single top-down re-combination pass
   then pushes every node's state into its leaves.  O(n log m + m) with
   all state in two flat arrays — no retraction needed, so idempotent
   semilattices are fine. *)
let eval_segment_tree ~horizon ~inst monoid tuples (starts, rank) =
  let m = Array.length starts in
  let size =
    let rec pow2 s = if s >= m then s else pow2 (2 * s) in
    pow2 1
  in
  let tree = Array.make (2 * size) monoid.Monoid.empty in
  for _ = 1 to 2 * size do
    Instrument.alloc inst
  done;
  Array.iteri
    (fun t (iv, v) ->
      let st = monoid.Monoid.inject v in
      let first = rank.(2 * t) in
      let e = Interval.stop iv in
      let last =
        (* The bucket containing a finite stop [e] sits one before the
           exit boundary [e + 1]; a tuple reaching the horizon covers
           through the last bucket. *)
        if Chronon.is_finite e && Chronon.( < ) e horizon then
          rank.((2 * t) + 1) - 1
        else m - 1
      in
      (* Combine [st] into the canonical cover of [first, last]. *)
      let lo = ref (first + size) and hi = ref (last + size + 1) in
      while !lo < !hi do
        if !lo land 1 = 1 then begin
          tree.(!lo) <- monoid.Monoid.combine tree.(!lo) st;
          incr lo
        end;
        if !hi land 1 = 1 then begin
          decr hi;
          tree.(!hi) <- monoid.Monoid.combine tree.(!hi) st
        end;
        lo := !lo asr 1;
        hi := !hi asr 1
      done)
    tuples;
  (* Push every internal node's pending state down to its children; the
     monoid is commutative, so the order of combination is irrelevant. *)
  for node = 1 to size - 1 do
    let l = 2 * node and r = (2 * node) + 1 in
    tree.(l) <- monoid.Monoid.combine tree.(l) tree.(node);
    tree.(r) <- monoid.Monoid.combine tree.(r) tree.(node)
  done;
  Array.init m (fun i -> tree.(size + i))

let eval_states ?(origin = Chronon.origin) ?(horizon = Chronon.forever)
    ?instrument monoid data =
  let inst =
    match instrument with Some i -> i | None -> Instrument.create ()
  in
  let tuples = Array.of_seq data in
  (* The endpoint events: two per tuple, counted against the same 16-byte
     node model the other algorithms use so the memory tables compare. *)
  for _ = 1 to 2 * Array.length tuples do
    Instrument.alloc inst
  done;
  let (starts, _) as boundaries = boundary_array ~origin ~horizon tuples in
  let values =
    match monoid.Monoid.inverse with
    | Some inverse ->
        eval_invertible ~horizon ~inst ~inverse monoid tuples boundaries
    | None -> eval_segment_tree ~horizon ~inst monoid tuples boundaries
  in
  (starts, values)

let eval ?origin ?horizon ?instrument monoid data =
  let horizon' = Option.value horizon ~default:Chronon.forever in
  let starts, values = eval_states ?origin ?horizon ?instrument monoid data in
  let m = Array.length starts in
  Timeline.init m (fun i ->
      let start = Chronon.of_int starts.(i) in
      let stop =
        if i + 1 < m then Chronon.of_int (starts.(i + 1) - 1) else horizon'
      in
      (Interval.make start stop, monoid.Monoid.output values.(i)))

let eval_with_stats ?origin ?horizon monoid data =
  let inst = Instrument.create () in
  let timeline = eval ?origin ?horizon ~instrument:inst monoid data in
  (timeline, Instrument.snapshot inst)
