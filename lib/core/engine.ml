open Temporal

type algorithm =
  | Linked_list
  | Aggregation_tree
  | Korder_tree of { k : int }
  | Balanced_tree
  | Two_scan
  | Sweep
  | Parallel of { domains : int; inner : algorithm }

let rec name = function
  | Linked_list -> "linked-list"
  | Aggregation_tree -> "aggregation-tree"
  | Korder_tree { k } -> Printf.sprintf "ktree(%d)" k
  | Balanced_tree -> "balanced-tree"
  | Two_scan -> "two-scan"
  | Sweep -> "sweep"
  | Parallel { domains; inner } ->
      Printf.sprintf "parallel(%d,%s)" domains (name inner)

let of_string s =
  (* Accept underscores for contexts (like TSQL identifiers) where hyphens
     cannot appear. *)
  let s = String.map (function '_' -> '-' | c -> c) s in
  let err s =
    Error
      (Printf.sprintf
         "unknown algorithm %S (expected linked-list, aggregation-tree, \
          ktree(K), balanced-tree, two-scan, sweep or parallel(D[,ALGO]))"
         s)
  in
  (* The body of [prefix(body)], when [s] has that shape. *)
  let paren_body s prefix =
    let lp = String.length prefix in
    if
      String.length s > lp + 1
      && String.sub s 0 lp = prefix
      && s.[String.length s - 1] = ')'
    then Some (String.sub s lp (String.length s - lp - 1))
    else None
  in
  let rec go s =
    match s with
    | "linked-list" -> Ok Linked_list
    | "aggregation-tree" -> Ok Aggregation_tree
    | "balanced-tree" -> Ok Balanced_tree
    | "two-scan" -> Ok Two_scan
    | "sweep" -> Ok Sweep
    | _ -> (
        match paren_body s "ktree(" with
        | Some body -> (
            match int_of_string_opt body with
            | Some k when k >= 0 -> Ok (Korder_tree { k })
            | Some k ->
                Error
                  (Printf.sprintf
                     "ktree(%d): k must be non-negative (k is a bound on how \
                      far a tuple may sit from its sorted position)"
                     k)
            | None -> err s)
        | None -> (
            match paren_body s "parallel(" with
            | None -> err s
            | Some body -> (
                (* parallel(D) defaults the inner algorithm to the sweep;
                   parallel(D,ALGO) nests, e.g. parallel(4,ktree(1)). *)
                let domains_str, inner =
                  match String.index_opt body ',' with
                  | None -> (body, Ok Sweep)
                  | Some i ->
                      ( String.sub body 0 i,
                        go
                          (String.trim
                             (String.sub body (i + 1)
                                (String.length body - i - 1))) )
                in
                match int_of_string_opt (String.trim domains_str) with
                | Some d when d >= 1 ->
                    Result.map
                      (fun inner -> Parallel { domains = d; inner })
                      inner
                | Some d ->
                    Error
                      (Printf.sprintf
                         "parallel(%d): the domain count must be at least 1" d)
                | None -> err s)))
  in
  go s

let all =
  [ Linked_list; Aggregation_tree; Korder_tree { k = 1 }; Balanced_tree;
    Two_scan; Sweep; Parallel { domains = 2; inner = Sweep } ]

let rec node_bytes = function
  | Balanced_tree -> Balanced_tree.node_bytes
  | Parallel { inner; _ } -> node_bytes inner
  | Linked_list | Aggregation_tree | Korder_tree _ | Two_scan | Sweep -> 16

let rec eval : type v s r.
    ?origin:Chronon.t ->
    ?horizon:Chronon.t ->
    ?instrument:Instrument.t ->
    ?shard_offsets:int array ->
    algorithm ->
    (v, s, r) Monoid.t ->
    (Interval.t * v) Seq.t ->
    r Timeline.t =
 fun ?origin ?horizon ?instrument ?shard_offsets algorithm monoid data ->
  let run () =
    match algorithm with
    | Linked_list -> Linked_list.eval ?origin ?horizon ?instrument monoid data
    | Aggregation_tree -> Agg_tree.eval ?origin ?horizon ?instrument monoid data
    | Korder_tree { k } ->
        Korder_tree.eval ?origin ?horizon ?instrument ~k monoid data
    | Balanced_tree ->
        Balanced_tree.eval ?origin ?horizon ?instrument monoid data
    | Two_scan -> Two_scan.eval ?origin ?horizon ?instrument monoid data
    | Sweep -> Sweep.eval ?origin ?horizon ?instrument monoid data
    | Parallel { domains; inner } ->
        (* Shards evaluate to state timelines (output deferred) so that the
           pairwise merge can run under the monoid's combine.
           [shard_offsets] applies to this outermost parallel level only:
           it aligns evaluation shards with a partitioned relation's
           storage shards; a nested Parallel re-slices its own shard. *)
        let state_monoid = { monoid with Monoid.output = Fun.id } in
        Parallel.eval ?instrument ?offsets:shard_offsets ~domains
          ~eval_shard:(fun ~instrument shard ->
            eval ?origin ?horizon ?instrument inner state_monoid shard)
          monoid data
  in
  (* Recording check here rather than inside [with_span], so the cost
     on the hot path with every sink off is the atomic loads and no
     closure capture of the attrs list. *)
  if Obs.Trace.recording () then
    Obs.Trace.with_span ~attrs:[ ("algorithm", name algorithm) ] "eval" run
  else run ()

let eval_with_stats ?origin ?horizon ?shard_offsets algorithm monoid data =
  let inst = Instrument.create ~node_bytes:(node_bytes algorithm) () in
  let timeline =
    eval ?origin ?horizon ~instrument:inst ?shard_offsets algorithm monoid data
  in
  (timeline, Instrument.snapshot inst)

(* ------------------------------------------------------------------ *)
(* Robust evaluation: budgets, deadlines and declarative fallbacks.   *)
(* ------------------------------------------------------------------ *)

type on_error = Fail | Fallback | Skip

let on_error_to_string = function
  | Fail -> "fail"
  | Fallback -> "fallback"
  | Skip -> "skip"

let on_error_of_string = function
  | "fail" -> Ok Fail
  | "fallback" -> Ok Fallback
  | "skip" -> Ok Skip
  | s ->
      Error
        (Printf.sprintf
           "unknown on-error policy %S (expected fail, fallback or skip)" s)

type degradation = { stage : string; reason : string; action : string }

let degradation_to_string { stage; reason; action } =
  Printf.sprintf "%s: %s; %s" stage reason action

type error =
  | Not_k_ordered of { position : int }
  | Budget_exhausted of { budget_bytes : int; used_bytes : int }
  | Deadline_exhausted of { deadline_ms : float; elapsed_ms : float }
  | Eval_failed of string

let degradations_to_metrics registry ds =
  List.iter
    (fun { stage; _ } ->
      Obs.Metrics.inc
        (Obs.Metrics.counter registry
           ~help:"Recovery events taken by robust evaluation, by failed stage"
           ~labels:[ ("stage", stage) ]
           "tempagg_degradations_total"))
    ds

let error_to_string = function
  | Not_k_ordered { position } ->
      Printf.sprintf
        "input is not k-ordered (tuple %d starts before the emitted \
         frontier); sort the relation, raise k, or use --on-error \
         fallback/skip"
        position
  | Budget_exhausted { budget_bytes; used_bytes } ->
      Printf.sprintf "memory budget exhausted (%d bytes live, budget %d)"
        used_bytes budget_bytes
  | Deadline_exhausted { deadline_ms; elapsed_ms } ->
      Printf.sprintf "deadline exceeded (%.1f ms elapsed, deadline %.1f ms)"
        elapsed_ms deadline_ms
  | Eval_failed msg -> msg

let reason_of_exn = function
  | Korder_tree.Order_violation { position; _ } ->
      Printf.sprintf
        "input not k-ordered (tuple %d starts before the emitted frontier)"
        position
  | Guard.Budget_exceeded { budget_bytes; used_bytes } ->
      Printf.sprintf "memory budget exceeded (%d of %d bytes)" used_bytes
        budget_bytes
  | Guard.Deadline_exceeded { deadline_ms; elapsed_ms } ->
      Printf.sprintf "deadline exceeded (%.1f of %.1f ms)" elapsed_ms
        deadline_ms
  | Invalid_argument msg -> msg
  | e -> Printexc.to_string e

(* The k-ordered tree retries at most up to this k before conceding that
   the input is essentially unsorted and the aggregation tree (which
   needs no order at all) is the right tool. *)
let k_retry_cap = 4096

(* The declarative fallback chain: which algorithm to try next after
   [alg] failed with [exn], or [None] when the failure is terminal.
   Deadlines are always terminal — retrying cannot recover wall-clock
   time already spent. *)
let rec fallback_step exn alg =
  match (alg, exn) with
  | Korder_tree { k }, Korder_tree.Order_violation _ ->
      let k' = if k = 0 then 1 else 2 * k in
      if k' <= k_retry_cap then Some (Korder_tree { k = k' })
      else Some Aggregation_tree
  | ( (Linked_list | Aggregation_tree | Korder_tree _ | Balanced_tree | Two_scan),
      Guard.Budget_exceeded _ ) ->
      (* The flat sweep allocates one slot per distinct endpoint — the
         cheapest memory profile of any algorithm here. *)
      Some Sweep
  | Parallel { domains; inner }, exn ->
      Option.map
        (fun inner -> Parallel { domains; inner })
        (fallback_step exn inner)
  | _ -> None

(* Inline recovery for a single failed shard of a parallel evaluation:
   order violations re-run under the order-oblivious aggregation tree,
   blown budgets under the flat sweep.  Anything else (deadline, real
   bugs) is terminal and propagates. *)
let shard_fallback_algorithm = function
  | Korder_tree.Order_violation _ -> Aggregation_tree
  | Guard.Budget_exceeded _ -> Sweep
  | e -> raise e

let eval_robust : type v s r.
    ?origin:Chronon.t ->
    ?horizon:Chronon.t ->
    ?on_error:on_error ->
    ?memory_budget:int ->
    ?deadline_ms:float ->
    ?profile:Obs.Profile.t ->
    ?shard_offsets:int array ->
    algorithm ->
    (v, s, r) Monoid.t ->
    (Interval.t * v) Seq.t ->
    (r Timeline.t * degradation list, error) result =
 fun ?origin ?horizon ?(on_error = Fallback) ?memory_budget ?deadline_ms
     ?profile ?shard_offsets algorithm monoid data ->
  (* Materialize once so every retry sees the same tuples even if the
     caller's Seq is ephemeral (e.g. a single-pass storage scan). *)
  let mat_t0 = Unix.gettimeofday () in
  let tuples = Array.of_seq data in
  Option.iter
    (fun p ->
      Obs.Profile.set_tuples p (Array.length tuples);
      Obs.Profile.add_phase p "materialize"
        ((Unix.gettimeofday () -. mat_t0) *. 1000.))
    profile;
  let data = Array.to_seq tuples in
  let guard = Guard.create ?memory_budget ?deadline_ms () in
  let degradations = ref [] in
  let note ~stage ~reason ~action =
    let d = { stage; reason; action } in
    degradations := d :: !degradations;
    Option.iter
      (fun p -> Obs.Profile.note_degradation p (degradation_to_string d))
      profile
  in
  (* One attempt with algorithm [alg], under [guard].  Raises on failure;
     the caller decides whether the policy and chain allow a retry. *)
  let attempt alg =
    let attempt_t0 = Unix.gettimeofday () in
    (* With no limits configured and no profile requested, skip the
       instrument entirely so the happy path costs exactly what a plain
       [eval] does (the <3% guard-overhead bar in the bench's [guard]
       section). *)
    let inst =
      if Guard.unlimited guard && profile = None then None
      else begin
        let i = Instrument.create ~node_bytes:(node_bytes alg) () in
        if not (Guard.unlimited guard) then begin
          (* Parallel shards inherit this instrument's hook and run
             concurrently, so each shard is held to an equal split of
             the memory budget (their live bytes add up); the deadline
             clock is shared. *)
          let g =
            match alg with
            | Parallel { domains; _ } ->
                let ways =
                  match shard_offsets with
                  | Some o -> Stdlib.max 1 (Array.length o - 1)
                  | None -> domains
                in
                Guard.split guard ways
            | _ -> guard
          in
          Guard.attach g i
        end;
        Some i
      end
    in
    let data () = Guard.wrap_seq guard data in
    let body () =
      match (alg, on_error) with
      | Korder_tree { k }, Skip ->
          (* Skip mode: drop (and count) each misordered tuple instead of
             abandoning the k-ordered tree. *)
          let t =
            Korder_tree.create ?origin ?horizon ?instrument:inst ~k monoid
          in
          let skipped = ref 0 in
          Seq.iter
            (fun (iv, v) ->
              match Korder_tree.insert t iv v with
              | () -> ()
              | exception Korder_tree.Order_violation _ -> incr skipped)
            (data ());
          let timeline = Korder_tree.finish t in
          if !skipped > 0 then
            note ~stage:(name alg) ~reason:"input not k-ordered"
              ~action:(Printf.sprintf "skipped %d misordered tuples" !skipped);
          timeline
      | Parallel { domains; inner }, (Fallback | Skip) ->
          let state_monoid = { monoid with Monoid.output = Fun.id } in
          let fallback_shard ~shard ~exn ~instrument shard_data =
            let fb = shard_fallback_algorithm exn in
            note
              ~stage:(Printf.sprintf "%s shard %d" (name inner) shard)
              ~reason:(reason_of_exn exn)
              ~action:(Printf.sprintf "re-evaluated inline with %s" (name fb));
            eval ?origin ?horizon ?instrument fb state_monoid shard_data
          in
          Parallel.eval ?instrument:inst ~fallback_shard ?offsets:shard_offsets
            ~domains
            ~eval_shard:(fun ~instrument shard ->
              eval ?origin ?horizon ?instrument inner state_monoid shard)
            monoid (data ())
      | _ ->
          eval ?origin ?horizon ?instrument:inst ?shard_offsets alg monoid
            (data ())
    in
    let body () =
      if Obs.Trace.recording () then
        Obs.Trace.with_span ~attrs:[ ("algorithm", name alg) ] "attempt" body
      else body ()
    in
    (* Record the attempt in the profile whether it succeeded or not:
       a failed attempt's instrument snapshot used to vanish with the
       exception, under-reporting peak memory for fallback chains. *)
    let record outcome =
      Option.iter
        (fun p ->
          let elapsed_ms = (Unix.gettimeofday () -. attempt_t0) *. 1000. in
          match inst with
          | Some i ->
              let s = Instrument.snapshot i in
              Obs.Profile.add_attempt p ~algorithm:(name alg) ~outcome
                ~allocated_nodes:s.Instrument.allocated
                ~peak_live:s.Instrument.peak_live
                ~node_bytes:s.Instrument.node_bytes
                ~peak_bytes:s.Instrument.peak_bytes ~elapsed_ms ()
          | None ->
              Obs.Profile.add_attempt p ~algorithm:(name alg) ~outcome
                ~elapsed_ms ())
        profile
    in
    match body () with
    | timeline ->
        record "ok";
        timeline
    | exception e ->
        record (reason_of_exn e);
        raise e
  in
  let error_of_exn = function
    | Korder_tree.Order_violation { position; _ } -> Not_k_ordered { position }
    | Guard.Budget_exceeded { budget_bytes; used_bytes } ->
        Budget_exhausted { budget_bytes; used_bytes }
    | Guard.Deadline_exceeded { deadline_ms; elapsed_ms } ->
        Deadline_exhausted { deadline_ms; elapsed_ms }
    | Invalid_argument msg -> Eval_failed msg
    | e -> raise e
  in
  let rec go alg =
    match attempt alg with
    | timeline -> Ok (timeline, List.rev !degradations)
    | exception e -> (
        match (on_error, fallback_step e alg) with
        | (Fallback | Skip), Some alg' ->
            note ~stage:(name alg) ~reason:(reason_of_exn e)
              ~action:("retrying with " ^ name alg');
            go alg'
        | _ -> Error (error_of_exn e))
  in
  let run () =
    let eval_t0 = Unix.gettimeofday () in
    let result = go algorithm in
    Option.iter
      (fun p ->
        Obs.Profile.add_phase p "evaluate"
          ((Unix.gettimeofday () -. eval_t0) *. 1000.))
      profile;
    result
  in
  if Obs.Trace.recording () then
    Obs.Trace.with_span
      ~attrs:[ ("algorithm", name algorithm) ]
      "eval-robust" run
  else run ()
