open Temporal

type algorithm =
  | Linked_list
  | Aggregation_tree
  | Korder_tree of { k : int }
  | Balanced_tree
  | Two_scan
  | Sweep
  | Parallel of { domains : int; inner : algorithm }

let rec name = function
  | Linked_list -> "linked-list"
  | Aggregation_tree -> "aggregation-tree"
  | Korder_tree { k } -> Printf.sprintf "ktree(%d)" k
  | Balanced_tree -> "balanced-tree"
  | Two_scan -> "two-scan"
  | Sweep -> "sweep"
  | Parallel { domains; inner } ->
      Printf.sprintf "parallel(%d,%s)" domains (name inner)

let of_string s =
  (* Accept underscores for contexts (like TSQL identifiers) where hyphens
     cannot appear. *)
  let s = String.map (function '_' -> '-' | c -> c) s in
  let err s =
    Error
      (Printf.sprintf
         "unknown algorithm %S (expected linked-list, aggregation-tree, \
          ktree(K), balanced-tree, two-scan, sweep or parallel(D[,ALGO]))"
         s)
  in
  (* The body of [prefix(body)], when [s] has that shape. *)
  let paren_body s prefix =
    let lp = String.length prefix in
    if
      String.length s > lp + 1
      && String.sub s 0 lp = prefix
      && s.[String.length s - 1] = ')'
    then Some (String.sub s lp (String.length s - lp - 1))
    else None
  in
  let rec go s =
    match s with
    | "linked-list" -> Ok Linked_list
    | "aggregation-tree" -> Ok Aggregation_tree
    | "balanced-tree" -> Ok Balanced_tree
    | "two-scan" -> Ok Two_scan
    | "sweep" -> Ok Sweep
    | _ -> (
        match paren_body s "ktree(" with
        | Some body -> (
            match int_of_string_opt body with
            | Some k when k >= 0 -> Ok (Korder_tree { k })
            | Some _ | None -> err s)
        | None -> (
            match paren_body s "parallel(" with
            | None -> err s
            | Some body -> (
                (* parallel(D) defaults the inner algorithm to the sweep;
                   parallel(D,ALGO) nests, e.g. parallel(4,ktree(1)). *)
                let domains_str, inner =
                  match String.index_opt body ',' with
                  | None -> (body, Ok Sweep)
                  | Some i ->
                      ( String.sub body 0 i,
                        go
                          (String.trim
                             (String.sub body (i + 1)
                                (String.length body - i - 1))) )
                in
                match int_of_string_opt (String.trim domains_str) with
                | Some d when d >= 1 ->
                    Result.map
                      (fun inner -> Parallel { domains = d; inner })
                      inner
                | Some _ | None -> err s)))
  in
  go s

let all =
  [ Linked_list; Aggregation_tree; Korder_tree { k = 1 }; Balanced_tree;
    Two_scan; Sweep; Parallel { domains = 2; inner = Sweep } ]

let rec node_bytes = function
  | Balanced_tree -> Balanced_tree.node_bytes
  | Parallel { inner; _ } -> node_bytes inner
  | Linked_list | Aggregation_tree | Korder_tree _ | Two_scan | Sweep -> 16

let rec eval : type v s r.
    ?origin:Chronon.t ->
    ?horizon:Chronon.t ->
    ?instrument:Instrument.t ->
    algorithm ->
    (v, s, r) Monoid.t ->
    (Interval.t * v) Seq.t ->
    r Timeline.t =
 fun ?origin ?horizon ?instrument algorithm monoid data ->
  match algorithm with
  | Linked_list -> Linked_list.eval ?origin ?horizon ?instrument monoid data
  | Aggregation_tree -> Agg_tree.eval ?origin ?horizon ?instrument monoid data
  | Korder_tree { k } ->
      Korder_tree.eval ?origin ?horizon ?instrument ~k monoid data
  | Balanced_tree -> Balanced_tree.eval ?origin ?horizon ?instrument monoid data
  | Two_scan -> Two_scan.eval ?origin ?horizon ?instrument monoid data
  | Sweep -> Sweep.eval ?origin ?horizon ?instrument monoid data
  | Parallel { domains; inner } ->
      (* Shards evaluate to state timelines (output deferred) so that the
         pairwise merge can run under the monoid's combine. *)
      let state_monoid = { monoid with Monoid.output = Fun.id } in
      Parallel.eval ?instrument ~domains
        ~eval_shard:(fun ~instrument shard ->
          eval ?origin ?horizon ?instrument inner state_monoid shard)
        monoid data

let eval_with_stats ?origin ?horizon algorithm monoid data =
  let inst = Instrument.create ~node_bytes:(node_bytes algorithm) () in
  let timeline = eval ?origin ?horizon ~instrument:inst algorithm monoid data in
  (timeline, Instrument.snapshot inst)
