(** Multicore divide-and-conquer evaluation over OCaml 5 domains.

    Temporal aggregation is embarrassingly parallel in the tuples: shard
    the relation, evaluate each shard with {e any} inner algorithm into a
    timeline of partial-aggregate {e states} over the full time-line, and
    fold the shard timelines together with {!Timeline.merge} under the
    monoid's [combine] — commutativity and associativity (the same laws
    the aggregation tree relies on) make the result independent of the
    sharding.

    Sharding is contiguous, so a time-sorted or k-ordered input stays
    sorted/k-ordered within each shard and the k-ordered tree remains a
    valid inner algorithm.

    This module is algorithm-agnostic: the caller supplies [eval_shard]
    (normally a closure over {!Engine.eval} with the inner algorithm and
    the state monoid [{ m with output = Fun.id }]); {!Engine.eval}'s
    [Parallel] variant is the packaged form. *)

open Temporal

val eval :
  ?instrument:Instrument.t ->
  ?fallback_shard:
    (shard:int ->
    exn:exn ->
    instrument:Instrument.t option ->
    (Interval.t * 'v) Seq.t ->
    's Timeline.t) ->
  ?offsets:int array ->
  domains:int ->
  eval_shard:
    (instrument:Instrument.t option ->
    (Interval.t * 'v) Seq.t ->
    's Timeline.t) ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t
(** [eval ~domains ~eval_shard monoid data] splits [data] into at most
    [domains] contiguous shards, evaluates shard 0 on the current domain
    and the rest on freshly spawned domains, then merges the shard
    timelines pairwise and applies [monoid.output].

    [eval_shard] must return a timeline of monoid {e states} (not
    outputs) covering the same [[origin, horizon]] stretch for every
    shard, including the empty shard.  Each shard gets its own
    {!Instrument} (no cross-domain mutation); their snapshots are
    absorbed into the parent instrument after the join, with peaks
    summed, since the shards ran concurrently.

    With [domains = 1] (or fewer tuples than domains beyond a point) the
    evaluation runs inline with no domain overhead.

    [offsets], when given, fixes the shard boundaries explicitly instead
    of the default equal-count slicing: an array [[|0; o1; ...; n|]] of
    nondecreasing indices into the materialized input, one shard per
    adjacent pair (empty shards allowed) — how a time-partitioned
    relation keeps its evaluation shards aligned with its storage
    shards.  [domains] is ignored for slicing when [offsets] is present
    (one domain runs per shard).
    @raise Invalid_argument if [offsets] does not rise from [0] to the
    input length.

    @raise Invalid_argument if [domains < 1].  Without [fallback_shard],
    exceptions raised by a shard (e.g. {!Korder_tree.Order_violation})
    are re-raised after all domains have been joined.

    With [fallback_shard], a failed shard does {e not} abort the query:
    after every domain has been joined, each failed shard is re-evaluated
    inline on the calling domain by
    [fallback_shard ~shard ~exn ~instrument data] — [exn] being the
    shard's original failure, [instrument] its (reset) per-shard
    instrument, [data] the same contiguous slice — and the recovered
    timeline takes the shard's place in the merge.  An exception raised
    by the fallback itself propagates.  Shard instruments inherit the
    parent instrument's {!Instrument.hook}, so {!Guard} budgets apply
    inside shards (each shard checked against its own live bytes). *)
