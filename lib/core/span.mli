(** Temporal grouping by span (paper, Sections 2 and 7).

    Instead of grouping by instant, the time-line is partitioned into
    fixed-length spans (e.g. years) and the aggregate computed over each
    span: a tuple contributes to every span its interval overlaps.  The
    paper notes ("future work") that when the number of spans is much
    smaller than the number of constant intervals, far fewer buckets need
    to be maintained and even the slower algorithms become adequate.

    Implementation: tuple intervals are quantized to span indices and any
    instant-grouping algorithm is run in the (much smaller) span-index
    domain; results are mapped back to span-aligned intervals. *)

open Temporal

val eval :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?algorithm:Engine.algorithm ->
  granule:Granule.t ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t
(** The result timeline's segment boundaries are span-aligned (clipped to
    [[origin, horizon]]); each segment's value is the aggregate over the
    tuples overlapping any instant of that segment's spans.  The default
    algorithm is the aggregation tree.
    @raise Invalid_argument if the granule's anchor is after [origin], or
    an interval is not within [[origin, horizon]]. *)

val eval_with_stats :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?algorithm:Engine.algorithm ->
  granule:Granule.t ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t * Instrument.snapshot

val eval_robust :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?algorithm:Engine.algorithm ->
  ?on_error:Engine.on_error ->
  ?memory_budget:int ->
  ?deadline_ms:float ->
  ?profile:Obs.Profile.t ->
  granule:Granule.t ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  ('r Timeline.t * Engine.degradation list, Engine.error) result
(** {!eval} through {!Engine.eval_robust}: budgets, deadlines and the
    fallback chain apply to the span-index evaluation; a bad granule
    anchor surfaces as [Error (Eval_failed _)] rather than an exception
    (a quantization error on an out-of-range interval still raises, as
    in {!eval}). *)
