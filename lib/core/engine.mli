(** Uniform dispatch over the temporal-aggregation algorithms. *)

open Temporal

type algorithm =
  | Linked_list  (** Section 4.2 — the naive one-scan list. *)
  | Aggregation_tree  (** Section 5.1 — best for randomly ordered input. *)
  | Korder_tree of { k : int }
      (** Section 5.3 — garbage-collected tree for k-ordered input. *)
  | Balanced_tree  (** Section 7 future work — AVL-balanced variant. *)
  | Two_scan  (** Section 4.1 — Tuma's prior-work baseline. *)
  | Sweep
      (** Flat-array endpoint sweep (see {!Sweep}): delta summation for
          invertible monoids, flat segment tree otherwise. *)
  | Parallel of { domains : int; inner : algorithm }
      (** Divide-and-conquer over OCaml 5 domains (see {!Parallel}):
          shard, evaluate each shard with [inner], merge pairwise. *)

val name : algorithm -> string
(** E.g. ["linked-list"], ["ktree(4)"], ["parallel(4,sweep)"]. *)

val of_string : string -> (algorithm, string) result
(** Inverse of {!name}; accepts ["ktree(K)"] with any non-negative K,
    ["parallel(D)"] (inner defaulting to the sweep) and
    ["parallel(D,ALGO)"] with any nested algorithm, and underscores in
    place of hyphens (for TSQL [USING] hints, where an identifier cannot
    contain a hyphen). *)

val all : algorithm list
(** One representative of each family (Korder with [k = 1]; Parallel with
    2 domains over the sweep). *)

val node_bytes : algorithm -> int
(** Per-node memory cost: 16 except {!Balanced_tree} (20); {!Parallel}
    inherits its inner algorithm's cost. *)

val eval :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?instrument:Instrument.t ->
  ?shard_offsets:int array ->
  algorithm ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t
(** Run the chosen algorithm.

    [shard_offsets] (meaningful only when [algorithm] is [Parallel _])
    pins the outermost parallel level's shard boundaries to explicit
    indices of the input — see {!Parallel.eval}'s [offsets].  A
    time-partitioned relation passes its shard joints here so each
    storage shard is evaluated by exactly one domain.
    @raise Korder_tree.Order_violation from [Korder_tree _] when the input
    is not k-ordered for the configured k. *)

val eval_with_stats :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?shard_offsets:int array ->
  algorithm ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t * Instrument.snapshot

(** {1 Robust evaluation}

    {!eval_robust} wraps {!eval} with per-query resource budgets (see
    {!Guard}) and a declarative fallback chain, so that recoverable
    failures degrade the {e plan} rather than the {e answer}:

    - {!Korder_tree.Order_violation} retries with a doubled k (capped at
      4096), then concedes to the order-oblivious aggregation tree;
    - {!Guard.Budget_exceeded} on any pointer-based structure retries
      with the flat {!Sweep} (one slot per distinct endpoint — the
      cheapest memory profile here);
    - a failed shard of a {!Parallel} evaluation is re-evaluated inline
      (order violation → aggregation tree, blown budget → sweep) without
      aborting the other shards;
    - {!Guard.Deadline_exceeded} is always terminal — retrying cannot
      recover wall-clock time already spent.

    Every recovery step is recorded as a {!degradation}; nothing degrades
    silently. *)

type on_error =
  | Fail  (** Propagate the first failure as an [Error]. *)
  | Fallback  (** Walk the fallback chain; [Error] only when it runs dry. *)
  | Skip
      (** Like [Fallback], but a top-level k-ordered tree drops (and
          counts) misordered tuples instead of abandoning the attempt. *)

val on_error_to_string : on_error -> string
val on_error_of_string : string -> (on_error, string) result

type degradation = { stage : string; reason : string; action : string }
(** One recovery event: which stage failed, why, and what was done. *)

val degradation_to_string : degradation -> string

val degradations_to_metrics : Obs.Metrics.t -> degradation list -> unit
(** Count each degradation into the [tempagg_degradations_total] counter,
    labelled by the stage that failed. *)

type error =
  | Not_k_ordered of { position : int }
  | Budget_exhausted of { budget_bytes : int; used_bytes : int }
  | Deadline_exhausted of { deadline_ms : float; elapsed_ms : float }
  | Eval_failed of string

val error_to_string : error -> string

val eval_robust :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?on_error:on_error ->
  ?memory_budget:int ->
  ?deadline_ms:float ->
  ?profile:Obs.Profile.t ->
  ?shard_offsets:int array ->
  algorithm ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  ('r Timeline.t * degradation list, error) result
(** [eval_robust alg monoid data] evaluates under a {!Guard} built from
    [memory_budget] (bytes of algorithm state) and [deadline_ms]
    (wall-clock, spanning all retries — a retry does not restart the
    clock).  [on_error] defaults to [Fallback].  The input is
    materialized once up front so retries replay identical tuples even
    from an ephemeral (single-pass) sequence.  Degradations are listed
    oldest first.  Exceptions that the chain cannot interpret (genuine
    bugs) propagate unchanged.

    [shard_offsets] aligns a [Parallel _] plan's shards with a
    partitioned relation's storage shards (see {!eval}); under a
    [Parallel _] plan the memory budget is additionally {e split} evenly
    across the concurrent shards ({!Guard.split}), since their live
    bytes accumulate at the same time.

    When [profile] is given, every attempt — including ones a fallback
    aborted — is recorded into it with its instrument snapshot, along
    with input size, degradations and materialize/evaluate phase times.
    Profiling forces per-attempt instrumentation even without budgets,
    so it costs what [eval_with_stats] costs. *)
