(** Uniform dispatch over the temporal-aggregation algorithms. *)

open Temporal

type algorithm =
  | Linked_list  (** Section 4.2 — the naive one-scan list. *)
  | Aggregation_tree  (** Section 5.1 — best for randomly ordered input. *)
  | Korder_tree of { k : int }
      (** Section 5.3 — garbage-collected tree for k-ordered input. *)
  | Balanced_tree  (** Section 7 future work — AVL-balanced variant. *)
  | Two_scan  (** Section 4.1 — Tuma's prior-work baseline. *)
  | Sweep
      (** Flat-array endpoint sweep (see {!Sweep}): delta summation for
          invertible monoids, flat segment tree otherwise. *)
  | Parallel of { domains : int; inner : algorithm }
      (** Divide-and-conquer over OCaml 5 domains (see {!Parallel}):
          shard, evaluate each shard with [inner], merge pairwise. *)

val name : algorithm -> string
(** E.g. ["linked-list"], ["ktree(4)"], ["parallel(4,sweep)"]. *)

val of_string : string -> (algorithm, string) result
(** Inverse of {!name}; accepts ["ktree(K)"] with any non-negative K,
    ["parallel(D)"] (inner defaulting to the sweep) and
    ["parallel(D,ALGO)"] with any nested algorithm, and underscores in
    place of hyphens (for TSQL [USING] hints, where an identifier cannot
    contain a hyphen). *)

val all : algorithm list
(** One representative of each family (Korder with [k = 1]; Parallel with
    2 domains over the sweep). *)

val node_bytes : algorithm -> int
(** Per-node memory cost: 16 except {!Balanced_tree} (20); {!Parallel}
    inherits its inner algorithm's cost. *)

val eval :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?instrument:Instrument.t ->
  algorithm ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t
(** Run the chosen algorithm.
    @raise Korder_tree.Order_violation from [Korder_tree _] when the input
    is not k-ordered for the configured k. *)

val eval_with_stats :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  algorithm ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t * Instrument.snapshot
