(** Memory instrumentation for the aggregation algorithms.

    The paper's Section 6.2 compares algorithms by the number of live
    "nodes" times a per-node byte cost: 16 bytes for both tree algorithms
    (two child pointers, an aggregate value, a split timestamp) and 16 for
    the linked list (two timestamps, an aggregate value, a next pointer).
    Each algorithm calls {!alloc}/{!free} as it creates and garbage-collects
    nodes; {!peak_bytes} then reproduces the Figure 9 measurements. *)

type t

val create : ?node_bytes:int -> unit -> t
(** [node_bytes] defaults to 16, the paper's cost for tree and list nodes. *)

val alloc : t -> unit
val free : t -> unit
val free_many : t -> int -> unit

val set_hook : t -> (t -> unit) option -> unit
(** Install (or clear) a hook invoked after every {!alloc}, with the
    allocation already counted.  This is how {!Guard} piggybacks its
    resource checks on the paper's node accounting: the hook may raise
    (e.g. {!Guard.Budget_exceeded}) to abort a runaway evaluation at the
    exact allocation that crossed the budget.  Survives {!reset}. *)

val hook : t -> (t -> unit) option
(** The installed hook, so child instruments (e.g. {!Parallel} shards)
    can inherit the parent's guard. *)

val allocated : t -> int
(** Total nodes ever allocated. *)

val live : t -> int
(** Nodes currently live. *)

val peak_live : t -> int
(** High-water mark of {!live}. *)

val node_bytes : t -> int
val peak_bytes : t -> int
(** [peak_live * node_bytes] — the paper's main-memory requirement. *)

val reset : t -> unit

type snapshot = {
  allocated : int;
  peak_live : int;
  node_bytes : int;
  peak_bytes : int;
}

val snapshot : t -> snapshot

val absorb : t -> snapshot -> unit
(** Fold a child instrument's snapshot into [t]: the child's allocations
    are added to [t]'s total, and its peak joins [t]'s live count (so
    absorbing the snapshots of several concurrently-running children
    before releasing them with {!free_many} makes [t]'s peak the sum of
    the children's peaks — the honest multicore accounting, since the
    children's states were live at the same time). *)

val pp_snapshot : Format.formatter -> snapshot -> unit

val snapshot_to_metrics : ?name:string -> Obs.Metrics.t -> snapshot -> unit
(** Fold a snapshot into registry gauges [<name>_allocated_nodes],
    [<name>_peak_live_nodes], [<name>_node_bytes] and [<name>_peak_bytes]
    ([name] defaults to ["tempagg_engine"]). *)
