(** Flat-array endpoint sweep — the cache-friendly modern baseline.

    Every algorithm from the 1995 paper is a pointer-chasing linked
    structure.  On modern hardware a flat sorted-endpoint sweep wins by a
    wide margin: materialize each tuple as two endpoint events in an int
    array, sort it (one cache-friendly pass over unboxed ints), and emit
    the constant intervals in a single scan.

    Two evaluation paths, chosen by {!Monoid.invertible}:

    - {e delta summation} for invertible monoids (count/sum/avg/variance):
      each tuple scatters [+inject v] at its entry bucket and
      [inverse (inject v)] at its exit bucket; a single prefix-combine
      sweep then yields every constant interval's state.  O(n log n) for
      the sort, O(n log m) to scatter, O(m) to sweep.

    - a {e flat segment tree} over the constant intervals for
      non-invertible monoids (min/max): each tuple combines into the
      O(log m) canonical nodes covering its bucket range, and one
      top-down pass re-combines node states into the leaves.
      O(n log m + m), still entirely in flat arrays, at the price of a
      2x-padded state array.

    Both paths allocate the endpoint events and the per-bucket states
    through {!Instrument} under the same 16-byte node model as the
    paper's algorithms, so the memory tables stay comparable. *)

open Temporal

val radix_sort : int array -> int array -> int -> unit
(** [radix_sort points slots len] sorts [points.(0 .. len-1)] (which must
    be non-negative) ascending in place, permuting [slots] in tandem so
    each sorted point still knows which tuple produced it.  LSD radix
    with 8-bit digits; the number of counting passes adapts to the
    largest value.  This is the sort under the delta-sweep's endpoint
    stream; the interval-join sweep reuses it for its start-event
    streams. *)

val eval :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?instrument:Instrument.t ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t
(** The input sequence is materialized internally; order is irrelevant.
    @raise Invalid_argument if an interval is not within
    [[origin, horizon]]. *)

val eval_with_stats :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t * Instrument.snapshot
