open Temporal

(* Contiguous shards so that any ordering property of the input (time
   sortedness, k-orderedness) survives sharding: a contiguous slice of a
   k-ordered sequence is itself k-ordered, so a k-ordered tree is a valid
   inner algorithm. *)
let shard_bounds ~shards n i = (i * n / shards, (i + 1) * n / shards)

let eval ?instrument ?fallback_shard ?offsets ~domains ~eval_shard monoid data
    =
  if domains < 1 then invalid_arg "Parallel.eval: domains must be >= 1";
  let tuples = Array.of_seq data in
  let n = Array.length tuples in
  (* Explicit shard boundaries (e.g. a time-partitioned relation's shard
     joints) override the default equal-count slicing; each offsets
     window [o(i), o(i+1)) is one shard, empty shards allowed. *)
  (match offsets with
  | None -> ()
  | Some o ->
      let ok =
        Array.length o >= 2
        && o.(0) = 0
        && o.(Array.length o - 1) = n
        && Array.for_all Fun.id (Array.init (Array.length o - 1)
             (fun i -> o.(i) <= o.(i + 1)))
      in
      if not ok then
        invalid_arg
          (Printf.sprintf
             "Parallel.eval: offsets must rise from 0 to %d (the input \
              length)"
             n));
  let d =
    match offsets with
    | Some o -> Array.length o - 1
    | None -> if n = 0 then 1 else min domains n
  in
  (* Spawned domains start with an empty span stack, so capture the
     parent span and the request trace id here and attach each shard
     span to them explicitly. *)
  let span_parent = Obs.Trace.current () in
  let span_trace = Obs.Trace.current_trace () in
  let shard_span i f =
    Obs.Trace.with_span ?parent:span_parent ~trace:span_trace
      ~attrs:[ ("shard", string_of_int i) ]
      "shard" f
  in
  if d = 1 then
    (* No parallelism to extract: evaluate inline, no domain overhead. *)
    Timeline.map monoid.Monoid.output
      (shard_span 0 (fun () -> eval_shard ~instrument (Array.to_seq tuples)))
  else begin
    let node_bytes =
      match instrument with
      | Some i -> Instrument.node_bytes i
      | None -> 16
    in
    let shard_instruments =
      Array.init d (fun _ ->
          Option.map
            (fun parent ->
              let inst = Instrument.create ~node_bytes () in
              (* Shards run under the same guard as the parent (each
                 checked against its own live bytes). *)
              Instrument.set_hook inst (Instrument.hook parent);
              inst)
            instrument)
    in
    let shard_seq i =
      let lo, hi =
        match offsets with
        | Some o -> (o.(i), o.(i + 1))
        | None -> shard_bounds ~shards:d n i
      in
      Array.to_seq (Array.sub tuples lo (hi - lo))
    in
    let run i =
      shard_span i (fun () ->
          eval_shard ~instrument:shard_instruments.(i) (shard_seq i))
    in
    let handles =
      Array.init (d - 1) (fun i -> Domain.spawn (fun () -> run (i + 1)))
    in
    let results = Array.make d None in
    let failures = Array.make d None in
    (match run 0 with
    | r -> results.(0) <- Some r
    | exception e -> failures.(0) <- Some e);
    (* Join every domain even if a shard failed, so no domain leaks. *)
    Array.iteri
      (fun i handle ->
        match Domain.join handle with
        | r -> results.(i + 1) <- Some r
        | exception e -> failures.(i + 1) <- Some e)
      handles;
    (* Recovery: with a fallback, each failed shard is re-evaluated
       inline (on this domain, after every join) instead of aborting the
       whole query.  The shard's instrument is reset first — its partial
       counts belong to the abandoned attempt — keeping any guard hook. *)
    (match fallback_shard with
    | None -> (
        match Array.find_opt Option.is_some failures with
        | Some (Some e) -> raise e
        | _ -> ())
    | Some fallback ->
        Array.iteri
          (fun i failure ->
            match failure with
            | None -> ()
            | Some exn ->
                Option.iter Instrument.reset shard_instruments.(i);
                results.(i) <-
                  Some
                    (fallback ~shard:i ~exn ~instrument:shard_instruments.(i)
                       (shard_seq i)))
          failures);
    (* The shards ran concurrently: their peaks were live at the same
       time, so the parent's peak is their sum. *)
    (match instrument with
    | None -> ()
    | Some inst ->
        let total = ref 0 in
        Array.iter
          (function
            | None -> ()
            | Some shard_inst ->
                let s = Instrument.snapshot shard_inst in
                total := !total + s.Instrument.peak_live;
                Instrument.absorb inst s)
          shard_instruments;
        Instrument.free_many inst !total);
    let timeline i =
      match results.(i) with Some t -> t | None -> assert false
    in
    (* Pairwise divide-and-conquer merge: each level halves the number of
       timelines, so every segment is touched O(log d) times. *)
    let rec reduce lo hi =
      if hi - lo = 1 then timeline lo
      else
        let mid = (lo + hi) / 2 in
        Timeline.merge ~combine:monoid.Monoid.combine (reduce lo mid)
          (reduce mid hi)
    in
    Timeline.map monoid.Monoid.output (reduce 0 d)
  end
