(** Per-query resource budgets: peak-memory caps and wall-clock deadlines.

    The paper's algorithms have sharply different resource profiles — the
    aggregation tree is O(n²) time on sorted input and its node count is
    unbounded by the result size, while a mis-guessed k makes the
    k-ordered tree abort outright.  A {!t} turns "runs away" into a
    structured, catchable failure: a {e memory budget} is enforced by
    piggybacking on {!Instrument.alloc} (the same 16-bytes-per-node
    accounting the paper uses for its memory figures), and a {e deadline}
    by cooperative checks in every algorithm's insert loop (each tuple
    pulled from a {!wrap_seq}-wrapped input, and each node allocation,
    ticks the guard; the wall clock is sampled every 256 ticks).

    Both failures raise structured exceptions that {!Engine.eval_robust}
    converts into fallbacks or errors, never silent truncation. *)

exception
  Budget_exceeded of {
    budget_bytes : int;  (** The configured cap. *)
    used_bytes : int;  (** Live bytes at the allocation that crossed it. *)
  }
(** The evaluation's live algorithm state (per the {!Instrument} node
    model) exceeded the memory budget. *)

exception
  Deadline_exceeded of {
    deadline_ms : float;  (** The configured deadline. *)
    elapsed_ms : float;  (** Wall-clock time actually spent. *)
  }
(** The evaluation ran past its wall-clock deadline. *)

type t

val create : ?memory_budget:int -> ?deadline_ms:float -> unit -> t
(** [memory_budget] is in bytes of algorithm state; [deadline_ms] is
    wall-clock milliseconds counted from this call.  Omitted limits are
    not enforced.
    @raise Invalid_argument on a negative budget or deadline. *)

val unlimited : t -> bool
(** No limit was configured: every check is a no-op. *)

val split : t -> int -> t
(** [split t ways] is a shard-local guard for one of [ways] concurrent
    shards of the same evaluation: the memory budget is divided by
    [ways] (concurrent shards' live bytes add up against the query's
    cap), the deadline clock is shared with [t] (it keeps counting from
    the original start).  @raise Invalid_argument if [ways < 1]. *)

val check : t -> unit
(** One cooperative tick.  Cheap (a masked compare); samples the wall
    clock every 256th tick (and on the first).
    @raise Deadline_exceeded when the deadline has passed. *)

val check_instrument : t -> Instrument.t -> unit
(** {!check} plus the memory-budget comparison against the instrument's
    live bytes ([live * node_bytes]).
    @raise Budget_exceeded
    @raise Deadline_exceeded *)

val hook : t -> (Instrument.t -> unit) option
(** The {!Instrument.set_hook} payload: [None] when {!unlimited} (so the
    happy path keeps its bare allocation counters), otherwise
    {!check_instrument} partially applied. *)

val attach : t -> Instrument.t -> unit
(** [attach t inst] installs {!hook} on [inst]. *)

val wrap_seq : t -> 'a Seq.t -> 'a Seq.t
(** Interpose a {!check} before every element — the per-tuple cooperative
    deadline check in each algorithm's insert loop.  The identity when no
    deadline is set. *)

val describe : exn -> string option
(** A human-readable rendering of the two guard exceptions; [None] for
    any other exception. *)
