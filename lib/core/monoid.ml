type ('v, 's, 'r) t = {
  name : string;
  empty : 's;
  inject : 'v -> 's;
  combine : 's -> 's -> 's;
  output : 's -> 'r;
  inverse : ('s -> 's) option;
}

let invertible m = Option.is_some m.inverse

let subtract m =
  Option.map (fun inverse acc s -> m.combine acc (inverse s)) m.inverse

let count =
  {
    name = "count";
    empty = 0;
    inject = (fun _ -> 1);
    combine = ( + );
    output = Fun.id;
    inverse = Some Int.neg;
  }

let sum_int =
  {
    name = "sum";
    empty = 0;
    inject = Fun.id;
    combine = ( + );
    output = Fun.id;
    inverse = Some Int.neg;
  }

let sum_float =
  {
    name = "sum";
    empty = 0.;
    inject = Fun.id;
    combine = ( +. );
    output = Fun.id;
    inverse = Some Float.neg;
  }

let semilattice name better ~compare =
  {
    name;
    empty = None;
    inject = (fun v -> Some v);
    combine =
      (fun a b ->
        match (a, b) with
        | None, x | x, None -> x
        | Some x, Some y -> Some (if better (compare x y) then x else y));
    output = Fun.id;
    (* Semilattices are idempotent, hence never invertible: once a value
       has been absorbed into the state there is no way to retract it. *)
    inverse = None;
  }

let minimum ~compare = semilattice "min" (fun c -> c <= 0) ~compare
let maximum ~compare = semilattice "max" (fun c -> c >= 0) ~compare
let min_int = minimum ~compare:Int.compare
let max_int = maximum ~compare:Int.compare

let avg_int =
  {
    name = "avg";
    empty = (0, 0);
    inject = (fun v -> (v, 1));
    combine = (fun (s1, c1) (s2, c2) -> (s1 + s2, c1 + c2));
    output =
      (fun (s, c) -> if c = 0 then None else Some (float_of_int s /. float_of_int c));
    inverse = Some (fun (s, c) -> (-s, -c));
  }

let avg_float =
  {
    name = "avg";
    empty = (0., 0);
    inject = (fun v -> (v, 1));
    combine = (fun (s1, c1) (s2, c2) -> (s1 +. s2, c1 + c2));
    output = (fun (s, c) -> if c = 0 then None else Some (s /. float_of_int c));
    inverse = Some (fun (s, c) -> (-.s, -c));
  }

let pair a b =
  {
    name = Printf.sprintf "(%s,%s)" a.name b.name;
    empty = (a.empty, b.empty);
    inject = (fun v -> (a.inject v, b.inject v));
    combine = (fun (x1, y1) (x2, y2) -> (a.combine x1 x2, b.combine y1 y2));
    output = (fun (x, y) -> (a.output x, b.output y));
    inverse =
      (match (a.inverse, b.inverse) with
      | Some ia, Some ib -> Some (fun (x, y) -> (ia x, ib y))
      | _ -> None);
  }

let contramap f m = { m with inject = (fun w -> m.inject (f w)) }

let map_output f m =
  {
    name = m.name;
    empty = m.empty;
    inject = m.inject;
    combine = m.combine;
    output = (fun s -> f (m.output s));
    inverse = m.inverse;
  }

let state_bytes m =
  match m.name with
  | "avg" -> 8
  | name when String.length name > 1 && name.[0] = '(' -> 8
  | _ -> 4

let variance =
  {
    name = "variance";
    empty = (0, 0., 0.);
    inject = (fun v -> (1, v, v *. v));
    combine =
      (fun (c1, s1, q1) (c2, s2, q2) -> (c1 + c2, s1 +. s2, q1 +. q2));
    output =
      (fun (c, s, q) ->
        if c = 0 then None
        else
          let n = float_of_int c in
          let mean = s /. n in
          (* Clamp tiny negative rounding residue. *)
          Some (Float.max 0. ((q /. n) -. (mean *. mean))));
    inverse = Some (fun (c, s, q) -> (-c, -.s, -.q));
  }

let stddev =
  { (map_output (Option.map sqrt) variance) with name = "stddev" }
