exception
  Budget_exceeded of {
    budget_bytes : int;
    used_bytes : int;
  }

exception
  Deadline_exceeded of {
    deadline_ms : float;
    elapsed_ms : float;
  }

type t = {
  budget_bytes : int option;
  deadline_ms : float option;
  started_at : float;  (* wall clock, seconds *)
  deadline_at : float;  (* absolute wall clock; infinity when unset *)
  mutable ticks : int;
}

(* Wall-clock lookups are cheap but not free; cooperative checks sample
   the clock every [clock_stride] ticks.  The stride is a power of two so
   the check is a single masked compare, and the very first tick always
   samples so a zero deadline fails fast and deterministically. *)
let clock_stride_mask = 255

let create ?memory_budget ?deadline_ms () =
  (match memory_budget with
  | Some b when b < 0 -> invalid_arg "Guard.create: negative memory budget"
  | _ -> ());
  (match deadline_ms with
  | Some ms when ms < 0. -> invalid_arg "Guard.create: negative deadline"
  | _ -> ());
  let now = Unix.gettimeofday () in
  {
    budget_bytes = memory_budget;
    deadline_ms;
    started_at = now;
    deadline_at =
      (match deadline_ms with
      | Some ms -> now +. (ms /. 1000.)
      | None -> infinity);
    ticks = 0;
  }

let unlimited t = t.budget_bytes = None && t.deadline_ms = None

(* A shard-local view of the same guard: the memory budget is divided
   [ways] (shards run concurrently, so their live bytes add up against
   the query's cap), while the deadline fields alias the parent's wall
   clock — ticks on the split still race benignly on the parent's
   counter because the split shares [started_at]/[deadline_at] and each
   shard keeps its own tick counter. *)
let split t ways =
  if ways < 1 then invalid_arg "Guard.split: ways must be >= 1";
  {
    t with
    budget_bytes = Option.map (fun b -> b / ways) t.budget_bytes;
    ticks = 0;
  }

let check t =
  match t.deadline_ms with
  | None -> ()
  | Some deadline_ms ->
      (* [ticks] is bumped from every domain running under this guard;
         the races are benign — a lost increment only shifts when the
         clock is next sampled. *)
      t.ticks <- t.ticks + 1;
      if (t.ticks - 1) land clock_stride_mask = 0 then begin
        let now = Unix.gettimeofday () in
        if now > t.deadline_at then
          raise
            (Deadline_exceeded
               { deadline_ms; elapsed_ms = (now -. t.started_at) *. 1000. })
      end

let check_instrument t inst =
  (match t.budget_bytes with
  | None -> ()
  | Some budget_bytes ->
      let used_bytes = Instrument.live inst * Instrument.node_bytes inst in
      if used_bytes > budget_bytes then
        raise (Budget_exceeded { budget_bytes; used_bytes }));
  check t

let hook t = if unlimited t then None else Some (check_instrument t)

let attach t inst = Instrument.set_hook inst (hook t)

let wrap_seq t seq =
  if t.deadline_ms = None then seq
  else
    Seq.map
      (fun x ->
        check t;
        x)
      seq

let describe = function
  | Budget_exceeded { budget_bytes; used_bytes } ->
      Some
        (Printf.sprintf "memory budget exceeded (%d bytes used, budget %d)"
           used_bytes budget_bytes)
  | Deadline_exceeded { deadline_ms; elapsed_ms } ->
      Some
        (Printf.sprintf "deadline exceeded (%.1f ms elapsed, deadline %g ms)"
           elapsed_ms deadline_ms)
  | _ -> None
