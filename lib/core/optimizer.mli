(** The query-optimizer strategy rules of Section 6.3.

    Given what the system knows about a relation — cardinality, declared
    or detected sort order, a declared retroactive bound, the available
    memory — choose the evaluation algorithm:

    - very few expected constant intervals (coarse granularity, single
      year of days, ...): the linked list is "quite adequate";
    - relation sorted by time: k-ordered aggregation tree with [k = 1];
    - relation declared retroactively bounded by [k]: k-ordered tree with
      that [k], no sorting required;
    - otherwise, if memory is cheaper than the disk I/O of sorting:
      the flat delta-{!Engine.Sweep} when the aggregate is invertible
      (count/sum/avg — one cache-friendly pass, see {!Sweep}), else the
      aggregation tree;
    - otherwise: sort first, then the k-ordered tree with [k = 1]
      ("the simplest strategy", the paper's headline recommendation). *)

type metadata = {
  cardinality : int;
  time_ordered : bool;  (** Known (declared or verified) sorted by time. *)
  retroactive_bound : int option;
      (** Declared bound on update delay, as a k-ordering bound
          (Section 5.2: retroactively bounded relations are k-ordered for
          uniform arrival). *)
  memory_budget : int option;  (** Bytes available for algorithm state. *)
  expected_constant_intervals : int option;
      (** Estimate of the result size, when grouping coarser than the
          data (e.g. by span). *)
  invertible_aggregate : bool;
      (** The aggregate monoid has an inverse ({!Monoid.invertible}):
          count/sum/avg/variance but not min/max.  Enables the
          delta-sweep's O(n log n) fast path. *)
  shard_spans : Temporal.Interval.t list;
      (** Time ranges of a partitioned relation's storage shards, in
          shard order; [[]] for an unpartitioned relation.  Enables
          shard pruning and shard-parallel evaluation. *)
  query_window : Temporal.Interval.t option;
      (** The query's valid-time clip window (TSQL [DURING] /
          [WHERE vt OVERLAPS]); shards disjoint from it are pruned. *)
}

val default_metadata : cardinality:int -> metadata
(** Unordered, no bound, unlimited memory, unknown result size,
    aggregate assumed non-invertible. *)

type choice = {
  algorithm : Engine.algorithm;
  sort_first : bool;
      (** The chosen algorithm requires the relation sorted by time
          first. *)
  on_error : Engine.on_error;
      (** Recommended recovery policy: [Fallback] when the choice leans
          on declared-but-unverified metadata (a wrongly declared sort
          order or retroactive bound would otherwise abort the query),
          [Fail] when the algorithm cannot fail recoverably.  A TSQL
          [ON ERROR] clause overrides it. *)
  rationale : string;  (** Human-readable summary of the applied rule. *)
  stats_source : string;
      (** Where the decisive inputs came from: ["declared metadata"], or
          ["observed (...)"] when {!choose_observed} folded statistics
          from the store into the decision. *)
  scanned_shards : int;
      (** Shards the plan actually scans (those overlapping the query
          window).  0 for an unpartitioned relation. *)
  pruned_shards : int;
      (** Shards skipped outright because their time range misses the
          query window.  0 for an unpartitioned relation. *)
}

val max_eval_shards : int
(** Cap on concurrent evaluation shards for a sharded plan (surviving
    storage shards are grouped down to at most this many domains):
    [max 2 (min 8 (Domain.recommended_domain_count ()))]. *)

val choose : metadata -> choice
(** Apply the Section 6.3 rules, then — for a partitioned relation
    ([shard_spans <> []]) — shard pruning: only shards overlapping
    [query_window] are scanned, and when more than one survives the
    chosen algorithm is wrapped in {!Engine.Parallel} (one evaluation
    shard per surviving storage shard, at most {!max_eval_shards}
    domains) with the recovery policy upgraded from [Fail] to
    [Fallback] so a failed shard degrades instead of aborting the rest.
    The rationale cites kept/pruned shard counts. *)

val choose_observed : Obs.Stats.summary -> metadata -> choice
(** [choose] with observed statistics merged over the declared metadata:
    an observed sort order upgrades [time_ordered]; an observed k bound
    fills a missing [retroactive_bound] when profitable
    ([k <= max 1 (n/4)]); a measured constant-interval count replaces a
    missing estimate.  When an observed ordering claim is load-bearing
    the recovery policy is forced to [Fallback] (statistics can be
    stale).  The rationale gains a ["[stats: ...]"] suffix citing what
    was used; with an empty summary this is exactly [choose]. *)

type join_choice = {
  sweep : bool;  (** Endpoint-sweep join; [false] means nested loop. *)
  join_rationale : string;
  join_stats_source : string;
      (** ["declared metadata"], or ["observed (stats store)"] when a
          statistics summary supplied a cardinality. *)
}

val choose_join :
  ?left_stats:Obs.Stats.summary ->
  ?right_stats:Obs.Stats.summary ->
  left_cardinality:int ->
  right_cardinality:int ->
  unit ->
  join_choice
(** Pick the interval-join strategy: nested loop when the cross product
    is small enough that the sweep's two radix sorts and active-map
    bookkeeping cost more than just comparing every pair, the endpoint
    sweep otherwise.  Cardinalities observed by the statistics store
    take precedence over the declared ones and are cited in a
    ["[stats: ...]"] rationale suffix, mirroring {!choose_observed}. *)

val estimated_tree_bytes : cardinality:int -> int
(** Upper bound on aggregation-tree memory for an n-tuple relation: up to
    2 unique timestamps per tuple, 2 nodes per unique timestamp plus the
    initial node, 16 bytes per node. *)

val pp_choice : Format.formatter -> choice -> unit
