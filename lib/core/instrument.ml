type t = {
  mutable allocated : int;
  mutable live : int;
  mutable peak_live : int;
  node_bytes : int;
  mutable hook : (t -> unit) option;
}

let create ?(node_bytes = 16) () =
  { allocated = 0; live = 0; peak_live = 0; node_bytes; hook = None }

let alloc t =
  t.allocated <- t.allocated + 1;
  t.live <- t.live + 1;
  if t.live > t.peak_live then t.peak_live <- t.live;
  match t.hook with None -> () | Some f -> f t

let set_hook t hook = t.hook <- hook
let hook t = t.hook

let free t = t.live <- t.live - 1
let free_many t n = t.live <- t.live - n
let allocated t = t.allocated
let live t = t.live
let peak_live t = t.peak_live
let node_bytes t = t.node_bytes
let peak_bytes t = t.peak_live * t.node_bytes

let reset t =
  t.allocated <- 0;
  t.live <- 0;
  t.peak_live <- 0

type snapshot = {
  allocated : int;
  peak_live : int;
  node_bytes : int;
  peak_bytes : int;
}

let snapshot (t : t) =
  {
    allocated = t.allocated;
    peak_live = t.peak_live;
    node_bytes = t.node_bytes;
    peak_bytes = peak_bytes t;
  }

let absorb (t : t) (s : snapshot) =
  t.allocated <- t.allocated + s.allocated;
  t.live <- t.live + s.peak_live;
  if t.live > t.peak_live then t.peak_live <- t.live

let pp_snapshot ppf s =
  Format.fprintf ppf "allocated=%d peak_live=%d peak_bytes=%d" s.allocated
    s.peak_live s.peak_bytes

let snapshot_to_metrics ?(name = "tempagg_engine") registry (s : snapshot) =
  let g suffix help v =
    Obs.Metrics.set_int (Obs.Metrics.gauge registry ~help (name ^ suffix)) v
  in
  g "_allocated_nodes" "Nodes allocated by the evaluation" s.allocated;
  g "_peak_live_nodes" "High-water mark of live nodes" s.peak_live;
  g "_node_bytes" "Per-node byte cost (paper Section 6.2)" s.node_bytes;
  g "_peak_bytes" "Peak node memory in bytes" s.peak_bytes
