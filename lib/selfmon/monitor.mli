(** SLO evaluation against the scraped self-relations.

    {!Obs.Slo} compiles objectives to TSQL and integrates the rows it
    gets back; this module is the bridge that actually runs those
    queries through {!Tsql.Eval} — so SLO verdicts are computed by the
    same temporal-aggregation engine the server serves. *)

val rows_of_relation : Relation.Trel.t -> Obs.Slo.row list
(** Result rows of a single-aggregate query as [Obs.Slo] rows: the last
    column is the value (NULL rows dropped), closed valid intervals
    become half-open ([stop + 1]; [forever] becomes [max_int]). *)

val source : Tsql.Catalog.t -> Obs.Slo.source
(** Answer SLO queries against [catalog] (non-adaptively — monitoring
    queries should not steer the optimizer's statistics). *)

val evaluate :
  ?now_us:int ->
  Scrape.t ->
  Obs.Slo.objective list ->
  (Obs.Slo.report, string) result
(** Evaluate objectives against a scraper's current relations at
    [now_us] (default {!Obs.Trace.now_us}). *)
