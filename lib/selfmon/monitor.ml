(* Glue between the SLO engine (obs, evaluation-agnostic) and the query
   engine: compiles nothing itself, just answers Obs.Slo's TSQL queries
   against a catalog holding the scraped self-relations, converting the
   engine's closed result intervals to the half-open window coordinates
   Slo integrates over. *)

open Temporal
open Relation

let rows_of_relation rel =
  let n = Schema.arity (Trel.schema rel) in
  List.filter_map
    (fun tu ->
      (* Single-aggregate queries: the value is the last column. *)
      match Value.to_float (Tuple.value tu (n - 1)) with
      | None -> None
      | Some v ->
          let iv = Tuple.valid tu in
          let stop = Interval.stop iv in
          Some
            {
              Obs.Slo.row_start = Chronon.to_int (Interval.start iv);
              row_stop =
                (if Chronon.is_finite stop then Chronon.to_int stop + 1
                 else max_int);
              row_value = v;
            })
    (Trel.tuples rel)

let source catalog =
  {
    Obs.Slo.query =
      (fun q ->
        match Tsql.Eval.query ~adaptive:false catalog q with
        | Error _ as e -> e
        | Ok rel -> Ok (rows_of_relation rel));
  }

let evaluate ?now_us scrape objectives =
  let now =
    match now_us with Some n -> n | None -> Obs.Trace.now_us ()
  in
  Obs.Slo.evaluate ~now_us:now (source (Scrape.catalog scrape)) objectives
