(** Self-scraping: the metrics registry as temporal relations.

    Each {!scrape} tick walks the registry and appends one tuple per
    series, valid over the closed interval from this tick to just
    before the next — the server's own telemetry becomes ordinary
    interval-stamped relations ([_metrics], [_requests]) that TSQL
    queries, joins and temporal aggregates work over unchanged.

    Counters are delta-encoded into per-second rates; gauges are stored
    as-is; the configured latency histogram families turn into
    per-statement-kind [_requests] rows (rate plus p50/p99 estimated
    from bucket-count deltas) and the error counter families into
    [outcome = 'error'] rows.

    History is bounded by {e retention} (tuples past the horizon are
    dropped) and {e downsampling}: tuples older than the raw window are
    re-aggregated to fixed compact windows by the engine itself
    ([GROUP BY series, SPAN w] with AVG).  Rows straddling the
    span-aligned boundary are split at it first, which preserves every
    SPAN-w arithmetic-mean aggregate exactly — compaction correctness
    is a temporal-aggregate equivalence. *)

type config = {
  tick_us : int;  (** Scrape period, microseconds. *)
  retention_us : int;  (** Drop tuples ending before [now - retention]. *)
  raw_us : int;  (** Keep full-resolution tuples this far back. *)
  compact_window_us : int;  (** Downsampled window width. *)
  latency_families : string list;
      (** Histogram families (with a [kind] label) feeding [_requests]. *)
  error_families : string list;
      (** Counter families feeding [_requests] error rows. *)
}

val default_config : config
(** 1s ticks, 1h retention, 5m raw, 1m windows, the net and serve
    latency/error families. *)

val metrics_name : string
(** ["_metrics"]: (name, labels, value). *)

val requests_name : string
(** ["_requests"]: (kind, outcome, rate, p50_us, p99_us). *)

val metrics_schema : Relation.Schema.t
val requests_schema : Relation.Schema.t

type t

val create : ?config:config -> Obs.Metrics.t -> t
(** @raise Invalid_argument if [tick_us] or [compact_window_us] is
    not positive. *)

val config : t -> config

val scrape : ?now_us:int -> t -> unit
(** One full tick at [now_us] (default {!Obs.Trace.now_us}): sample the
    registry, append interval tuples (the first tick only records the
    delta baseline), enforce retention and downsampling, refresh the
    scraper's own gauges in the registry. *)

val tick : ?now_us:int -> t -> unit
(** Just the sampling step of {!scrape} (for tests that want history
    without compaction). *)

val due : t -> now_us:int -> bool
val next_due_us : t -> int

val version : t -> int
(** Bumped whenever the relations change — sessions cache materialized
    relations against it. *)

val ticks : t -> int
val compactions : t -> int

val row_counts : t -> int * int
(** Current ([_metrics], [_requests]) tuple counts. *)

val metrics_relation : t -> Relation.Trel.t
val requests_relation : t -> Relation.Trel.t
(** Time-sorted materializations, cached per {!version}. *)

val register : t -> Tsql.Catalog.t -> Tsql.Catalog.t
(** Bind [_metrics] and [_requests] into a catalog. *)

val catalog : t -> Tsql.Catalog.t
(** A fresh catalog holding just the self-relations. *)

val downsample :
  window_us:int ->
  groups:string list ->
  values:string list ->
  Relation.Trel.t ->
  (Relation.Trel.t, string) result
(** The compaction re-aggregation, exposed for the equivalence test:
    AVG of each value column per (group columns, SPAN [window_us])
    window, rebuilt under the input's schema. *)
