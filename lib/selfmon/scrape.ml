(* The self-monitoring scraper: the metrics registry persisted as
   temporal relations.

   Each tick walks the registry (via the structured sample API, never
   the text exposition) and appends one closed-interval tuple per
   series to the system relations:

     _metrics  (name, labels, value)           counters delta-encoded
                                               into per-second rates,
                                               gauges stored as-is
     _requests (kind, outcome, rate,           per statement kind, from
                p50_us, p99_us)                the per-kind latency
                                               histograms (bucket-count
                                               deltas) and the error
                                               counters

   A sample taken at t_i is valid over [t_i, t_{i+1} - 1] — it is the
   registry's state until the next scrape, which is exactly the paper's
   interval-stamped data model, so the engine's own temporal aggregates
   answer questions about the server ("AVG queue depth over the last
   minute") with no new evaluation machinery.

   History is bounded two ways.  Retention drops tuples older than the
   horizon outright.  Before that, tuples older than the raw window are
   {e downsampled}: re-aggregated to coarse fixed windows by running
   the engine itself (GROUP BY series, SPAN w), one AVG tuple per
   (series, window).  Rows straddling the compaction boundary are split
   at it first — the boundary is span-aligned, so the split moves each
   part into a different window and every SPAN-w arithmetic-mean
   aggregate is preserved exactly: compaction correctness is a
   temporal-aggregate equivalence, tested as such. *)

open Temporal
open Relation

type config = {
  tick_us : int;
  retention_us : int;
  raw_us : int;
  compact_window_us : int;
  latency_families : string list;
  error_families : string list;
}

let default_config =
  {
    tick_us = 1_000_000;
    retention_us = 3_600_000_000;
    raw_us = 300_000_000;
    compact_window_us = 60_000_000;
    latency_families = [ "tempagg_net_latency_us"; "tempagg_serve_latency_us" ];
    error_families =
      [ "tempagg_net_errors_total"; "tempagg_serve_errors_total" ];
  }

let metrics_name = "_metrics"
let requests_name = "_requests"

let metrics_schema =
  Schema.of_pairs
    [ ("name", Value.Tstring); ("labels", Value.Tstring); ("value", Value.Tfloat) ]

let requests_schema =
  Schema.of_pairs
    [
      ("kind", Value.Tstring);
      ("outcome", Value.Tstring);
      ("rate", Value.Tfloat);
      ("p50_us", Value.Tfloat);
      ("p99_us", Value.Tfloat);
    ]

(* Previous-tick state per series, for delta encoding. *)
type prev = {
  mutable p_value : float;  (* counter value *)
  mutable p_count : int;  (* histogram observation count *)
  mutable p_buckets : (float * int) list;  (* histogram bucket counts *)
}

type t = {
  cfg : config;
  registry : Obs.Metrics.t;
  prevs : (string * (string * string) list, prev) Hashtbl.t;
  mutable last_us : int option;
  mutable metrics_rows : Tuple.t list;  (* newest first *)
  mutable requests_rows : Tuple.t list;  (* newest first *)
  mutable compacted_until : int;  (* span-aligned downsampling watermark *)
  mutable version : int;  (* bumped whenever the relations change *)
  mutable ticks : int;
  mutable compactions : int;
  mutable cached : (int * Trel.t * Trel.t) option;
      (* (version, _metrics, _requests) — one materialization per change *)
}

let create ?(config = default_config) registry =
  if config.tick_us <= 0 then invalid_arg "Scrape.create: tick_us must be > 0";
  if config.compact_window_us <= 0 then
    invalid_arg "Scrape.create: compact_window_us must be > 0";
  {
    cfg = config;
    registry;
    prevs = Hashtbl.create 64;
    last_us = None;
    metrics_rows = [];
    requests_rows = [];
    compacted_until = 0;
    version = 0;
    ticks = 0;
    compactions = 0;
    cached = None;
  }

let config t = t.cfg
let version t = t.version
let ticks t = t.ticks
let compactions t = t.compactions

let next_due_us t =
  match t.last_us with None -> 0 | Some last -> last + t.cfg.tick_us

let due t ~now_us = now_us >= next_due_us t

(* Label sets render as the exposition's inner form (sorted, escaped),
   so a WHERE labels = '...' predicate matches what METRICS shows. *)
let labels_string labels =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k v) labels)

(* Nearest-rank percentile over this interval's (bound, count) bucket
   deltas — same rounding as Obs.Histogram.percentile, so a scrape of a
   histogram that only grew during the interval reports the same
   estimate the registry would. *)
let percentile_of_deltas deltas total p =
  if total = 0 then None
  else begin
    let rank =
      let r = int_of_float ((p *. float_of_int (total - 1)) +. 0.5) in
      min (total - 1) (max 0 r)
    in
    let rec walk seen = function
      | [] -> None
      | (bound, count) :: rest ->
          if seen + count > rank then Some bound else walk (seen + count) rest
    in
    walk 0 deltas
  end

let bucket_deltas ~prev buckets =
  List.map
    (fun (bound, count) ->
      let before =
        match List.assoc_opt bound prev with Some c -> c | None -> 0
      in
      (bound, max 0 (count - before)))
    buckets

let find_prev t key = Hashtbl.find_opt t.prevs key

let store_prev t key ~value ~count ~buckets =
  match Hashtbl.find_opt t.prevs key with
  | Some p ->
      p.p_value <- value;
      p.p_count <- count;
      p.p_buckets <- buckets
  | None ->
      Hashtbl.replace t.prevs key
        { p_value = value; p_count = count; p_buckets = buckets }

(* ---- one tick ---- *)

let fnum v = Value.Float v

let tick ?now_us t =
  let now = match now_us with Some n -> n | None -> Obs.Trace.now_us () in
  let samples = Obs.Metrics.samples t.registry in
  (match t.last_us with
  | Some last when now > last ->
      let iv = Interval.of_ints last (now - 1) in
      let dt_s = float_of_int (now - last) /. 1e6 in
      let metric_rows = ref [] and request_rows = ref [] in
      List.iter
        (fun (s : Obs.Metrics.sample) ->
          let key = (s.Obs.Metrics.s_name, s.Obs.Metrics.s_labels) in
          (match s.Obs.Metrics.s_kind with
          | Obs.Metrics.Gauge ->
              metric_rows :=
                Tuple.make
                  [|
                    Value.Str s.Obs.Metrics.s_name;
                    Value.Str (labels_string s.Obs.Metrics.s_labels);
                    fnum s.Obs.Metrics.s_value;
                  |]
                  iv
                :: !metric_rows
          | Obs.Metrics.Counter ->
              let before =
                match find_prev t key with Some p -> p.p_value | None -> 0.
              in
              let rate =
                Float.max 0. (s.Obs.Metrics.s_value -. before) /. dt_s
              in
              metric_rows :=
                Tuple.make
                  [|
                    Value.Str s.Obs.Metrics.s_name;
                    Value.Str (labels_string s.Obs.Metrics.s_labels);
                    fnum rate;
                  |]
                  iv
                :: !metric_rows;
              if
                List.mem s.Obs.Metrics.s_name t.cfg.error_families
              then
                let kind =
                  match List.assoc_opt "kind" s.Obs.Metrics.s_labels with
                  | Some k -> k
                  | None -> "_all"
                in
                request_rows :=
                  Tuple.make
                    [|
                      Value.Str kind;
                      Value.Str "error";
                      fnum rate;
                      Value.Null;
                      Value.Null;
                    |]
                    iv
                  :: !request_rows
          | Obs.Metrics.Histogram ->
              if List.mem s.Obs.Metrics.s_name t.cfg.latency_families then
                match List.assoc_opt "kind" s.Obs.Metrics.s_labels with
                | None -> ()
                | Some kind ->
                    let prev_buckets, prev_count =
                      match find_prev t key with
                      | Some p -> (p.p_buckets, p.p_count)
                      | None -> ([], 0)
                    in
                    let deltas =
                      bucket_deltas ~prev:prev_buckets s.Obs.Metrics.s_buckets
                    in
                    let total = max 0 (s.Obs.Metrics.s_count - prev_count) in
                    let pct p =
                      match percentile_of_deltas deltas total p with
                      | Some v -> fnum v
                      | None -> Value.Null
                    in
                    request_rows :=
                      Tuple.make
                        [|
                          Value.Str kind;
                          Value.Str "ok";
                          fnum (float_of_int total /. dt_s);
                          pct 0.5;
                          pct 0.99;
                        |]
                        iv
                      :: !request_rows);
          store_prev t key ~value:s.Obs.Metrics.s_value
            ~count:s.Obs.Metrics.s_count ~buckets:s.Obs.Metrics.s_buckets)
        samples;
      t.metrics_rows <- !metric_rows @ t.metrics_rows;
      t.requests_rows <- !request_rows @ t.requests_rows
  | _ ->
      (* First tick (or a clock that has not advanced): record the
         baseline, emit nothing — a delta needs two observations. *)
      List.iter
        (fun (s : Obs.Metrics.sample) ->
          store_prev t
            (s.Obs.Metrics.s_name, s.Obs.Metrics.s_labels)
            ~value:s.Obs.Metrics.s_value ~count:s.Obs.Metrics.s_count
            ~buckets:s.Obs.Metrics.s_buckets)
        samples);
  t.last_us <- Some now;
  t.ticks <- t.ticks + 1;
  t.version <- t.version + 1;
  t.cached <- None

(* ---- downsampling and retention ---- *)

let time_sorted rows = List.sort Tuple.compare_by_time rows

(* Re-aggregate a history relation to fixed windows through the engine
   itself: AVG per value column, grouped by the series columns and
   SPAN w.  This is the downsampling step of compaction — correctness
   is exactly the SPAN-w aggregate-equivalence property. *)
let downsample ~window_us ~groups ~values rel =
  if Trel.cardinality rel = 0 then Ok rel
  else
    let q =
      Printf.sprintf "SELECT %s, %s FROM history GROUP BY %s, SPAN %d"
        (String.concat ", " groups)
        (String.concat ", " (List.map (fun c -> "AVG(" ^ c ^ ")") values))
        (String.concat ", " groups)
        window_us
    in
    match
      Tsql.Eval.query ~adaptive:false
        (Tsql.Catalog.add (Tsql.Catalog.create ()) "history" rel)
        q
    with
    | Error _ as e -> e
    | Ok res ->
        (* Rebuild under the history schema: same column order (series
           columns first, then the aggregates), aggregate columns renamed
           back to their sources. *)
        Ok
          (Trel.create (Trel.schema rel)
             (List.map
                (fun tu -> Tuple.make (Tuple.values tu) (Tuple.valid tu))
                (Trel.tuples res)))

(* Split every row straddling the (span-aligned) boundary: the part
   before feeds compaction, the part after stays raw.  Splitting at a
   span boundary moves the parts into different windows without
   changing any window's tuple multiset, so SPAN aggregates are
   untouched. *)
let split_at boundary rows =
  List.fold_left
    (fun (old_rows, recent) tu ->
      let iv = Tuple.valid tu in
      let start = Chronon.to_int (Interval.start iv) in
      let stop = Chronon.to_int (Interval.stop iv) in
      if stop < boundary then (tu :: old_rows, recent)
      else if start >= boundary then (old_rows, tu :: recent)
      else
        ( Tuple.with_valid tu (Interval.of_ints start (boundary - 1)) :: old_rows,
          Tuple.with_valid tu
            (Interval.make (Chronon.of_int boundary) (Interval.stop iv))
          :: recent ))
    ([], []) rows

let compact_side schema ~groups ~values ~window_us ~boundary rows =
  let old_rows, recent = split_at boundary rows in
  if old_rows = [] then rows
  else
    match
      downsample ~window_us ~groups ~values
        (Trel.create schema (time_sorted old_rows))
    with
    | Error _ -> rows  (* keep raw history; retry at the next boundary *)
    | Ok compacted -> List.rev_append (Trel.tuples compacted) recent

let enforce_bounds t ~now_us =
  let changed = ref false in
  (* Retention: drop whole tuples past the horizon. *)
  let horizon = now_us - t.cfg.retention_us in
  if horizon > 0 then begin
    let keep tu = Chronon.to_int (Interval.stop (Tuple.valid tu)) >= horizon in
    let m = List.filter keep t.metrics_rows in
    let r = List.filter keep t.requests_rows in
    if
      List.length m <> List.length t.metrics_rows
      || List.length r <> List.length t.requests_rows
    then begin
      t.metrics_rows <- m;
      t.requests_rows <- r;
      changed := true
    end
  end;
  (* Downsampling: everything older than the raw window is re-aggregated
     to compact windows, at most once per boundary advance. *)
  let boundary =
    (now_us - t.cfg.raw_us) / t.cfg.compact_window_us * t.cfg.compact_window_us
  in
  if boundary > t.compacted_until then begin
    t.compacted_until <- boundary;
    t.metrics_rows <-
      compact_side metrics_schema ~groups:[ "name"; "labels" ]
        ~values:[ "value" ] ~window_us:t.cfg.compact_window_us ~boundary
        t.metrics_rows;
    t.requests_rows <-
      compact_side requests_schema ~groups:[ "kind"; "outcome" ]
        ~values:[ "rate"; "p50_us"; "p99_us" ]
        ~window_us:t.cfg.compact_window_us ~boundary t.requests_rows;
    t.compactions <- t.compactions + 1;
    changed := true
  end;
  if !changed then begin
    t.version <- t.version + 1;
    t.cached <- None
  end

(* Scrape's own instruments, folded into the registry it scrapes — the
   next tick records them like any other series. *)
let to_metrics t =
  let r = t.registry in
  Obs.Metrics.set_int
    (Obs.Metrics.gauge r ~help:"Scraped history rows by system relation"
       ~labels:[ ("relation", metrics_name) ]
       "tempagg_scrape_rows")
    (List.length t.metrics_rows);
  Obs.Metrics.set_int
    (Obs.Metrics.gauge r ~help:"Scraped history rows by system relation"
       ~labels:[ ("relation", requests_name) ]
       "tempagg_scrape_rows")
    (List.length t.requests_rows);
  Obs.Metrics.set_int
    (Obs.Metrics.gauge r ~help:"Scrape ticks taken" "tempagg_scrape_ticks")
    t.ticks;
  Obs.Metrics.set_int
    (Obs.Metrics.gauge r ~help:"Downsampling compactions run"
       "tempagg_scrape_compactions")
    t.compactions

let scrape ?now_us t =
  let now = match now_us with Some n -> n | None -> Obs.Trace.now_us () in
  tick ~now_us:now t;
  enforce_bounds t ~now_us:now;
  to_metrics t

let materialize t =
  match t.cached with
  | Some (v, m, r) when v = t.version -> (m, r)
  | _ ->
      let m = Trel.create metrics_schema (time_sorted t.metrics_rows) in
      let r = Trel.create requests_schema (time_sorted t.requests_rows) in
      t.cached <- Some (t.version, m, r);
      (m, r)

let metrics_relation t = fst (materialize t)
let requests_relation t = snd (materialize t)

let register t catalog =
  let m, r = materialize t in
  Tsql.Catalog.add (Tsql.Catalog.add catalog metrics_name m) requests_name r

let catalog t = register t (Tsql.Catalog.create ())

let row_counts t =
  (List.length t.metrics_rows, List.length t.requests_rows)
