type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    closed = false;
  }

let send ?trace t line =
  (match trace with
  | Some id ->
      output_string t.oc "TRACE ";
      output_string t.oc id;
      output_char t.oc ' '
  | None -> ());
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let read_line_opt t = try Some (input_line t.ic) with End_of_file -> None

let read_reply t =
  match read_line_opt t with
  | None -> Error "connection closed before reply header"
  | Some header -> (
      match Protocol.parse_header header with
      | Error e -> Error e
      | Ok (Protocol.H_err msg) -> Ok (Protocol.Err msg)
      | Ok (Protocol.H_busy reason) -> Ok (Protocol.Busy reason)
      | Ok Protocol.H_pong -> Ok Protocol.Pong
      | Ok Protocol.H_bye -> Ok Protocol.Bye
      | Ok (Protocol.H_ok { count; degraded; trace }) ->
          let rec take n acc =
            if n = 0 then Ok (List.rev acc)
            else
              match read_line_opt t with
              | None ->
                  Error
                    (Printf.sprintf
                       "connection closed inside OK payload (%d of %d lines)"
                       (count - n) count)
              | Some line -> take (n - 1) (line :: acc)
          in
          Result.map
            (fun payload -> Protocol.Ok_reply { degraded; trace; payload })
            (take count []))

let request ?trace t line =
  send ?trace t line;
  read_reply t

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
