(** Admission control: a bounded request queue in front of a fixed pool
    of workers, with load shedding and drain support.

    The controller enforces one invariant: at most [workers] requests
    are in flight and at most [queue_depth] more are queued, so total
    outstanding work is bounded by [workers + queue_depth] no matter how
    many connections submit.  Every {!submit} lands in exactly one of
    three states:

    - {b admit} — capacity is free; the request is enqueued and a
      worker picks it up immediately (the queue was shallow).
    - {b queue} — all workers are busy but the queue has room; the
      request waits its turn.  A request queued at or past the degrade
      watermark (default half the queue depth) is marked {e degraded}:
      the worker will run it under a fallback [ON ERROR] policy and a
      tighter deadline, trading the planned fast path for a bounded
      answer.
    - {b shed} — the queue is full (or the controller is draining); the
      request is refused with a structured reason and {e never
      executed}.  Shedding is O(1) and allocation-free on the request
      path, which is what keeps the server responsive at 2x
      saturation.

    Workers block in {!take}; {!stop} wakes them all with [None].
    During {!drain} no new work is admitted but already-queued work is
    still served, so a graceful shutdown can finish what it accepted. *)

type 'a t

type decision =
  | Admitted of { degraded : bool; queued_behind : int }
      (** Enqueued; [queued_behind] is the queue length after this
          request joined (0 = a worker can take it immediately). *)
  | Shed of string  (** Refused with this reason; never executed. *)

val create : ?degrade_watermark:int -> workers:int -> queue_depth:int -> unit -> 'a t
(** [workers] is the in-flight budget (the worker-pool size);
    [queue_depth] bounds waiting requests ([0] means shed as soon as
    every worker is busy).  [degrade_watermark] (default
    [max 1 (queue_depth / 2)]) is the queue length at which admitted
    requests are marked degraded.
    @raise Invalid_argument if [workers < 1] or [queue_depth < 0]. *)

val submit : 'a t -> (degraded:bool -> 'a) -> decision
(** [submit t make] decides under the controller's lock, constructs the
    request with the decided degrade flag, and enqueues it atomically —
    a worker can never observe a request whose flag is still unset. *)

val take : 'a t -> 'a option
(** Block until a request is available (incrementing the in-flight
    count) or the controller is stopped ([None]).  Called by workers. *)

val finish : 'a t -> unit
(** The worker finished the request it last took. *)

val drain : reason:string -> 'a t -> unit
(** Stop admitting: every later {!submit} sheds with [reason].  Queued
    requests are still handed to workers. *)

val draining : 'a t -> bool

val shed_queued : 'a t -> 'a list
(** Forcibly empty the queue (drain-deadline expiry), returning the
    evicted requests in submission order so the caller can answer each
    with [BUSY]. *)

val stop : 'a t -> unit
(** Wake every blocked {!take} with [None].  Implies {!drain}. *)

val idle : 'a t -> bool
(** No queued and no in-flight requests. *)

val in_flight : 'a t -> int
val queued : 'a t -> int
val workers : 'a t -> int
val queue_depth : 'a t -> int

val admitted_total : 'a t -> int
val shed_total : 'a t -> int
val degraded_total : 'a t -> int
