type transport = Tcp of int | Stdio

type config = {
  transport : transport;
  domains : int;
  queue_depth : int;
  degrade_watermark : int option;
  drain_timeout_ms : int;
  idle_timeout_ms : int;
  max_connections : int;
  memory_budget : int option;
  deadline_ms : float option;
  degrade_deadline_ms : float option;
  on_error : Tempagg.Engine.on_error option;
  cache_capacity : int;
  adaptive : bool;
  data_dir : string option;
  partitions : (string * string) list;
  split_threshold : int option;
  slowlog : Obs.Slowlog.t option;
  recorder_out : string option;
  scrape_every_ms : int option;
      (* Self-scrape period; None turns the scraper (and the [_metrics]
         / [_requests] self-relations) off. *)
  scrape_config : Selfmon.Scrape.config option;
      (* Retention/downsampling overrides; the period above wins over
         its [tick_us]. *)
  slo : Obs.Slo.objective list;
      (* Objectives evaluated on every scrape tick (needs scraping). *)
}

let default_config =
  {
    transport = Tcp 7411;
    domains = 4;
    queue_depth = 64;
    degrade_watermark = None;
    drain_timeout_ms = 5_000;
    idle_timeout_ms = 60_000;
    max_connections = 1024;
    memory_budget = None;
    deadline_ms = None;
    degrade_deadline_ms = None;
    on_error = None;
    cache_capacity = 128;
    adaptive = true;
    data_dir = None;
    partitions = [];
    split_threshold = None;
    slowlog = None;
    recorder_out = None;
    scrape_every_ms = None;
    scrape_config = None;
    slo = [];
  }

type report = {
  accepted : int;
  requests : int;
  shed : int;
  errors : int;
  degraded : int;
  timed_out : int;
  elapsed_s : float;
  drained : bool;
  metrics : Obs.Metrics.t;
  scrapes : int;  (* self-scrape ticks taken (0 with scraping off) *)
  slo_summary : string option;
      (* Final rendered burn-rate report, alerts and worst windows
         included — what the serve report prints below its totals. *)
}

(* A statement handed to a worker, carrying its request-trace context:
   the trace id, the request root span (opened at dispatch, closed at
   completion) and the queue-wait span (opened at submit, closed by
   whichever worker takes the job). *)
type job = {
  j_conn : int;
  j_line : string;
  j_session : Tsql.Session.t;
  j_degraded : bool;
  j_trace : string;
  j_root : int;
  j_queue : int;
}

(* A worker's finished reply, travelling back to the event loop. *)
type completion = {
  c_conn : int;
  c_reply : Protocol.reply;
  c_kind : string;
  c_statement : string;
  c_elapsed_us : int;
  c_trace : string;
  c_root : int;
  c_join : string option;
}

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;  (* read side *)
  c_wfd : Unix.file_descr;  (* write side (differs from c_fd on Stdio) *)
  c_tcp : bool;  (* close fds on teardown *)
  c_inbuf : Buffer.t;
  mutable c_pending : string list;  (* complete lines awaiting dispatch *)
  mutable c_out : string;
  mutable c_out_off : int;
  mutable c_outstanding : bool;  (* a worker owns this conn's request *)
  mutable c_last_us : int;
  mutable c_eof : bool;  (* no more input; still serving buffered lines *)
  mutable c_closing : bool;  (* discard pending, flush output, close *)
  mutable c_seq : int;  (* statements dispatched, for minted request ids *)
  mutable c_scrape_version : int;
      (* Scraper version the session's self-relations reflect; refreshed
         on the event loop before a statement is submitted, the one
         point where no worker owns the session. *)
  c_session : Tsql.Session.t;
}

type t = {
  cfg : config;
  catalog : Tsql.Catalog.t;
  listen_fd : Unix.file_descr option;
  bound_port : int option;
  admission : job Admission.t;
  stop_requested : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  comp_mutex : Mutex.t;
  mutable completions : completion list;  (* newest first *)
  conns : (int, conn) Hashtbl.t;
  mutable next_conn_id : int;
  registry : Obs.Metrics.t;
  dump_requested : bool Atomic.t;  (* SIGUSR1 asked for a recorder dump *)
  scraper : Selfmon.Scrape.t option;
  mutable started_us : int;  (* set by [run]; feeds the uptime gauge *)
  mutable metrics_text : string;
      (* Cached exposition for worker-side SHOW METRICS.  Workers read
         these two fields without a lock: a string-field read is a
         single atomic load, so they see some complete recent text,
         refreshed on the event loop. *)
  mutable slo_text : string;  (* cached SHOW SLO / SLO-verb body *)
  mutable slo_report : Obs.Slo.report option;  (* latest evaluation *)
}

let max_line_bytes = 65_536

let create ?(config = default_config) catalog =
  let listen_fd, bound_port =
    match config.transport with
    | Stdio -> (None, None)
    | Tcp port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_any, port));
        Unix.listen fd 128;
        Unix.set_nonblock fd;
        let bound =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        (Some fd, Some bound)
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let registry = Obs.Metrics.create () in
  {
    cfg = config;
    catalog;
    listen_fd;
    bound_port;
    admission =
      Admission.create ?degrade_watermark:config.degrade_watermark
        ~workers:config.domains ~queue_depth:config.queue_depth ();
    stop_requested = Atomic.make false;
    wake_r;
    wake_w;
    comp_mutex = Mutex.create ();
    completions = [];
    conns = Hashtbl.create 64;
    next_conn_id = 0;
    registry;
    dump_requested = Atomic.make false;
    scraper =
      (match config.scrape_every_ms with
      | None -> None
      | Some ms ->
          let base =
            Option.value config.scrape_config
              ~default:Selfmon.Scrape.default_config
          in
          Some
            (Selfmon.Scrape.create
               ~config:{ base with Selfmon.Scrape.tick_us = ms * 1000 }
               registry));
    started_us = Obs.Trace.now_us ();
    metrics_text = "";
    slo_text = "no SLO objectives configured (serve with --slo FILE)";
    slo_report = None;
  }

let port t = t.bound_port

let wake t =
  (* Best-effort: a full pipe already guarantees a pending wakeup, and a
     closed one means the loop is gone — neither may raise (this runs
     from worker domains and signal handlers). *)
  try ignore (Unix.write_substring t.wake_w "x" 0 1)
  with Unix.Unix_error _ -> ()

let shutdown t =
  Atomic.set t.stop_requested true;
  wake t

(* ---- metrics ---- *)

let counter t name help = Obs.Metrics.counter t.registry ~help name
let gauge t name help = Obs.Metrics.gauge t.registry ~help name

let m_accepted t =
  counter t "tempagg_net_accepted_total" "Connections accepted"

let m_active t = gauge t "tempagg_net_active_connections" "Open connections"

let m_shed t =
  counter t "tempagg_net_shed_total" "Requests refused with BUSY"

let m_timed_out t =
  counter t "tempagg_net_timed_out_total" "Connections reaped for idleness"

let m_errors t =
  counter t "tempagg_net_errors_total" "Statements answered with ERR"

let m_degraded t =
  counter t "tempagg_net_degraded_total" "Replies marked degraded"

let m_queued t = gauge t "tempagg_net_queued" "Requests waiting in admission"
let m_inflight t = gauge t "tempagg_net_in_flight" "Requests being executed"

let m_requests t kind =
  Obs.Metrics.counter t.registry ~help:"Admitted statements by kind"
    ~labels:[ ("kind", kind) ]
    "tempagg_net_requests_total"

let m_latency t kind =
  Obs.Metrics.histogram t.registry
    ~help:"Request latency in microseconds, by statement kind"
    ~labels:[ ("kind", kind) ]
    "tempagg_net_latency_us"

let refresh_admission_gauges t =
  Obs.Metrics.set_int (m_queued t) (Admission.queued t.admission);
  Obs.Metrics.set_int (m_inflight t) (Admission.in_flight t.admission)

(* Everything a scrape should see beyond the live counters: binary
   identity, uptime, and flight-recorder pressure. *)
let refresh_scrape_metrics t =
  refresh_admission_gauges t;
  Obs.Metrics.set
    (gauge t "tempagg_uptime_seconds"
       "Seconds since the server started (monotonic clock)")
    (float_of_int (Obs.Trace.now_us () - t.started_us) /. 1e6);
  Obs.Build_info.to_metrics t.registry;
  Obs.Recorder.to_metrics t.registry

(* ---- self-scraping and SLO evaluation (event loop only) ---- *)

(* One scrape tick: refresh the derived gauges, sample the registry into
   the self-relations, then re-evaluate the objectives against them —
   through the engine itself, so the SLO verdicts exercise the same
   aggregation path the verdicts are about.  Also the point where the
   worker-visible introspection strings are rebuilt. *)
let scrape_tick t scraper ~now =
  refresh_scrape_metrics t;
  Selfmon.Scrape.scrape ~now_us:now scraper;
  (match t.cfg.slo with
  | [] -> ()
  | objectives -> (
      match Selfmon.Monitor.evaluate ~now_us:now scraper objectives with
      | Ok report ->
          Obs.Slo.to_metrics t.registry report;
          t.slo_report <- Some report;
          t.slo_text <- Obs.Slo.report_to_string report
      | Error msg -> t.slo_text <- "SLO evaluation failed: " ^ msg));
  t.metrics_text <- Obs.Metrics.expose t.registry

(* Bring one connection's self-relations up to the scraper's current
   version.  Called on the event loop while no worker owns the session
   (dispatch only submits from that state), so the swap cannot race a
   statement. *)
let refresh_self_relations t conn =
  match t.scraper with
  | None -> ()
  | Some scraper ->
      let v = Selfmon.Scrape.version scraper in
      if conn.c_scrape_version <> v then begin
        conn.c_scrape_version <- v;
        Tsql.Session.replace_base conn.c_session Selfmon.Scrape.metrics_name
          (Selfmon.Scrape.metrics_relation scraper);
        Tsql.Session.replace_base conn.c_session Selfmon.Scrape.requests_name
          (Selfmon.Scrape.requests_relation scraper)
      end

(* ---- worker domains ---- *)

let payload_of_outcome = function
  | Tsql.Session.Ack msg -> String.split_on_char '\n' msg
  | Tsql.Session.Rows rel ->
      let text = Tsql.Pretty.result_to_string rel in
      List.filter (fun l -> l <> "") (String.split_on_char '\n' text)

(* Execute one admitted request.  Runs on a worker domain: the only
   shared state it touches is the job's own session (one outstanding
   request per connection serializes access) and the completion queue. *)
let execute t job =
  let t0 = Obs.Trace.now_us () in
  (* The queue wait ends the moment a worker picks the job up; the
     span was opened on the event loop at submit time. *)
  Obs.Trace.close_span job.j_queue;
  let body () =
    match Protocol.sleep_request job.j_line with
    | Some ms ->
        Unix.sleepf (ms /. 1000.);
        ( "sleep",
          Protocol.Ok_reply
            {
              degraded = job.j_degraded;
              trace = Some job.j_trace;
              payload = [ Printf.sprintf "slept %g ms" ms ];
            },
          None )
    | None -> (
        match Tsql.Parser.parse_statement job.j_line with
        | Error msg -> ("parse-error", Protocol.Err msg, None)
        | Ok stmt -> (
            let kind = Tsql.Serve.kind_of stmt in
            (* Degraded requests trade the planned fast path for a
               bounded one: at least a Fallback recovery policy (Skip
               stays Skip — it is already lossier) and a tighter
               deadline, so saturated work cannot occupy a worker
               indefinitely. *)
            let on_error =
              if job.j_degraded then
                match t.cfg.on_error with
                | Some Tempagg.Engine.Skip -> Some Tempagg.Engine.Skip
                | _ -> Some Tempagg.Engine.Fallback
              else t.cfg.on_error
            in
            let deadline_ms =
              if job.j_degraded then
                match t.cfg.degrade_deadline_ms with
                | Some d -> Some d
                | None -> (
                    match t.cfg.deadline_ms with
                    | Some d -> Some (d /. 2.)
                    | None -> Some 500.)
              else t.cfg.deadline_ms
            in
            match
              Tsql.Session.exec_statement ?memory_budget:t.cfg.memory_budget
                ?deadline_ms ?on_error job.j_session stmt
            with
            | Ok outcome ->
                let degraded =
                  job.j_degraded
                  || Tsql.Session.last_degradations job.j_session > 0
                in
                ( kind,
                  Protocol.Ok_reply
                    {
                      degraded;
                      trace = Some job.j_trace;
                      payload = payload_of_outcome outcome;
                    },
                  Tsql.Session.last_join job.j_session )
            | Error msg -> (kind, Protocol.Err msg, None)
            | exception e ->
                (* A worker must never die: any stray evaluation
                   exception becomes a structured per-statement error. *)
                ( kind,
                  Protocol.Err ("internal error: " ^ Printexc.to_string e),
                  None )))
  in
  (* Run under an "execute" span parented to the request root, so every
     engine/storage/join span the statement records on this domain (and
     on Parallel shard domains) nests under the request's trace. *)
  let kind, reply, join =
    Obs.Trace.with_span
      ?parent:(if job.j_root = 0 then None else Some job.j_root)
      ~trace:job.j_trace
      ~attrs:[ ("conn", string_of_int job.j_conn) ]
      "execute" body
  in
  {
    c_conn = job.j_conn;
    c_reply = reply;
    c_kind = kind;
    c_statement = job.j_line;
    c_elapsed_us = Obs.Trace.now_us () - t0;
    c_trace = job.j_trace;
    c_root = job.j_root;
    c_join = join;
  }

let worker_loop t () =
  let rec loop () =
    match Admission.take t.admission with
    | None -> ()
    | Some job ->
        let completion = execute t job in
        Admission.finish t.admission;
        Mutex.lock t.comp_mutex;
        t.completions <- completion :: t.completions;
        Mutex.unlock t.comp_mutex;
        wake t;
        loop ()
  in
  loop ()

(* ---- connections ---- *)

let conn_data_dir t id =
  Option.map
    (fun dir -> Filename.concat dir (Printf.sprintf "conn-%d" id))
    t.cfg.data_dir

let new_session t id =
  (* A private statistics store per connection: worker domains then
     share nothing mutable across connections, and ANALYZE results are
     scoped to the connection that ran them.  Partition bindings are
     loaded per session for the same reason — no shared handles. *)
  let session =
    Tsql.Session.create ~cache_capacity:t.cfg.cache_capacity
      ~adaptive:t.cfg.adaptive
      ?data_dir:(conn_data_dir t id)
      ?split_threshold:t.cfg.split_threshold
      (Tsql.Catalog.with_store t.catalog (Obs.Stats.create_store ()))
  in
  List.iter
    (fun (name, dir) ->
      Tsql.Session.add_partition session name (Storage.Partition.load dir))
    t.cfg.partitions;
  Tsql.Session.set_introspection
    ~metrics:(fun () -> t.metrics_text)
    ~slo:(fun () -> t.slo_text)
    session;
  session

let add_conn t ~tcp ~fd ~wfd =
  let id = t.next_conn_id in
  t.next_conn_id <- id + 1;
  let conn =
    {
      c_id = id;
      c_fd = fd;
      c_wfd = wfd;
      c_tcp = tcp;
      c_inbuf = Buffer.create 256;
      c_pending = [];
      c_out = "";
      c_out_off = 0;
      c_outstanding = false;
      c_last_us = Obs.Trace.now_us ();
      c_eof = false;
      c_closing = false;
      c_seq = 0;
      c_scrape_version = -1;  (* force a refresh before the first statement *)
      c_session = new_session t id;
    }
  in
  refresh_self_relations t conn;
  Hashtbl.replace t.conns id conn;
  Obs.Metrics.inc (m_accepted t);
  Obs.Metrics.set_int (m_active t) (Hashtbl.length t.conns);
  conn

let close_conn t conn =
  if Hashtbl.mem t.conns conn.c_id then begin
    Hashtbl.remove t.conns conn.c_id;
    Obs.Metrics.set_int (m_active t) (Hashtbl.length t.conns);
    if conn.c_tcp then try Unix.close conn.c_fd with Unix.Unix_error _ -> ()
  end

let send conn text = conn.c_out <- conn.c_out ^ text

(* A connection is finished once no worker owns it, its output is
   flushed, and it either asked to close (QUIT, oversize, reap) or hit
   EOF with nothing left to dispatch. *)
let maybe_close t conn =
  if
    Hashtbl.mem t.conns conn.c_id
    && (not conn.c_outstanding)
    && conn.c_out = ""
    && (conn.c_closing || (conn.c_eof && conn.c_pending = []))
  then close_conn t conn

(* Split buffered input into complete lines; the partial tail stays. *)
let extract_lines conn =
  let data = Buffer.contents conn.c_inbuf in
  match String.rindex_opt data '\n' with
  | None -> []
  | Some last ->
      Buffer.clear conn.c_inbuf;
      Buffer.add_string conn.c_inbuf
        (String.sub data (last + 1) (String.length data - last - 1));
      String.split_on_char '\n' (String.sub data 0 last)

(* ---- dispatch ---- *)

let observe_completion t (c : completion) =
  let degraded, is_err =
    match c.c_reply with
    | Protocol.Ok_reply { degraded; _ } -> (degraded, false)
    | Protocol.Err _ -> (false, true)
    | _ -> (false, false)
  in
  let kind_ok =
    match c.c_reply with
    | Protocol.Ok_reply _ ->
        if degraded then Obs.Metrics.inc (m_degraded t);
        true
    | Protocol.Err _ ->
        Obs.Metrics.inc (m_errors t);
        true
    | _ -> false
  in
  let elapsed_ms = float_of_int c.c_elapsed_us /. 1000. in
  let slow =
    match t.cfg.slowlog with
    | Some log -> elapsed_ms >= Obs.Slowlog.threshold_ms log
    | None -> false
  in
  (* Close the request root before deciding retention, so the root span
     itself is in the ring when the recorder copies the trace out. *)
  let outcome =
    if is_err then "error"
    else if degraded then "degraded"
    else if slow then "slow"
    else "ok"
  in
  Obs.Trace.close_span
    ~attrs:
      (("outcome", outcome)
      :: (match c.c_join with Some j -> [ ("join", j) ] | None -> []))
    c.c_root;
  if is_err || degraded || slow then
    Obs.Recorder.pin ~trace:c.c_trace ~reason:outcome;
  if kind_ok then begin
    Obs.Metrics.inc (m_requests t c.c_kind);
    Obs.Histogram.observe (m_latency t c.c_kind) (float_of_int c.c_elapsed_us);
    match t.cfg.slowlog with
    | Some log ->
        if slow then
          ignore
            (Obs.Slowlog.observe log ~kind:c.c_kind ~statement:c.c_statement
               ~elapsed_ms ?join:c.c_join ~trace:c.c_trace ())
    | None -> ()
  end

(* Dispatch a connection's buffered lines until a statement goes
   outstanding (or the connection starts closing).  Control verbs are
   answered inline — PING works even at full saturation, which is what
   makes it a useful liveness probe. *)
let rec dispatch t conn =
  if (not conn.c_outstanding) && not conn.c_closing then
    match conn.c_pending with
    | [] -> ()
    | line :: rest ->
        conn.c_pending <- rest;
        let line = Protocol.strip_request line in
        if line = "" || (String.length line >= 2 && String.sub line 0 2 = "--")
        then dispatch t conn
        else if String.uppercase_ascii line = "PING" then begin
          send conn (Protocol.encode Protocol.Pong);
          dispatch t conn
        end
        else if String.uppercase_ascii line = "QUIT" then begin
          send conn (Protocol.encode Protocol.Bye);
          conn.c_closing <- true
        end
        else if String.length line > max_line_bytes then begin
          send conn
            (Protocol.encode
               (Protocol.Err
                  (Printf.sprintf "request exceeds %d bytes" max_line_bytes)));
          dispatch t conn
        end
        else if Protocol.metrics_request line then begin
          (* Prometheus exposition inline, like PING: a scrape must work
             even when every worker is busy. *)
          refresh_scrape_metrics t;
          let payload =
            List.filter
              (fun l -> l <> "")
              (String.split_on_char '\n' (Obs.Metrics.expose t.registry))
          in
          send conn
            (Protocol.encode
               (Protocol.Ok_reply { degraded = false; trace = None; payload }));
          dispatch t conn
        end
        else if Protocol.slo_request line then begin
          (* Latest burn-rate report inline, like METRICS: the alerting
             path must answer even at full saturation. *)
          let payload =
            List.filter
              (fun l -> l <> "")
              (String.split_on_char '\n' t.slo_text)
          in
          send conn
            (Protocol.encode
               (Protocol.Ok_reply { degraded = false; trace = None; payload }));
          dispatch t conn
        end
        else
          match Protocol.trace_dump_request line with
          | Some (Error msg) ->
              send conn (Protocol.encode (Protocol.Err msg));
              dispatch t conn
          | Some (Ok trace) ->
              let payload =
                List.filter
                  (fun l -> l <> "")
                  (String.split_on_char '\n' (Obs.Recorder.dump ?trace ()))
              in
              send conn
                (Protocol.encode
                   (Protocol.Ok_reply
                      { degraded = false; trace; payload }));
              dispatch t conn
          | None -> (
              match Protocol.split_trace line with
              | Error msg ->
                  send conn (Protocol.encode (Protocol.Err msg));
                  dispatch t conn
              | Ok (supplied, stmt) ->
                  (* The last race-free moment to swap in fresh
                     self-relations: no worker owns this session yet. *)
                  refresh_self_relations t conn;
                  (* The request id: client-chosen via the TRACE prefix,
                     else minted here — every statement gets one. *)
                  let trace =
                    match supplied with
                    | Some id -> id
                    | None ->
                        Printf.sprintf "r%d-%d" conn.c_id conn.c_seq
                  in
                  conn.c_seq <- conn.c_seq + 1;
                  let root =
                    Obs.Trace.open_span ~trace
                      ~attrs:
                        [
                          ("conn", string_of_int conn.c_id);
                          ( "statement",
                            if String.length stmt > 120 then
                              String.sub stmt 0 120 ^ "..."
                            else stmt );
                        ]
                      "request"
                  in
                  match
                    Admission.submit t.admission (fun ~degraded ->
                        {
                          j_conn = conn.c_id;
                          j_line = stmt;
                          j_session = conn.c_session;
                          j_degraded = degraded;
                          j_trace = trace;
                          j_root = root;
                          j_queue =
                            Obs.Trace.open_span ~trace ~parent:root
                              "queue-wait";
                        })
                  with
                  | Admission.Shed reason ->
                      Obs.Metrics.inc (m_shed t);
                      Obs.Trace.close_span
                        ~attrs:[ ("outcome", "shed"); ("reason", reason) ]
                        root;
                      Obs.Recorder.pin ~trace ~reason:"shed";
                      send conn (Protocol.encode (Protocol.Busy reason));
                      dispatch t conn
                  | Admission.Admitted _ -> conn.c_outstanding <- true)

(* ---- the event loop ---- *)

let now_us () = Obs.Trace.now_us ()

let handle_completions t =
  Mutex.lock t.comp_mutex;
  let batch = List.rev t.completions in
  t.completions <- [];
  Mutex.unlock t.comp_mutex;
  List.iter
    (fun c ->
      observe_completion t c;
      match Hashtbl.find_opt t.conns c.c_conn with
      | None -> ()  (* connection died while the worker ran *)
      | Some conn ->
          conn.c_outstanding <- false;
          send conn (Protocol.encode c.c_reply);
          dispatch t conn;
          maybe_close t conn)
    batch

let drain_wake_pipe t =
  let buf = Bytes.create 64 in
  let rec loop () =
    match Unix.read t.wake_r buf 0 64 with
    | n when n > 0 -> loop ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  loop ()

let accept_burst t fd =
  let rec loop () =
    match Unix.accept fd with
    | cfd, _addr ->
        Unix.set_nonblock cfd;
        if Hashtbl.length t.conns >= t.cfg.max_connections then begin
          (* Over capacity: structured refusal, then close.  Counted as
             accepted + shed so saturation is visible in the metrics. *)
          Obs.Metrics.inc (m_accepted t);
          Obs.Metrics.inc (m_shed t);
          let refusal =
            Protocol.encode
              (Protocol.Busy
                 (Printf.sprintf "too many connections (max %d)"
                    t.cfg.max_connections))
          in
          (try
             ignore (Unix.write_substring cfd refusal 0 (String.length refusal))
           with Unix.Unix_error _ -> ());
          try Unix.close cfd with Unix.Unix_error _ -> ()
        end
        else ignore (add_conn t ~tcp:true ~fd:cfd ~wfd:cfd);
        loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

let read_conn t conn =
  let buf = Bytes.create 4096 in
  match Unix.read conn.c_fd buf 0 4096 with
  | 0 ->
      (* EOF: no more input, but everything already buffered (including
         a final unterminated line) is still served before closing —
         this is what lets a piped script run to completion in Stdio
         mode. *)
      conn.c_eof <- true;
      conn.c_pending <- conn.c_pending @ extract_lines conn;
      let tail = Buffer.contents conn.c_inbuf in
      Buffer.clear conn.c_inbuf;
      if String.trim tail <> "" then
        conn.c_pending <- conn.c_pending @ [ tail ];
      dispatch t conn;
      maybe_close t conn
  | n ->
      conn.c_last_us <- now_us ();
      Buffer.add_subbytes conn.c_inbuf buf 0 n;
      if Buffer.length conn.c_inbuf > max_line_bytes then begin
        send conn
          (Protocol.encode
             (Protocol.Err
                (Printf.sprintf "request exceeds %d bytes" max_line_bytes)));
        conn.c_closing <- true
      end
      else begin
        conn.c_pending <- conn.c_pending @ extract_lines conn;
        dispatch t conn
      end
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
    ->
      close_conn t conn

let write_conn t conn =
  let len = String.length conn.c_out - conn.c_out_off in
  if len > 0 then
    match Unix.write_substring conn.c_wfd conn.c_out conn.c_out_off len with
    | n ->
        conn.c_last_us <- now_us ();
        conn.c_out_off <- conn.c_out_off + n;
        if conn.c_out_off >= String.length conn.c_out then begin
          conn.c_out <- "";
          conn.c_out_off <- 0;
          maybe_close t conn
        end
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
      ->
        (* The client went away mid-reply.  SIGPIPE is ignored, so this
           is a clean per-connection error, never process death. *)
        close_conn t conn

let recorder_dump_path t =
  Option.value t.cfg.recorder_out ~default:"tempagg-recorder.json"

(* Flight-recorder dump to disk, atomically (temp + rename) so a reader
   racing SIGUSR1 never sees half a JSON document. *)
let write_recorder_dump t =
  let path = recorder_dump_path t in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Obs.Recorder.dump ()));
  Sys.rename tmp path

let run ?(signals = false) t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if signals then begin
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> shutdown t));
    Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> shutdown t));
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle
         (fun _ ->
           Atomic.set t.dump_requested true;
           wake t))
  end;
  let started_us = now_us () in
  t.started_us <- started_us;
  (* Touch every metric family once so a zero-traffic exposition still
     shows the full instrument panel. *)
  ignore (m_accepted t);
  ignore (m_shed t);
  ignore (m_timed_out t);
  ignore (m_errors t);
  ignore (m_degraded t);
  refresh_scrape_metrics t;
  (* The first scrape only records the delta baseline; intervals start
     accruing from server start, not from the first later tick. *)
  Option.iter (fun s -> scrape_tick t s ~now:started_us) t.scraper;
  t.metrics_text <- Obs.Metrics.expose t.registry;
  let workers =
    Array.init t.cfg.domains (fun _ -> Domain.spawn (worker_loop t))
  in
  (match t.cfg.transport with
  | Stdio -> ignore (add_conn t ~tcp:false ~fd:Unix.stdin ~wfd:Unix.stdout)
  | Tcp _ -> ());
  let accepting = ref (t.listen_fd <> None) in
  let draining = ref false in
  let drain_deadline_us = ref 0 in
  let forced = ref false in
  let stop_listening () =
    if !accepting then begin
      accepting := false;
      Option.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        t.listen_fd
    end
  in
  let begin_drain () =
    if not !draining then begin
      draining := true;
      drain_deadline_us := now_us () + (t.cfg.drain_timeout_ms * 1000);
      stop_listening ();
      Admission.drain ~reason:"draining: server is shutting down" t.admission
    end
  in
  let conn_list () = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  let all_flushed () =
    List.for_all
      (fun c -> (not c.c_outstanding) && c.c_out = "" && c.c_pending = [])
      (conn_list ())
  in
  let rec loop () =
    handle_completions t;
    refresh_admission_gauges t;
    Option.iter
      (fun s ->
        let now = now_us () in
        if Selfmon.Scrape.due s ~now_us:now then scrape_tick t s ~now)
      t.scraper;
    if Atomic.exchange t.dump_requested false then begin
      try write_recorder_dump t
      with Sys_error _ | Unix.Unix_error _ -> ()
    end;
    if Atomic.get t.stop_requested then begin_drain ();
    (* Stdio mode drains itself once its one connection is gone. *)
    if t.cfg.transport = Stdio && Hashtbl.length t.conns = 0 then
      begin_drain ();
    if !draining && Admission.idle t.admission && all_flushed () then ()
    else if !draining && now_us () > !drain_deadline_us then begin
      (* Past the drain deadline: shed what is still queued and force
         the connections closed.  In-flight work finishes on its worker
         (bounded by the guard deadline when one is configured) but its
         reply has nowhere to go. *)
      forced := true;
      let evicted = Admission.shed_queued t.admission in
      List.iter
        (fun job ->
          Obs.Metrics.inc (m_shed t);
          Obs.Trace.close_span job.j_queue;
          Obs.Trace.close_span
            ~attrs:
              [ ("outcome", "shed"); ("reason", "draining: deadline reached") ]
            job.j_root;
          Obs.Recorder.pin ~trace:job.j_trace ~reason:"shed";
          match Hashtbl.find_opt t.conns job.j_conn with
          | None -> ()
          | Some conn ->
              conn.c_outstanding <- false;
              send conn
                (Protocol.encode (Protocol.Busy "draining: deadline reached"));
              write_conn t conn)
        evicted;
      List.iter (fun c -> close_conn t c) (conn_list ())
    end
    else begin
      let now = now_us () in
      (* Reap idle connections (never one whose reply is in flight). *)
      let idle_cutoff = now - (t.cfg.idle_timeout_ms * 1000) in
      List.iter
        (fun c ->
          if
            c.c_tcp
            && (not c.c_outstanding)
            && c.c_out = ""
            && (not c.c_closing)
            && (not c.c_eof)
            && c.c_last_us < idle_cutoff
          then begin
            Obs.Metrics.inc (m_timed_out t);
            close_conn t c
          end)
        (conn_list ());
      let reads =
        t.wake_r
        :: (if !accepting then Option.to_list t.listen_fd else [])
        @ List.filter_map
            (fun c ->
              if c.c_outstanding || c.c_closing || c.c_eof then None
              else Some c.c_fd)
            (conn_list ())
      in
      let writes =
        List.filter_map
          (fun c ->
            if String.length c.c_out > c.c_out_off then Some c.c_wfd else None)
          (conn_list ())
      in
      let timeout =
        let next_idle =
          List.fold_left
            (fun acc c ->
              if c.c_outstanding || not c.c_tcp then acc
              else min acc (c.c_last_us + (t.cfg.idle_timeout_ms * 1000)))
            max_int (conn_list ())
        in
        let next =
          if !draining then min next_idle !drain_deadline_us else next_idle
        in
        let next =
          match t.scraper with
          | Some s -> min next (Selfmon.Scrape.next_due_us s)
          | None -> next
        in
        if next = max_int then 1.0
        else Float.max 0.01 (Float.min 1.0 (float_of_int (next - now) /. 1e6))
      in
      (match Unix.select reads writes [] timeout with
      | rs, ws, _ ->
          if List.mem t.wake_r rs then drain_wake_pipe t;
          (match t.listen_fd with
          | Some fd when !accepting && List.mem fd rs -> accept_burst t fd
          | _ -> ());
          List.iter
            (fun c -> if List.mem c.c_fd rs then read_conn t c)
            (conn_list ());
          List.iter
            (fun c ->
              if List.mem c.c_wfd ws && Hashtbl.mem t.conns c.c_id then
                write_conn t c)
            (conn_list ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
          (* A fd closed under us (e.g. a reaped connection raced the
             select set); drop closed conns and carry on. *)
          ());
      loop ()
    end
  in
  loop ();
  stop_listening ();
  List.iter (fun c -> close_conn t c) (conn_list ());
  Admission.stop t.admission;
  Array.iter Domain.join workers;
  handle_completions t;
  refresh_scrape_metrics t;
  (* A configured dump path gets a final dump at exit, so a drained
     server leaves its retained traces behind for post-mortems. *)
  (match t.cfg.recorder_out with
  | Some _ -> (
      try write_recorder_dump t with Sys_error _ | Unix.Unix_error _ -> ())
  | None -> ());
  (* One last scrape-and-evaluate so the report's SLO summary covers the
     traffic right up to the drain. *)
  Option.iter (fun s -> scrape_tick t s ~now:(now_us ())) t.scraper;
  let cval c = int_of_float (Obs.Metrics.counter_value c) in
  {
    accepted = cval (m_accepted t);
    requests = Admission.admitted_total t.admission;
    shed = cval (m_shed t);
    errors = cval (m_errors t);
    degraded = cval (m_degraded t);
    timed_out = cval (m_timed_out t);
    elapsed_s = float_of_int (now_us () - started_us) /. 1e6;
    drained = not !forced;
    metrics = t.registry;
    scrapes = (match t.scraper with Some s -> Selfmon.Scrape.ticks s | None -> 0);
    slo_summary =
      Option.map (fun r -> Obs.Slo.report_to_string r) t.slo_report;
  }

let report_to_string r =
  Printf.sprintf
    "server: %d connection(s), %d request(s) in %.3f s — %d shed, %d \
     error(s), %d degraded, %d idle-reaped, drain %s%s\n%s"
    r.accepted r.requests r.elapsed_s r.shed r.errors r.degraded r.timed_out
    (if r.drained then "clean" else "forced")
    (if r.scrapes > 0 then Printf.sprintf ", %d self-scrape(s)" r.scrapes
     else "")
    (match r.slo_summary with None -> "" | Some s -> s ^ "\n")
