type decision =
  | Admitted of { degraded : bool; queued_behind : int }
  | Shed of string

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : 'a Queue.t;
  n_workers : int;
  depth : int;
  watermark : int;
  mutable inflight : int;
  mutable is_draining : bool;
  mutable stopped : bool;
  mutable drain_reason : string;
  mutable n_admitted : int;
  mutable n_shed : int;
  mutable n_degraded : int;
}

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let create ?degrade_watermark ~workers ~queue_depth () =
  if workers < 1 then invalid_arg "Admission.create: workers must be >= 1";
  if queue_depth < 0 then
    invalid_arg "Admission.create: queue_depth must be >= 0";
  let watermark =
    match degrade_watermark with
    | Some w when w < 0 -> invalid_arg "Admission.create: negative watermark"
    | Some w -> w
    | None -> max 1 (queue_depth / 2)
  in
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    queue = Queue.create ();
    n_workers = workers;
    depth = queue_depth;
    watermark;
    inflight = 0;
    is_draining = false;
    stopped = false;
    drain_reason = "draining: server is shutting down";
    n_admitted = 0;
    n_shed = 0;
    n_degraded = 0;
  }

let submit t make =
  with_lock t (fun () ->
      if t.is_draining then begin
        t.n_shed <- t.n_shed + 1;
        Shed t.drain_reason
      end
      else
        let len = Queue.length t.queue in
        (* Outstanding = in flight + queued.  The queue also carries
           requests an idle worker hasn't woken up for yet, so the admit
           bound counts both against [workers + depth]. *)
        if t.inflight + len >= t.n_workers + t.depth then begin
          t.n_shed <- t.n_shed + 1;
          Shed
            (Printf.sprintf "queue full (%d in flight, %d queued, depth %d)"
               t.inflight len t.depth)
        end
        else begin
          (* Degraded iff the request actually has to wait behind a
             saturated worker pool AND the backlog has reached the
             watermark — light queueing keeps the fast path. *)
          let waiting = t.inflight >= t.n_workers in
          let degraded = waiting && len + 1 >= t.watermark in
          Queue.add (make ~degraded) t.queue;
          t.n_admitted <- t.n_admitted + 1;
          if degraded then t.n_degraded <- t.n_degraded + 1;
          Condition.signal t.nonempty;
          Admitted { degraded; queued_behind = len }
        end)

let take t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.queue) then begin
          t.inflight <- t.inflight + 1;
          Some (Queue.pop t.queue)
        end
        else if t.stopped then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ())

let finish t =
  with_lock t (fun () -> t.inflight <- max 0 (t.inflight - 1))

let drain ~reason t =
  with_lock t (fun () ->
      t.is_draining <- true;
      t.drain_reason <- reason)

let draining t = with_lock t (fun () -> t.is_draining)

let shed_queued t =
  with_lock t (fun () ->
      let evicted = List.of_seq (Queue.to_seq t.queue) in
      Queue.clear t.queue;
      t.n_shed <- t.n_shed + List.length evicted;
      evicted)

let stop t =
  with_lock t (fun () ->
      t.is_draining <- true;
      t.stopped <- true;
      Condition.broadcast t.nonempty)

let idle t = with_lock t (fun () -> t.inflight = 0 && Queue.is_empty t.queue)
let in_flight t = with_lock t (fun () -> t.inflight)
let queued t = with_lock t (fun () -> Queue.length t.queue)
let workers t = t.n_workers
let queue_depth t = t.depth
let admitted_total t = with_lock t (fun () -> t.n_admitted)
let shed_total t = with_lock t (fun () -> t.n_shed)
let degraded_total t = with_lock t (fun () -> t.n_degraded)
