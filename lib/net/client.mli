(** A small blocking client for the {!Server} line protocol, used by
    the CLI [client] subcommand, the bench load generator and the
    tests.

    One request at a time: {!request} sends a line and reads the full
    framed reply.  For pipelined or asynchronous use, {!send} and
    {!read_reply} are exposed separately (e.g. to park a [SLEEP] on the
    server while probing it from another connection). *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** Open a TCP connection (default host ["127.0.0.1"]).
    @raise Unix.Unix_error when the connection is refused. *)

val send : ?trace:string -> t -> string -> unit
(** Write one request line (a trailing newline is added).  [?trace]
    prepends a [TRACE <id>] prefix, tagging the statement with a
    client-chosen request id the server echoes in the OK header. *)

val read_reply : t -> (Protocol.reply, string) result
(** Read one framed reply; [Error] describes a protocol violation or an
    unexpected EOF. *)

val request : ?trace:string -> t -> string -> (Protocol.reply, string) result
(** {!send} then {!read_reply}. *)

val close : t -> unit
(** Close the socket (idempotent). *)
