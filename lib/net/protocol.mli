(** The line protocol spoken between {!Server} and {!Client}.

    {b Requests} are single lines, terminated by ['\n'] (a trailing
    ['\r'] is stripped, so [telnet]/[nc] work).  A line is either a
    control verb — handled by the server's event loop without touching
    the admission controller — or a TSQL statement executed by a worker:

    {v
    request ::= PING            liveness probe; always answered, even
                                when the server is saturated or draining
              | QUIT            close the connection after a BYE
              | METRICS         Prometheus exposition as an OK payload;
                                answered inline like PING
              | TRACE DUMP [<id>]
                                flight-recorder dump (Chrome trace JSON)
                                as an OK payload, optionally one trace
              | SLEEP <ms>      hold a worker for <ms> milliseconds
                                (diagnostic / load-testing aid; goes
                                through admission like a statement)
              | [TRACE <id>] <statement>
                                any TSQL statement (see Tsql.Parser),
                                optionally tagged with a client-chosen
                                request id echoed in the OK header
    v}

    Trace ids are 1–64 chars from [A-Za-z0-9._:-].  Without a [TRACE]
    prefix the server mints an id per statement.

    {b Replies} are framed so a client never has to guess where a
    multi-line result ends:

    {v
    reply ::= OK <n> [degraded] [trace=<id>] '\n' <n payload lines>
            | ERR <message>     statement failed (parse, semantic or
                                evaluation error); connection stays open
            | BUSY <reason>     the request was shed by admission
                                control (queue full, or draining) and
                                was NOT executed; retry later
            | PONG              answer to PING
            | BYE               answer to QUIT; the server closes
    v}

    [degraded] marks a result produced under pressure: the admission
    controller queued the request past its degrade watermark, or the
    evaluation recovered through a fallback chain — the answer is
    still exact, but it did not take the planned fast path.
    [trace=<id>] echoes the statement's request id, the key for a later
    [TRACE DUMP <id>]. *)

type reply =
  | Ok_reply of { degraded : bool; trace : string option; payload : string list }
  | Err of string
  | Busy of string
  | Pong
  | Bye

val clean : string -> string
(** Make a string safe to embed in a single protocol line: newlines and
    carriage returns become ["; "] / [""], so an error message can never
    break the framing. *)

val strip_request : string -> string
(** Normalize one received request line: strip the trailing ['\r'] (if
    any) and surrounding whitespace. *)

val valid_trace_id : string -> bool
(** 1–64 chars from [A-Za-z0-9._:-] — safe to embed in a header line. *)

val encode : reply -> string
(** The reply's wire form, ['\n']-terminated (header line plus payload
    lines for [Ok_reply]).  An invalid trace id is dropped rather than
    allowed to break the header. *)

type header =
  | H_ok of { count : int; degraded : bool; trace : string option }
  | H_err of string
  | H_busy of string
  | H_pong
  | H_bye

val parse_header : string -> (header, string) result
(** Parse a reply's first line.  [Error _] describes the malformed
    header — a protocol violation, not a server-side statement error. *)

val sleep_request : string -> float option
(** [Some ms] when the line is a [SLEEP <ms>] request. *)

val metrics_request : string -> bool
(** Whether the line is the [METRICS] verb (case-insensitive). *)

val slo_request : string -> bool
(** Whether the line is the [SLO] verb (case-insensitive): the latest
    burn-rate report, answered on the event loop like [METRICS]. *)

val trace_dump_request : string -> (string option, string) result option
(** [Some (Ok id)] when the line is [TRACE DUMP [<id>]] ([None] = dump
    everything), [Some (Error _)] when it is a TRACE DUMP with a
    malformed id, [None] when the line is not a TRACE DUMP at all. *)

val split_trace : string -> (string option * string, string) result
(** Split an optional [TRACE <id>] prefix off a statement line:
    [Ok (Some id, statement)] when prefixed, [Ok (None, line)] when
    not.  [Error _] on a malformed prefix (bad id, missing statement).
    [TRACE DUMP] lines pass through unprefixed — detect them with
    {!trace_dump_request} first. *)
