(** A multi-client line-protocol server over the TSQL session layer,
    built robustness-first: admission control with bounded queueing,
    structured load shedding, degradation under pressure, idle reaping,
    and graceful drain.

    {b Architecture.}  One event-loop domain owns all socket I/O: it
    accepts connections, reads request lines, answers control verbs
    ([PING]/[QUIT]/[METRICS]/[SLO]/[TRACE DUMP]) directly, and hands
    statements to the {!Admission} controller.  A fixed pool of worker domains executes
    admitted statements against the submitting connection's own
    {!Tsql.Session} (created from the shared catalog with a private
    statistics store, so worker domains never share mutable state) and
    posts framed replies back to the event loop through a completion
    queue and a wakeup pipe.  A connection has at most one statement
    outstanding — the server stops reading its socket until the reply
    is flushed, which is the per-connection backpressure that keeps one
    fast client from starving the rest.

    {b Robustness.}  Total outstanding work is bounded by
    [domains + queue_depth]; past that, requests are shed with a
    [BUSY] reply in O(1) without touching a worker.  Requests queued
    past the degrade watermark execute under guard budgets with an
    [ON ERROR fallback] policy and a tighter deadline, so saturated
    queries degrade to slower-but-bounded plans instead of failing.
    Connections idle past the timeout are reaped.  [SIGPIPE] is
    ignored — a client disconnecting mid-reply surfaces as a clean
    per-connection write error, never process death.

    {b Drain.}  On [SIGTERM]/[SIGINT] (or {!shutdown}) the server stops
    accepting, sheds new requests with [BUSY draining], finishes queued
    and in-flight work, flushes replies, and returns its report — all
    within the drain deadline, after which still-queued requests are
    shed and connections force-closed.  Either way the caller gets a
    report suitable for a clean [exit 0].

    {b Request-scoped tracing.}  Every statement runs under a request
    id — client-chosen via the [TRACE <id>] prefix or minted as
    [r<conn>-<seq>] — with a root span opened at dispatch, a queue-wait
    span covering admission, and an execute span on the worker domain
    under which all engine/storage/join spans nest.  The always-on
    flight recorder ({!Obs.Recorder}) pins traces of slow, shed,
    degraded or errored requests; [TRACE DUMP] (or [SIGUSR1]) exports
    them as Chrome trace JSON. *)

type transport =
  | Tcp of int
      (** Listen on this TCP port on all interfaces; [0] picks an
          ephemeral port (see {!port}). *)
  | Stdio
      (** Serve exactly one connection over stdin/stdout — the stdin
          script loop as one more transport behind the same dispatcher
          (admission control, workers, metrics and drain included).
          EOF on stdin drains and exits. *)

type config = {
  transport : transport;
  domains : int;  (** Worker-pool size (the in-flight budget). *)
  queue_depth : int;  (** Bounded admission queue. *)
  degrade_watermark : int option;
      (** Queue length at which admitted requests degrade; default half
          the queue depth (see {!Admission.create}). *)
  drain_timeout_ms : int;
      (** Grace period for finishing work at shutdown. *)
  idle_timeout_ms : int;
      (** Reap connections with no traffic for this long. *)
  max_connections : int;
      (** Accepted connections beyond this are told [BUSY] and closed. *)
  memory_budget : int option;  (** Per-statement guard budget (bytes). *)
  deadline_ms : float option;  (** Per-statement guard deadline. *)
  degrade_deadline_ms : float option;
      (** Deadline for degraded statements; defaults to half of
          [deadline_ms], or 500 ms when no deadline is configured —
          degraded work is always time-bounded. *)
  on_error : Tempagg.Engine.on_error option;
      (** Recovery policy for guarded statements (degraded statements
          are forced to at least [Fallback]). *)
  cache_capacity : int;  (** Per-session query-cache entries. *)
  adaptive : bool;  (** Stats-driven planning (per-session store). *)
  data_dir : string option;
      (** Base directory for server-side [CREATE TABLE] partitions;
          each connection gets a private subdirectory. *)
  partitions : (string * string) list;
      (** [(name, dir)] time-partitioned bases bound into every
          connection's session.  Each session loads its own handle from
          [dir], so worker domains never share partition state. *)
  split_threshold : int option;
  slowlog : Obs.Slowlog.t option;
      (** Capture statements at or over its threshold (fed from the
          event loop; entries carry kind, statement, latency, the
          request id and — for joins — the chosen strategy).  The
          threshold doubles as the flight recorder's "slow" pin
          trigger. *)
  recorder_out : string option;
      (** Where [SIGUSR1] (with [signals]) and the final drain write
          the flight-recorder dump (Chrome trace JSON, atomic
          temp+rename).  [None] still honors SIGUSR1 — it falls back
          to [tempagg-recorder.json] — but skips the exit dump. *)
  scrape_every_ms : int option;
      (** Self-scrape period: every tick (on the event loop, scheduled
          off the monotonic clock) samples the server's own registry
          into the [_metrics] / [_requests] temporal self-relations,
          which every connection's session sees as ordinary queryable
          relations.  [None] (the default) turns self-scraping off. *)
  scrape_config : Selfmon.Scrape.config option;
      (** Retention / downsampling / family overrides for the scraper;
          [scrape_every_ms] wins over its [tick_us]. *)
  slo : Obs.Slo.objective list;
      (** Objectives re-evaluated on every scrape tick by running their
          compiled TSQL against the self-relations.  Verdicts feed the
          [tempagg_slo_*] metrics, the [SLO] verb / [SHOW SLO]
          statement, and the report's {!report.slo_summary}. *)
}

val default_config : config
(** TCP port 7411, 4 domains, queue depth 64, 5 s drain, 60 s idle
    timeout, 1024 connections, no guard budgets, adaptive planning. *)

type report = {
  accepted : int;  (** Connections accepted (including over-capacity). *)
  requests : int;  (** Statements admitted and executed. *)
  shed : int;  (** Requests refused with [BUSY]. *)
  errors : int;  (** Statements answered with [ERR]. *)
  degraded : int;  (** Replies marked [degraded]. *)
  timed_out : int;  (** Connections reaped for idleness. *)
  elapsed_s : float;
  drained : bool;
      (** Work finished and flushed before the drain deadline ([false]
          when the deadline forced eviction). *)
  metrics : Obs.Metrics.t;
      (** Registry with the server gauges/counters and per-kind latency
          histograms, ready for {!Obs.Metrics.expose}. *)
  scrapes : int;  (** Self-scrape ticks taken (0 with scraping off). *)
  slo_summary : string option;
      (** Final rendered burn-rate report — per-objective verdicts,
          alert lines, worst windows — from a last scrape-and-evaluate
          at drain.  [None] unless objectives were configured. *)
}

type t

val create : ?config:config -> Tsql.Catalog.t -> t
(** Bind the listening socket (for {!Tcp}) and set up the dispatcher.
    The catalog's relations seed every connection's session; sessions
    get private statistics stores, so relation writes and ANALYZE
    results are connection-local.
    @raise Unix.Unix_error when the port cannot be bound. *)

val port : t -> int option
(** The bound TCP port ([None] for {!Stdio}) — useful with [Tcp 0]. *)

val run : ?signals:bool -> t -> report
(** Spawn the worker domains and run the event loop until drained.
    [signals] (default false) installs [SIGTERM]/[SIGINT] handlers that
    trigger a graceful drain; [SIGPIPE] is always ignored.  Blocks;
    call {!shutdown} from another domain (or a signal) to stop. *)

val shutdown : t -> unit
(** Request a graceful drain.  Safe to call from any domain or from a
    signal handler; idempotent. *)

val report_to_string : report -> string
