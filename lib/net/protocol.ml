type reply =
  | Ok_reply of { degraded : bool; trace : string option; payload : string list }
  | Err of string
  | Busy of string
  | Pong
  | Bye

let clean s =
  String.concat "; "
    (List.filter
       (fun part -> part <> "")
       (String.split_on_char '\n'
          (String.concat "" (String.split_on_char '\r' s))))

let strip_request line =
  let line =
    if String.length line > 0 && line.[String.length line - 1] = '\r' then
      String.sub line 0 (String.length line - 1)
    else line
  in
  String.trim line

(* Trace ids ride inside protocol headers, so keep them single-token
   and quote-free: alphanumerics plus [-_.:], at most 64 chars. *)
let valid_trace_id id =
  let n = String.length id in
  n > 0 && n <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | ':' ->
             true
         | _ -> false)
       id

let encode = function
  | Ok_reply { degraded; trace; payload } ->
      let buf = Buffer.create 64 in
      Buffer.add_string buf
        (Printf.sprintf "OK %d%s%s\n" (List.length payload)
           (if degraded then " degraded" else "")
           (match trace with
           | Some id when valid_trace_id id -> " trace=" ^ id
           | _ -> ""));
      List.iter
        (fun line ->
          Buffer.add_string buf (clean line);
          Buffer.add_char buf '\n')
        payload;
      Buffer.contents buf
  | Err msg -> "ERR " ^ clean msg ^ "\n"
  | Busy reason -> "BUSY " ^ clean reason ^ "\n"
  | Pong -> "PONG\n"
  | Bye -> "BYE\n"

type header =
  | H_ok of { count : int; degraded : bool; trace : string option }
  | H_err of string
  | H_busy of string
  | H_pong
  | H_bye

let parse_header line =
  let line = strip_request line in
  let tail prefix =
    String.sub line (String.length prefix)
      (String.length line - String.length prefix)
  in
  if line = "PONG" then Ok H_pong
  else if line = "BYE" then Ok H_bye
  else if String.length line >= 4 && String.sub line 0 4 = "ERR " then
    Ok (H_err (tail "ERR "))
  else if String.length line >= 5 && String.sub line 0 5 = "BUSY " then
    Ok (H_busy (tail "BUSY "))
  else if String.length line >= 3 && String.sub line 0 3 = "OK " then
    match String.split_on_char ' ' (tail "OK ") with
    | n :: flags -> (
        match int_of_string_opt n with
        | Some count when count >= 0 -> (
            (* Flags after the count: optional "degraded", then an
               optional "trace=<id>" — strict, in that order. *)
            let take_trace = function
              | [] -> Ok None
              | [ tok ]
                when String.length tok > 6 && String.sub tok 0 6 = "trace="
                ->
                  let id = String.sub tok 6 (String.length tok - 6) in
                  if valid_trace_id id then Ok (Some id)
                  else Error (Printf.sprintf "malformed trace id %S" id)
              | _ -> Error (Printf.sprintf "malformed OK header %S" line)
            in
            let degraded, rest =
              match flags with
              | "degraded" :: rest -> (true, rest)
              | rest -> (false, rest)
            in
            match take_trace rest with
            | Ok trace -> Ok (H_ok { count; degraded; trace })
            | Error e -> Error e)
        | _ -> Error (Printf.sprintf "malformed OK count %S" n))
    | [] -> Error (Printf.sprintf "malformed OK header %S" line)
  else Error (Printf.sprintf "unrecognized reply header %S" line)

let sleep_request line =
  let line = strip_request line in
  match String.split_on_char ' ' line with
  | [ verb; ms ] when String.uppercase_ascii verb = "SLEEP" -> (
      match float_of_string_opt ms with
      | Some v when v >= 0. -> Some v
      | _ -> None)
  | _ -> None

let metrics_request line =
  String.uppercase_ascii (strip_request line) = "METRICS"

let slo_request line = String.uppercase_ascii (strip_request line) = "SLO"

(* TRACE DUMP [id]: an introspection verb, answered on the event loop.
   Distinguished from the [TRACE <id> <statement>] prefix by its second
   token. *)
let trace_dump_request line =
  let line = strip_request line in
  match String.split_on_char ' ' line with
  | [ t; d ]
    when String.uppercase_ascii t = "TRACE" && String.uppercase_ascii d = "DUMP"
    ->
      Some (Ok None)
  | [ t; d; id ]
    when String.uppercase_ascii t = "TRACE" && String.uppercase_ascii d = "DUMP"
    ->
      if valid_trace_id id then Some (Ok (Some id))
      else Some (Error (Printf.sprintf "invalid trace id %S" id))
  | _ -> None

(* Split an optional [TRACE <id>] prefix off a statement line.  [TRACE
   DUMP ...] is a verb, not a prefix — check {!trace_dump_request}
   first. *)
let split_trace line =
  let line = strip_request line in
  match String.index_opt line ' ' with
  | Some i when String.uppercase_ascii (String.sub line 0 i) = "TRACE" -> (
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      let rest = String.trim rest in
      match String.index_opt rest ' ' with
      | None ->
          if String.uppercase_ascii rest = "DUMP" then Ok (None, line)
          else Error "TRACE <id> must be followed by a statement"
      | Some j ->
          let id = String.sub rest 0 j in
          if String.uppercase_ascii id = "DUMP" then Ok (None, line)
          else if not (valid_trace_id id) then
            Error (Printf.sprintf "invalid trace id %S" id)
          else
            let stmt =
              String.trim (String.sub rest (j + 1) (String.length rest - j - 1))
            in
            if stmt = "" then Error "TRACE <id> must be followed by a statement"
            else Ok (Some id, stmt))
  | _ -> Ok (None, line)
