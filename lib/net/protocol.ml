type reply =
  | Ok_reply of { degraded : bool; payload : string list }
  | Err of string
  | Busy of string
  | Pong
  | Bye

let clean s =
  String.concat "; "
    (List.filter
       (fun part -> part <> "")
       (String.split_on_char '\n'
          (String.concat "" (String.split_on_char '\r' s))))

let strip_request line =
  let line =
    if String.length line > 0 && line.[String.length line - 1] = '\r' then
      String.sub line 0 (String.length line - 1)
    else line
  in
  String.trim line

let encode = function
  | Ok_reply { degraded; payload } ->
      let buf = Buffer.create 64 in
      Buffer.add_string buf
        (Printf.sprintf "OK %d%s\n" (List.length payload)
           (if degraded then " degraded" else ""));
      List.iter
        (fun line ->
          Buffer.add_string buf (clean line);
          Buffer.add_char buf '\n')
        payload;
      Buffer.contents buf
  | Err msg -> "ERR " ^ clean msg ^ "\n"
  | Busy reason -> "BUSY " ^ clean reason ^ "\n"
  | Pong -> "PONG\n"
  | Bye -> "BYE\n"

type header =
  | H_ok of { count : int; degraded : bool }
  | H_err of string
  | H_busy of string
  | H_pong
  | H_bye

let parse_header line =
  let line = strip_request line in
  let tail prefix =
    String.sub line (String.length prefix)
      (String.length line - String.length prefix)
  in
  if line = "PONG" then Ok H_pong
  else if line = "BYE" then Ok H_bye
  else if String.length line >= 4 && String.sub line 0 4 = "ERR " then
    Ok (H_err (tail "ERR "))
  else if String.length line >= 5 && String.sub line 0 5 = "BUSY " then
    Ok (H_busy (tail "BUSY "))
  else if String.length line >= 3 && String.sub line 0 3 = "OK " then
    match String.split_on_char ' ' (tail "OK ") with
    | [ n ] -> (
        match int_of_string_opt n with
        | Some count when count >= 0 -> Ok (H_ok { count; degraded = false })
        | _ -> Error (Printf.sprintf "malformed OK count %S" n))
    | [ n; "degraded" ] -> (
        match int_of_string_opt n with
        | Some count when count >= 0 -> Ok (H_ok { count; degraded = true })
        | _ -> Error (Printf.sprintf "malformed OK count %S" n))
    | _ -> Error (Printf.sprintf "malformed OK header %S" line)
  else Error (Printf.sprintf "unrecognized reply header %S" line)

let sleep_request line =
  let line = strip_request line in
  match String.split_on_char ' ' line with
  | [ verb; ms ] when String.uppercase_ascii verb = "SLEEP" -> (
      match float_of_string_opt ms with
      | Some v when v >= 0. -> Some v
      | _ -> None)
  | _ -> None
