open Temporal

(* One tuple interval: uniform start over the lifespan, duration from the
   short- or long-lived distribution; redraw anything extending past the
   lifespan (the paper discards such tuples). *)
let rec draw_interval prng (spec : Spec.t) ~long =
  let start = Prng.int_bounded prng spec.lifespan in
  let duration =
    if long then
      let lo =
        int_of_float (spec.long_min_fraction *. float_of_int spec.lifespan)
      in
      let hi =
        int_of_float (spec.long_max_fraction *. float_of_int spec.lifespan)
      in
      Prng.int_in prng ~lo ~hi
    else Prng.int_in prng ~lo:spec.short_min ~hi:spec.short_max
  in
  let stop = start + duration - 1 in
  if stop >= spec.lifespan then draw_interval prng spec ~long
  else Interval.of_ints start stop

let salary prng = Prng.int_in prng ~lo:20_000 ~hi:60_000

(* The first [long_count] draws are long-lived, the rest short; a final
   shuffle interleaves them so physical order carries no signal. *)
let random_intervals (spec : Spec.t) =
  let prng = Prng.create ~seed:spec.seed in
  let long_count =
    int_of_float (Float.round (spec.long_lived_fraction *. float_of_int spec.n))
  in
  let raw =
    Array.init spec.n (fun i ->
        let long = i < long_count in
        (draw_interval prng spec ~long, salary prng))
  in
  Ordering.Perturb.shuffle ~rand:(Prng.int_bounded prng) raw

let by_time (a, _) (b, _) = Interval.compare a b

let sorted_intervals spec =
  let data = random_intervals spec in
  Array.stable_sort by_time data;
  data

let k_ordered_intervals ~k ~percentage spec =
  let sorted = sorted_intervals spec in
  let prng = Prng.create ~seed:(spec.Spec.seed + 0x5eed) in
  Ordering.Perturb.k_ordered ~rand:(Prng.int_bounded prng) ~k ~percentage
    sorted

let name prng =
  String.init 6 (fun _ -> Char.chr (Char.code 'a' + Prng.int_bounded prng 26))

let schema =
  Relation.Schema.of_pairs
    [ ("name", Relation.Value.Tstring); ("salary", Relation.Value.Tint) ]

let relation spec =
  let prng = Prng.create ~seed:(spec.Spec.seed + 0xa11ce) in
  let data = random_intervals spec in
  Relation.Trel.of_array schema
    (Array.map
       (fun (iv, sal) ->
         Relation.Tuple.make
           [| Relation.Value.Str (name prng); Relation.Value.Int sal |]
           iv)
       data)

let seq_of = Array.to_seq

(* The right side of a join pair: a density-controlled fraction of its
   tuples start inside a uniformly chosen left interval (guaranteeing a
   shared instant); the rest draw independently, exactly like a
   single-relation workload.  Durations always come from the right
   spec's own distribution; a stop running past the lifespan is clamped
   rather than redrawn, which keeps anchored tuples anchored. *)
let pair_intervals (p : Spec.pair) =
  let left = random_intervals p.Spec.left in
  let right_spec = p.Spec.right in
  let prng = Prng.create ~seed:(right_spec.Spec.seed + 0x70e) in
  let right =
    Array.init right_spec.Spec.n (fun _ ->
        let long =
          Prng.bool_with prng
            ~probability:right_spec.Spec.long_lived_fraction
        in
        let anchored =
          Array.length left > 0
          && Prng.bool_with prng ~probability:p.Spec.overlap_density
        in
        let iv =
          if anchored then begin
            let anchor, _ = left.(Prng.int_bounded prng (Array.length left)) in
            let a_start = Chronon.to_int (Interval.start anchor) in
            let a_stop = Chronon.to_int (Interval.stop anchor) in
            let start = Prng.int_in prng ~lo:a_start ~hi:a_stop in
            let duration =
              if long then
                Prng.int_in prng
                  ~lo:
                    (int_of_float
                       (right_spec.Spec.long_min_fraction
                       *. float_of_int right_spec.Spec.lifespan))
                  ~hi:
                    (int_of_float
                       (right_spec.Spec.long_max_fraction
                       *. float_of_int right_spec.Spec.lifespan))
              else
                Prng.int_in prng ~lo:right_spec.Spec.short_min
                  ~hi:right_spec.Spec.short_max
            in
            let stop = min (start + duration - 1) (right_spec.Spec.lifespan - 1) in
            Interval.of_ints start stop
          end
          else draw_interval prng right_spec ~long
        in
        (iv, salary prng))
  in
  (left, Ordering.Perturb.shuffle ~rand:(Prng.int_bounded prng) right)

let pair (p : Spec.pair) =
  let left_ivs, right_ivs = pair_intervals p in
  let lprng = Prng.create ~seed:(p.Spec.left.Spec.seed + 0xa11ce) in
  let rprng = Prng.create ~seed:(p.Spec.right.Spec.seed + 0xb0b) in
  let build prng ivs =
    Relation.Trel.of_array schema
      (Array.map
         (fun (iv, sal) ->
           Relation.Tuple.make
             [| Relation.Value.Str (name prng); Relation.Value.Int sal |]
             iv)
         ivs)
  in
  (build lprng left_ivs, build rprng right_ivs)

type op =
  | Insert of Interval.t * int
  | Delete of int
  | Query_point of Chronon.t
  | Query_range of Interval.t

let op_to_string = function
  | Insert (iv, v) -> Printf.sprintf "insert %s %d" (Interval.to_string iv) v
  | Delete id -> Printf.sprintf "delete #%d" id
  | Query_point c -> Printf.sprintf "query-point %s" (Chronon.to_string c)
  | Query_range iv -> Printf.sprintf "query-range %s" (Interval.to_string iv)

let trace (spec : Spec.ops) =
  let base = spec.Spec.base in
  let prng = Prng.create ~seed:(base.Spec.seed + 0x0b5) in
  let draw_tuple () =
    let long = Prng.bool_with prng ~probability:base.Spec.long_lived_fraction in
    (draw_interval prng base ~long, salary prng)
  in
  let initial = Array.init spec.Spec.initial (fun _ -> draw_tuple ()) in
  (* Ids are assigned in arrival order: 0 .. initial-1 for the preload,
     then one per Insert.  [live] tracks deletable ids with O(1)
     uniform pick via swap-remove. *)
  let live = Array.make (spec.Spec.initial + spec.Spec.length) 0 in
  let live_count = ref 0 in
  let push id =
    live.(!live_count) <- id;
    incr live_count
  in
  Array.iteri (fun i _ -> push i) initial;
  let next_id = ref spec.Spec.initial in
  let insert () =
    let iv, v = draw_tuple () in
    push !next_id;
    incr next_id;
    Insert (iv, v)
  in
  let ops =
    Array.init spec.Spec.length (fun _ ->
        let r = Prng.float_unit prng in
        if r < spec.Spec.insert_ratio then insert ()
        else if r < spec.Spec.insert_ratio +. spec.Spec.delete_ratio then begin
          if !live_count = 0 then insert ()
            (* nothing left to delete: degrade to an insert *)
          else begin
            let slot = Prng.int_bounded prng !live_count in
            let id = live.(slot) in
            decr live_count;
            live.(slot) <- live.(!live_count);
            Delete id
          end
        end
        else if Prng.bool_with prng ~probability:spec.Spec.point_fraction then
          Query_point (Chronon.of_int (Prng.int_bounded prng base.Spec.lifespan))
        else
          let iv = draw_interval prng base ~long:false in
          Query_range iv)
  in
  (initial, ops)
