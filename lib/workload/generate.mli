(** Synthetic temporal relations per the paper's Section 6 methodology.

    Tuple start positions are generated independently and uniformly over
    the lifespan (so "relations had many unique timestamps"); durations
    are short- or long-lived per the spec; tuples extending past the
    lifespan are discarded and regenerated.  Orderings:

    - {!random_intervals} / {!relation} — the unordered relations of
      Figure 6 (long- and short-lived tuples interleaved randomly);
    - {!sorted_intervals} — totally time-ordered (Figures 7–9, "Ktree,
      sorted relation, K=1" and the sorted aggregation-tree runs);
    - {!k_ordered_intervals} — sorted then perturbed to a target k and
      k-ordered-percentage (the Ktree K=4/40/400 runs). *)

open Temporal

val random_intervals : Spec.t -> (Interval.t * int) array
(** (valid interval, salary) pairs in random order.  Salaries are uniform
    in 20 000–60 000. *)

val sorted_intervals : Spec.t -> (Interval.t * int) array

val k_ordered_intervals :
  k:int -> percentage:float -> Spec.t -> (Interval.t * int) array
(** @raise Invalid_argument per {!Ordering.Perturb.k_ordered}. *)

val relation : Spec.t -> Relation.Trel.t
(** A full relation with the paper's germane attributes
    [(name:string, salary:int)] (random 6-character names), in random
    order. *)

val seq_of : ('a * 'b) array -> ('a * 'b) Seq.t
(** Convenience: the array as the sequence the algorithms consume. *)

(** {1 Two-relation join workloads} *)

val pair_intervals :
  Spec.pair ->
  (Interval.t * int) array * (Interval.t * int) array
(** [(left, right)] interval streams for an interval-join workload: the
    left side is {!random_intervals} of the pair's left spec; on the
    right, an [overlap_density] fraction of tuples start inside a
    uniformly chosen left interval (each guaranteed at least one
    intersecting partner, with the stop clamped to the lifespan), the
    rest draw independently.  Both sides end up shuffled.
    Deterministic in the two specs' seeds. *)

val pair : Spec.pair -> Relation.Trel.t * Relation.Trel.t
(** {!pair_intervals} as full relations, each with the
    [(name, salary)] schema of {!relation}. *)

(** {1 Mixed read/write traces} *)

type op =
  | Insert of Interval.t * int
      (** A new tuple; it receives the next sequential id. *)
  | Delete of int
      (** Retire the tuple with this id — always an id live at this
          point of the trace, chosen uniformly among the survivors. *)
  | Query_point of Chronon.t
  | Query_range of Interval.t

val op_to_string : op -> string

val trace : Spec.ops -> (Interval.t * int) array * op array
(** [trace spec] is [(initial, ops)]: the preloaded tuples (ids
    [0 .. initial-1], in id order) and the operation stream.  Inserts
    claim ids sequentially after the preload.  Deterministic in the
    spec's seed.  A delete drawn when no tuple is live degrades to an
    insert, so the trace never references a dead id. *)
