(** Workload specifications — the paper's Table 3 parameter space.

    The test relation has a lifespan of one million instants.  Short-lived
    tuples last a uniform 1–1000 instants; long-lived tuples last a
    uniform 20–80 % of the lifespan.  Tuples whose interval would extend
    past the lifespan are discarded and regenerated.  Relation sizes
    double from 1K to 64K tuples, with 0 %, 40 % or 80 % long-lived, and
    (for the ordered experiments) k in {4, 40, 400} and
    k-ordered-percentage in {0.02, 0.08, 0.14}. *)

type t = {
  n : int;  (** Number of tuples. *)
  long_lived_fraction : float;  (** Fraction of long-lived tuples. *)
  lifespan : int;  (** Relation lifespan in instants (paper: 1M). *)
  short_min : int;  (** Shortest short-lived duration (paper: 1). *)
  short_max : int;  (** Longest short-lived duration (paper: 1000). *)
  long_min_fraction : float;  (** Long-lived min, as lifespan fraction. *)
  long_max_fraction : float;  (** Long-lived max, as lifespan fraction. *)
  seed : int;
}

val make :
  ?long_lived_fraction:float ->
  ?lifespan:int ->
  ?short_min:int ->
  ?short_max:int ->
  ?long_min_fraction:float ->
  ?long_max_fraction:float ->
  ?seed:int ->
  n:int ->
  unit ->
  t
(** Paper defaults: no long-lived tuples, 1M-instant lifespan, short 1–1000,
    long 0.2–0.8 of lifespan, seed 42.
    @raise Invalid_argument on non-positive sizes, fractions outside
    [0, 1], or an empty duration range. *)

(** {1 Mixed read/write traces}

    Parameters for the serve-mode workloads: an initial relation of
    [initial] tuples followed by [length] interleaved operations, each
    drawn independently — insert with probability [insert_ratio], delete
    with [delete_ratio], otherwise a query ([point_fraction] of queries
    are point lookups, the rest range scans).  Interval and value
    distributions (and the seed) come from the embedded base spec. *)

type ops = {
  initial : int;  (** Tuples loaded before the trace starts. *)
  length : int;  (** Number of trace operations. *)
  insert_ratio : float;
  delete_ratio : float;
  point_fraction : float;  (** Point share of the query mix. *)
  base : t;  (** Interval/value distributions and the seed. *)
}

val ops :
  ?insert_ratio:float ->
  ?delete_ratio:float ->
  ?point_fraction:float ->
  ?base:t ->
  initial:int ->
  length:int ->
  unit ->
  ops
(** Defaults: 5 % inserts, 5 % deletes, queries split evenly between
    point and range; [base] defaults to [make ~n:(max initial 1) ()].
    @raise Invalid_argument on negative sizes, ratios outside [0, 1], or
    [insert_ratio + delete_ratio > 1]. *)

val pp_ops : Format.formatter -> ops -> unit

(** {1 Two-relation join workloads} *)

type pair = {
  left : t;
  right : t;
  overlap_density : float;
      (** Fraction of right tuples anchored to start inside a random
          left tuple's interval — each such tuple is guaranteed at
          least one intersecting partner, so this is a lower bound on
          the join's per-right-tuple hit rate.  The rest draw
          independently. *)
}

val pair : ?overlap_density:float -> left:t -> right:t -> unit -> pair
(** Default density 0.1.
    @raise Invalid_argument when the density is outside [0,1] or the
    sides' lifespans differ (anchoring needs a common time axis). *)

val pp_pair : Format.formatter -> pair -> unit

(** The paper's tested values (Table 3). *)

val table3_sizes : int list
(** 1K, 2K, ..., 64K. *)

val table3_long_lived : float list
(** 0 %, 40 %, 80 %. *)

val table3_k : int list
(** 4, 40, 400 (Figures 7–9). *)

val table3_percentages : float list
(** 0.02, 0.08, 0.14. *)

val bytes_per_tuple : int
(** 128 — the paper's tuple size (germane attributes plus padding). *)

val pp : Format.formatter -> t -> unit
