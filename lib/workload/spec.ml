type t = {
  n : int;
  long_lived_fraction : float;
  lifespan : int;
  short_min : int;
  short_max : int;
  long_min_fraction : float;
  long_max_fraction : float;
  seed : int;
}

let make ?(long_lived_fraction = 0.) ?(lifespan = 1_000_000) ?(short_min = 1)
    ?(short_max = 1000) ?(long_min_fraction = 0.2) ?(long_max_fraction = 0.8)
    ?(seed = 42) ~n () =
  if n <= 0 then invalid_arg "Spec.make: n must be positive";
  if lifespan <= 0 then invalid_arg "Spec.make: lifespan must be positive";
  if long_lived_fraction < 0. || long_lived_fraction > 1. then
    invalid_arg "Spec.make: long_lived_fraction outside [0,1]";
  if short_min < 1 || short_max < short_min then
    invalid_arg "Spec.make: bad short-lived duration range";
  if
    long_min_fraction <= 0. || long_max_fraction > 1.
    || long_max_fraction < long_min_fraction
  then invalid_arg "Spec.make: bad long-lived fraction range";
  {
    n;
    long_lived_fraction;
    lifespan;
    short_min;
    short_max;
    long_min_fraction;
    long_max_fraction;
    seed;
  }

(* Two-relation join workloads: the right side draws a configurable
   fraction of its tuples anchored inside a random left tuple's
   interval (guaranteeing a shared instant), the rest independently —
   so [overlap_density] is a lower bound on the fraction of right
   tuples with at least one intersecting partner. *)
type pair = { left : t; right : t; overlap_density : float }

let pair ?(overlap_density = 0.1) ~left ~right () =
  if overlap_density < 0. || overlap_density > 1. then
    invalid_arg "Spec.pair: overlap_density outside [0,1]";
  if left.lifespan <> right.lifespan then
    invalid_arg "Spec.pair: sides must share a lifespan";
  { left; right; overlap_density }

type ops = {
  initial : int;
  length : int;
  insert_ratio : float;
  delete_ratio : float;
  point_fraction : float;
  base : t;
}

let ops ?(insert_ratio = 0.05) ?(delete_ratio = 0.05) ?(point_fraction = 0.5)
    ?base ~initial ~length () =
  if initial < 0 then invalid_arg "Spec.ops: initial must be non-negative";
  if length <= 0 then invalid_arg "Spec.ops: length must be positive";
  let check name r =
    if r < 0. || r > 1. then
      invalid_arg (Printf.sprintf "Spec.ops: %s outside [0,1]" name)
  in
  check "insert_ratio" insert_ratio;
  check "delete_ratio" delete_ratio;
  check "point_fraction" point_fraction;
  if insert_ratio +. delete_ratio > 1. then
    invalid_arg "Spec.ops: insert_ratio + delete_ratio exceeds 1";
  let base = match base with Some b -> b | None -> make ~n:(max initial 1) () in
  { initial; length; insert_ratio; delete_ratio; point_fraction; base }

let pp_ops ppf o =
  Format.fprintf ppf
    "initial=%d length=%d insert=%.1f%% delete=%.1f%% point=%.0f%% seed=%d"
    o.initial o.length
    (o.insert_ratio *. 100.)
    (o.delete_ratio *. 100.)
    (o.point_fraction *. 100.)
    o.base.seed

let table3_sizes = [ 1_024; 2_048; 4_096; 8_192; 16_384; 32_768; 65_536 ]
let table3_long_lived = [ 0.; 0.4; 0.8 ]
let table3_k = [ 4; 40; 400 ]
let table3_percentages = [ 0.02; 0.08; 0.14 ]
let bytes_per_tuple = 128

let pp ppf t =
  Format.fprintf ppf
    "n=%d long-lived=%.0f%% lifespan=%d short=[%d,%d] long=[%.0f%%,%.0f%%] \
     seed=%d"
    t.n
    (t.long_lived_fraction *. 100.)
    t.lifespan t.short_min t.short_max
    (t.long_min_fraction *. 100.)
    (t.long_max_fraction *. 100.)
    t.seed

let pp_pair ppf p =
  Format.fprintf ppf "left(n=%d) right(n=%d) overlap=%.0f%% seed=%d/%d"
    p.left.n p.right.n
    (p.overlap_density *. 100.)
    p.left.seed p.right.seed
