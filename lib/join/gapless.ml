(* The sweep's active-tuple map, after Piatov et al.'s gapless hash map:
   all live tuples sit in a dense prefix of two flat int arrays (tuple
   index and extended expiry), so the per-event scan is pure sequential
   array traffic.  Deletion is lazy — nothing retires a tuple when its
   interval ends; instead each scan evicts the expired entries it walks
   over by overwriting them with the last live entry and shrinking
   (swap-with-last), which keeps the prefix gapless and reuses the slot
   on the next insert.  There is no tombstone state and no compaction
   pass: the map is always dense.

   Slots are accounted through [Tempagg.Instrument] under the same
   16-byte node model as the aggregation algorithms, which is how a
   [Guard] memory budget sees — and can abort — a runaway active map. *)

type t = {
  mutable idx : int array;
  mutable expiry : int array;
  mutable len : int;
  inst : Tempagg.Instrument.t option;
}

let create ?instrument () =
  { idx = Array.make 64 0; expiry = Array.make 64 0; len = 0; inst = instrument }

let length t = t.len

let insert t ~idx ~expiry =
  if t.len = Array.length t.idx then begin
    let cap = 2 * t.len in
    let idx' = Array.make cap 0 and exp' = Array.make cap 0 in
    Array.blit t.idx 0 idx' 0 t.len;
    Array.blit t.expiry 0 exp' 0 t.len;
    t.idx <- idx';
    t.expiry <- exp'
  end;
  t.idx.(t.len) <- idx;
  t.expiry.(t.len) <- expiry;
  t.len <- t.len + 1;
  match t.inst with Some i -> Tempagg.Instrument.alloc i | None -> ()

let scan t ~now f =
  let i = ref 0 in
  while !i < t.len do
    if Array.unsafe_get t.expiry !i < now then begin
      (* Expired: swap-with-last, shrink, and re-examine the slot — the
         entry just moved in may itself be expired. *)
      t.len <- t.len - 1;
      Array.unsafe_set t.idx !i (Array.unsafe_get t.idx t.len);
      Array.unsafe_set t.expiry !i (Array.unsafe_get t.expiry t.len);
      match t.inst with Some inst -> Tempagg.Instrument.free inst | None -> ()
    end
    else begin
      f (Array.unsafe_get t.idx !i);
      incr i
    end
  done

let clear t =
  (match t.inst with
  | Some inst -> Tempagg.Instrument.free_many inst t.len
  | None -> ());
  t.len <- 0
