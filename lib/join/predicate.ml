open Temporal

type t = Allen of Interval.allen | Intersects

let all =
  [
    Allen Interval.Before;
    Allen Interval.Meets;
    Allen Interval.Overlaps;
    Allen Interval.Finished_by;
    Allen Interval.Contains;
    Allen Interval.Starts;
    Allen Interval.Equals;
    Allen Interval.Started_by;
    Allen Interval.During;
    Allen Interval.Finishes;
    Allen Interval.Overlapped_by;
    Allen Interval.Met_by;
    Allen Interval.After;
    Intersects;
  ]

let to_string = function
  | Intersects -> "INTERSECTS"
  | Allen r -> (
      match r with
      | Interval.Before -> "BEFORE"
      | Interval.Meets -> "MEETS"
      | Interval.Overlaps -> "OVERLAPS"
      | Interval.Finished_by -> "FINISHED_BY"
      | Interval.Contains -> "CONTAINS"
      | Interval.Starts -> "STARTS"
      | Interval.Equals -> "EQUALS"
      | Interval.Started_by -> "STARTED_BY"
      | Interval.During -> "DURING"
      | Interval.Finishes -> "FINISHES"
      | Interval.Overlapped_by -> "OVERLAPPED_BY"
      | Interval.Met_by -> "MET_BY"
      | Interval.After -> "AFTER")

(* sql_saga's enum spells the end relations precedes/preceded_by; both
   spellings parse. *)
let of_string s =
  match String.lowercase_ascii s with
  | "intersects" -> Ok Intersects
  | "before" | "precedes" -> Ok (Allen Interval.Before)
  | "meets" -> Ok (Allen Interval.Meets)
  | "overlaps" -> Ok (Allen Interval.Overlaps)
  | "finished_by" | "finished-by" -> Ok (Allen Interval.Finished_by)
  | "contains" -> Ok (Allen Interval.Contains)
  | "starts" -> Ok (Allen Interval.Starts)
  | "equals" -> Ok (Allen Interval.Equals)
  | "started_by" | "started-by" -> Ok (Allen Interval.Started_by)
  | "during" -> Ok (Allen Interval.During)
  | "finishes" -> Ok (Allen Interval.Finishes)
  | "overlapped_by" | "overlapped-by" -> Ok (Allen Interval.Overlapped_by)
  | "met_by" | "met-by" -> Ok (Allen Interval.Met_by)
  | "after" | "preceded_by" | "preceded-by" -> Ok (Allen Interval.After)
  | other ->
      Error
        (Printf.sprintf
           "unknown join predicate %S (expected an Allen relation or \
            INTERSECTS)"
           other)

(* [inverse p] holds on (b, a) exactly when [p] holds on (a, b) —
   Allen's converse pairs.  The parser uses it to normalize an ON
   clause written with the sides reversed. *)
let inverse = function
  | Intersects -> Intersects
  | Allen r ->
      Allen
        (match r with
        | Interval.Before -> Interval.After
        | Interval.Meets -> Interval.Met_by
        | Interval.Overlaps -> Interval.Overlapped_by
        | Interval.Finished_by -> Interval.Finishes
        | Interval.Contains -> Interval.During
        | Interval.Starts -> Interval.Started_by
        | Interval.Equals -> Interval.Equals
        | Interval.Started_by -> Interval.Starts
        | Interval.During -> Interval.Contains
        | Interval.Finishes -> Interval.Finished_by
        | Interval.Overlapped_by -> Interval.Overlaps
        | Interval.Met_by -> Interval.Meets
        | Interval.After -> Interval.Before)

(* Each predicate compiles to a window of start/end comparisons over the
   raw int endpoints ([Chronon.to_int]; forever is [max_int], which the
   comparisons treat correctly because it is the absorbing maximum).
   The adjacency relations guard [e <> max_int] before the [e + 1]
   successor, exactly as [Interval.allen] guards [is_finite] — so for
   every pair, [compile (Allen r) sa ea sb eb] iff [Interval.relate a b
   = r]; the QCheck suite holds the two implementations to that. *)
let compile p =
  match p with
  | Intersects -> fun sa ea sb eb -> sa <= eb && sb <= ea
  | Allen Interval.Before -> fun _ ea sb _ -> ea <> max_int && ea + 1 < sb
  | Allen Interval.Meets -> fun _ ea sb _ -> ea <> max_int && ea + 1 = sb
  | Allen Interval.Overlaps -> fun sa ea sb eb -> sa < sb && sb <= ea && ea < eb
  | Allen Interval.Finished_by -> fun sa ea sb eb -> sa < sb && ea = eb
  | Allen Interval.Contains -> fun sa ea sb eb -> sa < sb && ea > eb
  | Allen Interval.Starts -> fun sa ea sb eb -> sa = sb && ea < eb
  | Allen Interval.Equals -> fun sa ea sb eb -> sa = sb && ea = eb
  | Allen Interval.Started_by -> fun sa ea sb eb -> sa = sb && ea > eb
  | Allen Interval.During -> fun sa ea sb eb -> sa > sb && ea < eb
  | Allen Interval.Finishes -> fun sa ea sb eb -> sa > sb && sa <= eb && ea = eb
  | Allen Interval.Overlapped_by ->
      fun sa ea sb eb -> sb < sa && sa <= eb && eb < ea
  | Allen Interval.Met_by -> fun sa _ _ eb -> eb <> max_int && eb + 1 = sa
  | Allen Interval.After -> fun sa _ _ eb -> eb <> max_int && eb + 1 < sa

let holds p a b =
  let f = compile p in
  f
    (Chronon.to_int (Interval.start a))
    (Chronon.to_int (Interval.stop a))
    (Chronon.to_int (Interval.start b))
    (Chronon.to_int (Interval.stop b))

(* The nine relations that guarantee a shared instant; for these the
   joined tuple's valid time is the intersection.  The adjacency and
   ordering relations have no shared instant, so the joined tuple
   carries the hull — the smallest interval witnessing the pair. *)
let intersecting = function
  | Intersects -> true
  | Allen
      ( Interval.Overlaps | Interval.Finished_by | Interval.Contains
      | Interval.Starts | Interval.Equals | Interval.Started_by
      | Interval.During | Interval.Finishes | Interval.Overlapped_by ) ->
      true
  | Allen (Interval.Before | Interval.Meets | Interval.Met_by | Interval.After)
    ->
      false

let result_interval p a b =
  if intersecting p then
    match Interval.intersect a b with
    | Some iv -> iv
    | None ->
        invalid_arg
          (Printf.sprintf "Predicate.result_interval: %s holds but %s and %s \
                           are disjoint"
             (to_string p) (Interval.to_string a) (Interval.to_string b))
  else Interval.hull a b

(* Before/After pairs never share or touch an instant, so the sweep's
   active map (which retires a tuple one instant after its stop) can
   never have both sides live together: those two run as an ordered
   prefix scan instead. *)
let ordering = function
  | Allen (Interval.Before | Interval.After) -> true
  | _ -> false
