(** The naive nested-loop interval join: the sweep's test oracle and
    its Guard-fallback path (it allocates no algorithm state, so a
    memory budget cannot abort it; the deadline is still ticked once
    per outer tuple). *)

open Temporal

val run :
  ?guard:Tempagg.Guard.t ->
  Predicate.t ->
  left:Interval.t array ->
  right:Interval.t array ->
  (int -> int -> unit) ->
  unit
(** [emit i j] for every pair satisfying the predicate, in
    left-major order.
    @raise Tempagg.Guard.Deadline_exceeded *)
