(** Process-wide interval-join counters ([tempagg_join_*]), refreshed
    into a metrics registry by the serve loop alongside the partition
    gauges. *)

val record : strategy:Engine.strategy -> pairs:int -> unit
val record_fallback : unit -> unit

val totals : unit -> int * int * int * int
(** [(sweep_joins, nested_joins, pairs_emitted, fallbacks)]. *)

val reset : unit -> unit

val to_metrics : Obs.Metrics.t -> unit
