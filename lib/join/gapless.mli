(** The sweep join's active-tuple map (Piatov et al.'s gapless hash
    map): live tuples in a dense prefix of flat int arrays, lazy
    deletion by swap-with-last during scans, dense reuse of freed
    slots.  Slots are counted against an optional
    {!Tempagg.Instrument} so {!Tempagg.Guard} memory budgets apply. *)

type t

val create : ?instrument:Tempagg.Instrument.t -> unit -> t

val length : t -> int
(** Entries currently held, including not-yet-evicted expired ones. *)

val insert : t -> idx:int -> expiry:int -> unit
(** Append a tuple: [idx] is the caller's tuple index, [expiry] the
    last sweep instant at which the tuple still matters (for the join:
    stop + 1, so a tuple stays visible to events at the instant just
    past its stop and MEETS pairs are still caught). *)

val scan : t -> now:int -> (int -> unit) -> unit
(** [scan t ~now f] calls [f] on every live entry ([expiry >= now]),
    lazily evicting the expired entries it encounters. *)

val clear : t -> unit
