(** Strategy dispatch for the interval join: the endpoint sweep
    ({!Sweep_join}) or the nested-loop oracle ({!Nested_loop}). *)

open Temporal

type strategy = Sweep | Nested_loop

val strategy_to_string : strategy -> string
(** ["sweep-join"] / ["nested-loop-join"], the names EXPLAIN prints. *)

val strategy_of_string : string -> (strategy, string) result
(** Accepts ["sweep"], ["nested-loop"], ["nested_loop"] and the
    {!strategy_to_string} spellings, case-insensitively. *)

val run :
  ?guard:Tempagg.Guard.t ->
  ?instrument:Tempagg.Instrument.t ->
  strategy ->
  Predicate.t ->
  left:Interval.t array ->
  right:Interval.t array ->
  (int -> int -> unit) ->
  unit
(** [emit i j] exactly once per satisfying pair; emission order depends
    on the strategy.
    @raise Tempagg.Guard.Budget_exceeded (sweep only)
    @raise Tempagg.Guard.Deadline_exceeded *)

val pairs :
  ?guard:Tempagg.Guard.t ->
  ?instrument:Tempagg.Instrument.t ->
  strategy ->
  Predicate.t ->
  Interval.t array ->
  Interval.t array ->
  (int * int) list
(** All satisfying index pairs, sorted lexicographically — the
    strategy-independent form the equivalence tests compare. *)
