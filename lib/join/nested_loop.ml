open Temporal

(* The naive quadratic join: every pair, one compiled-predicate check.
   It is the test oracle for the sweep and the fallback when a sweep
   join trips its Guard budget — it holds no state beyond the two
   endpoint arrays, so a memory budget that kills the active map cannot
   kill this.  The inner loop runs over unboxed int endpoint arrays
   with the predicate compiled once, which keeps the baseline honest in
   the bench. *)

let run ?guard pred ~(left : Interval.t array) ~(right : Interval.t array)
    emit =
  let holds = Predicate.compile pred in
  let n = Array.length left and m = Array.length right in
  let rs = Array.make (max m 1) 0 and re = Array.make (max m 1) 0 in
  for j = 0 to m - 1 do
    rs.(j) <- Chronon.to_int (Interval.start right.(j));
    re.(j) <- Chronon.to_int (Interval.stop right.(j))
  done;
  for i = 0 to n - 1 do
    (match guard with Some g -> Tempagg.Guard.check g | None -> ());
    let sa = Chronon.to_int (Interval.start left.(i))
    and ea = Chronon.to_int (Interval.stop left.(i)) in
    for j = 0 to m - 1 do
      if holds sa ea (Array.unsafe_get rs j) (Array.unsafe_get re j) then
        emit i j
    done
  done
