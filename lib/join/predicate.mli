(** Join predicates: Allen's thirteen interval relations plus the loose
    SQL [INTERSECTS] (share at least one instant), each compiled to a
    window of start/end comparisons over raw int endpoints.

    The compiled forms agree exactly with {!Temporal.Interval.relate}:
    [holds (Allen r) a b] iff [relate a b = r].  sql_saga's
    [allen_interval_relation] enum is the naming precedent; the
    [precedes]/[preceded_by] spellings it uses for the end relations
    parse as aliases of [BEFORE]/[AFTER]. *)

open Temporal

type t = Allen of Interval.allen | Intersects

val all : t list
(** The thirteen Allen relations in definition order, then
    [Intersects]. *)

val to_string : t -> string
(** The canonical TSQL spelling, upper case: ["OVERLAPS"],
    ["MET_BY"], ["INTERSECTS"], ... *)

val of_string : string -> (t, string) result
(** Case-insensitive; accepts the canonical spellings, hyphenated
    variants and sql_saga's [precedes]/[preceded_by] aliases. *)

val inverse : t -> t
(** The converse relation: [holds (inverse p) b a] iff [holds p a b].
    [EQUALS] and [INTERSECTS] are their own converses. *)

val compile : t -> int -> int -> int -> int -> bool
(** [compile p] is the predicate as a comparison window over raw int
    endpoints: [f sa ea sb eb] with [sa,ea] the left tuple's
    [Chronon.to_int] start/stop and [sb,eb] the right's (forever is
    [max_int]).  Hoist the [compile p] application out of join loops —
    the result is a closure of a handful of int comparisons. *)

val holds : t -> Interval.t -> Interval.t -> bool
(** [compile] applied to the intervals' endpoints. *)

val intersecting : t -> bool
(** The predicate guarantees the pair shares an instant (the nine
    non-adjacent, non-ordering relations and [Intersects]). *)

val result_interval : t -> Interval.t -> Interval.t -> Interval.t
(** Valid time of the joined tuple: the intersection for
    {!intersecting} predicates, the hull for the adjacency and
    ordering ones (MEETS, MET_BY, BEFORE, AFTER), whose pairs share no
    instant.
    @raise Invalid_argument if an intersecting predicate is applied to
    a disjoint pair (i.e. the predicate did not actually hold). *)

val ordering : t -> bool
(** [BEFORE] or [AFTER]: the pair is separated by at least one instant,
    so the sweep evaluates it as an ordered prefix scan rather than
    through the active-tuple map. *)
