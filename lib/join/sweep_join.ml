open Temporal

(* The endpoint-sweep interval join, after Piatov et al.: radix-sort
   each side's tuples by start into a start-event stream, merge-walk the
   two streams in global time order, and keep one gapless active-tuple
   map per side.  Processing a start event from one side scans the
   other side's map — lazily evicting tuples whose extended stop has
   passed — and emits every surviving tuple that satisfies the compiled
   predicate; the new tuple then joins its own side's map.  A pair is
   found exactly once: by whichever tuple starts later, against the
   earlier one still in the map (on equal starts, by whichever event is
   processed second, since insertion happens after the scan).

   Expiries are extended by one instant past the stop so the adjacency
   relations (MEETS / MET_BY) still see their partner; the compiled
   predicate then separates adjacency from genuine overlap.  BEFORE and
   AFTER pairs are separated by at least one instant, which defeats an
   active map, so they run as an ordered prefix scan instead
   ([run_ordering]): walk the later side by start, keep a dense prefix
   of the earlier side sorted by extended stop, and emit the whole
   prefix per event — O(sort + output), which is optimal for a
   predicate whose output is inherently quadratic. *)

let guard_tick = function Some g -> Tempagg.Guard.check g | None -> ()

(* Start-event stream: starts ascending, slots carrying tuple indices. *)
let start_events (ivs : Interval.t array) =
  let n = Array.length ivs in
  let starts = Array.make (max n 1) 0 and slots = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    starts.(i) <- Chronon.to_int (Interval.start ivs.(i));
    slots.(i) <- i
  done;
  Tempagg.Sweep.radix_sort starts slots n;
  (starts, slots)

(* Extended expiry: the last sweep instant at which the tuple can still
   pair with a newly starting one (stop + 1 covers MEETS; saturates at
   max_int for forever). *)
let expiry iv =
  let e = Chronon.to_int (Interval.stop iv) in
  if e = max_int then max_int else e + 1

let endpoint_ints ivs =
  ( Array.map (fun iv -> Chronon.to_int (Interval.start iv)) ivs,
    Array.map (fun iv -> Chronon.to_int (Interval.stop iv)) ivs )

let run_touching ?guard ?instrument pred ~left ~right emit =
  let ls, le = endpoint_ints left and rs, re = endpoint_ints right in
  let holds = Predicate.compile pred in
  let lstarts, lslots = start_events left
  and rstarts, rslots = start_events right in
  let n = Array.length left and m = Array.length right in
  let lmap = Gapless.create ?instrument ()
  and rmap = Gapless.create ?instrument () in
  let li = ref 0 and rj = ref 0 in
  while !li < n || !rj < m do
    guard_tick guard;
    let take_left =
      !rj >= m || (!li < n && lstarts.(!li) <= rstarts.(!rj))
    in
    if take_left then begin
      let a = lslots.(!li) in
      let now = lstarts.(!li) in
      let sa = ls.(a) and ea = le.(a) in
      Gapless.scan rmap ~now (fun b ->
          guard_tick guard;
          if holds sa ea rs.(b) re.(b) then emit a b);
      Gapless.insert lmap ~idx:a ~expiry:(expiry left.(a));
      incr li
    end
    else begin
      let b = rslots.(!rj) in
      let now = rstarts.(!rj) in
      let sb = rs.(b) and eb = re.(b) in
      Gapless.scan lmap ~now (fun a ->
          guard_tick guard;
          if holds ls.(a) le.(a) sb eb then emit a b);
      Gapless.insert rmap ~idx:b ~expiry:(expiry right.(b));
      incr rj
    end
  done;
  Gapless.clear lmap;
  Gapless.clear rmap

(* BEFORE: every pair (a, b) with a's extended stop strictly before b's
   start.  Sort the left side by extended stop and the right by start;
   as the walk reaches each right tuple, the left tuples whose extended
   stop has passed form a dense prefix ("retired"), all of which pair
   with it.  AFTER is the same scan with the sides swapped. *)
let run_before ?guard ?instrument ~left ~right emit =
  let n = Array.length left and m = Array.length right in
  let lstops = Array.make (max n 1) 0 and lslots = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    lstops.(i) <- expiry left.(i);
    lslots.(i) <- i
  done;
  Tempagg.Sweep.radix_sort lstops lslots n;
  let rstarts, rslots = start_events right in
  (* The retired prefix is the same dense-slot idea as the active map,
     inverted: tuples enter when they expire and never leave. *)
  let retired = Gapless.create ?instrument () in
  let li = ref 0 in
  for j = 0 to m - 1 do
    guard_tick guard;
    let b = rslots.(j) in
    let sb = rstarts.(j) in
    while !li < n && lstops.(!li) < sb do
      (* stop+1 < start means at least one instant separates them. *)
      Gapless.insert retired ~idx:lslots.(!li) ~expiry:max_int;
      incr li
    done;
    Gapless.scan retired ~now:0 (fun a ->
        guard_tick guard;
        emit a b)
  done;
  Gapless.clear retired

let run ?guard ?instrument pred ~left ~right emit =
  match pred with
  | Predicate.Allen Interval.Before ->
      run_before ?guard ?instrument ~left ~right emit
  | Predicate.Allen Interval.After ->
      run_before ?guard ?instrument ~left:right ~right:left
        (fun b a -> emit a b)
  | _ -> run_touching ?guard ?instrument pred ~left ~right emit
