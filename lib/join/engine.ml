type strategy = Sweep | Nested_loop

let strategy_to_string = function
  | Sweep -> "sweep-join"
  | Nested_loop -> "nested-loop-join"

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "sweep" | "sweep-join" -> Ok Sweep
  | "nested-loop" | "nested_loop" | "nested-loop-join" -> Ok Nested_loop
  | other ->
      Error
        (Printf.sprintf "unknown join strategy %S (expected sweep or \
                         nested-loop)"
           other)

let run ?guard ?instrument strategy pred ~left ~right emit =
  match strategy with
  | Sweep -> Sweep_join.run ?guard ?instrument pred ~left ~right emit
  | Nested_loop -> Nested_loop.run ?guard pred ~left ~right emit

let pairs ?guard ?instrument strategy pred left right =
  let acc = ref [] in
  run ?guard ?instrument strategy pred ~left ~right (fun i j ->
      acc := (i, j) :: !acc);
  List.sort compare !acc
