(* Process-wide join counters, Atomic because joins run inside the
   TCP server's session domains.  [to_metrics] refreshes gauges in a
   registry on demand (the serve loop's metrics refresh), mirroring how
   partition pruning totals are exposed. *)

let sweep_joins = Atomic.make 0
let nested_joins = Atomic.make 0
let pairs_emitted = Atomic.make 0
let fallbacks = Atomic.make 0

let record ~strategy ~pairs =
  (match strategy with
  | Engine.Sweep -> Atomic.incr sweep_joins
  | Engine.Nested_loop -> Atomic.incr nested_joins);
  ignore (Atomic.fetch_and_add pairs_emitted pairs)

let record_fallback () = Atomic.incr fallbacks

let totals () =
  ( Atomic.get sweep_joins,
    Atomic.get nested_joins,
    Atomic.get pairs_emitted,
    Atomic.get fallbacks )

let reset () =
  Atomic.set sweep_joins 0;
  Atomic.set nested_joins 0;
  Atomic.set pairs_emitted 0;
  Atomic.set fallbacks 0

let to_metrics registry =
  let sweep, nested, pairs, fb = totals () in
  let gauge ?labels help name =
    Obs.Metrics.gauge registry ~help ?labels name
  in
  Obs.Metrics.set_int
    (gauge "Interval joins executed, by strategy"
       ~labels:[ ("strategy", "sweep") ]
       "tempagg_join_total")
    sweep;
  Obs.Metrics.set_int
    (gauge "Interval joins executed, by strategy"
       ~labels:[ ("strategy", "nested-loop") ]
       "tempagg_join_total")
    nested;
  Obs.Metrics.set_int
    (gauge "Tuple pairs emitted by interval joins" "tempagg_join_pairs_total")
    pairs;
  Obs.Metrics.set_int
    (gauge "Sweep joins degraded to nested-loop by Guard budgets"
       "tempagg_join_fallbacks_total")
    fb
