(** The endpoint-sweep interval join (Piatov et al.): radix-sorted
    start-event streams merged in time order over per-side
    {!Gapless} active-tuple maps.  BEFORE / AFTER run as an ordered
    prefix scan, the other predicates through the active maps with
    expiries extended one instant past the stop so adjacency pairs
    (MEETS / MET_BY) are still found. *)

open Temporal

val run :
  ?guard:Tempagg.Guard.t ->
  ?instrument:Tempagg.Instrument.t ->
  Predicate.t ->
  left:Interval.t array ->
  right:Interval.t array ->
  (int -> int -> unit) ->
  unit
(** [run pred ~left ~right emit] calls [emit i j] exactly once for
    every pair with [Predicate.holds pred left.(i) right.(j)].  Pairs
    are emitted in sweep order (ascending start of the later-starting
    tuple), not sorted.  The guard is ticked per event and per scanned
    candidate, and active-map slots are counted against [instrument],
    so memory budgets and deadlines abort the sweep mid-join.
    @raise Tempagg.Guard.Budget_exceeded
    @raise Tempagg.Guard.Deadline_exceeded *)
