(** CSV import/export of temporal relations.

    Format: a header line of [name:type] column declarations followed by the
    two implicit valid-time columns [start] and [stop]; one data row per
    tuple.  [stop] may be ["oo"] for an unbounded interval.  Fields
    containing commas, quotes or newlines are double-quoted with doubled
    inner quotes (RFC-4180 style).

    Example:
    {v
    name:string,salary:int,start,stop
    Richard,40000,18,oo
    Karen,45000,8,20
    v} *)

val to_string : Trel.t -> string

val to_channel : out_channel -> Trel.t -> unit

val of_string : string -> (Trel.t, string) result
(** Parses a whole CSV document; returns a descriptive error on malformed
    input (bad header, wrong arity, unparsable literal or timestamp,
    start after stop, unterminated quote).  Every error names the
    physical line it occurred on, and data-row errors additionally name
    the row ([line n (row m): ...] — the two diverge when quoted fields
    span lines).  No exception escapes this function. *)

val of_channel : in_channel -> (Trel.t, string) result

val load : string -> (Trel.t, string) result
(** Read a relation from the named file. *)

val save : string -> Trel.t -> unit
(** Write a relation to the named file. *)
