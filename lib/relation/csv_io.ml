open Temporal

let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let quote_field s =
  if needs_quoting s then
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  else s

exception Parse_error of string

(* Splits a CSV document into rows of fields, handling quoted fields.
   Each row is tagged with the physical line it starts on: quoted fields
   may contain newlines, so row index and line number can diverge. *)
let parse_rows text =
  let rows = ref [] and row = ref [] and buf = Buffer.create 32 in
  let n = String.length text in
  let line = ref 1 and row_line = ref 1 in
  let flush_field () =
    row := Buffer.contents buf :: !row;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := (!row_line, List.rev !row) :: !rows;
    row := []
  in
  let rec plain i =
    if i >= n then (if !row <> [] || Buffer.length buf > 0 then flush_row ())
    else
      match text.[i] with
      | ',' -> flush_field (); plain (i + 1)
      | '\n' ->
          flush_row ();
          incr line;
          row_line := !line;
          plain (i + 1)
      | '\r' -> plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted !line (i + 1)
      | c -> Buffer.add_char buf c; plain (i + 1)
  and quoted opened i =
    if i >= n then
      raise
        (Parse_error
           (Printf.sprintf "line %d: unterminated quoted field" opened))
    else
      match text.[i] with
      | '"' when i + 1 < n && text.[i + 1] = '"' ->
          Buffer.add_char buf '"'; quoted opened (i + 2)
      | '"' -> plain (i + 1)
      | '\n' ->
          Buffer.add_char buf '\n';
          incr line;
          quoted opened (i + 1)
      | c -> Buffer.add_char buf c; quoted opened (i + 1)
  in
  plain 0;
  List.rev !rows

let header schema =
  String.concat ","
    (List.map
       (fun c ->
         Printf.sprintf "%s:%s" c.Schema.name (Value.ty_to_string c.Schema.ty))
       (Schema.columns schema))
  ^ ",start,stop"

let row_of_tuple tuple =
  let fields =
    Array.to_list (Array.map (fun v -> quote_field (Value.to_string v))
                     (Tuple.values tuple))
  in
  String.concat ","
    (fields
    @ [ Chronon.to_string (Tuple.start tuple);
        Chronon.to_string (Tuple.stop tuple) ])

let to_string rel =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header (Trel.schema rel));
  Buffer.add_char buf '\n';
  Trel.iter
    (fun tuple ->
      Buffer.add_string buf (row_of_tuple tuple);
      Buffer.add_char buf '\n')
    rel;
  Buffer.contents buf

let to_channel oc rel = output_string oc (to_string rel)

let parse_header fields =
  let rec split_cols acc = function
    | [ "start"; "stop" ] -> Ok (List.rev acc)
    | decl :: rest -> (
        match String.index_opt decl ':' with
        | None ->
            Error (Printf.sprintf "header: missing type in column %S" decl)
        | Some i -> (
            let name = String.sub decl 0 i in
            let ty_s = String.sub decl (i + 1) (String.length decl - i - 1) in
            match Value.ty_of_string ty_s with
            | None -> Error (Printf.sprintf "header: unknown type %S" ty_s)
            | Some ty -> split_cols ({ Schema.name; ty } :: acc) rest))
    | [] -> Error "header: missing start,stop columns"
  in
  match split_cols [] fields with
  | Ok cols -> (
      match Schema.make cols with
      | schema -> Ok schema
      | exception Invalid_argument msg -> Error msg)
  | Error _ as e -> e

let parse_chronon s =
  if s = "oo" || s = "inf" then Ok Chronon.forever
  else
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok (Chronon.of_int n)
    | Some _ -> Error (Printf.sprintf "negative timestamp %S" s)
    | None -> Error (Printf.sprintf "bad timestamp %S" s)

let parse_tuple schema fields =
  let arity = Schema.arity schema in
  if List.length fields <> arity + 2 then
    Error
      (Printf.sprintf "expected %d fields, got %d" (arity + 2)
         (List.length fields))
  else
    let rec values i acc = function
      | [ s; e ] -> (
          match (parse_chronon s, parse_chronon e) with
          | Ok start, Ok stop -> (
              match Interval.make start stop with
              | iv -> Ok (Tuple.make (Array.of_list (List.rev acc)) iv)
              | exception Invalid_argument msg -> Error msg)
          | Error msg, _ | _, Error msg -> Error msg)
      | field :: rest -> (
          let ty = (Schema.column schema i).Schema.ty in
          match Value.of_string ty field with
          | Ok v -> values (i + 1) (v :: acc) rest
          | Error msg -> Error msg)
      | [] -> Error "truncated row"
    in
    values 0 [] fields

let of_string text =
  match parse_rows text with
  | exception Parse_error msg -> Error msg
  | [] -> Error "empty document"
  | (header_line, header) :: rows -> (
      match parse_header header with
      | Error msg -> Error (Printf.sprintf "line %d: %s" header_line msg)
      | Ok schema ->
          (* Data rows are numbered from 1; their physical line can lag
             the row number when quoted fields span lines. *)
          let rec build row_no acc = function
            | [] -> Ok (Trel.create schema (List.rev acc))
            | (line_no, row) :: rest -> (
                match parse_tuple schema row with
                | Ok tuple -> build (row_no + 1) (tuple :: acc) rest
                | Error msg ->
                    Error
                      (Printf.sprintf "line %d (row %d): %s" line_no row_no
                         msg))
          in
          build 1 [] rows)

let of_channel ic = of_string (In_channel.input_all ic)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let save path rel =
  Out_channel.with_open_text path (fun oc -> to_channel oc rel)
