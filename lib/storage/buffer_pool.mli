(** A small LRU page cache.

    The paper charges Tuma's approach for scanning the relation twice;
    whether that second scan really costs disk I/O depends on whether the
    pages are still resident.  A buffer pool makes that explicit: scans
    consult the pool first, and only misses reach the disk (and the
    {!Io_stats} counters).

    Pages are keyed by (file path, page index).  Eviction is
    least-recently-used; the implementation favours simplicity (hash
    table plus generation stamps, O(capacity) eviction scan) over raw
    speed, which is ample for the pool sizes the benches use. *)

type t

type key = string * int
(** File path and data-page index. *)

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int
val length : t -> int

val find : t -> key -> bytes option
(** On a hit, the page becomes most-recently-used.  Callers must not
    mutate the returned bytes. *)

val insert : t -> key -> bytes -> unit
(** Cache a page (the pool keeps its own copy), evicting the
    least-recently-used entry when full.  Re-inserting an existing key
    refreshes it. *)

val invalidate_file : t -> string -> unit
(** Drop every cached page of the given file (after rewriting it). *)

val hits : t -> int
val misses : t -> int
(** Counters of {!find} outcomes. *)

val clear : t -> unit

val to_metrics : Obs.Metrics.t -> t -> unit
(** Fold hit/miss/occupancy counters into [tempagg_buffer_pool_*]
    registry gauges. *)
