type t = {
  mutable reads : int;
  mutable writes : int;
  mutable retries : int;
  mutable corrupt_pages : int;
}

let create () = { reads = 0; writes = 0; retries = 0; corrupt_pages = 0 }
let read_page t = t.reads <- t.reads + 1
let write_page t = t.writes <- t.writes + 1
let retry t = t.retries <- t.retries + 1
let corrupt_page t = t.corrupt_pages <- t.corrupt_pages + 1
let pages_read t = t.reads
let pages_written t = t.writes
let retries t = t.retries
let corrupt_pages t = t.corrupt_pages
let total_pages t = t.reads + t.writes

let reset t =
  t.reads <- 0;
  t.writes <- 0;
  t.retries <- 0;
  t.corrupt_pages <- 0

type snapshot = {
  pages_read : int;
  pages_written : int;
  retries : int;
  corrupt_pages : int;
}

let snapshot t =
  {
    pages_read = t.reads;
    pages_written = t.writes;
    retries = t.retries;
    corrupt_pages = t.corrupt_pages;
  }

let to_metrics registry t =
  let g name help v =
    Obs.Metrics.set_int (Obs.Metrics.gauge registry ~help name) v
  in
  g "tempagg_io_pages_read" "Pages read (retried reads charged again)" t.reads;
  g "tempagg_io_pages_written" "Pages written" t.writes;
  g "tempagg_io_retries" "Page reads retried after a transient fault" t.retries;
  g "tempagg_io_corrupt_pages" "Pages whose CRC trailer failed to verify"
    t.corrupt_pages

let pp_snapshot ppf s =
  Format.fprintf ppf "pages_read=%d pages_written=%d" s.pages_read
    s.pages_written;
  if s.retries > 0 then Format.fprintf ppf " retries=%d" s.retries;
  if s.corrupt_pages > 0 then
    Format.fprintf ppf " corrupt_pages=%d" s.corrupt_pages
