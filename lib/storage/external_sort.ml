open Relation

(* A tiny binary min-heap over (tuple, run-id, cursor); ordered by valid
   time with the run id breaking ties, which keeps the merge stable. *)
module Merge_heap = struct
  type entry = {
    tuple : Tuple.t;
    run : int;
    mutable rest : Tuple.t Seq.t;
  }

  type t = { mutable data : entry array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let less a b =
    let c = Tuple.compare_by_time a.tuple b.tuple in
    if c <> 0 then c < 0 else a.run < b.run

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let rec sift_up h i =
    let parent = (i - 1) / 2 in
    if i > 0 && less h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
    if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let push h entry =
    if h.size = Array.length h.data then begin
      let grown = Array.make (Stdlib.max 4 (2 * h.size)) entry in
      Array.blit h.data 0 grown 0 h.size;
      h.data <- grown
    end;
    h.data.(h.size) <- entry;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.data.(0) <- h.data.(h.size);
        sift_down h 0
      end;
      Some top
    end
end

let run_count ~n ~memory_tuples = (n + memory_tuples - 1) / memory_tuples

let estimated_page_io ~n ~pages ~memory_tuples ~fan_in =
  let rec levels runs acc =
    if runs <= 1 then acc
    else levels ((runs + fan_in - 1) / fan_in) (acc + 1)
  in
  let merge_levels = levels (run_count ~n ~memory_tuples) 0 in
  (* Run formation reads and writes everything once; each merge level
     does the same. *)
  2 * pages * (1 + merge_levels)

let temp_run () = Filename.temp_file "tempagg_run" ".heap"

(* Write [tuples] (already sorted) as one run. *)
let write_run ~stats ~page_size ~slot_bytes schema tuples =
  let path = temp_run () in
  let w = Heap_file.create ~page_size ~slot_bytes ~stats path schema in
  Fun.protect
    ~finally:(fun () -> Heap_file.close_writer w)
    (fun () -> List.iter (Heap_file.append w) tuples);
  path

(* Merge the given runs into [dst_path]; consumes (deletes) the runs. *)
let merge_runs ~stats ~page_size ~slot_bytes schema runs dst_path =
  let readers =
    List.map (fun path -> (path, Heap_file.open_reader ~stats path)) runs
  in
  let w = Heap_file.create ~page_size ~slot_bytes ~stats dst_path schema in
  Fun.protect
    ~finally:(fun () ->
      Heap_file.close_writer w;
      List.iter
        (fun (path, r) ->
          Heap_file.close_reader r;
          Sys.remove path)
        readers)
    (fun () ->
      let heap = Merge_heap.create () in
      List.iteri
        (fun run (_, r) ->
          match (Heap_file.scan r) () with
          | Seq.Nil -> ()
          | Seq.Cons (tuple, rest) ->
              Merge_heap.push heap { Merge_heap.tuple; run; rest })
        readers;
      let rec drain () =
        match Merge_heap.pop heap with
        | None -> ()
        | Some entry ->
            Heap_file.append w entry.Merge_heap.tuple;
            (match entry.Merge_heap.rest () with
            | Seq.Nil -> ()
            | Seq.Cons (tuple, rest) ->
                Merge_heap.push heap
                  { entry with Merge_heap.tuple; rest });
            drain ()
      in
      drain ())

let chunk size l =
  let rec go acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
        if n = size then go (List.rev current :: acc) [ x ] 1 rest
        else go acc (x :: current) (n + 1) rest
  in
  go [] [] 0 l

let rec merge_passes ~stats ~page_size ~slot_bytes ~fan_in schema runs dst =
  match runs with
  | [] ->
      let w = Heap_file.create ~page_size ~slot_bytes ~stats dst schema in
      Heap_file.close_writer w
  | runs when List.length runs <= fan_in ->
      merge_runs ~stats ~page_size ~slot_bytes schema runs dst
  | runs ->
      let next =
        List.map
          (fun group ->
            let tmp = temp_run () in
            merge_runs ~stats ~page_size ~slot_bytes schema group tmp;
            tmp)
          (chunk fan_in runs)
      in
      merge_passes ~stats ~page_size ~slot_bytes ~fan_in schema next dst

let sort ?(memory_tuples = 4096) ?(fan_in = 16) ~stats ~src ~dst () =
  if memory_tuples <= 0 then
    invalid_arg "External_sort.sort: memory_tuples must be positive";
  if fan_in < 2 then invalid_arg "External_sort.sort: fan_in must be >= 2";
  let reader = Heap_file.open_reader ~stats src in
  let schema = Heap_file.schema reader in
  let page_size = Heap_file.page_size reader in
  let slot_bytes = Heap_file.slot_bytes reader in
  let runs =
    Obs.Trace.with_span "extsort:runs" @@ fun () ->
    Fun.protect
      ~finally:(fun () -> Heap_file.close_reader reader)
      (fun () ->
        let runs = ref [] and buffer = ref [] and buffered = ref 0 in
        let spill () =
          if !buffered > 0 then begin
            let sorted =
              List.stable_sort Tuple.compare_by_time (List.rev !buffer)
            in
            runs :=
              write_run ~stats ~page_size ~slot_bytes schema sorted :: !runs;
            buffer := [];
            buffered := 0
          end
        in
        Seq.iter
          (fun tuple ->
            buffer := tuple :: !buffer;
            incr buffered;
            if !buffered = memory_tuples then spill ())
          (Heap_file.scan reader);
        spill ();
        List.rev !runs)
  in
  Obs.Trace.with_span
    ~attrs:[ ("runs", string_of_int (List.length runs)) ]
    "extsort:merge"
    (fun () -> merge_passes ~stats ~page_size ~slot_bytes ~fan_in schema runs dst)
