(* Time-partitioned relations: one heap-file shard per disjoint
   valid-time range, routed by the start instant of each tuple's valid
   interval, plus a small manifest tying the directory together.

   Pruning soundness: tuples are routed by START, so a tuple owned by
   shard i may extend past i's range (an overhang).  Pruning therefore
   tests the query window against each shard's EXTENT — [lo, max stop
   seen] — never against the owned range alone: if the extent misses
   the window, every tuple in the shard does too (starts >= lo, stops
   <= max stop), so dropping the shard cannot change the answer. *)

open Temporal
open Relation

type shard = {
  file : string;  (* filename within the partition directory *)
  lo : int;  (* owned range start, inclusive *)
  hi : int option;  (* owned range end, exclusive; None = infinity *)
  io : Io_stats.t;
  mutable count : int;  (* durable tuples on disk *)
  mutable max_stop : int;  (* extent end; max_int = forever, -1 = empty *)
  mutable pending : Tuple.t list;  (* buffered inserts, newest first *)
}

type t = {
  dir : string;
  schema : Schema.t;
  split_threshold : int;
  fault : Fault.t option;
  mutable shards : shard array;  (* ascending by [lo], ranges tiling *)
  mutable next_id : int;  (* shard filename counter, never reused *)
  mutable q_queries : int;
  mutable q_scanned : int;
  mutable q_pruned : int;
}

let manifest_file = "PARTITION"
let default_split_threshold = 8192

let manifest_path dir = Filename.concat dir manifest_file
let shard_path t sh = Filename.concat t.dir sh.file

let is_partition_dir dir =
  Sys.file_exists dir && Sys.is_directory dir
  && Sys.file_exists (manifest_path dir)

let dir t = t.dir
let schema t = t.schema
let split_threshold t = t.split_threshold
let shard_count t = Array.length t.shards

let shard_total sh = sh.count + List.length sh.pending

let cardinality t =
  Array.fold_left (fun acc sh -> acc + shard_total sh) 0 t.shards

let boundaries t =
  List.filteri (fun i _ -> i > 0) (Array.to_list t.shards)
  |> List.map (fun sh -> sh.lo)

let start_of tu = Chronon.to_int (Interval.start (Tuple.valid tu))
let stop_of tu = Chronon.to_int (Interval.stop (Tuple.valid tu))

let stop_chronon n = if n = max_int then Chronon.forever else Chronon.of_int n

(* The owned range as a closed interval: [lo, hi). *)
let owned_range sh =
  Interval.make (Chronon.of_int sh.lo)
    (match sh.hi with
    | Some h -> Chronon.of_int (h - 1)
    | None -> Chronon.forever)

(* The pruning extent: owned start through the latest stop of any tuple
   routed here (overhang included).  An empty shard falls back to its
   owned range — conservative but trivially sound. *)
let extent sh =
  if sh.max_stop < sh.lo then owned_range sh
  else Interval.make (Chronon.of_int sh.lo) (stop_chronon sh.max_stop)

type shard_info = {
  si_index : int;
  si_file : string;
  si_cover : Interval.t;
  si_cardinality : int;
  si_io : Io_stats.snapshot;
}

let shard_infos t =
  Array.to_list
    (Array.mapi
       (fun i sh ->
         {
           si_index = i;
           si_file = sh.file;
           si_cover = owned_range sh;
           si_cardinality = shard_total sh;
           si_io = Io_stats.snapshot sh.io;
         })
       t.shards)

let shard_layout t =
  Array.to_list (Array.map (fun sh -> (extent sh, shard_total sh)) t.shards)

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)
(* ------------------------------------------------------------------ *)

let bound_to_string = function
  | n when n = max_int -> "inf"
  | n when n < 0 -> "-"
  | n -> string_of_int n

let bound_of_string path = function
  | "inf" -> max_int
  | "-" -> -1
  | s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None ->
          invalid_arg
            (Printf.sprintf "Partition: malformed manifest %s: bad bound %S"
               path s))

(* Write-then-rename so a crash mid-write never leaves a torn manifest
   pointing at the shards. *)
let write_manifest t =
  let tmp = manifest_path t.dir ^ ".tmp" in
  let oc = open_out tmp in
  Printf.fprintf oc "tempagg-partition 1\n";
  Printf.fprintf oc "split-threshold %d\n" t.split_threshold;
  Printf.fprintf oc "next-id %d\n" t.next_id;
  Array.iter
    (fun sh ->
      Printf.fprintf oc "shard %s %d %s %s %d\n" sh.file sh.lo
        (match sh.hi with Some h -> string_of_int h | None -> "inf")
        (bound_to_string sh.max_stop)
        sh.count)
    t.shards;
  close_out oc;
  Sys.rename tmp (manifest_path t.dir)

let fresh_shard t ~lo ~hi =
  let id = t.next_id in
  t.next_id <- id + 1;
  {
    file = Printf.sprintf "shard-%04d.heap" id;
    lo;
    hi;
    io = Io_stats.create ();
    count = 0;
    max_stop = -1;
    pending = [];
  }

let check_boundaries bs =
  let rec ok prev = function
    | [] -> true
    | b :: rest -> b > prev && ok b rest
  in
  if not (ok 0 bs) then
    invalid_arg
      "Partition: boundaries must be strictly increasing and positive"

(* Shards for boundaries [b1 < ... < bk]: [0,b1), [b1,b2), ..., [bk,oo). *)
let shards_of_boundaries t bs =
  let rec build lo = function
    | [] -> [ fresh_shard t ~lo ~hi:None ]
    | b :: rest -> fresh_shard t ~lo ~hi:(Some b) :: build b rest
  in
  build 0 bs

(* ------------------------------------------------------------------ *)
(* Shard I/O                                                           *)
(* ------------------------------------------------------------------ *)

let rewrite_shard t sh tuples =
  let w = Heap_file.create ~stats:sh.io (shard_path t sh) t.schema in
  Fun.protect
    ~finally:(fun () -> Heap_file.close_writer w)
    (fun () -> List.iter (Heap_file.append w) tuples);
  sh.count <- List.length tuples;
  sh.max_stop <- List.fold_left (fun acc tu -> Stdlib.max acc (stop_of tu)) (-1) tuples

let durable ?on_corrupt t sh =
  let r = Heap_file.open_reader ?fault:t.fault ~stats:sh.io (shard_path t sh) in
  Fun.protect
    ~finally:(fun () -> Heap_file.close_reader r)
    (fun () -> List.of_seq (Heap_file.scan ?on_corrupt r))

let shard_tuples_of ?on_corrupt t sh =
  durable ?on_corrupt t sh @ List.rev sh.pending

let shard_tuples ?on_corrupt t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Partition.shard_tuples: shard index out of range";
  shard_tuples_of ?on_corrupt t t.shards.(i)

let materialize ?on_corrupt t =
  Trel.create t.schema
    (List.concat_map (shard_tuples_of ?on_corrupt t) (Array.to_list t.shards))

(* ------------------------------------------------------------------ *)
(* Creation and loading                                                *)
(* ------------------------------------------------------------------ *)

let create ?(split_threshold = default_split_threshold) ?fault ~boundaries ~dir
    schema =
  if split_threshold < 2 then
    invalid_arg "Partition.create: split_threshold must be >= 2";
  check_boundaries boundaries;
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Partition.create: %s is not a directory" dir);
  (* Clear stale shard files from any previous incarnation. *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".heap" then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  let t =
    {
      dir;
      schema;
      split_threshold;
      fault;
      shards = [||];
      next_id = 0;
      q_queries = 0;
      q_scanned = 0;
      q_pruned = 0;
    }
  in
  t.shards <- Array.of_list (shards_of_boundaries t boundaries);
  Array.iter (fun sh -> rewrite_shard t sh []) t.shards;
  write_manifest t;
  t

let load ?fault dir =
  if not (is_partition_dir dir) then
    invalid_arg
      (Printf.sprintf "Partition.load: %s has no %s manifest" dir manifest_file);
  let path = manifest_path dir in
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec all acc =
          match input_line ic with
          | line -> all (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        all [])
  in
  let malformed why =
    invalid_arg (Printf.sprintf "Partition.load: malformed manifest %s: %s" path why)
  in
  let split_threshold = ref default_split_threshold in
  let next_id = ref 0 in
  let shards = ref [] in
  List.iter
    (fun line ->
      match String.split_on_char ' ' (String.trim line) with
      | [ "" ] -> ()
      | [ "tempagg-partition"; "1" ] -> ()
      | [ "tempagg-partition"; v ] -> malformed ("unsupported version " ^ v)
      | [ "split-threshold"; n ] ->
          split_threshold := bound_of_string path n
      | [ "next-id"; n ] -> next_id := bound_of_string path n
      | [ "shard"; file; lo; hi; max_stop; count ] ->
          shards :=
            {
              file;
              lo = bound_of_string path lo;
              hi =
                (match bound_of_string path hi with
                | h when h = max_int -> None
                | h -> Some h);
              io = Io_stats.create ();
              count = bound_of_string path count;
              max_stop = bound_of_string path max_stop;
              pending = [];
            }
            :: !shards
      | _ -> malformed (Printf.sprintf "unrecognized line %S" line))
    lines;
  let shards = List.rev !shards in
  (match shards with
  | [] -> malformed "no shards"
  | first :: _ -> if first.lo <> 0 then malformed "first shard must start at 0");
  let rec contiguous = function
    | { hi = Some h; _ } :: ({ lo; _ } :: _ as rest) ->
        if h <> lo then malformed "shard ranges must tile the time-line";
        contiguous rest
    | [ { hi = Some _; _ } ] -> malformed "last shard must be unbounded"
    | { hi = None; _ } :: _ :: _ -> malformed "only the last shard is unbounded"
    | [ { hi = None; _ } ] | [] -> ()
  in
  contiguous shards;
  let first = List.hd shards in
  let schema =
    let io = Io_stats.create () in
    let r = Heap_file.open_reader ?fault ~stats:io (Filename.concat dir first.file) in
    Fun.protect
      ~finally:(fun () -> Heap_file.close_reader r)
      (fun () -> Heap_file.schema r)
  in
  {
    dir;
    schema;
    split_threshold = !split_threshold;
    fault;
    shards = Array.of_list shards;
    next_id = !next_id;
    q_queries = 0;
    q_scanned = 0;
    q_pruned = 0;
  }

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)
(* ------------------------------------------------------------------ *)

(* The owning shard: the last one whose range start is <= the tuple's
   start.  Ranges tile [0, oo), so it always exists. *)
let owner t s =
  let best = ref t.shards.(0) in
  Array.iter (fun sh -> if sh.lo <= s then best := sh) t.shards;
  !best

let insert t tu =
  if Array.length (Tuple.values tu) <> Schema.arity t.schema then
    invalid_arg "Partition.insert: tuple arity disagrees with the schema";
  let sh = owner t (start_of tu) in
  sh.pending <- tu :: sh.pending;
  sh.max_stop <- Stdlib.max sh.max_stop (stop_of tu)

let flush_shard t sh =
  if sh.pending <> [] then begin
    let all = durable t sh @ List.rev sh.pending in
    sh.pending <- [];
    rewrite_shard t sh all
  end

(* Split an oversized shard at (roughly) the median distinct start
   strictly inside its range; recurse until every piece fits or no
   interior start remains (all tuples share one start: unsplittable). *)
let rec split_shard t sh =
  if sh.count <= t.split_threshold then [ sh ]
  else begin
    let tuples = durable t sh in
    let starts = List.sort_uniq Int.compare (List.map start_of tuples) in
    let candidates =
      List.filter
        (fun v ->
          v > sh.lo && match sh.hi with Some h -> v < h | None -> true)
        starts
    in
    match candidates with
    | [] -> [ sh ]
    | _ ->
        let arr = Array.of_list candidates in
        let m = arr.(Array.length arr / 2) in
        let left = fresh_shard t ~lo:sh.lo ~hi:(Some m) in
        let right = fresh_shard t ~lo:m ~hi:sh.hi in
        rewrite_shard t left (List.filter (fun tu -> start_of tu < m) tuples);
        rewrite_shard t right (List.filter (fun tu -> start_of tu >= m) tuples);
        (try Sys.remove (shard_path t sh) with Sys_error _ -> ());
        split_shard t left @ split_shard t right
  end

let flush t =
  Array.iter (flush_shard t) t.shards;
  t.shards <-
    Array.of_list
      (List.concat_map (split_shard t) (Array.to_list t.shards));
  write_manifest t

let delete t pred =
  flush t;
  let removed = ref 0 in
  Array.iter
    (fun sh ->
      let tuples = durable t sh in
      let keep = List.filter (fun tu -> not (pred tu)) tuples in
      let r = List.length tuples - List.length keep in
      if r > 0 then begin
        removed := !removed + r;
        rewrite_shard t sh keep
      end)
    t.shards;
  if !removed > 0 then write_manifest t;
  !removed

(* ------------------------------------------------------------------ *)
(* Pruning                                                             *)
(* ------------------------------------------------------------------ *)

let prune t window =
  let idxs = List.init (Array.length t.shards) Fun.id in
  match window with
  | None -> idxs
  | Some w ->
      List.filter (fun i -> Interval.overlaps (extent t.shards.(i)) w) idxs

let record_pruning t ~scanned ~pruned =
  t.q_queries <- t.q_queries + 1;
  t.q_scanned <- t.q_scanned + scanned;
  t.q_pruned <- t.q_pruned + pruned

let pruning_totals t = (t.q_queries, t.q_scanned, t.q_pruned)

let io_totals t =
  Array.fold_left
    (fun (acc : Io_stats.snapshot) sh ->
      let s = Io_stats.snapshot sh.io in
      {
        Io_stats.pages_read = acc.pages_read + s.pages_read;
        pages_written = acc.pages_written + s.pages_written;
        retries = acc.retries + s.retries;
        corrupt_pages = acc.corrupt_pages + s.corrupt_pages;
      })
    { Io_stats.pages_read = 0; pages_written = 0; retries = 0; corrupt_pages = 0 }
    t.shards

(* ------------------------------------------------------------------ *)
(* Boundary selection and repartitioning                               *)
(* ------------------------------------------------------------------ *)

let choose_boundaries ~shards ~lifespan:(lo, hi) sample =
  if shards < 1 then invalid_arg "Partition.choose_boundaries: shards must be >= 1";
  if shards = 1 || hi <= lo then []
  else
    let in_range b = b > lo && b <= hi in
    let equi_depth =
      let arr = Array.of_list (List.sort_uniq Int.compare sample) in
      let n = Array.length arr in
      if n < 2 * shards then None
      else
        Some
          (List.init (shards - 1) (fun i -> arr.((i + 1) * n / shards))
          |> List.filter in_range
          |> List.sort_uniq Int.compare)
    in
    match equi_depth with
    | Some (_ :: _ as bs) -> bs
    | _ ->
        let width = Stdlib.max 1 ((hi - lo + shards) / shards) in
        List.init (shards - 1) (fun i -> lo + (width * (i + 1)))
        |> List.filter in_range
        |> List.sort_uniq Int.compare

let repartition t bs =
  check_boundaries bs;
  flush t;
  let all = List.concat_map (durable t) (Array.to_list t.shards) in
  let old = Array.to_list t.shards in
  let fresh = shards_of_boundaries t bs in
  let fresh_arr = Array.of_list fresh in
  List.iter
    (fun tu ->
      let s = start_of tu in
      let best = ref fresh_arr.(0) in
      Array.iter (fun sh -> if sh.lo <= s then best := sh) fresh_arr;
      !best.pending <- tu :: !best.pending)
    all;
  List.iter
    (fun sh ->
      rewrite_shard t sh (List.rev sh.pending);
      sh.pending <- [])
    fresh;
  t.shards <- fresh_arr;
  List.iter
    (fun sh -> try Sys.remove (shard_path t sh) with Sys_error _ -> ())
    old;
  write_manifest t
