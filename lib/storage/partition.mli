(** Time-partitioned relations: a set of independent heap-file shards,
    each covering a disjoint valid-time range.

    A partition lives in a directory holding one {!Heap_file} per shard
    plus a small manifest listing each shard's file, time range and
    cardinality.  Shard ranges tile the time-line: boundaries
    [b1 < b2 < ... < bk] yield shards [[0, b1)], [[b1, b2)], ...,
    [[bk, oo)] — every tuple is routed to the unique shard whose range
    contains the {e start} of its valid interval, so a shard can only
    contribute to queries whose window overlaps its range (plus the
    overhang of tuples starting inside it; see {!materialize}'s clip
    note in DESIGN.md).

    Each shard carries its own {!Io_stats}, and every read goes through
    the heap format's CRC verification and optional deterministic
    {!Fault} injection — a corrupt or faulty shard fails (or skips)
    independently of its siblings.

    Tuple order within a shard is physical file order (insertion
    order); {!materialize} concatenates shards in time order, so the
    per-shard cardinalities double as the evaluation-shard offsets an
    [Engine.Parallel] plan pins via [shard_offsets]. *)

open Temporal
open Relation

type t

val manifest_file : string
(** ["PARTITION"], the manifest's filename within the directory. *)

val is_partition_dir : string -> bool
(** Does the directory exist and contain a manifest? *)

val create :
  ?split_threshold:int ->
  ?fault:Fault.t ->
  boundaries:int list ->
  dir:string ->
  Schema.t ->
  t
(** Create a fresh partition (the directory is created if missing;
    existing shard files and manifest are overwritten).  [boundaries]
    are the interior range starts, strictly increasing and positive;
    [[]] makes a single shard covering all of time.  [split_threshold]
    (default 8192) bounds a shard's cardinality: a {!flush} that leaves
    a splittable shard above it splits that shard at its median start.
    [fault] installs the injector on every subsequent shard read.
    @raise Invalid_argument on unsorted or non-positive boundaries. *)

val load : ?fault:Fault.t -> string -> t
(** Open an existing partition directory; the schema is read from the
    first shard's heap header.
    @raise Invalid_argument on a missing or malformed manifest. *)

val dir : t -> string
val schema : t -> Schema.t
val split_threshold : t -> int
val shard_count : t -> int

val cardinality : t -> int
(** Total tuples across shards, buffered inserts included. *)

val boundaries : t -> int list
(** Interior boundaries, ascending — [create]'s input normal form. *)

type shard_info = {
  si_index : int;
  si_file : string;  (** Filename within the directory. *)
  si_cover : Interval.t;  (** Closed time range the shard owns. *)
  si_cardinality : int;
  si_io : Io_stats.snapshot;
}

val shard_infos : t -> shard_info list
(** One entry per shard, in time order — the [SHOW PARTITIONS] rows. *)

val shard_layout : t -> (Interval.t * int) list
(** (cover, cardinality) per shard in time order — what the optimizer's
    [shard_spans] and the evaluation offsets are built from. *)

val insert : t -> Tuple.t -> unit
(** Route the tuple to the shard owning its start instant and buffer
    it there; {!flush} makes it durable.
    @raise Invalid_argument if the tuple disagrees with the schema. *)

val flush : t -> unit
(** Rewrite every shard with buffered inserts (heap files are immutable,
    so an append is a read-modify-rewrite of that shard only), then
    split any shard whose cardinality exceeds the threshold at its
    median start instant, and rewrite the manifest.  Idempotent. *)

val delete : t -> (Tuple.t -> bool) -> int
(** Remove tuples satisfying the predicate, rewriting only the shards
    that changed; flushes first.  Returns the number removed. *)

val shard_tuples :
  ?on_corrupt:[ `Fail | `Skip ] -> t -> int -> Tuple.t list
(** The tuples of shard [i] in physical order (durable then buffered),
    read through the shard's {!Io_stats} and the partition's fault
    injector.
    @raise Heap_file.Corrupt_page under [`Fail] (the default). *)

val materialize : ?on_corrupt:[ `Fail | `Skip ] -> t -> Trel.t
(** All shards concatenated in time order.  The contiguous-slice
    property this guarantees — shard [i]'s tuples occupy one contiguous
    index range — is what lets a parallel plan pin evaluation shards to
    storage shards. *)

val prune : t -> Interval.t option -> int list
(** Indices of shards whose cover overlaps the window ([None] keeps
    all), in time order.  Pure — telemetry is {!record_pruning}. *)

val record_pruning : t -> scanned:int -> pruned:int -> unit
(** Count one planned query's pruning outcome (feeds the serve-loop
    gauges). *)

val pruning_totals : t -> int * int * int
(** [(queries, shards scanned, shards pruned)] since load. *)

val io_totals : t -> Io_stats.snapshot
(** Counters summed across shards. *)

val choose_boundaries :
  shards:int -> lifespan:int * int -> int list -> int list
(** Boundary selection for [shards] target shards over a relation whose
    start instants span [lifespan] (inclusive ints): equi-depth
    quantiles of the sample (an {!Obs.Stats.Distinct} endpoint sample
    from ANALYZE) when it is dense enough (>= 2 values per shard), else
    fixed-width ranges over the lifespan.  Always sorted, deduplicated
    and within the lifespan; may yield fewer than [shards - 1]
    boundaries when values collide.
    @raise Invalid_argument if [shards < 1]. *)

val repartition : t -> int list -> unit
(** Rewrite the partition under new boundaries: flushes, re-routes every
    tuple (global time order preserved within each new shard), replaces
    the shard files and manifest.
    @raise Invalid_argument as {!create} on bad boundaries. *)
