(** Fixed-width binary encoding of tuples.

    Tuples are stored in fixed-size slots (default 128 bytes — the
    paper's tuple size) so that a page holds a predictable number of
    records and a scan is strictly sequential.  Layout: the two
    valid-time chronons as little-endian 64-bit integers
    ({!Temporal.Chronon.forever} encodes the unbounded stop), followed by
    one tagged field per column (null / int / float / length-prefixed
    string), followed by zero padding. *)

val default_slot_bytes : int
(** 128, the paper's tuple size. *)

val crc32 : bytes -> pos:int -> len:int -> int32
(** CRC-32 (IEEE 802.3) of [len] bytes starting at [pos] — the checksum
    stored in heap-file page trailers.
    @raise Invalid_argument if the range falls outside the buffer. *)

val encoded_size : Relation.Tuple.t -> int
(** The number of bytes the tuple needs (before padding). *)

val encode :
  slot_bytes:int -> Relation.Tuple.t -> bytes
(** A fresh buffer of exactly [slot_bytes].
    @raise Invalid_argument if the tuple needs more than [slot_bytes]
    bytes (oversized strings). *)

val encode_into :
  slot_bytes:int -> Relation.Tuple.t -> bytes -> pos:int -> unit
(** In-place variant for page assembly. *)

val decode : Relation.Schema.t -> bytes -> pos:int -> Relation.Tuple.t
(** Decode one slot starting at [pos]; the schema dictates the column
    count (types are checked against the stored tags).
    @raise Invalid_argument on a corrupt slot. *)
