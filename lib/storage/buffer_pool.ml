type key = string * int

type entry = { page : bytes; mutable stamp : int }

type t = {
  capacity : int;
  table : (key, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity <= 0 then
    invalid_arg "Buffer_pool.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    clock = 0;
    hits = 0;
    misses = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some entry ->
      entry.stamp <- tick t;
      t.hits <- t.hits + 1;
      Some entry.page
  | None ->
      t.misses <- t.misses + 1;
      None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, stamp) when stamp <= entry.stamp -> acc
        | _ -> Some (key, entry.stamp))
      t.table None
  in
  match victim with
  | Some (key, _) -> Hashtbl.remove t.table key
  | None -> ()

let insert t key page =
  (match Hashtbl.find_opt t.table key with
  | Some _ -> Hashtbl.remove t.table key
  | None -> ());
  if Hashtbl.length t.table >= t.capacity then evict_lru t;
  Hashtbl.add t.table key { page = Bytes.copy page; stamp = tick t }

let invalidate_file t path =
  let keys =
    Hashtbl.fold
      (fun ((file, _) as key) _ acc -> if file = path then key :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) keys

let hits t = t.hits
let misses t = t.misses

let clear t =
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0

let to_metrics registry t =
  let g name help v =
    Obs.Metrics.set_int (Obs.Metrics.gauge registry ~help name) v
  in
  g "tempagg_buffer_pool_hits" "Page lookups served from the pool" t.hits;
  g "tempagg_buffer_pool_misses" "Page lookups that reached the disk" t.misses;
  g "tempagg_buffer_pool_pages" "Pages currently resident" (length t);
  g "tempagg_buffer_pool_capacity" "Configured pool capacity" t.capacity
