(** Disk-I/O accounting.

    The paper's Section 6.3 weighs "the cost of increased memory
    requirements [against] the cost of disk access" — e.g. whether the
    disk time needed to sort the relation beats the aggregation tree's
    memory appetite.  Every storage operation in this library charges its
    page reads and writes to an [Io_stats.t] so that trade-off can be
    measured rather than guessed.

    Fault recovery is accounted too: [retries] counts re-reads after a
    transient fault (each retried read is also charged as a page read),
    and [corrupt_pages] counts pages whose CRC trailer failed to verify
    — so no recovery is ever silent in the numbers. *)

type t

val create : unit -> t

val read_page : t -> unit
val write_page : t -> unit

val retry : t -> unit
(** A page read was retried after a transient fault. *)

val corrupt_page : t -> unit
(** A page failed its checksum. *)

val pages_read : t -> int
val pages_written : t -> int
val retries : t -> int
val corrupt_pages : t -> int

val total_pages : t -> int

val reset : t -> unit

type snapshot = {
  pages_read : int;
  pages_written : int;
  retries : int;
  corrupt_pages : int;
}

val snapshot : t -> snapshot

val to_metrics : Obs.Metrics.t -> t -> unit
(** Fold the current counters into [tempagg_io_*] registry gauges. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Prints reads/writes always; retries and corrupt pages only when
    non-zero (the happy path stays terse). *)
