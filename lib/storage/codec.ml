open Temporal
open Relation

let default_slot_bytes = 128

(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) with the usual
   256-entry table — the checksum in heap-file page trailers. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Codec.crc32: range outside the buffer";
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    c :=
      Int32.logxor
        table.(Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get buf i)))) 0xFFl))
        (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let tag_null = '\000'
let tag_int = '\001'
let tag_float = '\002'
let tag_str = '\003'

let value_size = function
  | Value.Null -> 1
  | Value.Int _ | Value.Float _ -> 9
  | Value.Str s -> 3 + String.length s

let encoded_size tuple =
  16 + Array.fold_left (fun acc v -> acc + value_size v) 0 (Tuple.values tuple)

let encode_into ~slot_bytes tuple buf ~pos =
  let need = encoded_size tuple in
  if need > slot_bytes then
    invalid_arg
      (Printf.sprintf "Codec.encode: tuple needs %d bytes, slot is %d" need
         slot_bytes);
  Bytes.fill buf pos slot_bytes '\000';
  let valid = Tuple.valid tuple in
  Bytes.set_int64_le buf pos
    (Int64.of_int (Chronon.to_int (Interval.start valid)));
  Bytes.set_int64_le buf (pos + 8)
    (Int64.of_int (Chronon.to_int (Interval.stop valid)));
  let cursor = ref (pos + 16) in
  Array.iter
    (fun v ->
      (match v with
      | Value.Null -> Bytes.set buf !cursor tag_null
      | Value.Int n ->
          Bytes.set buf !cursor tag_int;
          Bytes.set_int64_le buf (!cursor + 1) (Int64.of_int n)
      | Value.Float f ->
          Bytes.set buf !cursor tag_float;
          Bytes.set_int64_le buf (!cursor + 1) (Int64.bits_of_float f)
      | Value.Str s ->
          Bytes.set buf !cursor tag_str;
          Bytes.set_uint16_le buf (!cursor + 1) (String.length s);
          Bytes.blit_string s 0 buf (!cursor + 3) (String.length s));
      cursor := !cursor + value_size v)
    (Tuple.values tuple)

let encode ~slot_bytes tuple =
  let buf = Bytes.create slot_bytes in
  encode_into ~slot_bytes tuple buf ~pos:0;
  buf

let decode schema buf ~pos =
  let start = Int64.to_int (Bytes.get_int64_le buf pos) in
  let stop = Int64.to_int (Bytes.get_int64_le buf (pos + 8)) in
  let valid =
    match
      Interval.make (Chronon.of_int start)
        (if stop = max_int then Chronon.forever else Chronon.of_int stop)
    with
    | iv -> iv
    | exception Invalid_argument msg ->
        invalid_arg ("Codec.decode: corrupt valid time: " ^ msg)
  in
  let cursor = ref (pos + 16) in
  let column i =
    let expected = (Schema.column schema i).Schema.ty in
    let tag = Bytes.get buf !cursor in
    let v =
      if tag = tag_null then Value.Null
      else if tag = tag_int && expected = Value.Tint then
        Value.Int (Int64.to_int (Bytes.get_int64_le buf (!cursor + 1)))
      else if tag = tag_float && expected = Value.Tfloat then
        Value.Float (Int64.float_of_bits (Bytes.get_int64_le buf (!cursor + 1)))
      else if tag = tag_str && expected = Value.Tstring then begin
        let len = Bytes.get_uint16_le buf (!cursor + 1) in
        Value.Str (Bytes.sub_string buf (!cursor + 3) len)
      end
      else
        invalid_arg
          (Printf.sprintf "Codec.decode: tag %d does not match %s column"
             (Char.code tag)
             (Value.ty_to_string expected))
    in
    cursor := !cursor + value_size v;
    v
  in
  (* Fields must be decoded left to right (the cursor is stateful);
     Array.init's application order is unspecified, so loop explicitly. *)
  let arity = Schema.arity schema in
  let values = Array.make arity Value.Null in
  for i = 0 to arity - 1 do
    values.(i) <- column i
  done;
  Tuple.make values valid
