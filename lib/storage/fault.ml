exception Transient_read_error of { path : string; page : int; attempt : int }

type t = {
  seed : int;
  transient : float;
  torn : float;
  bitflip : float;
}

let default_seed () =
  match Sys.getenv_opt "TEMPAGG_FAULT_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 42)
  | None -> 42

let create ?seed ?(transient = 0.) ?(torn = 0.) ?(bitflip = 0.) () =
  let check name r =
    if r < 0. || r > 1. then
      invalid_arg
        (Printf.sprintf "Fault.create: %s rate %g not within [0,1]" name r)
  in
  check "transient" transient;
  check "torn" torn;
  check "bitflip" bitflip;
  let seed = match seed with Some s -> s | None -> default_seed () in
  { seed; transient; torn; bitflip }

let seed t = t.seed

let to_string t =
  Printf.sprintf "transient=%g,torn=%g,bitflip=%g,seed=%d" t.transient t.torn
    t.bitflip t.seed

let of_string s =
  let parse_pair acc pair =
    Result.bind acc (fun (tr, to_, bf, seed) ->
        match String.split_on_char '=' (String.trim pair) with
        | [ key; value ] -> (
            let rate () =
              match float_of_string_opt value with
              | Some r when r >= 0. && r <= 1. -> Ok r
              | Some _ | None ->
                  Error
                    (Printf.sprintf
                       "fault spec: %s rate %S is not a number in [0,1]" key
                       value)
            in
            match key with
            | "transient" -> Result.map (fun r -> (r, to_, bf, seed)) (rate ())
            | "torn" -> Result.map (fun r -> (tr, r, bf, seed)) (rate ())
            | "bitflip" -> Result.map (fun r -> (tr, to_, r, seed)) (rate ())
            | "seed" -> (
                match int_of_string_opt value with
                | Some n -> Ok (tr, to_, bf, Some n)
                | None ->
                    Error
                      (Printf.sprintf "fault spec: seed %S is not an integer"
                         value))
            | _ ->
                Error
                  (Printf.sprintf
                     "fault spec: unknown key %S (expected transient, torn, \
                      bitflip or seed)"
                     key))
        | _ ->
            Error
              (Printf.sprintf
                 "fault spec: expected KEY=VALUE pairs separated by commas, \
                  got %S"
                 pair))
  in
  match
    List.fold_left parse_pair
      (Ok (0., 0., 0., None))
      (List.filter
         (fun p -> String.trim p <> "")
         (String.split_on_char ',' s))
  with
  | Error _ as e -> e
  | Ok (transient, torn, bitflip, seed) ->
      Ok (create ?seed ~transient ~torn ~bitflip ())

(* A deterministic draw in [0,1) keyed by (seed, path, page, salt):
   whether a given fault hits a given page is a pure function of the
   configuration, so a run is exactly reproducible from its seed. *)
let draw t ~path ~page ~salt =
  let h = Hashtbl.hash (t.seed, path, page, salt) in
  float_of_int (h land 0xFFFFFF) /. 16777216.

let salt_transient = 0
let salt_torn = 1
let salt_bitflip = 2

let apply t ~path ~page ~attempt buf =
  (* Transient faults fail only the first attempt on a page, so a
     bounded retry always recovers — the model is a bus hiccup, not bad
     media. *)
  if attempt = 0 && draw t ~path ~page ~salt:salt_transient < t.transient then
    raise (Transient_read_error { path; page; attempt });
  let len = Bytes.length buf in
  (* Torn write: the second half of the page (trailer included) never
     made it to disk.  Persistent — every read of the page sees it. *)
  if draw t ~path ~page ~salt:salt_torn < t.torn then
    Bytes.fill buf (len / 2) (len - (len / 2)) '\000';
  (* Single bit flip at a page-determined offset.  Also persistent. *)
  if draw t ~path ~page ~salt:salt_bitflip < t.bitflip then begin
    let offset = Hashtbl.hash (t.seed, path, page, "bit") mod (len * 8) in
    let byte = offset / 8 and bit = offset mod 8 in
    Bytes.set buf byte
      (Char.chr (Char.code (Bytes.get buf byte) lxor (1 lsl bit)))
  end

let would_corrupt t ~path ~page =
  draw t ~path ~page ~salt:salt_torn < t.torn
  || draw t ~path ~page ~salt:salt_bitflip < t.bitflip
