(** Heap files: temporal relations on disk as pages of fixed-width slots.

    Layout (format version 2): a header page (magic, version, page size,
    slot size, tuple count, and the schema as a CSV-style declaration)
    followed by data pages, each holding a slot count, up to
    [(page_size - 8) / slot_bytes] encoded tuples, and a CRC-32 trailer
    in the last 4 bytes covering everything before it.  Version-1 files
    (no trailers) are still readable; new files are always version 2.
    Scans read one page at a time and charge every page transfer to the
    supplied {!Io_stats}.

    Corruption and fault handling: every page read on a version-2 file is
    checksum-verified — a mismatch raises {!Corrupt_page} (and bumps the
    stats' corrupt counter), or, in a [`Skip] scan, drops the page's
    tuples and continues.  With a {!Fault} injector installed on the
    reader, transient read faults are retried up to 3 times with doubled
    backoff (each retry charged to {!Io_stats.retry}); torn pages and bit
    flips surface through the checksum like real corruption would.

    Heap files preserve physical tuple order — the property the paper's
    algorithms care about (sorted / k-ordered / random). *)

open Relation

val default_page_size : int
(** 8192 bytes. *)

exception Corrupt_page of { path : string; page : int }
(** A page's CRC-32 trailer did not match its contents.  [page] is the
    0-based data-page index, or [-1] for the header page. *)

(** {1 Writing} *)

type writer

val create :
  ?page_size:int ->
  ?slot_bytes:int ->
  stats:Io_stats.t ->
  string ->
  Schema.t ->
  writer
(** Create (truncate) the named file.
    @raise Invalid_argument if a page cannot hold at least one slot, or
    the schema declaration does not fit the header page. *)

val append : writer -> Tuple.t -> unit
(** @raise Invalid_argument if the tuple does not fit a slot or disagrees
    with the schema. *)

val close_writer : writer -> unit
(** Flush the final partial page and the header.  Idempotent. *)

(** {1 Reading} *)

type reader

val open_reader : ?fault:Fault.t -> stats:Io_stats.t -> string -> reader
(** [fault] installs a deterministic fault injector on every subsequent
    page read (the header page is read before injection starts).
    @raise Invalid_argument on a missing or malformed file.
    @raise Corrupt_page if a version-2 header fails its checksum. *)

val schema : reader -> Schema.t
val cardinality : reader -> int
val page_size : reader -> int
val slot_bytes : reader -> int

val data_pages : reader -> int
(** Number of data pages (excluding the header). *)

val format_version : reader -> int
(** 1 (no page trailers) or 2 (CRC-32 trailers). *)

val scan : ?pool:Buffer_pool.t -> ?on_corrupt:[ `Fail | `Skip ] -> reader -> Tuple.t Seq.t
(** Sequential scan in physical order; pages are charged as they are
    pulled.  The sequence may be re-consumed (each traversal re-reads).
    With [pool], cached pages are served without touching the disk or the
    {!Io_stats} counters — how a second scan (e.g. Tuma's two-scan
    algorithm) can come for free when the relation fits the pool; only
    checksum-verified pages ever enter the pool.

    [on_corrupt] (default [`Fail]) decides what a checksum mismatch does:
    [`Fail] lets {!Corrupt_page} escape from the sequence; [`Skip] drops
    the corrupt page's tuples and scans on — the page is still counted in
    {!Io_stats.corrupt_pages}, so the loss is visible. *)

val close_reader : reader -> unit

(** {1 Whole-relation convenience} *)

val write_relation :
  ?page_size:int -> ?slot_bytes:int -> stats:Io_stats.t -> string -> Trel.t -> unit

val read_relation :
  ?fault:Fault.t ->
  ?on_corrupt:[ `Fail | `Skip ] ->
  stats:Io_stats.t ->
  string ->
  Trel.t
