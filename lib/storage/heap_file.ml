open Relation

let default_page_size = 8192
let magic = "TAG1"
let version = 2
let trailer_bytes = 4

exception Corrupt_page of { path : string; page : int }

let () =
  Printexc.register_printer (function
    | Corrupt_page { path; page } ->
        Some
          (Printf.sprintf "Heap_file.Corrupt_page(%s, page %d)" path page)
    | _ -> None)

let schema_to_string schema =
  String.concat ","
    (List.map
       (fun c ->
         Printf.sprintf "%s:%s" c.Schema.name (Value.ty_to_string c.Schema.ty))
       (Schema.columns schema))

let schema_of_string text =
  let column decl =
    match String.index_opt decl ':' with
    | None -> invalid_arg "Heap_file: malformed schema in header"
    | Some i -> (
        let name = String.sub decl 0 i in
        let ty_s = String.sub decl (i + 1) (String.length decl - i - 1) in
        match Value.ty_of_string ty_s with
        | Some ty -> { Schema.name; ty }
        | None -> invalid_arg "Heap_file: unknown column type in header")
  in
  Schema.make (List.map column (String.split_on_char ',' text))

(* Header page layout: magic(4) version(4) page_size(4) slot_bytes(4)
   count(8) schema_len(4) schema bytes, zero-padded to page_size minus
   the 4-byte CRC trailer shared with data pages (format version 2;
   version-1 files have no trailers and are still readable). *)
let header_fixed = 4 + 4 + 4 + 4 + 8 + 4

(* Stamp the CRC-32 of everything before the trailer into the last 4
   bytes of the page. *)
let seal_page ~page_size buf =
  Bytes.set_int32_le buf (page_size - trailer_bytes)
    (Codec.crc32 buf ~pos:0 ~len:(page_size - trailer_bytes))

let verify_page ~page_size buf =
  Bytes.get_int32_le buf (page_size - trailer_bytes)
  = Codec.crc32 buf ~pos:0 ~len:(page_size - trailer_bytes)

let encode_header ~page_size ~slot_bytes ~count schema =
  let decl = schema_to_string schema in
  if header_fixed + String.length decl > page_size - trailer_bytes then
    invalid_arg "Heap_file: schema declaration does not fit the header page";
  let buf = Bytes.make page_size '\000' in
  Bytes.blit_string magic 0 buf 0 4;
  Bytes.set_int32_le buf 4 (Int32.of_int version);
  Bytes.set_int32_le buf 8 (Int32.of_int page_size);
  Bytes.set_int32_le buf 12 (Int32.of_int slot_bytes);
  Bytes.set_int64_le buf 16 (Int64.of_int count);
  Bytes.set_int32_le buf 24 (Int32.of_int (String.length decl));
  Bytes.blit_string decl 0 buf 28 (String.length decl);
  seal_page ~page_size buf;
  buf

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = {
  oc : out_channel;
  schema : Schema.t;
  page_size : int;
  slot_bytes : int;
  slots_per_page : int;
  page : bytes;
  w_stats : Io_stats.t;
  mutable used : int;  (* slots in the current page *)
  mutable count : int;
  mutable w_closed : bool;
}

let create ?(page_size = default_page_size)
    ?(slot_bytes = Codec.default_slot_bytes) ~stats path schema =
  let slots_per_page = (page_size - 4 - trailer_bytes) / slot_bytes in
  if slots_per_page < 1 then
    invalid_arg "Heap_file.create: page cannot hold a single slot";
  (* Validate the schema fits before touching the file. *)
  ignore (encode_header ~page_size ~slot_bytes ~count:0 schema);
  let oc = open_out_bin path in
  (* Reserve the header page; the real header lands at close, when the
     tuple count is known. *)
  output_bytes oc (Bytes.make page_size '\000');
  {
    oc;
    schema;
    page_size;
    slot_bytes;
    slots_per_page;
    page = Bytes.make page_size '\000';
    w_stats = stats;
    used = 0;
    count = 0;
    w_closed = false;
  }

let flush_page w =
  if w.used > 0 then begin
    Bytes.set_int32_le w.page 0 (Int32.of_int w.used);
    seal_page ~page_size:w.page_size w.page;
    output_bytes w.oc w.page;
    Io_stats.write_page w.w_stats;
    Bytes.fill w.page 0 w.page_size '\000';
    w.used <- 0
  end

let check_tuple w tuple =
  let values = Tuple.values tuple in
  if Array.length values <> Schema.arity w.schema then
    invalid_arg "Heap_file.append: tuple arity disagrees with the schema"

let append w tuple =
  if w.w_closed then invalid_arg "Heap_file.append: writer is closed";
  check_tuple w tuple;
  Codec.encode_into ~slot_bytes:w.slot_bytes tuple w.page
    ~pos:(4 + (w.used * w.slot_bytes));
  w.used <- w.used + 1;
  w.count <- w.count + 1;
  if w.used = w.slots_per_page then flush_page w

let close_writer w =
  if not w.w_closed then begin
    w.w_closed <- true;
    flush_page w;
    seek_out w.oc 0;
    output_bytes w.oc
      (encode_header ~page_size:w.page_size ~slot_bytes:w.slot_bytes
         ~count:w.count w.schema);
    Io_stats.write_page w.w_stats;
    close_out w.oc
  end

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type reader = {
  ic : in_channel;
  r_path : string;
  r_schema : Schema.t;
  r_version : int;
  r_page_size : int;
  r_slot_bytes : int;
  r_count : int;
  r_pages : int;
  r_stats : Io_stats.t;
  r_fault : Fault.t option;
  mutable r_closed : bool;
}

let open_reader ?fault ~stats path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> invalid_arg ("Heap_file.open_reader: " ^ msg)
  in
  let head = Bytes.create header_fixed in
  (try really_input ic head 0 header_fixed
   with End_of_file ->
     close_in ic;
     invalid_arg "Heap_file.open_reader: truncated header");
  if Bytes.sub_string head 0 4 <> magic then begin
    close_in ic;
    invalid_arg "Heap_file.open_reader: bad magic (not a heap file)"
  end;
  let file_version = Int32.to_int (Bytes.get_int32_le head 4) in
  if file_version < 1 || file_version > version then begin
    close_in ic;
    invalid_arg
      (Printf.sprintf "Heap_file.open_reader: unsupported format version %d"
         file_version)
  end;
  let page_size = Int32.to_int (Bytes.get_int32_le head 8) in
  let slot_bytes = Int32.to_int (Bytes.get_int32_le head 12) in
  let count = Int64.to_int (Bytes.get_int64_le head 16) in
  let decl_len = Int32.to_int (Bytes.get_int32_le head 24) in
  let decl = really_input_string ic decl_len in
  Io_stats.read_page stats;
  (* Version-2 headers carry the same CRC trailer as data pages. *)
  if file_version >= 2 then begin
    let page = Bytes.create page_size in
    seek_in ic 0;
    (try really_input ic page 0 page_size
     with End_of_file ->
       close_in ic;
       invalid_arg "Heap_file.open_reader: truncated header page");
    if not (verify_page ~page_size page) then begin
      close_in ic;
      Io_stats.corrupt_page stats;
      raise (Corrupt_page { path; page = -1 })
    end
  end;
  let schema = schema_of_string decl in
  let file_len = in_channel_length ic in
  let pages = (file_len / page_size) - 1 in
  {
    ic;
    r_path = path;
    r_schema = schema;
    r_version = file_version;
    r_page_size = page_size;
    r_slot_bytes = slot_bytes;
    r_count = count;
    r_pages = pages;
    r_stats = stats;
    r_fault = fault;
    r_closed = false;
  }

let schema r = r.r_schema
let cardinality r = r.r_count
let page_size r = r.r_page_size
let slot_bytes r = r.r_slot_bytes
let data_pages r = r.r_pages
let format_version r = r.r_version

let max_read_attempts = 3
let backoff_base_s = 0.0005

(* One physical page read: pull the bytes, let the fault injector have
   its way with them, retry (with doubled backoff) on a transient fault,
   and verify the CRC trailer on version-2 files.  Every retried read is
   charged to the stats twice: once as a page read, once as a retry. *)
let read_page r index buf =
  let rec attempt n =
    seek_in r.ic ((index + 1) * r.r_page_size);
    really_input r.ic buf 0 r.r_page_size;
    Io_stats.read_page r.r_stats;
    match
      Option.iter
        (fun f -> Fault.apply f ~path:r.r_path ~page:index ~attempt:n buf)
        r.r_fault
    with
    | () -> ()
    | exception Fault.Transient_read_error _ when n + 1 < max_read_attempts ->
        Io_stats.retry r.r_stats;
        Unix.sleepf (backoff_base_s *. float_of_int (1 lsl n));
        attempt (n + 1)
  in
  attempt 0;
  if r.r_version >= 2 && not (verify_page ~page_size:r.r_page_size buf) then begin
    Io_stats.corrupt_page r.r_stats;
    raise (Corrupt_page { path = r.r_path; page = index })
  end

let fetch_page ?pool r p =
  match pool with
  | None ->
      let buf = Bytes.create r.r_page_size in
      read_page r p buf;
      buf
  | Some pool -> (
      let key = (r.r_path, p) in
      match Buffer_pool.find pool key with
      | Some page -> page
      | None ->
          let buf = Bytes.create r.r_page_size in
          read_page r p buf;
          (* Only a checksum-verified page enters the pool, so cached
             pages are served without re-verification. *)
          Buffer_pool.insert pool key buf;
          buf)

let scan ?pool ?(on_corrupt = `Fail) r =
  let rec page_seq p () =
    if r.r_closed then invalid_arg "Heap_file.scan: reader is closed";
    if p >= r.r_pages then Seq.Nil
    else begin
      match fetch_page ?pool r p with
      | buf ->
          let slots = Int32.to_int (Bytes.get_int32_le buf 0) in
          let tuples =
            List.init slots (fun i ->
                Codec.decode r.r_schema buf ~pos:(4 + (i * r.r_slot_bytes)))
          in
          Seq.append (List.to_seq tuples) (page_seq (p + 1)) ()
      | exception Corrupt_page _ when on_corrupt = `Skip ->
          (* Skip-and-count: the page was charged to the stats' corrupt
             counter by [read_page]; its tuples are dropped, the scan
             continues. *)
          page_seq (p + 1) ()
    end
  in
  page_seq 0

let close_reader r =
  if not r.r_closed then begin
    r.r_closed <- true;
    close_in r.ic
  end

(* ------------------------------------------------------------------ *)
(* Whole relations                                                     *)
(* ------------------------------------------------------------------ *)

let write_relation ?page_size ?slot_bytes ~stats path rel =
  Obs.Trace.with_span
    ~attrs:[ ("path", path) ]
    "heap:write-relation"
    (fun () ->
      let w = create ?page_size ?slot_bytes ~stats path (Trel.schema rel) in
      Fun.protect
        ~finally:(fun () -> close_writer w)
        (fun () -> Trel.iter (append w) rel))

let read_relation ?fault ?on_corrupt ~stats path =
  Obs.Trace.with_span
    ~attrs:[ ("path", path) ]
    "heap:read-relation"
    (fun () ->
      let r = open_reader ?fault ~stats path in
      Fun.protect
        ~finally:(fun () -> close_reader r)
        (fun () -> Trel.create (schema r) (List.of_seq (scan ?on_corrupt r))))
