(** Deterministic storage fault injection.

    A {!t} is a seeded configuration of per-page fault probabilities.
    Whether a fault hits a given page is a pure function of
    [(seed, path, page)], so every run with the same configuration
    injects exactly the same faults — tests and reproductions are
    deterministic, never flaky.

    Three fault kinds, modelling distinct disk failure modes:

    - {e transient}: the read itself fails ({!Transient_read_error}) but
      only on the first attempt — a bus hiccup that a bounded retry
      (see {!Heap_file}) always recovers from;
    - {e torn}: the second half of the page (CRC trailer included) reads
      back as zeros, as if a write was interrupted mid-page.  Persistent;
      detected by the page checksum;
    - {e bitflip}: a single bit at a page-determined offset is inverted.
      Persistent; detected by the page checksum.

    Injection mutates the {e in-memory} page buffer after the read; the
    file on disk is never touched. *)

exception Transient_read_error of { path : string; page : int; attempt : int }

type t

val create :
  ?seed:int -> ?transient:float -> ?torn:float -> ?bitflip:float -> unit -> t
(** Rates are per-page probabilities in [[0,1]], all defaulting to 0.
    The default seed comes from the [TEMPAGG_FAULT_SEED] environment
    variable when set (and an integer), else 42.
    @raise Invalid_argument on a rate outside [[0,1]]. *)

val of_string : string -> (t, string) result
(** Parse a spec of comma-separated [KEY=VALUE] pairs with keys
    [transient], [torn], [bitflip] (rates) and [seed], e.g.
    ["transient=0.1,torn=0.02,seed=7"].  Omitted keys default as in
    {!create}; [""] is a valid all-zero spec. *)

val to_string : t -> string
(** Canonical spec form, [of_string]-compatible. *)

val seed : t -> int

val apply : t -> path:string -> page:int -> attempt:int -> bytes -> unit
(** Inject into a page buffer just read from [path]/[page] on the given
    (0-based) read [attempt].
    @raise Transient_read_error when the transient draw hits and
    [attempt = 0]; otherwise mutates the buffer in place (torn, bitflip)
    or does nothing. *)

val would_corrupt : t -> path:string -> page:int -> bool
(** Whether a torn or bitflip fault hits this page — the pages a
    skip-and-count scan will drop.  For tests. *)
