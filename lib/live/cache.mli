(** Staleness-tracking query cache.

    Entries are keyed by canonical query text and tagged with a
    {e scope} (the base relation the result was derived from), the
    {e interval} of instants the result depends on, and the view
    version that produced it.  A write to scope [s] over interval [w]
    invalidates exactly the entries whose scope is [s] and whose
    interval overlaps [w] — a write outside an entry's window cannot
    change its rows, so the entry survives.  Bounded capacity with FIFO
    eviction; all traffic is counted in a shared {!Stats}. *)

open Temporal

type 'a t

val create : ?capacity:int -> Stats.t -> 'a t
(** [capacity] defaults to 128 entries.
    @raise Invalid_argument when it is not positive. *)

val find : 'a t -> string -> 'a option
(** Lookup by key; counts a hit or a miss. *)

val add :
  'a t -> key:string -> scope:string -> interval:Interval.t -> version:int ->
  'a -> unit
(** Insert (or overwrite) an entry, evicting the oldest entry first when
    at capacity. *)

val invalidate : 'a t -> scope:string -> interval:Interval.t -> int
(** Drop every entry of the scope whose interval overlaps the write;
    returns how many were dropped. *)

val clear : 'a t -> int
(** Drop everything (e.g. on DDL); returns how many were dropped,
    counted as invalidations. *)

val length : 'a t -> int

val entry_version : 'a t -> string -> int option
(** The view version recorded on an entry, for observability and tests;
    does not count as a hit or miss. *)
