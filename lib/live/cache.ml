open Temporal

type 'a entry = {
  scope : string;
  interval : Interval.t;
  version : int;
  value : 'a;
}

type 'a t = {
  capacity : int;
  stats : Stats.t;
  table : (string, 'a entry) Hashtbl.t;
  order : string Queue.t;  (* insertion order; may hold stale keys *)
}

let create ?(capacity = 128) stats =
  if capacity <= 0 then invalid_arg "Live.Cache.create: capacity must be > 0";
  { capacity; stats; table = Hashtbl.create capacity; order = Queue.create () }

let length t = Hashtbl.length t.table

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.stats.Stats.cache_hits <- t.stats.Stats.cache_hits + 1;
      Some e.value
  | None ->
      t.stats.Stats.cache_misses <- t.stats.Stats.cache_misses + 1;
      None

let entry_version t key =
  Option.map (fun e -> e.version) (Hashtbl.find_opt t.table key)

let rec evict_one t =
  (* The queue can hold keys already removed by invalidation; skip them. *)
  match Queue.take_opt t.order with
  | None -> ()
  | Some key ->
      if Hashtbl.mem t.table key then begin
        Hashtbl.remove t.table key;
        t.stats.Stats.cache_evictions <- t.stats.Stats.cache_evictions + 1
      end
      else evict_one t

let add t ~key ~scope ~interval ~version value =
  if not (Hashtbl.mem t.table key) then begin
    if Hashtbl.length t.table >= t.capacity then evict_one t;
    Queue.add key t.order
  end;
  Hashtbl.replace t.table key { scope; interval; version; value }

let invalidate t ~scope ~interval =
  let doomed =
    Hashtbl.fold
      (fun key e acc ->
        if String.equal e.scope scope && Interval.overlaps e.interval interval
        then key :: acc
        else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed;
  let n = List.length doomed in
  t.stats.Stats.cache_invalidations <- t.stats.Stats.cache_invalidations + n;
  n

let clear t =
  let n = Hashtbl.length t.table in
  Hashtbl.reset t.table;
  Queue.clear t.order;
  t.stats.Stats.cache_invalidations <- t.stats.Stats.cache_invalidations + n;
  n
