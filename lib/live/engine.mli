(** The [eval_live] path: batch evaluation through incremental
    maintenance.

    Feeds the input tuple-by-tuple into a fresh {!View} under the same
    {!Tempagg.Guard} budgets as {!Tempagg.Engine.eval_robust} — the
    memory budget bounds the materialized state timeline (enforced at
    each patched segment), the deadline ticks per tuple — and returns
    the final snapshot.  Mostly useful as a conformance harness (the
    QCheck equivalence tests drive it) and as the guarded entry point
    for trickle-loading a view from a stream. *)

open Temporal

val eval_live :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?memory_budget:int ->
  ?deadline_ms:float ->
  ?stats:Stats.t ->
  ?profile:Obs.Profile.t ->
  ('v, 's, 'r) Tempagg.Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  ('r Timeline.t, Tempagg.Engine.error) result
(** When [profile] is given, the evaluation is recorded into it as a
    ["live-view"] attempt with its instrument snapshot (instrumentation
    is forced on, as in {!Tempagg.Engine.eval_robust}). *)
