(** Shared counters for the live subsystem.

    One mutable record, threadable through any number of {!View}s and
    {!Cache}s so a session (or a serve loop) reports a single rollup:
    maintenance work on the write path (inserts, deletes, segments
    patched, lazy rebuilds, tombstones pending a rebuild) and cache
    behaviour on the read path (hits, misses, precise invalidations,
    capacity evictions). *)

type t = {
  mutable inserts : int;  (** Tuples inserted into views. *)
  mutable deletes : int;  (** Tuples retired from views. *)
  mutable patched_segments : int;
      (** Constant intervals touched by incremental patches — the [c] in
          the O(log n + c) per-write bound. *)
  mutable rebuilds : int;
      (** Full batch re-evaluations (bulk loads, non-invertible deletes,
          explicit refreshes). *)
  mutable pending_tombstones : int;
      (** Deletes absorbed as tombstones, awaiting the next lazy rebuild
          (min/max, which have no monoid inverse). *)
  mutable snapshots : int;  (** Versioned snapshot reads served. *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_invalidations : int;
      (** Entries dropped because a write overlapped their interval. *)
  mutable cache_evictions : int;  (** Entries dropped by FIFO capacity. *)
}

val create : unit -> t
val reset : t -> unit
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val to_metrics : Obs.Metrics.t -> t -> unit
(** Fold the counters into [tempagg_live_*] registry gauges. *)
