type t = {
  mutable inserts : int;
  mutable deletes : int;
  mutable patched_segments : int;
  mutable rebuilds : int;
  mutable pending_tombstones : int;
  mutable snapshots : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_invalidations : int;
  mutable cache_evictions : int;
}

let create () =
  {
    inserts = 0;
    deletes = 0;
    patched_segments = 0;
    rebuilds = 0;
    pending_tombstones = 0;
    snapshots = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_invalidations = 0;
    cache_evictions = 0;
  }

let reset t =
  t.inserts <- 0;
  t.deletes <- 0;
  t.patched_segments <- 0;
  t.rebuilds <- 0;
  t.pending_tombstones <- 0;
  t.snapshots <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.cache_invalidations <- 0;
  t.cache_evictions <- 0

let to_string t =
  Printf.sprintf
    "inserts=%d deletes=%d patched-segments=%d rebuilds=%d \
     pending-tombstones=%d snapshots=%d cache: hits=%d misses=%d \
     invalidations=%d evictions=%d"
    t.inserts t.deletes t.patched_segments t.rebuilds t.pending_tombstones
    t.snapshots t.cache_hits t.cache_misses t.cache_invalidations
    t.cache_evictions

let pp ppf t = Format.pp_print_string ppf (to_string t)

let to_metrics registry t =
  let g name help v =
    Obs.Metrics.set_int (Obs.Metrics.gauge registry ~help name) v
  in
  g "tempagg_live_inserts" "Tuples inserted into live views" t.inserts;
  g "tempagg_live_deletes" "Tuples deleted from live views" t.deletes;
  g "tempagg_live_patched_segments" "Segments patched in place"
    t.patched_segments;
  g "tempagg_live_rebuilds" "Full timeline rebuilds" t.rebuilds;
  g "tempagg_live_pending_tombstones" "Deletes awaiting a rebuild"
    t.pending_tombstones;
  g "tempagg_live_snapshots" "Snapshots taken" t.snapshots;
  g "tempagg_live_cache_hits" "Snapshot cache hits" t.cache_hits;
  g "tempagg_live_cache_misses" "Snapshot cache misses" t.cache_misses;
  g "tempagg_live_cache_invalidations" "Snapshot cache invalidations"
    t.cache_invalidations;
  g "tempagg_live_cache_evictions" "Snapshot cache evictions" t.cache_evictions
