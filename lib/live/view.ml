open Temporal

type handle = int

type ('v, 's, 'r) t = {
  monoid : ('v, 's, 'r) Tempagg.Monoid.t;
  state_equal : 's -> 's -> bool;
  domain : Interval.t;
  instrument : Tempagg.Instrument.t option;
  stats : Stats.t;
  tuples : (handle, Interval.t * 'v) Hashtbl.t;
  mutable next_handle : int;
  mutable version : int;
  mutable states : 's Timeline.t;
  mutable dirty : bool;
      (* A non-invertible delete was absorbed as a tombstone: [states]
         no longer reflects [tuples] and must be rebuilt before a read. *)
  history_limit : int;
  mutable history : (int * 's Timeline.t) list;  (* newest first *)
}

let sync_instrument t =
  (* Keep the instrument's live count equal to the segment count, so
     peak_bytes reports the materialized state's footprint and a Guard
     budget bounds it. *)
  match t.instrument with
  | None -> ()
  | Some i ->
      let target = Timeline.length t.states in
      let cur = Tempagg.Instrument.live i in
      if cur > target then Tempagg.Instrument.free_many i (cur - target)
      else for _ = 1 to target - cur do Tempagg.Instrument.alloc i done

let create ?(origin = Chronon.origin) ?(horizon = Chronon.forever)
    ?(state_equal = Stdlib.( = )) ?(history = 0) ?instrument
    ?(stats = Stats.create ()) monoid =
  if Chronon.( > ) origin horizon then
    invalid_arg "Live.View.create: origin after horizon";
  if history < 0 then invalid_arg "Live.View.create: negative history";
  let domain = Interval.make origin horizon in
  let t =
    {
      monoid;
      state_equal;
      domain;
      instrument;
      stats;
      tuples = Hashtbl.create 64;
      next_handle = 0;
      version = 0;
      states = Timeline.singleton domain monoid.Tempagg.Monoid.empty;
      dirty = false;
      history_limit = history;
      history = [];
    }
  in
  sync_instrument t;
  if history > 0 then t.history <- [ (0, t.states) ];
  t

let domain t = t.domain
let version t = t.version
let live_tuples t = Hashtbl.length t.tuples
let segments t = Timeline.length t.states
let stats t = t.stats

let state_monoid t = { t.monoid with Tempagg.Monoid.output = Fun.id }

let rebuild t =
  let data =
    Hashtbl.fold (fun _ tuple acc -> fun () -> Seq.Cons (tuple, acc))
      t.tuples Seq.empty
  in
  t.states <-
    Tempagg.Sweep.eval ~origin:(Interval.start t.domain)
      ~horizon:(Interval.stop t.domain) (state_monoid t) data;
  t.dirty <- false;
  sync_instrument t;
  t.stats.Stats.rebuilds <- t.stats.Stats.rebuilds + 1;
  t.stats.Stats.pending_tombstones <- 0

let ensure_clean t = if t.dirty then rebuild t

let bump t =
  t.version <- t.version + 1;
  if t.history_limit > 0 then begin
    ensure_clean t;
    let keep = t.history_limit in
    t.history <-
      (t.version, t.states) :: List.filteri (fun i _ -> i < keep - 1) t.history
  end

let apply_patch t span f =
  let touched = ref 0 in
  let f' s =
    incr touched;
    (* Each touched segment ticks the instrument, so a Guard attached to
       it enforces its budget mid-patch, and [patched_segments] measures
       the per-write c in O(log n + c). *)
    (match t.instrument with
    | Some i -> Tempagg.Instrument.alloc i
    | None -> ());
    f s
  in
  t.states <- Timeline.patch ~equal:t.state_equal t.states span f';
  sync_instrument t;
  t.stats.Stats.patched_segments <- t.stats.Stats.patched_segments + !touched

let insert t iv v =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  (match Interval.intersect iv t.domain with
  | None -> ()
  | Some clipped ->
      Hashtbl.replace t.tuples h (clipped, v);
      if not t.dirty then
        let s = t.monoid.Tempagg.Monoid.inject v in
        apply_patch t clipped (fun st -> t.monoid.Tempagg.Monoid.combine st s));
  t.stats.Stats.inserts <- t.stats.Stats.inserts + 1;
  bump t;
  h

let delete t h =
  match Hashtbl.find_opt t.tuples h with
  | None -> false
  | Some (iv, v) ->
      Hashtbl.remove t.tuples h;
      (if not t.dirty then
         match Tempagg.Monoid.subtract t.monoid with
         | Some sub ->
             let s = t.monoid.Tempagg.Monoid.inject v in
             apply_patch t iv (fun st -> sub st s)
         | None ->
             (* No inverse (min/max): tombstone now, rebuild lazily on
                the next read. *)
             t.dirty <- true;
             t.stats.Stats.pending_tombstones <-
               t.stats.Stats.pending_tombstones + 1);
      t.stats.Stats.deletes <- t.stats.Stats.deletes + 1;
      bump t;
      true

let load t data =
  let handles =
    Seq.fold_left
      (fun acc (iv, v) ->
        let h = t.next_handle in
        t.next_handle <- h + 1;
        (match Interval.intersect iv t.domain with
        | None -> ()
        | Some clipped -> Hashtbl.replace t.tuples h (clipped, v));
        t.stats.Stats.inserts <- t.stats.Stats.inserts + 1;
        h :: acc)
      [] data
  in
  (* One batch sweep instead of per-tuple patches: O(n log n), not
     O(n * segments). *)
  rebuild t;
  bump t;
  List.rev handles

let output_timeline t states = Timeline.map t.monoid.Tempagg.Monoid.output states

let snapshot t =
  ensure_clean t;
  t.stats.Stats.snapshots <- t.stats.Stats.snapshots + 1;
  output_timeline t t.states

let snapshot_at t v =
  if v = t.version then Some (snapshot t)
  else
    Option.map
      (fun states ->
        t.stats.Stats.snapshots <- t.stats.Stats.snapshots + 1;
        output_timeline t states)
      (List.assoc_opt v t.history)

let value_at t c =
  ensure_clean t;
  Option.map t.monoid.Tempagg.Monoid.output (Timeline.value_at t.states c)

let range t span =
  ensure_clean t;
  Option.map (output_timeline t) (Timeline.clip t.states span)
