let eval_live ?origin ?horizon ?memory_budget ?deadline_ms ?stats ?profile
    monoid data =
  let run () =
    let t0 = Unix.gettimeofday () in
    let guard = Tempagg.Guard.create ?memory_budget ?deadline_ms () in
    let instrument =
      if Tempagg.Guard.unlimited guard && profile = None then None
      else begin
        let i = Tempagg.Instrument.create () in
        if not (Tempagg.Guard.unlimited guard) then
          Tempagg.Guard.attach guard i;
        Some i
      end
    in
    (* Record the attempt — successful or aborted — so a profiled live
       evaluation reports its peak memory like the batch engine does. *)
    let record outcome =
      Option.iter
        (fun p ->
          let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
          match instrument with
          | Some i ->
              let s = Tempagg.Instrument.snapshot i in
              Obs.Profile.add_attempt p ~algorithm:"live-view" ~outcome
                ~allocated_nodes:s.Tempagg.Instrument.allocated
                ~peak_live:s.Tempagg.Instrument.peak_live
                ~node_bytes:s.Tempagg.Instrument.node_bytes
                ~peak_bytes:s.Tempagg.Instrument.peak_bytes ~elapsed_ms ()
          | None ->
              Obs.Profile.add_attempt p ~algorithm:"live-view" ~outcome
                ~elapsed_ms ())
        profile
    in
    (* Everything that can tick the guard — including the view's own
       initial segment and any rebuild forced by the final snapshot — runs
       inside the one guarded region. *)
    match
      let view = View.create ?origin ?horizon ?instrument ?stats monoid in
      Seq.iter
        (fun (iv, v) -> ignore (View.insert view iv v))
        (Tempagg.Guard.wrap_seq guard data);
      View.snapshot view
    with
    | snapshot ->
        record "ok";
        Ok snapshot
    | exception Tempagg.Guard.Budget_exceeded { budget_bytes; used_bytes } ->
        record
          (Printf.sprintf "memory budget exceeded (%d of %d bytes)" used_bytes
             budget_bytes);
        Error (Tempagg.Engine.Budget_exhausted { budget_bytes; used_bytes })
    | exception Tempagg.Guard.Deadline_exceeded { deadline_ms; elapsed_ms } ->
        record
          (Printf.sprintf "deadline exceeded (%.1f of %.1f ms)" elapsed_ms
             deadline_ms);
        Error (Tempagg.Engine.Deadline_exhausted { deadline_ms; elapsed_ms })
  in
  if Obs.Trace.recording () then Obs.Trace.with_span "eval-live" run
  else run ()
