let eval_live ?origin ?horizon ?memory_budget ?deadline_ms ?stats monoid data =
  let guard = Tempagg.Guard.create ?memory_budget ?deadline_ms () in
  let instrument =
    if Tempagg.Guard.unlimited guard then None
    else begin
      let i = Tempagg.Instrument.create () in
      Tempagg.Guard.attach guard i;
      Some i
    end
  in
  (* Everything that can tick the guard — including the view's own
     initial segment and any rebuild forced by the final snapshot — runs
     inside the one guarded region. *)
  match
    let view = View.create ?origin ?horizon ?instrument ?stats monoid in
    Seq.iter
      (fun (iv, v) -> ignore (View.insert view iv v))
      (Tempagg.Guard.wrap_seq guard data);
    View.snapshot view
  with
  | snapshot -> Ok snapshot
  | exception Tempagg.Guard.Budget_exceeded { budget_bytes; used_bytes } ->
      Error (Tempagg.Engine.Budget_exhausted { budget_bytes; used_bytes })
  | exception Tempagg.Guard.Deadline_exceeded { deadline_ms; elapsed_ms } ->
      Error (Tempagg.Engine.Deadline_exhausted { deadline_ms; elapsed_ms })
