(** Live materialized temporal-aggregate views.

    A [View] is a long-lived incremental index over a temporal relation:
    it keeps the aggregate's {e state} timeline (constant intervals
    carrying partial-aggregate states, the sweep representation)
    materialized, and maintains it under interleaved writes instead of
    recomputing from scratch per query.

    {b Writes.}  [insert] patches only the constant intervals the tuple
    overlaps — O(log n + c) where c is the number of segments touched,
    measured through the {!Tempagg.Instrument} hooks.  [delete] retires a
    previously inserted tuple: for invertible monoids (count, sum, avg,
    variance) the contribution is subtracted segment-by-segment via
    {!Tempagg.Monoid.subtract}; for semilattices (min, max), which have
    no inverse, the delete is absorbed as a tombstone and the timeline is
    lazily rebuilt — one batch {!Tempagg.Sweep} pass over the surviving
    tuples — on the next read.

    {b Reads.}  Every write bumps a version counter and replaces the
    timeline functionally (copy-on-write of the touched span), so a
    snapshot handed to a reader is immutable and never observes a
    half-applied delta.  [create ~history:k] additionally retains the
    last [k] versions for {!snapshot_at}. *)

open Temporal

type ('v, 's, 'r) t
(** A view computing a [('v, 's, 'r) Tempagg.Monoid.t] aggregate. *)

type handle = int
(** Identifies an inserted tuple for later {!delete}.  Handles are
    allocated sequentially from 0 and never reused. *)

val create :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?state_equal:('s -> 's -> bool) ->
  ?history:int ->
  ?instrument:Tempagg.Instrument.t ->
  ?stats:Stats.t ->
  ('v, 's, 'r) Tempagg.Monoid.t ->
  ('v, 's, 'r) t
(** An empty view over the domain [[origin, horizon]] (defaulting to
    [[Chronon.origin, Chronon.forever]]).  Inserted intervals are clipped
    to the domain; a tuple entirely outside contributes nothing.
    [state_equal] (default: structural equality) re-coalesces patch seams
    so segment count tracks distinct boundaries rather than write count.
    [history] retains that many past versions for {!snapshot_at}
    (default 0 — note that retention forces eager rebuilds on the write
    path for non-invertible aggregates).  [instrument]'s live count is
    kept equal to the segment count, so an attached {!Tempagg.Guard}
    bounds the materialized state.  [stats] may be shared across views.
    @raise Invalid_argument if [origin > horizon] or [history < 0]. *)

val insert : ('v, 's, 'r) t -> Interval.t -> 'v -> handle
(** Add a tuple's contribution over an interval.  O(log n + c). *)

val delete : ('v, 's, 'r) t -> handle -> bool
(** Retire a tuple.  [false] if the handle is unknown or already
    deleted (idempotent).  O(log n + c) for invertible aggregates;
    deferred-O(m log m) tombstone otherwise. *)

val load : ('v, 's, 'r) t -> (Interval.t * 'v) Seq.t -> handle list
(** Bulk insert: registers every tuple, then rebuilds once with a batch
    sweep — O(m log m) total, the right way to seed a view with a large
    relation.  Returns the handles in input order; counts as one
    version bump. *)

val version : ('v, 's, 'r) t -> int
(** Monotonic write counter; 0 for a fresh view. *)

val snapshot : ('v, 's, 'r) t -> 'r Timeline.t
(** The aggregate timeline at the current version.  Immutable: later
    writes never mutate a returned snapshot.  Forces a pending rebuild. *)

val snapshot_at : ('v, 's, 'r) t -> int -> 'r Timeline.t option
(** The timeline as of an earlier version, if retained (see [~history]).
    The current version is always available. *)

val value_at : ('v, 's, 'r) t -> Chronon.t -> 'r option
(** Point query against the materialized timeline, O(log n). *)

val range : ('v, 's, 'r) t -> Interval.t -> 'r Timeline.t option
(** Range query: the timeline clipped to the span, O(log n + k). *)

val domain : ('v, 's, 'r) t -> Interval.t
val live_tuples : ('v, 's, 'r) t -> int
val segments : ('v, 's, 'r) t -> int
val stats : ('v, 's, 'r) t -> Stats.t
