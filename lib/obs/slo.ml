(* Declarative service-level objectives evaluated against the scraped
   self-relations.

   An objective bounds either the error ratio or a latency percentile
   over a slow window, with a faster companion window for the standard
   multi-window burn-rate rule: burn = observed / threshold, computed
   over both windows; both burning (>= 1) is a breach, exactly one a
   warning.  The fast window catches new regressions quickly, the slow
   window keeps a short blip from paging.

   The module is evaluation-agnostic: it compiles each objective to
   TSQL query strings against the [_requests] self-relation and reads
   the resulting (interval, value) rows back through a caller-supplied
   callback, so it can live in the obs layer without depending on the
   query engine.  All window arithmetic (time-weighted integrals,
   per-window burn, worst-windows top-k) happens here, on rows the
   callback already fetched once per objective. *)

type target = Error_ratio | Latency_p of float

type objective = {
  o_name : string;
  o_target : target;
  o_threshold : float;  (* ratio bound, or latency bound in microseconds *)
  o_window_us : int;  (* slow window *)
  o_fast_us : int;  (* fast window *)
  o_kind : string option;  (* restrict to one statement kind *)
}

type verdict = Pass | Warning | Breach

let verdict_to_string = function
  | Pass -> "ok"
  | Warning -> "warning"
  | Breach -> "breach"

let verdict_to_int = function Pass -> 0 | Warning -> 1 | Breach -> 2

let target_to_string = function
  | Error_ratio -> "error_ratio"
  | Latency_p p -> Printf.sprintf "p%g" (p *. 100.)

(* ---- parsing ---- *)

(* One objective per line:

     <name> error_ratio < 0.01 over 1h fast 5m [kind select]
     <name> p99 < 50ms over 5m fast 1m [kind select]

   Durations take us/ms/s/m/h suffixes; latency thresholds are
   durations too (stored in microseconds).  '#' and '--' start
   comments; blank lines are skipped. *)

let duration_us tok =
  let num_end =
    let n = String.length tok in
    let rec scan i =
      if i < n && (tok.[i] = '.' || (tok.[i] >= '0' && tok.[i] <= '9')) then
        scan (i + 1)
      else i
    in
    scan 0
  in
  if num_end = 0 then Error (Printf.sprintf "expected a duration, got %S" tok)
  else
    match float_of_string_opt (String.sub tok 0 num_end) with
    | None -> Error (Printf.sprintf "expected a duration, got %S" tok)
    | Some v -> (
        let scale =
          match String.sub tok num_end (String.length tok - num_end) with
          | "us" | "" -> Some 1.
          | "ms" -> Some 1e3
          | "s" -> Some 1e6
          | "m" -> Some 60e6
          | "h" -> Some 3600e6
          | _ -> None
        in
        match scale with
        | Some s when v >= 0. -> Ok (int_of_float (v *. s))
        | _ -> Error (Printf.sprintf "expected a duration, got %S" tok))

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  let line =
    if String.length line >= 2 && String.sub line 0 2 = "--" then "" else line
  in
  let tokens =
    List.filter (fun t -> t <> "") (String.split_on_char ' ' line)
  in
  let err msg = Error (Printf.sprintf "slo line %d: %s" lineno msg) in
  match tokens with
  | [] -> Ok None
  | name :: target :: "<" :: threshold :: "over" :: window :: "fast" :: fast
    :: rest -> (
      let ( let* ) = Result.bind in
      let* target, threshold =
        match String.lowercase_ascii target with
        | "error_ratio" -> (
            match float_of_string_opt threshold with
            | Some v when v > 0. -> Ok (Error_ratio, v)
            | _ -> err (Printf.sprintf "bad error_ratio threshold %S" threshold)
            )
        | "p50" -> (
            match duration_us threshold with
            | Ok us when us > 0 -> Ok (Latency_p 0.5, float_of_int us)
            | _ -> err (Printf.sprintf "bad latency threshold %S" threshold))
        | "p99" -> (
            match duration_us threshold with
            | Ok us when us > 0 -> Ok (Latency_p 0.99, float_of_int us)
            | _ -> err (Printf.sprintf "bad latency threshold %S" threshold))
        | t ->
            err
              (Printf.sprintf
                 "unknown target %S (error_ratio, p50 and p99 are supported)" t)
      in
      let* window_us =
        match duration_us window with
        | Ok us when us > 0 -> Ok us
        | _ -> err (Printf.sprintf "bad window %S" window)
      in
      let* fast_us =
        match duration_us fast with
        | Ok us when us > 0 && us <= window_us -> Ok us
        | Ok _ -> err "the fast window must not exceed the slow window"
        | Error _ -> err (Printf.sprintf "bad fast window %S" fast)
      in
      let* kind =
        match rest with
        | [] -> Ok None
        | [ "kind"; k ] -> Ok (Some k)
        | _ -> err "trailing tokens (expected nothing or 'kind <k>')"
      in
      Ok
        (Some
           {
             o_name = name;
             o_target = target;
             o_threshold = threshold;
             o_window_us = window_us;
             o_fast_us = fast_us;
             o_kind = kind;
           }))
  | _ ->
      err
        "expected '<name> <target> < <threshold> over <window> fast <window> \
         [kind <k>]'"

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line lineno line with
        | Error _ as e -> e
        | Ok None -> go (lineno + 1) acc rest
        | Ok (Some o) -> go (lineno + 1) (o :: acc) rest)
  in
  let ( let* ) = Result.bind in
  let* objectives = go 1 [] lines in
  let rec dup = function
    | [] -> None
    | o :: rest ->
        if List.exists (fun o' -> o'.o_name = o.o_name) rest then
          Some o.o_name
        else dup rest
  in
  match dup objectives with
  | Some name -> Error (Printf.sprintf "duplicate objective %S" name)
  | None -> Ok objectives

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> parse text

(* ---- query compilation ---- *)

let kind_filter o =
  match o.o_kind with
  | None -> ""
  | Some k -> Printf.sprintf " AND kind = '%s'" k

(* The queries an objective needs.  [?window] becomes the DURING clause,
   which the grammar places between FROM and WHERE.  Error ratio divides
   two time-weighted integrals; latency reads one percentile column. *)
let queries ?window o =
  let during =
    match window with
    | None -> ""
    | Some (a, b) -> Printf.sprintf " DURING [%d,%d]" a b
  in
  match o.o_target with
  | Error_ratio ->
      ( Printf.sprintf
          "SELECT SUM(rate) FROM _requests%s WHERE outcome = 'error'%s" during
          (kind_filter o),
        Some
          (Printf.sprintf
             "SELECT SUM(rate) FROM _requests%s WHERE outcome = 'ok'%s" during
             (kind_filter o)) )
  | Latency_p p ->
      ( Printf.sprintf
          "SELECT AVG(p%g_us) FROM _requests%s WHERE outcome = 'ok'%s"
          (p *. 100.) during (kind_filter o),
        None )

(* ---- evaluation ---- *)

type row = { row_start : int; row_stop : int; row_value : float }
(* One constant-interval result row; [row_stop] is [max_int] for an
   unbounded interval. *)

type source = { query : string -> (row list, string) result }

type window_burn = { wb_start : int; wb_stop : int; wb_burn : float }

type evaluation = {
  e_objective : objective;
  e_observed_fast : float;
  e_observed_slow : float;
  e_fast : float;  (* burn rate over the fast window *)
  e_slow : float;  (* burn rate over the slow window *)
  e_verdict : verdict;
  e_worst : window_burn list;  (* fast-width windows by burn, descending *)
}

type report = { r_now_us : int; r_evaluations : evaluation list }

let max_burn = 1e9

let overlap_len (a, b) row =
  let lo = max a row.row_start and hi = min b row.row_stop in
  if hi > lo then hi - lo else 0

(* Integral of value x time over the window, plus the covered duration. *)
let integrate window rows =
  List.fold_left
    (fun (integral, covered) row ->
      let len = overlap_len window row in
      ( integral +. (row.row_value *. float_of_int len),
        covered + len ))
    (0., 0) rows

let observed_in o window num den =
  match o.o_target with
  | Error_ratio ->
      let errors, _ = integrate window num in
      let oks, _ = integrate window den in
      if oks <= 0. then if errors <= 0. then 0. else infinity
      else errors /. oks
  | Latency_p _ ->
      let integral, covered = integrate window num in
      if covered = 0 then 0. else integral /. float_of_int covered

let burn_of o observed =
  if observed <= 0. then 0.
  else Float.min max_burn (observed /. o.o_threshold)

let evaluate_objective ~now_us source o =
  let ( let* ) = Result.bind in
  let slow_start = max 0 (now_us - o.o_window_us) in
  let primary, denominator = queries ~window:(slow_start, now_us) o in
  let* num = source.query primary in
  let* den =
    match denominator with
    | None -> Ok []
    | Some q -> source.query q
  in
  let slow_window = (slow_start, now_us) in
  let fast_window = (max 0 (now_us - o.o_fast_us), now_us) in
  let observed_slow = observed_in o slow_window num den in
  let observed_fast = observed_in o fast_window num den in
  let slow = burn_of o observed_slow in
  let fast = burn_of o observed_fast in
  let verdict =
    if fast >= 1. && slow >= 1. then Breach
    else if fast >= 1. || slow >= 1. then Warning
    else Pass
  in
  (* Worst fast-width windows tiled back through the slow window, from
     the rows already fetched — top-k troubled spots, not just the
     current edge. *)
  let windows = max 1 (o.o_window_us / o.o_fast_us) in
  let worst =
    List.init windows (fun i ->
        let stop = now_us - (i * o.o_fast_us) in
        let start = max 0 (stop - o.o_fast_us) in
        {
          wb_start = start;
          wb_stop = stop;
          wb_burn = burn_of o (observed_in o (start, stop) num den);
        })
    |> List.filter (fun wb -> wb.wb_stop > wb.wb_start)
    |> List.sort (fun a b -> compare b.wb_burn a.wb_burn)
  in
  Ok
    {
      e_objective = o;
      e_observed_fast = observed_fast;
      e_observed_slow = observed_slow;
      e_fast = fast;
      e_slow = slow;
      e_verdict = verdict;
      e_worst = worst;
    }

let evaluate ~now_us source objectives =
  let rec go acc = function
    | [] -> Ok { r_now_us = now_us; r_evaluations = List.rev acc }
    | o :: rest -> (
        match evaluate_objective ~now_us source o with
        | Error _ as e -> e
        | Ok ev -> go (ev :: acc) rest)
  in
  go [] objectives

(* ---- exposition ---- *)

let to_metrics registry report =
  Metrics.inc
    (Metrics.counter registry ~help:"SLO evaluation passes"
       "tempagg_slo_evaluations_total");
  List.iter
    (fun ev ->
      let slo = ev.e_objective.o_name in
      Metrics.set
        (Metrics.gauge registry
           ~help:"SLO burn rate (observed / threshold), by window"
           ~labels:[ ("slo", slo); ("window", "fast") ]
           "tempagg_slo_burn_rate")
        ev.e_fast;
      Metrics.set
        (Metrics.gauge registry
           ~help:"SLO burn rate (observed / threshold), by window"
           ~labels:[ ("slo", slo); ("window", "slow") ]
           "tempagg_slo_burn_rate")
        ev.e_slow;
      Metrics.set_int
        (Metrics.gauge registry
           ~help:"SLO verdict: 0 ok, 1 warning, 2 breach"
           ~labels:[ ("slo", slo) ]
           "tempagg_slo_verdict")
        (verdict_to_int ev.e_verdict);
      if ev.e_verdict = Breach then
        Metrics.inc
          (Metrics.counter registry ~help:"SLO breach verdicts"
             ~labels:[ ("slo", slo) ]
             "tempagg_slo_breaches_total"))
    report.r_evaluations

let objective_to_string o =
  Printf.sprintf "%s %s < %s over %dus fast %dus%s" o.o_name
    (target_to_string o.o_target)
    (match o.o_target with
    | Error_ratio -> Printf.sprintf "%g" o.o_threshold
    | Latency_p _ -> Printf.sprintf "%gus" o.o_threshold)
    o.o_window_us o.o_fast_us
    (match o.o_kind with None -> "" | Some k -> " kind " ^ k)

let evaluation_to_string ev =
  let o = ev.e_objective in
  Printf.sprintf "%s %s: %s observed fast %g slow %g (threshold %g) burn \
                  fast %.2f slow %.2f"
    (match ev.e_verdict with
    | Breach -> "ALERT"
    | Warning -> "warn "
    | Pass -> "ok   ")
    o.o_name
    (target_to_string o.o_target)
    ev.e_observed_fast ev.e_observed_slow o.o_threshold ev.e_fast ev.e_slow

let worst_to_string ?(k = 5) ev =
  match
    List.filteri (fun i _ -> i < k)
      (List.filter (fun wb -> wb.wb_burn > 0.) ev.e_worst)
  with
  | [] -> ""
  | worst ->
      Printf.sprintf "    worst windows: %s"
        (String.concat "; "
           (List.map
              (fun wb ->
                Printf.sprintf "[%d,%d) burn %.2f" wb.wb_start wb.wb_stop
                  wb.wb_burn)
              worst))

let report_to_string ?(k = 5) report =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "slo: %d objective(s) at t=%dus\n"
       (List.length report.r_evaluations)
       report.r_now_us);
  List.iter
    (fun ev ->
      Buffer.add_string buf ("  " ^ evaluation_to_string ev ^ "\n");
      match worst_to_string ~k ev with
      | "" -> ()
      | s -> Buffer.add_string buf (s ^ "\n"))
    report.r_evaluations;
  String.trim (Buffer.contents buf)

let alerts report =
  List.filter (fun ev -> ev.e_verdict <> Pass) report.r_evaluations
