(* Slow-query capture: statements whose latency crosses the threshold
   land in a bounded ring (newest evict oldest), with an optional
   profile text and the labels of tracing spans recorded while the
   statement ran.  The ring dumps as JSON an operator can read back —
   each entry carries the statement text ready for EXPLAIN ANALYZE. *)

type entry = {
  statement : string;
  kind : string;
  elapsed_ms : float;
  detail : string option;
  span_labels : string list;
  join : string option;  (* chosen join strategy, with fallback marker *)
  trace : string option;  (* request id, for cross-referencing a dump *)
}

type t = {
  threshold_ms : float;
  capacity : int;
  mutable ring : entry array;
  mutable filled : int;
  mutable next : int;
  mutable hits : int;
  mutable worst : entry option;
}

let create ?(capacity = 32) ~threshold_ms () =
  if capacity < 1 then invalid_arg "Slowlog.create: capacity must be >= 1";
  if threshold_ms < 0. then
    invalid_arg "Slowlog.create: threshold must be >= 0";
  {
    threshold_ms;
    capacity;
    ring = [||];
    filled = 0;
    next = 0;
    hits = 0;
    worst = None;
  }

let threshold_ms t = t.threshold_ms

let observe t ~kind ~statement ~elapsed_ms ?detail ?(span_labels = []) ?join
    ?trace () =
  if elapsed_ms < t.threshold_ms then false
  else begin
    let e = { statement; kind; elapsed_ms; detail; span_labels; join; trace } in
    if Array.length t.ring = 0 then t.ring <- Array.make t.capacity e;
    t.ring.(t.next) <- e;
    t.next <- (t.next + 1) mod t.capacity;
    t.filled <- Stdlib.min (t.filled + 1) t.capacity;
    t.hits <- t.hits + 1;
    (match t.worst with
    | Some w when w.elapsed_ms >= elapsed_ms -> ()
    | _ -> t.worst <- Some e);
    true
  end

let hits t = t.hits

let entries t =
  (* Newest first. *)
  List.init t.filled (fun i ->
      t.ring.((t.next - 1 - i + (2 * t.capacity)) mod t.capacity))

let worst t = t.worst

(* ---- JSON ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let entry_to_json e =
  let opt = function
    | None -> "null"
    | Some s -> Printf.sprintf "\"%s\"" (escape s)
  in
  Printf.sprintf
    "{\"statement\": \"%s\", \"kind\": \"%s\", \"elapsed_ms\": %.3f, \
     \"profile\": %s, \"join\": %s, \"trace\": %s, \"spans\": [%s]}"
    (escape e.statement) (escape e.kind) e.elapsed_ms (opt e.detail)
    (opt e.join) (opt e.trace)
    (String.concat ", "
       (List.map (fun l -> Printf.sprintf "\"%s\"" (escape l)) e.span_labels))

let to_json t =
  Printf.sprintf
    "{\"threshold_ms\": %.3f, \"hits\": %d, \"entries\": [\n%s\n]}\n"
    t.threshold_ms t.hits
    (String.concat ",\n"
       (List.map (fun e -> "  " ^ entry_to_json e) (entries t)))
