(** Binary identity for metric scrapes. *)

val version : string
(** The advertised version: [TEMPAGG_VERSION] from the environment when
    set, else the built-in release version. *)

val uptime_seconds : unit -> float
(** Seconds since this module initialized (process start for practical
    purposes). *)

val to_metrics : Metrics.t -> unit
(** Refresh [tempagg_build_info{version=...} 1] and
    [tempagg_uptime_seconds] in [m].  Idempotent; call per scrape. *)
