(* Flight-recorder policy over the Trace rings.

   The rings in Trace hold the most recent spans per domain regardless
   of interest; this module decides what survives ring wrap.  When a
   request turns out to matter after the fact — slow, shed, degraded,
   or errored — [pin] copies every ring span carrying that request's
   trace id into a bounded pinned store before the ring overwrites
   them.  Boring (fast, OK) traces are never pinned, so they evict
   first by construction: they only ever live in the rings.

   Pinned traces themselves evict FIFO once [max_pinned] is reached,
   bounding total retention at ring + pinned store. *)

type pinned = {
  p_trace : string;
  p_reason : string;  (* "slow" | "shed" | "degraded" | "error" *)
  p_spans : Trace.span list;
  p_elapsed_us : int;
  p_pinned_us : int;
}

let default_max_pinned = 64
let max_pinned = ref default_max_pinned

(* Newest first; pinning happens on the server's event loop but SHOW
   RECORDER runs on worker domains, so access is locked. *)
let store : pinned list ref = ref []
let store_mutex = Mutex.create ()
let pins_total = Atomic.make 0
let evicted_total = Atomic.make 0

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let configure ?max_pinned:cap () =
  match cap with Some c -> max_pinned := max 1 c | None -> ()

let clear () =
  with_lock store_mutex (fun () -> store := []);
  Atomic.set pins_total 0;
  Atomic.set evicted_total 0

let elapsed_of spans =
  match spans with
  | [] -> 0
  | s :: _ ->
      let lo, hi =
        List.fold_left
          (fun (lo, hi) s -> (min lo s.Trace.start_us, max hi s.Trace.stop_us))
          (s.Trace.start_us, s.Trace.stop_us)
          spans
      in
      max 0 (hi - lo)

let pin ~trace ~reason =
  if trace <> "" then begin
    let spans =
      List.filter (fun s -> s.Trace.trace = trace) (Trace.recorded ())
    in
    if spans <> [] then begin
      let entry =
        {
          p_trace = trace;
          p_reason = reason;
          p_spans = spans;
          p_elapsed_us = elapsed_of spans;
          p_pinned_us = Trace.now_us ();
        }
      in
      Atomic.incr pins_total;
      with_lock store_mutex (fun () ->
          (* Re-pinning a trace (e.g. slow AND degraded) replaces the
             earlier entry rather than holding two copies. *)
          let rest = List.filter (fun p -> p.p_trace <> trace) !store in
          let kept = entry :: rest in
          let n = List.length kept in
          if n > !max_pinned then begin
            ignore (Atomic.fetch_and_add evicted_total (n - !max_pinned));
            store := List.filteri (fun i _ -> i < !max_pinned) kept
          end
          else store := kept)
    end
  end

let pinned () = with_lock store_mutex (fun () -> !store)

let find trace =
  with_lock store_mutex (fun () ->
      List.find_opt (fun p -> p.p_trace = trace) !store)

(* Every span the recorder can currently see: pinned traces plus the
   live ring contents, deduplicated by span id (a freshly pinned
   trace's spans are usually still in the rings too). *)
let visible_spans ?trace () =
  let wanted s =
    match trace with None -> true | Some t -> s.Trace.trace = t
  in
  let seen = Hashtbl.create 256 in
  let take acc s =
    if wanted s && not (Hashtbl.mem seen s.Trace.id) then begin
      Hashtbl.add seen s.Trace.id ();
      s :: acc
    end
    else acc
  in
  let acc = List.fold_left take [] (Trace.recorded ()) in
  let acc =
    List.fold_left
      (fun acc p -> List.fold_left take acc p.p_spans)
      acc (pinned ())
  in
  List.sort
    (fun a b ->
      match compare a.Trace.start_us b.Trace.start_us with
      | 0 -> compare a.Trace.id b.Trace.id
      | c -> c)
    acc

let dump ?trace () = Trace.to_chrome_json (visible_spans ?trace ())

let to_metrics m =
  let occupancy, dropped = Trace.ring_stats () in
  let pins = pinned () in
  let pinned_spans =
    List.fold_left (fun n p -> n + List.length p.p_spans) 0 pins
  in
  Metrics.set_int (Metrics.gauge m "tempagg_recorder_ring_spans"
                     ~help:"Spans currently held in the flight-recorder rings")
    occupancy;
  Metrics.set_int (Metrics.gauge m "tempagg_recorder_ring_dropped_total"
                     ~help:"Spans overwritten by ring wrap since start")
    dropped;
  Metrics.set_int (Metrics.gauge m "tempagg_recorder_pinned_traces"
                     ~help:"Traces pinned for post-mortem retention")
    (List.length pins);
  Metrics.set_int (Metrics.gauge m "tempagg_recorder_pinned_spans"
                     ~help:"Spans held by pinned traces")
    pinned_spans;
  Metrics.set_int (Metrics.gauge m "tempagg_recorder_pins_total"
                     ~help:"Pin operations since start")
    (Atomic.get pins_total);
  Metrics.set_int (Metrics.gauge m "tempagg_recorder_evicted_total"
                     ~help:"Pinned traces evicted FIFO past the retention cap")
    (Atomic.get evicted_total)

(* SHOW TRACE: the tracing context as seen from the executing domain. *)
let trace_status () =
  let occupancy, dropped = Trace.ring_stats () in
  let current =
    match Trace.current_trace () with "" -> "(none)" | t -> t
  in
  Printf.sprintf
    "trace: current=%s armed=%b ring-capacity=%d/domain ring-spans=%d \
     ring-dropped=%d"
    current (Trace.is_armed ())
    (Trace.ring_capacity_now ())
    occupancy dropped

(* SHOW RECORDER: retention state, newest pins first. *)
let summary () =
  let occupancy, dropped = Trace.ring_stats () in
  let pins = pinned () in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "recorder: ring-spans=%d ring-dropped=%d pinned=%d/%d pins-total=%d \
        evicted=%d"
       occupancy dropped (List.length pins) !max_pinned
       (Atomic.get pins_total) (Atomic.get evicted_total));
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "\n  %s reason=%s spans=%d elapsed-us=%d" p.p_trace
           p.p_reason (List.length p.p_spans) p.p_elapsed_us))
    pins;
  Buffer.contents buf
