(** EXPLAIN-ANALYZE-style per-query execution report.

    A mutable builder the planner and engine fill in while a query
    runs: plan choice and rationale, every evaluation attempt (aborted
    fallback attempts included, so peak-memory reporting covers them),
    degradations, per-phase wall time, I/O counters and output size.

    Attempts fold into the aggregate memory numbers as sequential
    retries — allocations sum, peaks max.  On a clean single-attempt
    run, {!peak_bytes} therefore equals that attempt's
    [Instrument.peak_bytes] exactly. *)

type t

type attempt = {
  algorithm : string;
  outcome : string;  (** ["ok"] or the failure reason *)
  allocated_nodes : int;
  peak_live : int;
  node_bytes : int;
  peak_bytes : int;
  elapsed_ms : float;
}

type io = {
  pages_read : int;
  pages_written : int;
  io_retries : int;
  corrupt_pages : int;
}

val create : unit -> t
val set_query : t -> string -> unit
val set_plan : t -> algorithm:string -> rationale:string -> unit

val set_stats_source : t -> string -> unit
(** Where the plan's inputs came from: ["declared metadata"] or
    ["observed (...)"] when the optimizer leaned on the statistics
    store. *)

val stats_source : t -> string option

val set_join : t -> strategy:string -> rationale:string -> stats_source:string -> unit
(** The plan's interval-join strategy (["sweep-join"] /
    ["nested-loop-join"]), why it was chosen, and the provenance of the
    cardinalities behind that choice — printed by EXPLAIN ANALYZE for
    join queries. *)

val set_k_estimate : t -> int -> unit
val set_tuples : t -> int -> unit
val set_segments : t -> int -> unit
val set_total_ms : t -> float -> unit

val set_io :
  t -> pages_read:int -> pages_written:int -> retries:int -> corrupt_pages:int -> unit

val add_attempt :
  t ->
  algorithm:string ->
  outcome:string ->
  ?allocated_nodes:int ->
  ?peak_live:int ->
  ?node_bytes:int ->
  ?peak_bytes:int ->
  elapsed_ms:float ->
  unit ->
  unit

val note_degradation : t -> string -> unit

val add_phase : t -> string -> float -> unit
(** [add_phase t label ms] — repeated labels accumulate. *)

val time_phase : t -> string -> (unit -> 'a) -> 'a
(** Run a thunk and record its wall time under [label] (even on raise). *)

val attempts : t -> attempt list
val degradations : t -> string list
val phases : t -> (string * float) list
val allocated_nodes : t -> int
val peak_live : t -> int
val peak_bytes : t -> int
val segments : t -> int option

val to_string : t -> string
(** Human-readable report.  The memory line is machine-parseable:
    [memory: allocated_nodes=%d peak_live=%d node_bytes=%d peak_bytes=%d]. *)

val to_metrics : Metrics.t -> t -> unit
(** Fold the profile into registry gauges ([tempagg_profile_*]). *)
