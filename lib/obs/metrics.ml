(* Metrics registry: named counters, gauges and log-bucketed histograms
   with a Prometheus-style text exposition.

   A metric is identified by (name, labels); registering the same pair
   twice returns the same underlying cell, so adapter functions can be
   re-run to refresh gauge values.  The exposition sorts metrics by name
   then labels, prints integral values without a decimal point, and
   renders histograms as cumulative _bucket/_sum/_count series — all so
   the output is stable enough for a golden test. *)

type kind = Counter | Gauge | Histogram

type cell = { mutable value : float; hist : Histogram.t option }

type metric = {
  name : string;
  labels : (string * string) list;
  mutable help : string;
  kind : kind;
  cell : cell;
}

type t = { tbl : (string * (string * string) list, metric) Hashtbl.t }
type counter = cell
type gauge = cell

let create () = { tbl = Hashtbl.create 32 }

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let validate_name name =
  if name = "" then invalid_arg "Metrics: empty metric name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name))
    name

let register t ~name ~labels ~help ~kind ~make =
  validate_name name;
  let labels = List.sort compare labels in
  match Hashtbl.find_opt t.tbl (name, labels) with
  | Some m ->
      if m.kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name
             (kind_name m.kind));
      if help <> "" then m.help <- help;
      m
  | None ->
      (* The kind is a property of the whole metric family: a second
         label set may not change it (the exposition prints one # TYPE
         line per name, which must hold for every series under it). *)
      Hashtbl.iter
        (fun (n, _) m ->
          if String.equal n name && m.kind <> kind then
            invalid_arg
              (Printf.sprintf
                 "Metrics: %s already registered as a %s (under other labels)"
                 name (kind_name m.kind)))
        t.tbl;
      let m = { name; labels; help; kind; cell = make () } in
      Hashtbl.replace t.tbl (name, labels) m;
      m

let counter t ?(help = "") ?(labels = []) name =
  (register t ~name ~labels ~help ~kind:Counter ~make:(fun () ->
       { value = 0.; hist = None }))
    .cell

let gauge t ?(help = "") ?(labels = []) name =
  (register t ~name ~labels ~help ~kind:Gauge ~make:(fun () ->
       { value = 0.; hist = None }))
    .cell

let histogram t ?(help = "") ?(labels = []) ?gamma name =
  let m =
    register t ~name ~labels ~help ~kind:Histogram ~make:(fun () ->
        { value = 0.; hist = Some (Histogram.create ?gamma ()) })
  in
  Option.get m.cell.hist

let inc c = c.value <- c.value +. 1.

let add c v =
  if v < 0. then invalid_arg "Metrics.add: counters only go up";
  c.value <- c.value +. v

let set (g : gauge) v = g.value <- v
let set_int (g : gauge) v = g.value <- float_of_int v
let counter_value (c : counter) = c.value
let gauge_value (g : gauge) = g.value

let value t ?(labels = []) name =
  match Hashtbl.find_opt t.tbl (name, List.sort compare labels) with
  | Some { cell = { hist = None; value }; _ } -> Some value
  | _ -> None

(* ---- structured enumeration ---- *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_kind : kind;
  s_value : float;  (* counter/gauge value; a histogram's sum *)
  s_count : int;  (* a histogram's observation count; 1 otherwise *)
  s_buckets : (float * int) list;  (* non-empty (bound, count); [] unless histogram *)
}

let sorted_metrics t =
  Hashtbl.fold (fun _ m acc -> m :: acc) t.tbl []
  |> List.sort (fun a b ->
         match compare a.name b.name with
         | 0 -> compare a.labels b.labels
         | c -> c)

let samples t =
  List.map
    (fun m ->
      match m.cell.hist with
      | None ->
          {
            s_name = m.name;
            s_labels = m.labels;
            s_kind = m.kind;
            s_value = m.cell.value;
            s_count = 1;
            s_buckets = [];
          }
      | Some h ->
          {
            s_name = m.name;
            s_labels = m.labels;
            s_kind = m.kind;
            s_value = Histogram.sum h;
            s_count = Histogram.count h;
            s_buckets = Histogram.nonempty_buckets h;
          })
    (sorted_metrics t)

(* ---- exposition ---- *)

(* Prometheus prints counts as bare integers; keep that, and fall back
   to %g-style shortest form for genuine floats. *)
let number v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let label_string labels =
  match labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let expose t =
  let metrics = sorted_metrics t in
  let buf = Buffer.create 1024 in
  (* # HELP / # TYPE are per metric family: emitted once per name, even
     when the family spans several label sets.  The help text may be
     attached to any member, so take the first non-empty one. *)
  let family_help name =
    List.fold_left
      (fun acc m ->
        if acc = "" && String.equal m.name name then m.help else acc)
      "" metrics
  in
  let last_name = ref "" in
  List.iter
    (fun m ->
      if m.name <> !last_name then begin
        last_name := m.name;
        let help = family_help m.name in
        if help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" m.name help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" m.name (kind_name m.kind))
      end;
      match m.cell.hist with
      | None ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.name (label_string m.labels)
               (number m.cell.value))
      | Some h ->
          let cumulative = ref 0 in
          List.iter
            (fun (bound, count) ->
              cumulative := !cumulative + count;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" m.name
                   (label_string (m.labels @ [ ("le", Printf.sprintf "%.9g" bound) ]))
                   !cumulative))
            (Histogram.nonempty_buckets h);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" m.name
               (label_string (m.labels @ [ ("le", "+Inf") ]))
               (Histogram.count h));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" m.name (label_string m.labels)
               (number (Histogram.sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" m.name (label_string m.labels)
               (Histogram.count h)))
    metrics;
  Buffer.contents buf

(* Atomic exposition-to-disk: a scraper tailing the file must never see
   a half-written exposition, so write a sibling temp file and rename
   it into place (atomic on POSIX within one filesystem). *)
let write_file t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (expose t));
  Sys.rename tmp path
