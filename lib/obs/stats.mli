(** Per-relation observed statistics: the storage half of the
    observe → store → decide loop.

    Each relation gets a bounded ring of per-query {!outcome} records
    (newest evict oldest) plus exponentially-decayed aggregates of
    latency, peak memory and result size, and optionally the result of
    an eager [ANALYZE] scan ({!analysis}).  {!summary} condenses both
    into what the optimizer's observed path
    ([Optimizer.choose_observed]) consumes.

    A {!store} keys entries by case-folded relation name; it is shared
    mutable state deliberately — catalogs are rebuilt per statement,
    statistics must survive that. *)

type outcome = {
  cardinality : int;  (** Input cardinality seen by the query. *)
  algorithm : string;
  elapsed_ms : float;
  peak_bytes : int;  (** 0 when the run was not instrumented. *)
  k_observed : int option;
      (** A k-ordering bound the run itself proved (e.g. a k-ordered
          tree completing without order violations over a plain scan of
          the relation).  Ignored when [degradations > 0]. *)
  segments : int option;
      (** Constant intervals in the result, when the query shape makes
          that a property of the relation (ungrouped, unwindowed). *)
  degradations : int;
}

type analysis = {
  an_cardinality : int;
  an_k : int;  (** Streaming upper bound on the exact k-orderedness. *)
  an_slack : int;  (** Over-estimation bound ([Ordering.Korder.slack]). *)
  an_percentage : float option;
      (** Exact k-ordered-percentage at [an_k], when computed. *)
  an_time_ordered : bool;
  an_distinct_endpoints : int;  (** {!Distinct} sketch estimate. *)
}

type t

val create : ?capacity:int -> ?alpha:float -> unit -> t
(** Ring capacity (default 64 outcomes) and decay factor (default 0.2:
    each new observation contributes 20% of the decayed mean). *)

val record : t -> outcome -> unit
val set_analysis : t -> analysis -> unit

val invalidate : t -> unit
(** Drop ordering claims (proven k bounds and the last analysis) after
    a write to the relation; decayed latency aggregates survive. *)

val outcomes : t -> outcome list
(** Ring contents, newest first. *)

type summary = {
  observations : int;  (** Outcome records ever folded in. *)
  analyzed : bool;
  cardinality : int option;
  time_ordered : bool option;  (** Known only after an analysis. *)
  k_upper : int option;
      (** Smallest proven k bound across analyses and clean runs. *)
  constant_intervals : int option;  (** Decayed mean result size. *)
  distinct_endpoints : int option;
  mean_eval_ms : float option;
  peak_bytes : int option;
  source : string;
      (** Provenance: ["none"], ["analyze"], ["runtime"] or
          ["analyze+runtime"]. *)
}

val empty_summary : summary
val summary : t -> summary

val to_string : string -> t -> string
(** One [SHOW STATS] line for the named relation. *)

(** Bounded-memory distinct-count sketch (adaptive sampling): feeds the
    [ANALYZE] endpoint estimate. *)
module Distinct : sig
  type sketch

  val sketch : ?capacity:int -> unit -> sketch
  (** Default capacity 1024 kept hashes; relative error ~1/sqrt(capacity). *)

  val add : sketch -> int -> unit
  val estimate : sketch -> int

  val sample : sketch -> int list
  (** The kept values, sorted ascending — a uniform hash-based sample of
      the distinct values seen (at most the sketch's capacity).  Feeds
      equi-depth partition-boundary selection. *)
end

type store

val create_store : unit -> store
val store_get : store -> string -> t
(** Find-or-create, by case-folded name. *)

val store_find : store -> string -> t option
val store_names : store -> string list
(** Case-folded names with statistics, sorted. *)

val store_invalidate : store -> string -> unit
val store_to_string : store -> string
(** The [SHOW STATS] printout. *)

val store_to_metrics : Metrics.t -> store -> unit
(** Refresh per-relation gauges ([tempagg_stats_*], labelled by
    relation) from the store. *)
