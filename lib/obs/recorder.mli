(** Flight-recorder retention policy over the {!Trace} rings.

    The rings keep the most recent spans per domain indiscriminately;
    this module pins complete traces that turn out to matter — slow,
    shed, degraded, or errored requests — into a bounded store before
    ring wrap overwrites them.  Fast-OK traces are never pinned and so
    evict first by construction.  Pinned traces evict FIFO past
    [max_pinned]. *)

type pinned = {
  p_trace : string;
  p_reason : string;  (** "slow", "shed", "degraded" or "error" *)
  p_spans : Trace.span list;
  p_elapsed_us : int;  (** span of the trace: max stop − min start *)
  p_pinned_us : int;  (** when the pin happened, {!Trace.now_us} clock *)
}

val configure : ?max_pinned:int -> unit -> unit
(** Set the pinned-trace cap (default 64, minimum 1). *)

val pin : trace:string -> reason:string -> unit
(** Copy every ring span carrying [trace] into the pinned store.
    No-op for the empty trace id or when the rings hold no such spans.
    Re-pinning a trace replaces its earlier entry (last reason wins). *)

val pinned : unit -> pinned list
(** Pinned traces, newest first. *)

val find : string -> pinned option

val dump : ?trace:string -> unit -> string
(** Chrome [trace_event] JSON of everything the recorder can see —
    pinned traces plus live ring contents, deduplicated — optionally
    restricted to one trace id. *)

val to_metrics : Metrics.t -> unit
(** Refresh ring occupancy/drop and pin/eviction gauges in [m]. *)

val trace_status : unit -> string
(** One-line tracing context for [SHOW TRACE]: current trace id on the
    calling domain, armed state, ring capacity and pressure. *)

val summary : unit -> string
(** Multi-line retention state for [SHOW RECORDER]: ring pressure plus
    one line per pinned trace (id, reason, span count, elapsed). *)

val clear : unit -> unit
(** Drop all pinned traces and reset counters (tests). *)
