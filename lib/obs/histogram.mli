(** Log-bucketed (geometric) histograms.

    Values are counted in buckets whose bounds grow by a factor [gamma],
    so a percentile estimate is within a relative error of [gamma - 1]
    of the exact nearest-rank answer while the histogram itself is a
    fixed few hundred integers — mergeable, constant-memory, and never
    re-sorted.  Count, sum, mean, min and max are tracked exactly.

    This is the one percentile implementation in the tree: the serve
    loop's latency report and the metrics registry's histogram exposition
    are both built on it. *)

type t

val create : ?gamma:float -> ?floor:float -> ?ceiling:float -> unit -> t
(** [gamma] (default 1.05) is the bucket growth factor and the relative
    error bound; [floor] (default 1e-9) and [ceiling] (default 1e12)
    bound the resolvable range — values outside are clamped into the
    first/last bucket (exact min/max still remember them).
    @raise Invalid_argument unless [gamma > 1.] and [0 < floor < ceiling]. *)

val observe : t -> float -> unit

val count : t -> int
val sum : t -> float
val mean : t -> float

val min_value : t -> float
(** Exact smallest observation; [0.] when empty. *)

val max_value : t -> float
(** Exact largest observation; [0.] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [[0, 1]]: the upper bound of the bucket
    holding the nearest-rank observation, clamped into
    [[min_value, max_value]] (so [percentile t 0. = min_value],
    [percentile t 1. = max_value], and estimates are monotone in [p]).
    [0.] when empty. *)

val gamma : t -> float

val reset : t -> unit

val merge_into : into:t -> t -> unit
(** Add [t]'s counts into [into].
    @raise Invalid_argument if the histograms were created with different
    shapes. *)

val nonempty_buckets : t -> (float * int) list
(** [(upper_bound, count)] for each non-empty bucket, bounds increasing —
    what a Prometheus cumulative [_bucket] exposition needs. *)
