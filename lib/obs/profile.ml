(* EXPLAIN-ANALYZE-style per-query report.

   The profile is a mutable builder that the engine and the TSQL
   planner fill in as a query executes: the plan and its rationale from
   the optimizer, one attempt record per evaluation (including the ones
   a fallback chain aborted — their instrument snapshots land here
   instead of being dropped), degradations, phase timings, I/O counters
   and output size.  Aggregate memory numbers fold attempts as
   *sequential* retries: allocations sum, peaks take the max — unlike
   Instrument.absorb, whose sum-of-peaks models concurrent shards. *)

type attempt = {
  algorithm : string;
  outcome : string;  (* "ok" or the failure reason *)
  allocated_nodes : int;
  peak_live : int;
  node_bytes : int;
  peak_bytes : int;
  elapsed_ms : float;
}

type io = {
  pages_read : int;
  pages_written : int;
  io_retries : int;
  corrupt_pages : int;
}

type t = {
  mutable query : string option;
  mutable algorithm : string option;
  mutable rationale : string option;
  mutable stats_source : string option;
  mutable join_strategy : string option;
  mutable join_rationale : string option;
  mutable join_stats_source : string option;
  mutable k_estimate : int option;
  mutable tuples : int option;
  mutable attempts_rev : attempt list;
  mutable degradations_rev : string list;
  mutable phases_rev : (string * float) list;  (* label, total ms *)
  mutable allocated_nodes : int;
  mutable peak_live : int;
  mutable node_bytes : int;
  mutable peak_bytes : int;
  mutable segments : int option;
  mutable io : io option;
  mutable total_ms : float option;
}

let create () =
  {
    query = None;
    algorithm = None;
    rationale = None;
    stats_source = None;
    join_strategy = None;
    join_rationale = None;
    join_stats_source = None;
    k_estimate = None;
    tuples = None;
    attempts_rev = [];
    degradations_rev = [];
    phases_rev = [];
    allocated_nodes = 0;
    peak_live = 0;
    node_bytes = 0;
    peak_bytes = 0;
    segments = None;
    io = None;
    total_ms = None;
  }

let set_query t q = t.query <- Some q

let set_plan t ~algorithm ~rationale =
  t.algorithm <- Some algorithm;
  t.rationale <- Some rationale

let set_stats_source t s = t.stats_source <- Some s
let stats_source t = t.stats_source

let set_join t ~strategy ~rationale ~stats_source =
  t.join_strategy <- Some strategy;
  t.join_rationale <- Some rationale;
  t.join_stats_source <- Some stats_source
let set_k_estimate t k = t.k_estimate <- Some k
let set_tuples t n = t.tuples <- Some n
let set_segments t n = t.segments <- Some n
let set_total_ms t ms = t.total_ms <- Some ms

let set_io t ~pages_read ~pages_written ~retries ~corrupt_pages =
  t.io <- Some { pages_read; pages_written; io_retries = retries; corrupt_pages }

let add_attempt t ~algorithm ~outcome ?(allocated_nodes = 0) ?(peak_live = 0)
    ?(node_bytes = 0) ?(peak_bytes = 0) ~elapsed_ms () =
  t.attempts_rev <-
    { algorithm; outcome; allocated_nodes; peak_live; node_bytes; peak_bytes;
      elapsed_ms }
    :: t.attempts_rev;
  t.allocated_nodes <- t.allocated_nodes + allocated_nodes;
  t.peak_live <- max t.peak_live peak_live;
  t.peak_bytes <- max t.peak_bytes peak_bytes;
  if node_bytes > 0 then t.node_bytes <- node_bytes

let note_degradation t d = t.degradations_rev <- d :: t.degradations_rev

(* Phases accumulate by label (a fallback chain materializes once but
   may evaluate several times); first-seen order is preserved. *)
let add_phase t label ms =
  let rec bump = function
    | [] -> [ (label, ms) ]
    | (l, total) :: rest when l = label -> (l, total +. ms) :: rest
    | entry :: rest -> entry :: bump rest
  in
  t.phases_rev <- bump t.phases_rev

let time_phase t label f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> add_phase t label ((Unix.gettimeofday () -. t0) *. 1000.))
    f

let attempts t = List.rev t.attempts_rev
let degradations t = List.rev t.degradations_rev
let phases t = List.rev t.phases_rev
let allocated_nodes t = t.allocated_nodes
let peak_live t = t.peak_live
let peak_bytes t = t.peak_bytes
let segments t = t.segments

let to_string t =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  Option.iter (fun q -> line "query: %s" q) t.query;
  Option.iter (fun a -> line "plan: %s" a) t.algorithm;
  Option.iter (fun r -> line "  why: %s" r) t.rationale;
  Option.iter (fun s -> line "  stats: %s" s) t.stats_source;
  Option.iter (fun s -> line "join: %s" s) t.join_strategy;
  Option.iter (fun r -> line "  join why: %s" r) t.join_rationale;
  Option.iter (fun s -> line "  join stats: %s" s) t.join_stats_source;
  Option.iter (fun k -> line "  k estimate: %d" k) t.k_estimate;
  Option.iter (fun n -> line "input: %d tuple(s)" n) t.tuples;
  (match attempts t with
  | [] -> ()
  | attempts ->
      line "attempts:";
      List.iteri
        (fun i (a : attempt) ->
          line "  %d. %-18s %-10s %9.3f ms  allocated_nodes=%d peak_bytes=%d"
            (i + 1) a.algorithm a.outcome a.elapsed_ms a.allocated_nodes
            a.peak_bytes)
        attempts);
  (match degradations t with
  | [] -> ()
  | ds ->
      line "degradations:";
      List.iter (fun d -> line "  - %s" d) ds);
  (match phases t with
  | [] -> ()
  | ps ->
      line "phases:";
      List.iter (fun (l, ms) -> line "  %-14s %9.3f ms" l ms) ps);
  line "memory: allocated_nodes=%d peak_live=%d node_bytes=%d peak_bytes=%d"
    t.allocated_nodes t.peak_live t.node_bytes t.peak_bytes;
  Option.iter
    (fun io ->
      line "io: pages_read=%d pages_written=%d retries=%d corrupt_pages=%d"
        io.pages_read io.pages_written io.io_retries io.corrupt_pages)
    t.io;
  Option.iter (fun n -> line "output: %d segment(s)" n) t.segments;
  Option.iter (fun ms -> line "total: %.3f ms" ms) t.total_ms;
  Buffer.contents buf

let to_metrics registry t =
  let g name help v =
    Metrics.set_int (Metrics.gauge registry ~help name) v
  in
  g "tempagg_profile_allocated_nodes" "Nodes allocated across all attempts"
    t.allocated_nodes;
  g "tempagg_profile_peak_live_nodes" "Largest live node count of any attempt"
    t.peak_live;
  g "tempagg_profile_peak_bytes" "Peak node memory of any attempt in bytes"
    t.peak_bytes;
  g "tempagg_profile_attempts" "Evaluation attempts including aborted ones"
    (List.length t.attempts_rev);
  g "tempagg_profile_degradations" "Degradations taken by the fallback chain"
    (List.length t.degradations_rev);
  Option.iter (fun n -> g "tempagg_profile_segments" "Result segments emitted" n)
    t.segments;
  Option.iter (fun n -> g "tempagg_profile_input_tuples" "Input cardinality" n)
    t.tuples;
  Option.iter
    (fun ms ->
      Metrics.set
        (Metrics.gauge registry ~help:"End-to-end query wall time"
           "tempagg_profile_total_ms")
        ms)
    t.total_ms
