(* Per-relation statistics: a bounded ring of per-query outcome records
   with exponentially-decayed aggregates, plus the result of the last
   eager ANALYZE scan.  The summary feeds the optimizer's observed path
   (Optimizer.choose_observed); the store keys entries by case-folded
   relation name and survives catalog rebuilds. *)

type outcome = {
  cardinality : int;
  algorithm : string;
  elapsed_ms : float;
  peak_bytes : int;
  k_observed : int option;
      (* A k-ordering bound proven by the run itself (e.g. a k-ordered
         tree that completed without order violations on a plain scan). *)
  segments : int option;  (* constant intervals in the result *)
  degradations : int;
}

type analysis = {
  an_cardinality : int;
  an_k : int;  (* streaming upper bound on k_of *)
  an_slack : int;
  an_percentage : float option;
  an_time_ordered : bool;
  an_distinct_endpoints : int;
}

type t = {
  capacity : int;
  alpha : float;
  mutable ring : outcome array;
  mutable filled : int;
  mutable next : int;
  mutable total : int;
  mutable dec_ms : float;
  mutable dec_peak : float;
  mutable dec_segments : float;
  mutable segment_obs : int;
  mutable last_cardinality : int;  (* -1 = unknown *)
  mutable best_k : int;  (* max_int = unknown; smallest proven bound *)
  mutable last_algorithm : string;
  mutable analysis : analysis option;
}

let default_capacity = 64
let default_alpha = 0.2

let create ?(capacity = default_capacity) ?(alpha = default_alpha) () =
  if capacity < 1 then invalid_arg "Stats.create: capacity must be >= 1";
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg "Stats.create: alpha must be in (0, 1]";
  {
    capacity;
    alpha;
    ring = [||];
    filled = 0;
    next = 0;
    total = 0;
    dec_ms = 0.;
    dec_peak = 0.;
    dec_segments = 0.;
    segment_obs = 0;
    last_cardinality = -1;
    best_k = max_int;
    last_algorithm = "";
    analysis = None;
  }

let decay t current x =
  (* First observation seeds the decayed mean directly. *)
  if t.total = 1 then x else (t.alpha *. x) +. ((1. -. t.alpha) *. current)

let record t o =
  if Array.length t.ring = 0 then t.ring <- Array.make t.capacity o;
  t.ring.(t.next) <- o;
  t.next <- (t.next + 1) mod t.capacity;
  t.filled <- Stdlib.min (t.filled + 1) t.capacity;
  t.total <- t.total + 1;
  t.dec_ms <- decay t t.dec_ms o.elapsed_ms;
  t.dec_peak <- decay t t.dec_peak (float_of_int o.peak_bytes);
  (match o.segments with
  | Some s ->
      t.segment_obs <- t.segment_obs + 1;
      t.dec_segments <-
        (if t.segment_obs = 1 then float_of_int s
         else (t.alpha *. float_of_int s) +. ((1. -. t.alpha) *. t.dec_segments))
  | None -> ());
  t.last_cardinality <- o.cardinality;
  t.last_algorithm <- o.algorithm;
  match o.k_observed with
  | Some k when o.degradations = 0 -> t.best_k <- Stdlib.min t.best_k k
  | _ -> ()

let set_analysis t a =
  t.analysis <- Some a;
  t.last_cardinality <- a.an_cardinality;
  t.best_k <- Stdlib.min t.best_k a.an_k

(* A write to the relation voids every ordering claim: a single
   out-of-place tuple can raise k arbitrarily.  Latency and size
   aggregates keep decaying instead. *)
let invalidate t =
  t.best_k <- max_int;
  t.analysis <- None

let outcomes t =
  (* Newest first. *)
  List.init t.filled (fun i ->
      t.ring.((t.next - 1 - i + (2 * t.capacity)) mod t.capacity))

type summary = {
  observations : int;
  analyzed : bool;
  cardinality : int option;
  time_ordered : bool option;
  k_upper : int option;
  constant_intervals : int option;
  distinct_endpoints : int option;
  mean_eval_ms : float option;
  peak_bytes : int option;
  source : string;
}

let empty_summary =
  {
    observations = 0;
    analyzed = false;
    cardinality = None;
    time_ordered = None;
    k_upper = None;
    constant_intervals = None;
    distinct_endpoints = None;
    mean_eval_ms = None;
    peak_bytes = None;
    source = "none";
  }

let summary t =
  let analyzed = t.analysis <> None in
  {
    observations = t.total;
    analyzed;
    cardinality = (if t.last_cardinality >= 0 then Some t.last_cardinality else None);
    time_ordered =
      Option.map (fun a -> a.an_time_ordered) t.analysis;
    k_upper = (if t.best_k < max_int then Some t.best_k else None);
    constant_intervals =
      (if t.segment_obs > 0 then
         Some (int_of_float (Float.round t.dec_segments))
       else None);
    distinct_endpoints =
      Option.map (fun a -> a.an_distinct_endpoints) t.analysis;
    mean_eval_ms = (if t.total > 0 then Some t.dec_ms else None);
    peak_bytes =
      (if t.total > 0 then Some (int_of_float t.dec_peak) else None);
    source =
      (match (analyzed, t.total > 0) with
      | true, true -> "analyze+runtime"
      | true, false -> "analyze"
      | false, true -> "runtime"
      | false, false -> "none");
  }

let to_string name t =
  let s = summary t in
  let opt_int = function None -> "-" | Some v -> string_of_int v in
  Printf.sprintf
    "%-16s card=%s k<=%s%s ordered=%s segs~%s endpoints~%s runs=%d mean-ms=%s \
     algo=%s src=%s"
    name (opt_int s.cardinality) (opt_int s.k_upper)
    (match t.analysis with
    | Some { an_slack; _ } when an_slack > 0 ->
        Printf.sprintf "(+%d)" an_slack
    | _ -> "")
    (match s.time_ordered with
    | None -> "-"
    | Some b -> string_of_bool b)
    (opt_int s.constant_intervals)
    (opt_int s.distinct_endpoints)
    s.observations
    (match s.mean_eval_ms with
    | None -> "-"
    | Some ms -> Printf.sprintf "%.2f" ms)
    (if t.last_algorithm = "" then "-" else t.last_algorithm)
    s.source

(* ---- distinct-count sketch ----

   Adaptive sampling (Wegman's technique): keep only values whose hash
   has [level] trailing zero bits; when the kept set outgrows the
   capacity, raise the level and re-filter.  The estimate is
   |kept| * 2^level, unbiased with relative error ~1/sqrt(capacity). *)

module Distinct = struct
  (* [kept] maps each sampled hash to the raw value that produced it, so
     the sketch doubles as a uniform sample of the distinct values
     (feeding e.g. partition-boundary selection) at no extra memory
     class. *)
  type sketch = {
    d_capacity : int;
    mutable level : int;
    kept : (int, int) Hashtbl.t;
  }

  (* Multiply-xorshift finalizer (constants fit OCaml's 63-bit int);
     the trailing xor-shifts matter because sampling tests low bits. *)
  let hash x =
    let x = x lxor (x lsr 33) in
    let x = x * 0x2545F4914F6CDD1D in
    let x = x lxor (x lsr 29) in
    let x = x * 0x1B03738712FAD5C9 in
    x lxor (x lsr 32)

  let sketch ?(capacity = 1024) () =
    if capacity < 16 then invalid_arg "Distinct.sketch: capacity must be >= 16";
    { d_capacity = capacity; level = 0; kept = Hashtbl.create capacity }

  let sampled s h = h land ((1 lsl s.level) - 1) = 0

  let add s x =
    let h = hash x in
    if sampled s h && not (Hashtbl.mem s.kept h) then begin
      Hashtbl.add s.kept h x;
      if Hashtbl.length s.kept > s.d_capacity then begin
        s.level <- s.level + 1;
        let survivors =
          Hashtbl.fold
            (fun h x acc -> if sampled s h then (h, x) :: acc else acc)
            s.kept []
        in
        Hashtbl.reset s.kept;
        List.iter (fun (h, x) -> Hashtbl.add s.kept h x) survivors
      end
    end

  let estimate s = Hashtbl.length s.kept lsl s.level

  let sample s =
    List.sort Int.compare (Hashtbl.fold (fun _ x acc -> x :: acc) s.kept [])
end

(* ---- store ---- *)

type store = (string, t) Hashtbl.t

let fold_name = String.lowercase_ascii
let create_store () : store = Hashtbl.create 16

let store_get store name =
  let key = fold_name name in
  match Hashtbl.find_opt store key with
  | Some t -> t
  | None ->
      let t = create () in
      Hashtbl.replace store key t;
      t

let store_find store name = Hashtbl.find_opt store (fold_name name)
let store_names store = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) store [])
let store_invalidate store name = Option.iter invalidate (store_find store name)

let store_to_string store =
  match store_names store with
  | [] -> "no statistics collected (run queries or ANALYZE a relation)"
  | names ->
      String.concat "\n"
        (List.map
           (fun name -> to_string name (Option.get (store_find store name)))
           names)

let store_to_metrics registry store =
  let gauge name help labels v =
    Metrics.set (Metrics.gauge registry ~help ~labels name) v
  in
  Hashtbl.iter
    (fun key t ->
      let labels = [ ("relation", key) ] in
      let s = summary t in
      gauge "tempagg_stats_observations"
        "Per-query outcome records folded into the relation's statistics"
        labels
        (float_of_int s.observations);
      Option.iter
        (fun c ->
          gauge "tempagg_stats_cardinality"
            "Last observed input cardinality of the relation" labels
            (float_of_int c))
        s.cardinality;
      Option.iter
        (fun k ->
          gauge "tempagg_stats_k_upper"
            "Smallest proven upper bound on the relation's k-orderedness"
            labels (float_of_int k))
        s.k_upper;
      Option.iter
        (fun m ->
          gauge "tempagg_stats_constant_intervals"
            "Decayed mean of observed result sizes (constant intervals)"
            labels (float_of_int m))
        s.constant_intervals;
      Option.iter
        (fun ms ->
          gauge "tempagg_stats_mean_eval_ms"
            "Exponentially-decayed mean evaluation latency in milliseconds"
            labels ms)
        s.mean_eval_ms;
      Option.iter
        (fun d ->
          gauge "tempagg_stats_distinct_endpoints"
            "Estimated distinct interval endpoints from the last ANALYZE"
            labels (float_of_int d))
        s.distinct_endpoints)
    store
