(** Registry of named counters, gauges and histograms with a
    Prometheus-style text exposition.

    Metrics are identified by (name, label set); re-registering an
    existing pair returns the same cell, so adapters that fold external
    stats into the registry can run repeatedly to refresh values.
    Registries are not thread-safe — mutate from one domain (spans are
    the cross-domain instrument; see {!Trace}). *)

type t
type counter
type gauge

type kind = Counter | Gauge | Histogram

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** @raise Invalid_argument on a malformed name or if [name] was already
    registered with a different metric kind. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?gamma:float ->
  string ->
  Histogram.t
(** The returned histogram is live: observations made through it are
    visible to {!expose} as cumulative [_bucket]/[_sum]/[_count] series. *)

val inc : counter -> unit

val add : counter -> float -> unit
(** @raise Invalid_argument on a negative increment. *)

val set : gauge -> float -> unit
val set_int : gauge -> int -> unit
val counter_value : counter -> float
val gauge_value : gauge -> float

val value : t -> ?labels:(string * string) list -> string -> float option
(** Current value of a registered counter or gauge ([None] for missing
    names and histograms). *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;  (** Sorted by key. *)
  s_kind : kind;
  s_value : float;  (** Counter/gauge value; a histogram's sum. *)
  s_count : int;  (** A histogram's observation count; 1 otherwise. *)
  s_buckets : (float * int) list;
      (** A histogram's non-empty (upper bound, count) buckets in
          ascending bound order; [[]] for counters and gauges. *)
}

val samples : t -> sample list
(** Structured enumeration of every registered metric, in {!expose}'s
    order (name, then labels) — what scrapers and tests should consume
    instead of parsing the text exposition. *)

val expose : t -> string
(** Prometheus text exposition: metrics sorted by name then labels, one
    [# HELP]/[# TYPE] header per name, integral values printed without a
    decimal point. *)

val write_file : t -> string -> unit
(** Write {!expose} to [path] atomically: the exposition goes to
    [path ^ ".tmp"] first and is renamed into place, so a concurrent
    reader sees either the previous complete exposition or the new one,
    never a torn write. *)
