(** Hierarchical tracing spans over a shared monotonic clock.

    Spans feed two sinks.  Arming ({!arm}/{!disarm}) records everything
    into unbounded per-domain buffers for {!spans}/{!export_chrome} —
    the profiling mode.  Independently, a bounded per-domain ring (the
    flight recorder, on by default — see {!set_ring_capacity}) always
    holds the most recent spans, so a live server can reconstruct a
    request after the fact without having been armed.  With both sinks
    off an instrumented code path costs two atomic loads.  Recording
    never takes a lock, so [Parallel] shards running on separate
    domains trace concurrently.  Completed spans export as Chrome
    [trace_event] JSON that loads in [about://tracing] or Perfetto, one
    timeline row per domain.

    Every span carries the request (trace) id it ran under, inherited
    from the enclosing span on the same domain or passed explicitly at
    domain boundaries. *)

type span = {
  id : int;
  parent : int option;
  label : string;
  trace : string;  (** request id; [""] when outside any request *)
  domain : int;  (** id of the domain that recorded the span *)
  start_us : int;  (** microseconds since process-local epoch *)
  mutable stop_us : int;
  mutable attrs : (string * string) list;
}

val now_us : unit -> int
(** The shared clock spans are stamped with: microseconds since the
    process-local epoch, monotonized across domains with a CAS max so
    successive readings never run backwards even if the wall clock
    steps.  Exposed for callers that need durations immune to clock
    adjustments (the serve loop's latency reports, the network server's
    timeouts). *)

val arm : unit -> unit
(** Start recording.  Spans from any previous arming are discarded. *)

val disarm : unit -> unit
(** Stop recording.  Already-recorded spans stay available to {!spans}. *)

val is_armed : unit -> bool

val recording : unit -> bool
(** True when any sink is on: armed, or ring capacity > 0.  Callers
    that gate optional attribute work (statement text, shard counts)
    should check this, not {!is_armed}, so the flight recorder sees the
    same detail a profiling run would. *)

val set_ring_capacity : int -> unit
(** Resize the per-domain flight-recorder ring (spans kept per domain).
    [0] disables the ring entirely, restoring the disarmed zero-cost
    path.  Resizing discards current ring contents.  Default 2048. *)

val ring_capacity_now : unit -> int

val with_span :
  ?attrs:(string * string) list ->
  ?parent:int ->
  ?trace:string ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span label f] runs [f] inside a new span when any sink is
    recording, and is a transparent call-through otherwise.  The parent
    defaults to the innermost open span on the calling domain, the
    trace id to that span's; pass [?parent]/[?trace] explicitly when
    crossing domains (a spawned domain has no open spans of its own).
    The span closes even if [f] raises. *)

val open_span :
  ?attrs:(string * string) list ->
  ?parent:int ->
  ?trace:string ->
  string ->
  int
(** Open a span that does not nest lexically — a queue wait opened on
    the event loop and closed by whichever worker takes the job, a
    request root spanning dispatch to completion.  The span lives in a
    shared table (not the domain-local stack) until {!close_span},
    which any domain may call.  Returns the span id, or [0] when
    nothing is recording ([close_span 0] is a no-op). *)

val close_span : ?attrs:(string * string) list -> int -> unit
(** Close a span returned by {!open_span}, appending [attrs] to it and
    recording it on the closing domain.  Unknown or [0] ids are
    ignored. *)

val current : unit -> int option
(** Id of the innermost open span on this domain, for handing to a
    child domain's [with_span ?parent].  [None] when nothing records. *)

val current_trace : unit -> string
(** Trace id of the innermost open span on this domain, for handing to
    a child domain's [with_span ?trace].  [""] when there is none. *)

val spans : unit -> span list
(** All completed spans from the current arming, ordered by start time. *)

val recorded : unit -> span list
(** The flight-recorder ring contents across all domains, ordered by
    start time.  A racy snapshot: concurrent recording on other domains
    may tear it, which the recorder tolerates. *)

val ring_stats : unit -> int * int
(** [(occupancy, dropped)] summed over all domain rings: spans
    currently held, and spans overwritten since the last resize. *)

val clear : unit -> unit
(** Drop recorded spans without changing the armed state. *)

val to_chrome_json : span list -> string
(** Chrome [trace_event] JSON ([{"traceEvents": [...]}]): one complete
    ("ph":"X") event per span with ts/dur in microseconds, tid = domain
    id, attrs (and trace id) as event args, plus thread-name metadata
    per domain. *)

val export_chrome : unit -> string
(** [to_chrome_json (spans ())]. *)
