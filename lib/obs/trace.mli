(** Hierarchical tracing spans over a shared monotonic clock.

    Tracing is globally armed/disarmed; disarmed, an instrumented code
    path costs a single atomic load.  Armed, each domain records into
    its own buffer (no locks on the recording path), so [Parallel]
    shards running on separate domains trace concurrently.  Completed
    spans export as Chrome [trace_event] JSON that loads in
    [about://tracing] or Perfetto, one timeline row per domain. *)

type span = {
  id : int;
  parent : int option;
  label : string;
  domain : int;  (** id of the domain that recorded the span *)
  start_us : int;  (** microseconds since process-local epoch *)
  mutable stop_us : int;
  attrs : (string * string) list;
}

val now_us : unit -> int
(** The shared clock spans are stamped with: microseconds since the
    process-local epoch, monotonized across domains with a CAS max so
    successive readings never run backwards even if the wall clock
    steps.  Exposed for callers that need durations immune to clock
    adjustments (the serve loop's latency reports, the network server's
    timeouts). *)

val arm : unit -> unit
(** Start recording.  Spans from any previous arming are discarded. *)

val disarm : unit -> unit
(** Stop recording.  Already-recorded spans stay available to {!spans}. *)

val is_armed : unit -> bool

val with_span :
  ?attrs:(string * string) list -> ?parent:int -> string -> (unit -> 'a) -> 'a
(** [with_span label f] runs [f] inside a new span when tracing is
    armed, and is a transparent call-through when disarmed.  The parent
    defaults to the innermost open span on the calling domain; pass
    [?parent] explicitly when crossing domains (a spawned domain has no
    open spans of its own).  The span closes even if [f] raises. *)

val current : unit -> int option
(** Id of the innermost open span on this domain, for handing to a
    child domain's [with_span ?parent].  [None] when disarmed. *)

val spans : unit -> span list
(** All completed spans from the current arming, ordered by start time. *)

val clear : unit -> unit
(** Drop recorded spans without changing the armed state. *)

val to_chrome_json : span list -> string
(** Chrome [trace_event] JSON ([{"traceEvents": [...]}]): one complete
    ("ph":"X") event per span with ts/dur in microseconds, tid = domain
    id, attrs as event args, plus thread-name metadata per domain. *)

val export_chrome : unit -> string
(** [to_chrome_json (spans ())]. *)
