(** Slow-query capture: a threshold-triggered bounded ring of statement
    records, dumped as JSON.

    The serve loop feeds every statement's latency through {!observe};
    entries at or above the threshold are kept (newest evict oldest,
    but {!hits} and {!worst} cover everything ever observed).  Each
    entry carries the statement text — ready to feed back to
    [EXPLAIN ANALYZE] — plus an optional profile report and the labels
    of tracing spans recorded while the statement ran. *)

type entry = {
  statement : string;
  kind : string;  (** Statement kind, e.g. ["select"]. *)
  elapsed_ms : float;
  detail : string option;  (** Profile report text, when captured. *)
  span_labels : string list;
      (** Labels of spans recorded during the statement (tracing armed). *)
  join : string option;
      (** Chosen join strategy, e.g. ["sweep-join"]; a fallback retry is
          marked, e.g. ["sweep-join -> nested-loop-join (fallback)"]. *)
  trace : string option;
      (** Request id, for cross-referencing a flight-recorder dump. *)
}

type t

val create : ?capacity:int -> threshold_ms:float -> unit -> t
(** Ring capacity defaults to 32 entries.  A threshold of 0 captures
    every statement.
    @raise Invalid_argument on a negative threshold or capacity < 1. *)

val threshold_ms : t -> float

val observe :
  t ->
  kind:string ->
  statement:string ->
  elapsed_ms:float ->
  ?detail:string ->
  ?span_labels:string list ->
  ?join:string ->
  ?trace:string ->
  unit ->
  bool
(** Record the statement if it crossed the threshold; returns whether
    it did. *)

val hits : t -> int
(** Threshold crossings ever observed (can exceed the ring capacity). *)

val entries : t -> entry list
(** Ring contents, newest first. *)

val worst : t -> entry option
(** Slowest statement ever observed, even if evicted from the ring. *)

val to_json : t -> string
(** [{"threshold_ms": ..., "hits": ..., "entries": [...]}] — one object
    per entry with statement/kind/elapsed_ms/profile/join/trace/spans. *)
