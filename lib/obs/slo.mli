(** Declarative service-level objectives over the scraped self-relations,
    with multi-window burn-rate evaluation.

    An objective bounds the error ratio or a latency percentile over a
    slow window, with a faster companion window.  Burn rate is
    [observed / threshold] per window; both windows burning ([>= 1]) is
    a {!Breach}, exactly one a {!Warning} — the standard multi-window
    rule, so a short blip warns while only a sustained regression pages.

    The module is evaluation-agnostic: {!queries} compiles an objective
    to TSQL query strings against the [_requests] self-relation (see
    {!Selfmon.Scrape}), and {!evaluate} reads the resulting
    (interval, value) rows back through a caller-supplied callback —
    obs stays independent of the query engine while the engine stays
    the only thing that computes temporal aggregates. *)

type target =
  | Error_ratio  (** Errored fraction of completed statements. *)
  | Latency_p of float  (** A latency percentile: 0.5 or 0.99. *)

type objective = {
  o_name : string;
  o_target : target;
  o_threshold : float;
      (** Ratio bound, or latency bound in microseconds. *)
  o_window_us : int;  (** The slow window. *)
  o_fast_us : int;  (** The fast window; at most [o_window_us]. *)
  o_kind : string option;  (** Restrict to one statement kind. *)
}

type verdict = Pass | Warning | Breach

val verdict_to_string : verdict -> string
(** ["ok"], ["warning"] or ["breach"]. *)

val verdict_to_int : verdict -> int
(** 0, 1 or 2 — the [tempagg_slo_verdict] gauge encoding. *)

val target_to_string : target -> string

val parse : string -> (objective list, string) result
(** One objective per line:
    [<name> <target> < <threshold> over <window> fast <window> [kind <k>]]
    where [<target>] is [error_ratio], [p50] or [p99]; durations (and
    latency thresholds) take [us]/[ms]/[s]/[m]/[h] suffixes.  ['#'] and
    ['--'] start comments.  Objective names must be unique. *)

val parse_file : string -> (objective list, string) result

val queries : ?window:int * int -> objective -> string * string option
(** The TSQL queries the objective needs — the primary query and, for
    {!Error_ratio}, the denominator query.  [?window] becomes the
    DURING clause (placed between FROM and WHERE, where the grammar
    wants it); without it the queries cover the whole timeline. *)

type row = { row_start : int; row_stop : int; row_value : float }
(** One constant-interval result row in chronons (microseconds);
    [row_stop] is [max_int] for an unbounded interval. *)

type source = { query : string -> (row list, string) result }
(** Evaluate one single-aggregate TSQL query and return its rows,
    omitting NULL-valued ones. *)

type window_burn = { wb_start : int; wb_stop : int; wb_burn : float }

type evaluation = {
  e_objective : objective;
  e_observed_fast : float;
  e_observed_slow : float;
  e_fast : float;  (** Burn rate over the fast window. *)
  e_slow : float;  (** Burn rate over the slow window. *)
  e_verdict : verdict;
  e_worst : window_burn list;
      (** Fast-width windows tiled back through the slow window, by
          burn rate descending — the top-k worst-windows summary. *)
}

type report = { r_now_us : int; r_evaluations : evaluation list }

val evaluate :
  now_us:int -> source -> objective list -> (report, string) result
(** Evaluate every objective at [now_us]: two queries at most per
    objective (numerator and denominator over the slow window), all
    window arithmetic — time-weighted integrals, burn rates, worst
    windows — computed here from the fetched rows.  An error ratio with
    zero completed work observes 0 when the error integral is 0 too
    (no traffic is not an outage).  [Error _] on the first query the
    source fails to evaluate. *)

val to_metrics : Metrics.t -> report -> unit
(** Fold a report into a registry: [tempagg_slo_burn_rate{slo,window}],
    [tempagg_slo_verdict{slo}], [tempagg_slo_breaches_total{slo}] and
    [tempagg_slo_evaluations_total]. *)

val alerts : report -> evaluation list
(** The evaluations whose verdict is not {!Pass}. *)

val objective_to_string : objective -> string
val evaluation_to_string : evaluation -> string

val report_to_string : ?k:int -> report -> string
(** Human-readable report: one line per objective ([ALERT]-prefixed on
    a breach) plus up to [k] (default 5) worst windows per troubled
    objective. *)
