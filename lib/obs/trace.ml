(* Hierarchical tracing spans, recorded lock-free per domain.

   Disarmed (the default) the only cost on a traced code path is one
   atomic load — the <3% bar the sweep hot path is held to.  Armed, each
   domain appends completed spans to its own buffer (created on first
   use through Domain.DLS, registered once per arming epoch under a
   mutex); recording itself never takes a lock, so Parallel shards on
   separate domains trace without contending.

   Timestamps come from a single monotonized wall clock shared by all
   domains, so shard timelines line up in the exported Chrome trace. *)

type span = {
  id : int;
  parent : int option;
  label : string;
  domain : int;
  start_us : int;
  mutable stop_us : int;  (* negative while the span is open *)
  attrs : (string * string) list;
}

(* Per-domain recording state, epoch-stamped so re-arming starts clean
   without coordinating with every domain that ever traced. *)
type buffer = {
  mutable buf_epoch : int;
  mutable closed : span list;
  mutable stack : span list;
}

let armed_flag = Atomic.make false
let epoch = Atomic.make 0
let next_id = Atomic.make 1

let registry : buffer list ref = ref []
let registry_mutex = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Wall clock in microseconds since module init, monotonized across
   domains with a CAS max so exported spans never run backwards. *)
let t0 = Unix.gettimeofday ()
let last_us = Atomic.make 0

let now_us () =
  let raw = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  let rec clamp () =
    let prev = Atomic.get last_us in
    if raw <= prev then prev
    else if Atomic.compare_and_set last_us prev raw then raw
    else clamp ()
  in
  clamp ()

let dls_key =
  Domain.DLS.new_key (fun () -> { buf_epoch = -1; closed = []; stack = [] })

let buffer () =
  let b = Domain.DLS.get dls_key in
  let e = Atomic.get epoch in
  if b.buf_epoch <> e then begin
    b.buf_epoch <- e;
    b.closed <- [];
    b.stack <- [];
    with_lock registry_mutex (fun () -> registry := b :: !registry)
  end;
  b

let is_armed () = Atomic.get armed_flag

let arm () =
  with_lock registry_mutex (fun () -> registry := []);
  Atomic.incr epoch;
  Atomic.set armed_flag true

let disarm () = Atomic.set armed_flag false

let current () =
  if not (Atomic.get armed_flag) then None
  else
    match (buffer ()).stack with s :: _ -> Some s.id | [] -> None

let with_span ?(attrs = []) ?parent label f =
  if not (Atomic.get armed_flag) then f ()
  else begin
    let b = buffer () in
    let parent =
      match parent with
      | Some _ as p -> p
      | None -> ( match b.stack with s :: _ -> Some s.id | [] -> None)
    in
    let span =
      {
        id = Atomic.fetch_and_add next_id 1;
        parent;
        label;
        domain = (Domain.self () :> int);
        start_us = now_us ();
        stop_us = -1;
        attrs;
      }
    in
    b.stack <- span :: b.stack;
    Fun.protect
      ~finally:(fun () ->
        span.stop_us <- now_us ();
        (match b.stack with
        | s :: rest when s == span -> b.stack <- rest
        | stack -> b.stack <- List.filter (fun s -> s != span) stack);
        b.closed <- span :: b.closed)
      f
  end

let spans () =
  let buffers = with_lock registry_mutex (fun () -> !registry) in
  let all = List.concat_map (fun b -> b.closed) buffers in
  List.sort
    (fun a b ->
      match compare a.start_us b.start_us with
      | 0 -> compare a.id b.id
      | c -> c)
    (List.filter (fun s -> s.stop_us >= 0) all)

let clear () =
  with_lock registry_mutex (fun () -> registry := []);
  Atomic.incr epoch

(* ---- Chrome trace_event export ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json spans =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf s
  in
  (* Name each domain's row so Perfetto labels the shard timelines. *)
  let domains =
    List.sort_uniq compare (List.map (fun s -> s.domain) spans)
  in
  List.iter
    (fun d ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
            \"args\":{\"name\":\"domain %d\"}}"
           d d))
    domains;
  List.iter
    (fun s ->
      let args =
        String.concat ","
          ((Printf.sprintf "\"span_id\":%d" s.id
           :: (match s.parent with
              | Some p -> [ Printf.sprintf "\"parent\":%d" p ]
              | None -> []))
          @ List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
              s.attrs)
      in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"tempagg\",\"ph\":\"X\",\"ts\":%d,\
            \"dur\":%d,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
           (json_escape s.label) s.start_us
           (max 0 (s.stop_us - s.start_us))
           s.domain args))
    spans;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let export_chrome () = to_chrome_json (spans ())
