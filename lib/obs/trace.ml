(* Hierarchical tracing spans, recorded lock-free per domain.

   Two recording sinks share one instrumentation point:

   - The armed buffer: unbounded per-domain lists of completed spans,
     toggled by arm/disarm.  This is the profiling mode the bench and
     the serve loop use — capture everything for one run, export it,
     clear it.
   - The flight-recorder ring: a bounded per-domain ring of the most
     recent spans, on by default (see [set_ring_capacity]).  The ring
     is what makes request-scoped post-mortems possible on a live
     server without arming: when a request turns out slow, shed, or
     degraded, [Recorder.pin] lifts its spans out of the rings before
     they are overwritten.

   With both sinks off the only cost on a traced code path is two
   atomic loads — the <3% bar the sweep hot path is held to.  Recording
   itself never takes a lock, so Parallel shards on separate domains
   trace without contending.

   Every span carries the request (trace) id of the statement it ran
   under: [with_span] inherits it from the innermost open span on the
   same domain, and takes [?trace] explicitly at domain boundaries.
   Spans that cannot be lexically scoped — a queue-wait opened on the
   event loop and closed by whichever worker domain picks the job up —
   use [open_span]/[close_span], which park the open span in a shared
   table instead of a domain-local stack.

   Timestamps come from a single monotonized wall clock shared by all
   domains, so shard timelines line up in the exported Chrome trace. *)

type span = {
  id : int;
  parent : int option;
  label : string;
  trace : string;  (* request id; "" when outside any request *)
  domain : int;
  start_us : int;
  mutable stop_us : int;  (* negative while the span is open *)
  mutable attrs : (string * string) list;
}

(* Per-domain recording state, epoch-stamped so re-arming starts clean
   without coordinating with every domain that ever traced. *)
type buffer = {
  mutable buf_epoch : int;
  mutable closed : span list;
  mutable stack : span list;
  (* Flight-recorder ring: lazily allocated to the global capacity,
     overwriting the oldest span once full. *)
  mutable ring : span array;
  mutable ring_next : int;
  mutable ring_filled : int;
  mutable ring_dropped : int;
}

let armed_flag = Atomic.make false
let epoch = Atomic.make 0
let next_id = Atomic.make 1

let default_ring_capacity = 2048
let ring_capacity = Atomic.make default_ring_capacity

let registry : buffer list ref = ref []
let registry_mutex = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Wall clock in microseconds since module init, monotonized across
   domains with a CAS max so exported spans never run backwards. *)
let t0 = Unix.gettimeofday ()
let last_us = Atomic.make 0

let now_us () =
  let raw = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  let rec clamp () =
    let prev = Atomic.get last_us in
    if raw <= prev then prev
    else if Atomic.compare_and_set last_us prev raw then raw
    else clamp ()
  in
  clamp ()

let dls_key =
  Domain.DLS.new_key (fun () ->
      {
        buf_epoch = -1;
        closed = [];
        stack = [];
        ring = [||];
        ring_next = 0;
        ring_filled = 0;
        ring_dropped = 0;
      })

let buffer () =
  let b = Domain.DLS.get dls_key in
  let e = Atomic.get epoch in
  if b.buf_epoch <> e then begin
    b.buf_epoch <- e;
    b.closed <- [];
    b.stack <- [];
    b.ring <- [||];
    b.ring_next <- 0;
    b.ring_filled <- 0;
    b.ring_dropped <- 0;
    with_lock registry_mutex (fun () -> registry := b :: !registry)
  end;
  b

let is_armed () = Atomic.get armed_flag
let recording () = Atomic.get armed_flag || Atomic.get ring_capacity > 0
let ring_capacity_now () = Atomic.get ring_capacity

(* Changing the capacity bumps the epoch so stale rings (allocated at
   the old size) are discarded rather than resized in place. *)
let set_ring_capacity n =
  Atomic.set ring_capacity (max 0 n);
  with_lock registry_mutex (fun () -> registry := []);
  Atomic.incr epoch

(* Spans opened with [open_span], keyed by id until closed.  Shared
   across domains because the opener and the closer need not be the
   same domain. *)
let open_tbl : (int, span) Hashtbl.t = Hashtbl.create 64

let arm () =
  with_lock registry_mutex (fun () ->
      registry := [];
      Hashtbl.reset open_tbl);
  Atomic.incr epoch;
  Atomic.set armed_flag true

let disarm () = Atomic.set armed_flag false

let current () =
  if not (recording ()) then None
  else
    match (buffer ()).stack with s :: _ -> Some s.id | [] -> None

let current_trace () =
  if not (recording ()) then ""
  else
    match (buffer ()).stack with s :: _ -> s.trace | [] -> ""

(* Append a completed span to whichever sinks are on.  The ring
   overwrites its oldest entry once full, counting the overwrite as a
   drop so the recorder can report pressure. *)
let record b span =
  if Atomic.get armed_flag then b.closed <- span :: b.closed;
  let cap = Atomic.get ring_capacity in
  if cap > 0 then begin
    if Array.length b.ring <> cap then begin
      b.ring <- Array.make cap span;
      b.ring_next <- 0;
      b.ring_filled <- 0
    end;
    b.ring.(b.ring_next) <- span;
    b.ring_next <- (b.ring_next + 1) mod cap;
    if b.ring_filled = cap then b.ring_dropped <- b.ring_dropped + 1
    else b.ring_filled <- b.ring_filled + 1
  end

let make_span ~stack ?parent ?trace ~attrs label =
  let parent =
    match parent with
    | Some _ as p -> p
    | None -> ( match stack with s :: _ -> Some s.id | [] -> None)
  in
  let trace =
    match trace with
    | Some t -> t
    | None -> ( match stack with s :: _ -> s.trace | [] -> "")
  in
  {
    id = Atomic.fetch_and_add next_id 1;
    parent;
    label;
    trace;
    domain = (Domain.self () :> int);
    start_us = now_us ();
    stop_us = -1;
    attrs;
  }

let with_span ?(attrs = []) ?parent ?trace label f =
  if not (recording ()) then f ()
  else begin
    let b = buffer () in
    let span = make_span ~stack:b.stack ?parent ?trace ~attrs label in
    b.stack <- span :: b.stack;
    Fun.protect
      ~finally:(fun () ->
        span.stop_us <- now_us ();
        (match b.stack with
        | s :: rest when s == span -> b.stack <- rest
        | stack -> b.stack <- List.filter (fun s -> s != span) stack);
        record b span)
      f
  end

let open_span ?(attrs = []) ?parent ?trace label =
  if not (recording ()) then 0
  else begin
    let span = make_span ~stack:[] ?parent ?trace ~attrs label in
    with_lock registry_mutex (fun () -> Hashtbl.replace open_tbl span.id span);
    span.id
  end

let close_span ?(attrs = []) id =
  if id <> 0 then
    let found =
      with_lock registry_mutex (fun () ->
          match Hashtbl.find_opt open_tbl id with
          | Some s ->
              Hashtbl.remove open_tbl id;
              Some s
          | None -> None)
    in
    match found with
    | None -> ()
    | Some span ->
        span.stop_us <- now_us ();
        if attrs <> [] then span.attrs <- span.attrs @ attrs;
        record (buffer ()) span

let sort_spans all =
  List.sort
    (fun a b ->
      match compare a.start_us b.start_us with
      | 0 -> compare a.id b.id
      | c -> c)
    (List.filter (fun s -> s.stop_us >= 0) all)

let spans () =
  let buffers = with_lock registry_mutex (fun () -> !registry) in
  sort_spans (List.concat_map (fun b -> b.closed) buffers)

(* Ring contents across all domains.  Reads race with concurrent
   recording on other domains — the recorder tolerates a torn view (a
   span may be missed or seen twice across snapshots), same as
   [spans]. *)
let recorded () =
  let buffers = with_lock registry_mutex (fun () -> !registry) in
  let of_ring b =
    let n = min b.ring_filled (Array.length b.ring) in
    List.init n (fun i -> b.ring.(i))
  in
  sort_spans (List.concat_map of_ring buffers)

let ring_stats () =
  let buffers = with_lock registry_mutex (fun () -> !registry) in
  List.fold_left
    (fun (occ, dropped) b -> (occ + b.ring_filled, dropped + b.ring_dropped))
    (0, 0) buffers

let clear () =
  with_lock registry_mutex (fun () ->
      registry := [];
      Hashtbl.reset open_tbl);
  Atomic.incr epoch

(* ---- Chrome trace_event export ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json spans =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf s
  in
  (* Name each domain's row so Perfetto labels the shard timelines. *)
  let domains =
    List.sort_uniq compare (List.map (fun s -> s.domain) spans)
  in
  List.iter
    (fun d ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
            \"args\":{\"name\":\"domain %d\"}}"
           d d))
    domains;
  List.iter
    (fun s ->
      let args =
        String.concat ","
          ((Printf.sprintf "\"span_id\":%d" s.id
           :: (match s.parent with
              | Some p -> [ Printf.sprintf "\"parent\":%d" p ]
              | None -> []))
          @ (if s.trace = "" then []
             else [ Printf.sprintf "\"trace\":\"%s\"" (json_escape s.trace) ])
          @ List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
              s.attrs)
      in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"tempagg\",\"ph\":\"X\",\"ts\":%d,\
            \"dur\":%d,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
           (json_escape s.label) s.start_us
           (max 0 (s.stop_us - s.start_us))
           s.domain args))
    spans;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let export_chrome () = to_chrome_json (spans ())
