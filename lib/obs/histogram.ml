(* Log-bucketed histogram: bucket i covers (gamma^(i-1), gamma^i] (after
   shifting by the configured floor), so any recorded value is within a
   factor gamma of its bucket's upper bound.  Percentile queries walk the
   cumulative counts to the requested rank and report that bucket's upper
   bound clamped into [min, max] — a bounded-relative-error estimate from
   O(log(max/min) / log gamma) integers, instead of the O(n) floats a
   sorted-array percentile needs. *)

type t = {
  gamma : float;
  log_gamma : float;
  floor : float;  (* values at or below the floor share bucket 0 *)
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create ?(gamma = 1.05) ?(floor = 1e-9) ?(ceiling = 1e12) () =
  if gamma <= 1. then invalid_arg "Histogram.create: gamma must exceed 1";
  if floor <= 0. || ceiling <= floor then
    invalid_arg "Histogram.create: need 0 < floor < ceiling";
  let log_gamma = log gamma in
  let buckets = 2 + int_of_float (ceil (log (ceiling /. floor) /. log_gamma)) in
  {
    gamma;
    log_gamma;
    floor;
    counts = Array.make buckets 0;
    count = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity;
  }

let gamma t = t.gamma

let bucket_index t v =
  if v <= t.floor then 0
  else
    let i = 1 + int_of_float (Float.ceil (log (v /. t.floor) /. t.log_gamma)) in
    min i (Array.length t.counts - 1)

(* Upper bound of bucket [i] — the representative a percentile reports
   (before clamping to the observed range). *)
let bucket_bound t i =
  if i = 0 then t.floor else t.floor *. (t.gamma ** float_of_int (i - 1))

let observe t v =
  let i = bucket_index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0. else t.min_v
let max_value t = if t.count = 0 then 0. else t.max_v

(* Nearest-rank percentile, mirroring the rounding a sorted array's
   [a.(round (p * (n-1)))] uses, so estimates land in the same bucket as
   that oracle's sample. *)
let percentile t p =
  if t.count = 0 then 0.
  else if p <= 0. then t.min_v
  else begin
    let rank =
      let r = int_of_float ((p *. float_of_int (t.count - 1)) +. 0.5) in
      min (t.count - 1) (max 0 r)
    in
    let i = ref 0 and seen = ref 0 in
    (* Find the bucket holding the rank-th smallest observation. *)
    while !seen + t.counts.(!i) <= rank do
      seen := !seen + t.counts.(!i);
      incr i
    done;
    Float.min t.max_v (Float.max t.min_v (bucket_bound t !i))
  end

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.count <- 0;
  t.sum <- 0.;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

let merge_into ~into t =
  if Array.length into.counts <> Array.length t.counts || into.gamma <> t.gamma
  then invalid_arg "Histogram.merge_into: differently shaped histograms";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
  into.count <- into.count + t.count;
  into.sum <- into.sum +. t.sum;
  if t.min_v < into.min_v then into.min_v <- t.min_v;
  if t.max_v > into.max_v then into.max_v <- t.max_v

let nonempty_buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bucket_bound t i, t.counts.(i)) :: !acc
  done;
  !acc
