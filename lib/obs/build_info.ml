(* Binary identity for scrapes: a constant build_info gauge (value 1,
   identity in the labels, the Prometheus convention) plus process
   uptime, so a dashboard can tell which binary answered and since
   when.  The version string matches the CLI's [Cmd.info ~version];
   packaging can override it via TEMPAGG_VERSION without rebuilding. *)

let default_version = "1.0.0"

let version =
  match Sys.getenv_opt "TEMPAGG_VERSION" with
  | Some v when v <> "" -> v
  | _ -> default_version

(* Module initialization time; close enough to process start for an
   uptime gauge. *)
let started_us = Trace.now_us ()

let uptime_seconds () = float_of_int (Trace.now_us () - started_us) /. 1e6

let to_metrics m =
  Metrics.set_int
    (Metrics.gauge m
       ~help:"Build identity; the version is in the labels"
       ~labels:[ ("version", version) ]
       "tempagg_build_info")
    1;
  Metrics.set
    (Metrics.gauge m ~help:"Seconds since process start"
       "tempagg_uptime_seconds")
    (uptime_seconds ())
