let displacements ~compare a =
  let n = Array.length a in
  (* Stable sort of indices by element: position j in [order] holds the
     original index of the element ranked j-th. *)
  let order = Array.init n Fun.id in
  let cmp i j =
    let c = compare a.(i) a.(j) in
    if c <> 0 then c else Int.compare i j
  in
  Array.sort cmp order;
  let disp = Array.make n 0 in
  Array.iteri
    (fun rank original -> disp.(original) <- abs (rank - original))
    order;
  disp

let k_of ~compare a =
  Array.fold_left Stdlib.max 0 (displacements ~compare a)

let percentage ~compare ~k a =
  if k <= 0 then invalid_arg "Korder.percentage: k must be positive";
  let disp = displacements ~compare a in
  let n = Array.length a in
  if n = 0 then 0.
  else begin
    let sum =
      Array.fold_left
        (fun acc d ->
          if d > k then
            invalid_arg
              (Printf.sprintf
                 "Korder.percentage: displacement %d exceeds k=%d" d k)
          else acc + d)
        0 disp
    in
    float_of_int sum /. float_of_int (k * n)
  end

(* ---- streaming estimation ----

   The estimator maintains the strict left-to-right maxima of the
   stream as (position, value) records, strictly increasing in both.
   For each arriving element x at position j it reports the distance
   to the earliest recorded element strictly greater than x; the
   maximum such distance M satisfies  k_of <= M <= 2*k_of - 1:

   - every element displaced by d leftwards arrives after a strictly
     greater prefix maximum at least d positions earlier, and every
     element displaced by d rightwards is itself a prefix maximum
     strictly greater than some element arriving at least d positions
     later, so M >= k_of;
   - conversely each reported distance is the span of an inversion,
     and an inversion of span s forces a displacement of at least
     (s+1)/2 on one of its endpoints, so M <= 2*k_of - 1 (and M = 0
     exactly when the stream is sorted).

   Bounded memory: past [capacity] records, adjacent record pairs are
   merged (keeping the earlier position and the larger value), which
   can only move an answer position earlier — the upper-bound
   guarantee survives, while the over-estimate is bounded by the
   merged records' position span, tracked exactly as [slack]. *)

type 'a estimator = {
  compare : 'a -> 'a -> int;
  capacity : int;
  mutable recs : (int * int * 'a) array;  (* (pos, last_pos, value) *)
  mutable len : int;
  mutable n : int;
  mutable best : int;
  mutable slack : int;
}

let default_capacity = 512

let estimator ?(capacity = default_capacity) ~compare () =
  if capacity < 2 then invalid_arg "Korder.estimator: capacity must be >= 2";
  { compare; capacity; recs = [||]; len = 0; n = 0; best = 0; slack = 0 }

(* Leftmost record whose value is strictly greater than [x], or len. *)
let search est x =
  let lo = ref 0 and hi = ref est.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let _, _, v = est.recs.(mid) in
    if est.compare v x > 0 then hi := mid else lo := mid + 1
  done;
  !lo

(* Merge adjacent pairs in place, halving the record count.  The new
   span (last_pos - pos) of each merged record bounds how far an
   answer position can drift from the true earliest exceeding record. *)
let compact est =
  let kept = ref 0 in
  let i = ref 0 in
  while !i < est.len do
    (if !i + 1 < est.len then begin
       let p, _, _ = est.recs.(!i) and _, l', v' = est.recs.(!i + 1) in
       est.recs.(!kept) <- (p, l', v');
       est.slack <- Stdlib.max est.slack (l' - p)
     end
     else est.recs.(!kept) <- est.recs.(!i));
    incr kept;
    i := !i + 2
  done;
  est.len <- !kept

let observe est x =
  let j = est.n in
  est.n <- j + 1;
  let i = search est x in
  if i < est.len then begin
    let p, _, _ = est.recs.(i) in
    est.best <- Stdlib.max est.best (j - p)
  end;
  (* New strict prefix maximum: record it. *)
  let is_new_max =
    est.len = 0
    ||
    let _, _, last = est.recs.(est.len - 1) in
    est.compare x last > 0
  in
  if is_new_max then begin
    if Array.length est.recs = 0 then
      est.recs <- Array.make (est.capacity + 1) (j, j, x);
    if est.len >= est.capacity then compact est;
    est.recs.(est.len) <- (j, j, x);
    est.len <- est.len + 1
  end

let estimate est = est.best
let slack est = est.slack
let observed est = est.n

let estimate_seq ?capacity ~compare seq =
  let est = estimator ?capacity ~compare () in
  Seq.iter (observe est) seq;
  est

let estimate_array ?capacity ~compare a =
  estimate (estimate_seq ?capacity ~compare (Array.to_seq a))

let relation_estimator ?capacity rel =
  estimate_seq ?capacity ~compare:Relation.Tuple.compare_by_time
    (Relation.Trel.to_seq rel)

let estimate_relation ?capacity rel =
  estimate (relation_estimator ?capacity rel)

let tuples_array rel = Array.of_list (Relation.Trel.tuples rel)

let relation_displacements rel =
  displacements ~compare:Relation.Tuple.compare_by_time (tuples_array rel)

let k_of_relation rel =
  k_of ~compare:Relation.Tuple.compare_by_time (tuples_array rel)

let relation_percentage ~k rel =
  percentage ~compare:Relation.Tuple.compare_by_time ~k (tuples_array rel)
