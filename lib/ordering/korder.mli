(** Sortedness metrics for temporal relations (paper, Section 5.2).

    A sequence is {e k-ordered} when every element is at most [k]
    positions away from its position in the stable-sorted order; totally
    ordered is 0-ordered.  The {e k-ordered-percentage} summarizes how
    much of that disorder budget a sequence uses:

    {v
      k-ordered-percentage = (sum over i of i * n_i) / (k * n)
    v}

    where [n_i] is the number of elements [i] positions out of order.  It
    is 0 for a sorted sequence and at most 1 (only attainable for certain
    [k] and [n]); see the paper's Table 2 for worked examples. *)

val displacements : compare:('a -> 'a -> int) -> 'a array -> int array
(** [displacements ~compare a] gives, for each position of [a], the
    distance between that position and the element's position in the
    stable sort of [a].  Stability makes the result well-defined under
    duplicate keys. *)

val k_of : compare:('a -> 'a -> int) -> 'a array -> int
(** The smallest [k] for which the array is k-ordered: the maximum
    displacement (0 for empty or sorted arrays). *)

val percentage : compare:('a -> 'a -> int) -> k:int -> 'a array -> float
(** The k-ordered-percentage for the given [k].
    @raise Invalid_argument if [k <= 0], or if the array is not k-ordered
    for this [k] (some displacement exceeds [k], making the ratio
    meaningless). *)

(** {2 Streaming estimation}

    A bounded-memory, single-pass upper-bound estimator for {!k_of},
    built on the stream's strict left-to-right maxima: each arriving
    element reports its distance to the earliest strictly-greater
    record, and the running maximum [M] of those distances brackets the
    true k-orderedness:

    {v k_of <= estimate <= 2 * k_of - 1 + slack v}

    (and [estimate = 0] exactly when the stream is sorted).  [slack] is
    0 until the record table exceeds [capacity]; past that, adjacent
    records merge pairwise — merging keeps the earlier position and the
    larger value, so answers can only move {e earlier} and the result
    stays an upper bound, while [slack] tracks exactly how much the
    merges may have inflated it (the widest merged position span).
    Memory is O(capacity); time is O(log capacity) per element. *)

type 'a estimator

val estimator :
  ?capacity:int -> compare:('a -> 'a -> int) -> unit -> 'a estimator
(** Fresh estimator (default capacity 512 records).
    @raise Invalid_argument if [capacity < 2]. *)

val observe : 'a estimator -> 'a -> unit
(** Feed the next element of the stream, in physical order. *)

val estimate : 'a estimator -> int
(** Current upper bound on {!k_of} of the elements observed so far. *)

val slack : 'a estimator -> int
(** Over-estimation bound introduced by record merging: the estimate is
    at most [2 * k_of - 1 + slack].  0 while the distinct prefix maxima
    fit the capacity. *)

val observed : 'a estimator -> int
(** Elements observed so far. *)

val estimate_array : ?capacity:int -> compare:('a -> 'a -> int) -> 'a array -> int
(** One-shot: feed a whole array and return the estimate. *)

(** The same metrics over a relation's physical tuple order, compared by
    valid time (start, then stop). *)

val relation_displacements : Relation.Trel.t -> int array
val k_of_relation : Relation.Trel.t -> int
val relation_percentage : k:int -> Relation.Trel.t -> float

val relation_estimator :
  ?capacity:int -> Relation.Trel.t -> Relation.Tuple.t estimator
(** Run the streaming estimator over a relation's tuples in physical
    order (one pass over {!Relation.Trel.to_seq}). *)

val estimate_relation : ?capacity:int -> Relation.Trel.t -> int
