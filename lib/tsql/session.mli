(** Mutable query sessions: live views over changing base relations.

    A session owns a set of {e base relations} (seeded from a
    {!Catalog}) that accept [INSERT INTO] and [DELETE FROM], a registry
    of views created with [CREATE VIEW name AS query], and a
    staleness-tracked query cache ({!Live.Cache}).

    {b View maintenance.}  An ungrouped, non-DISTINCT, by-instant view
    definition is maintained {e incrementally}: one {!Live.View} per
    selected aggregate, patched in place by every insert/delete on the
    source relation (deletes retire exactly the handles the insert
    registered).  Anything else — GROUP BY, SPAN grouping, DISTINCT —
    falls back to {e recompute} maintenance: the materialized rows are
    marked stale by writes and re-evaluated on the next read (or on
    [REFRESH VIEW]).

    {b View queries.}  Only [SELECT * FROM view [DURING [a,b]]] may
    target a view: the session answers it from the materialized timeline
    (clipped to the window), consulting the cache first.  Cache entries
    are keyed by the canonical statement text and invalidated precisely:
    a write to the source relation drops exactly the entries whose
    interval overlaps the written tuple's valid time.

    All counters accumulate in a shared {!Live.Stats}. *)

type t

type outcome =
  | Rows of Relation.Trel.t  (** A SELECT's result relation. *)
  | Ack of string  (** DDL / DML acknowledgement. *)

val create :
  ?cache_capacity:int ->
  ?adaptive:bool ->
  ?data_dir:string ->
  ?split_threshold:int ->
  Catalog.t ->
  t
(** A session whose base relations are the catalog's bindings (snapshot:
    later catalog changes are not seen).  [cache_capacity] bounds the
    query cache (default 128 entries).  The catalog's statistics store
    is inherited (shared, mutable); [adaptive] (default true) lets the
    planner consult it — turned off by the CLI's [--no-adaptive].
    Writes to a base relation invalidate its ordering statistics either
    way.

    [data_dir] is where [CREATE TABLE ... PARTITION BY RANGE (vt)]
    places partition directories (a temp dir is made on first use when
    absent); [split_threshold] caps a partition shard's cardinality
    before it splits (defaulting to {!Storage.Partition}'s). *)

val exec : t -> string -> (outcome, string) result
(** Parse and execute one statement. *)

val exec_statement :
  ?memory_budget:int ->
  ?deadline_ms:float ->
  ?on_error:Tempagg.Engine.on_error ->
  t ->
  Ast.statement ->
  (outcome, string) result
(** Execute one parsed statement.  The optional guard budgets apply to
    SELECTs against base relations (the statements whose cost is
    unbounded): when any is given the evaluation runs through
    {!Eval.query_robust}, so a blown budget walks the fallback chain
    under the given [on_error] policy (or the query's own [ON ERROR]
    clause) instead of failing outright, and {!last_degradations}
    reports how many recovery events occurred.  View answers, DDL and
    DML ignore the budgets — they are bounded by construction.  This is
    how the network server's admission controller degrades saturated
    queries instead of shedding them. *)

val last_degradations : t -> int
(** Number of degradations reported by the most recent statement
    (0 for a clean run, or when the statement took the unguarded path). *)

val last_join : t -> string option
(** Join strategy the most recent statement's plan chose (e.g.
    ["sweep-join"]), with a marker appended when the evaluation
    abandoned it for the nested-loop retry (["sweep-join ->
    nested-loop-join (fallback)"]).  [None] for join-free statements. *)

val catalog : t -> Catalog.t
(** The current base relations, materialized as an immutable catalog. *)

val relation : t -> string -> Relation.Trel.t option
(** One base relation's current contents (case-insensitive name). *)

val base_names : t -> string list
val view_names : t -> string list

val view_version : t -> string -> int option
(** The view's maintenance version: bumped by every write to its source
    and by [REFRESH VIEW]. *)

val view_strategy : t -> string -> string option
(** ["incremental"] or ["recompute"]. *)

val stats : t -> Live.Stats.t
val cache_length : t -> int

val store : t -> Obs.Stats.store
(** The session's per-relation statistics store (shared with every
    catalog it materializes). *)

val replace_base : t -> string -> Relation.Trel.t -> unit
(** Swap a base relation's contents wholesale (registering the name if
    new) — how hosts push a fresh scrape of the self-relations into a
    session.  The relation's ordering statistics and overlapping cache
    entries are invalidated; dependent incremental views are rebuilt
    from the new contents, recompute views marked stale.
    @raise Invalid_argument if the name exists with a different
    schema. *)

val set_introspection :
  ?metrics:(unit -> string) -> ?slo:(unit -> string) -> t -> unit
(** Attach the [SHOW METRICS] / [SHOW SLO] bodies.  Each statement calls
    the provider at execution time; sessions without one answer with a
    pointer at the flag that would attach it.  Providers must be safe to
    call from whichever thread executes statements. *)

val add_partition : t -> string -> Storage.Partition.t -> unit
(** Register an opened {!Storage.Partition} as a base relation
    (replacing any same-named one): queries see its materialized tuples
    with the shard layout attached for pruning and shard-parallel
    plans, and INSERT/DELETE/ANALYZE maintain the partition on disk. *)

val partitions : t -> (string * Storage.Partition.t) list
(** The partitioned base relations, sorted by name — the [SHOW
    PARTITIONS] rows and the serve loop's per-relation shard gauges. *)
