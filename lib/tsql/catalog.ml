module Names = Map.Make (String)

type t = {
  names : (string * Relation.Trel.t) Names.t;
      (* Keyed by the case-folded name; the original spelling is kept
         for listings. *)
  layouts : (Temporal.Interval.t * int) list Names.t;
      (* Shard layout of a time-partitioned relation — (time span,
         cardinality) per shard, in the order the relation's tuples are
         materialized.  Absent for unpartitioned relations. *)
  store : Obs.Stats.store;
      (* Shared mutable statistics, surviving the functional updates of
         [add]: every catalog derived from this one sees (and feeds)
         the same store. *)
}

(* [empty] is a value, so it cannot allocate a store per use; all
   catalogs built from it share this process-global one.  Code that
   needs isolated statistics (tests, sessions) starts from [create ()]
   or [with_builtins ()] instead. *)
let global_store = Obs.Stats.create_store ()
let empty = { names = Names.empty; layouts = Names.empty; store = global_store }

let create () =
  { names = Names.empty; layouts = Names.empty; store = Obs.Stats.create_store () }

let of_store store = { names = Names.empty; layouts = Names.empty; store }
let with_store t store = { t with store }
let store t = t.store
let fold_name = String.lowercase_ascii

let add t name rel =
  {
    t with
    names = Names.add (fold_name name) (name, rel) t.names;
    (* A plain re-bind voids any previous shard layout: the new contents
       need not line up with the old shards. *)
    layouts = Names.remove (fold_name name) t.layouts;
  }

let find t name = Option.map snd (Names.find_opt (fold_name name) t.names)

let with_layout t name layout =
  { t with layouts = Names.add (fold_name name) layout t.layouts }

let layout t name =
  Option.value (Names.find_opt (fold_name name) t.layouts) ~default:[]

let names t =
  List.sort String.compare
    (List.map (fun (_, (name, _)) -> name) (Names.bindings t.names))

let stats t name = Obs.Stats.store_get t.store name
let stats_find t name = Obs.Stats.store_find t.store name

let stats_summary t name =
  match stats_find t name with
  | Some s -> Obs.Stats.summary s
  | None -> Obs.Stats.empty_summary

let with_builtins () =
  add (create ()) "Employed" (Relation.Fixtures.employed ())
