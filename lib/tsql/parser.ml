exception Syntax_error of string

type state = { tokens : (Lexer.token * int) array; mutable pos : int }

let peek st = fst st.tokens.(st.pos)

(* One token of lookahead past the current one; the stream ends in EOF,
   so peeking past the end just sees EOF again. *)
let peek2 st =
  fst st.tokens.(Stdlib.min (st.pos + 1) (Array.length st.tokens - 1))

let offset st = snd st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st expected =
  raise
    (Syntax_error
       (Printf.sprintf "expected %s but found %s at offset %d" expected
          (Lexer.token_to_string (peek st))
          (offset st)))

let expect st token what =
  if peek st = token then advance st else fail st what

let ident st =
  match peek st with
  | Lexer.IDENT name -> advance st; name
  | _ -> fail st "an identifier"

(* A column reference, optionally qualified: [salary] or [r.salary].
   Qualified forms appear in join queries, where the combined schema
   names columns <relation>.<column>. *)
let column_name st =
  let first = ident st in
  if peek st = Lexer.DOT then begin
    advance st;
    first ^ "." ^ ident st
  end
  else first

let agg_fun_of_ident name =
  match String.lowercase_ascii name with
  | "count" -> Some Ast.Count
  | "sum" -> Some Ast.Sum
  | "avg" -> Some Ast.Avg
  | "min" -> Some Ast.Min
  | "max" -> Some Ast.Max
  | _ -> None

let select_item st =
  match peek st with
  | Lexer.STAR ->
      advance st;
      Ast.Star
  | Lexer.IDENT name when
      (match peek2 st with Lexer.DOT -> true | _ -> false) ->
      advance st;
      advance st;
      Ast.Column (name ^ "." ^ ident st)
  | Lexer.IDENT name -> (
      advance st;
      match (agg_fun_of_ident name, peek st) with
      | Some fn, Lexer.LPAREN ->
          advance st;
          let distinct =
            if peek st = Lexer.DISTINCT then begin
              advance st;
              true
            end
            else false
          in
          let arg =
            match peek st with
            | Lexer.STAR ->
                if fn <> Ast.Count then
                  raise
                    (Syntax_error
                       (Printf.sprintf "%s(*) is not allowed; only COUNT(*)"
                          (Ast.agg_fun_to_string fn)));
                if distinct then
                  raise (Syntax_error "DISTINCT requires a column argument");
                advance st;
                None
            | _ -> Some (column_name st)
          in
          expect st Lexer.RPAREN "')'";
          Ast.Aggregate { fn; arg; distinct }
      | _ -> Ast.Column name)
  | _ -> fail st "a column or aggregate"

let rec comma_separated st parse_one =
  let first = parse_one st in
  if peek st = Lexer.COMMA then begin
    advance st;
    first :: comma_separated st parse_one
  end
  else [ first ]

let literal st =
  match peek st with
  | Lexer.INT n -> advance st; Ast.Lint n
  | Lexer.FLOAT f -> advance st; Ast.Lfloat f
  | Lexer.STRING s -> advance st; Ast.Lstring s
  | _ -> fail st "a literal"

let comparison_op st =
  match peek st with
  | Lexer.EQ -> advance st; Ast.Eq
  | Lexer.NEQ -> advance st; Ast.Neq
  | Lexer.LT -> advance st; Ast.Lt
  | Lexer.LE -> advance st; Ast.Le
  | Lexer.GT -> advance st; Ast.Gt
  | Lexer.GE -> advance st; Ast.Ge
  | _ -> fail st "a comparison operator"

let predicate st =
  let column = column_name st in
  let op = comparison_op st in
  let value = literal st in
  { Ast.column; op; value }

let rec predicates st =
  let first = predicate st in
  if peek st = Lexer.AND then begin
    advance st;
    first :: predicates st
  end
  else [ first ]

(* GROUP BY elements: attribute names, INSTANT, or SPAN n.  At most one
   temporal grouping may appear. *)
let group_elements st =
  let attrs = ref [] and temporal = ref None in
  let set_temporal g =
    match !temporal with
    | None -> temporal := Some g
    | Some _ ->
        raise (Syntax_error "multiple temporal groupings in GROUP BY")
  in
  let element st =
    match peek st with
    | Lexer.INSTANT -> advance st; set_temporal Ast.By_instant
    | Lexer.SPAN -> (
        advance st;
        match peek st with
        | Lexer.INT n ->
            advance st;
            if n <= 0 then raise (Syntax_error "SPAN length must be positive");
            set_temporal (Ast.By_span n)
        | _ -> fail st "a span length")
    | Lexer.IDENT _ -> attrs := column_name st :: !attrs
    | _ -> fail st "a grouping element"
  in
  ignore (comma_separated st (fun st -> element st));
  (List.rev !attrs, Option.value !temporal ~default:Ast.By_instant)

(* USING algo, algo ::= ident ['(' int [',' algo] ')'] — the optional
   second argument nests an inner algorithm, e.g.
   USING parallel(4, ktree(1)).  The clause re-serializes to the string
   form Engine.of_string parses. *)
let rec using_clause st =
  let name = ident st in
  if peek st = Lexer.LPAREN then begin
    advance st;
    match peek st with
    | Lexer.INT n ->
        advance st;
        if peek st = Lexer.COMMA then begin
          advance st;
          let inner = using_clause st in
          expect st Lexer.RPAREN "')'";
          Printf.sprintf "%s(%d,%s)" name n inner
        end
        else begin
          expect st Lexer.RPAREN "')'";
          Printf.sprintf "%s(%d)" name n
        end
    | _ -> fail st "an integer argument"
  end
  else name

let during_clause st =
  expect st Lexer.LBRACKET "'['";
  let w_start =
    match peek st with
    | Lexer.INT n when n >= 0 -> advance st; n
    | _ -> fail st "a non-negative start instant"
  in
  expect st Lexer.COMMA "','";
  let w_stop =
    match peek st with
    | Lexer.INT n -> advance st; Some n
    | Lexer.IDENT ("oo" | "forever") -> advance st; None
    | _ -> fail st "a stop instant or oo"
  in
  (match w_stop with
  | Some stop when stop < w_start ->
      raise (Syntax_error "DURING window stops before it starts")
  | _ -> ());
  expect st Lexer.RBRACKET "']'";
  { Ast.w_start; w_stop }

(* [rel.vt] — the only attribute an ON clause may compare. *)
let vt_ref st =
  let rel = ident st in
  expect st Lexer.DOT "'.'";
  (match peek st with
  | Lexer.IDENT v when String.lowercase_ascii v = "vt" -> advance st
  | _ -> fail st "the valid-time attribute vt");
  rel

(* JOIN right ON a.vt <rel> b.vt.  DURING doubles as the Allen relation
   of the same name, so the keyword token is accepted in predicate
   position.  An ON clause written with the sides reversed
   ([s.vt CONTAINS r.vt] under [FROM r JOIN s]) is normalized to the
   converse predicate on (from, right). *)
let join_clause st ~from =
  let jright = ident st in
  if String.lowercase_ascii jright = String.lowercase_ascii from then
    raise
      (Syntax_error
         (Printf.sprintf
            "self-join of %s: the two sides of a JOIN must be distinct \
             relations"
            from));
  expect st Lexer.ON "ON";
  let lref = vt_ref st in
  let jpred =
    match peek st with
    | Lexer.DURING ->
        advance st;
        Join.Predicate.Allen Temporal.Interval.During
    | Lexer.IDENT name -> (
        advance st;
        match Join.Predicate.of_string name with
        | Ok p -> p
        | Error msg -> raise (Syntax_error msg))
    | _ -> fail st "an Allen relation (OVERLAPS, MEETS, CONTAINS, ...)"
  in
  let rref = vt_ref st in
  let fold = String.lowercase_ascii in
  let jpred =
    if fold lref = fold from && fold rref = fold jright then jpred
    else if fold lref = fold jright && fold rref = fold from then
      Join.Predicate.inverse jpred
    else
      raise
        (Syntax_error
           (Printf.sprintf
              "ON clause must compare %s.vt with %s.vt (found %s.vt and \
               %s.vt)"
              from jright lref rref))
  in
  { Ast.jright; jpred }

let query_body st =
  expect st Lexer.SELECT "SELECT";
  let select = comma_separated st select_item in
  expect st Lexer.FROM "FROM";
  let from = ident st in
  let join =
    if peek st = Lexer.JOIN then begin
      advance st;
      Some (join_clause st ~from)
    end
    else None
  in
  let during =
    if peek st = Lexer.DURING then begin
      advance st;
      Some (during_clause st)
    end
    else None
  in
  let where =
    if peek st = Lexer.WHERE then begin advance st; predicates st end else []
  in
  let group_by, grouping =
    if peek st = Lexer.GROUP then begin
      advance st;
      expect st Lexer.BY "BY";
      group_elements st
    end
    else ([], Ast.By_instant)
  in
  let using =
    if peek st = Lexer.USING then begin
      advance st;
      Some (using_clause st)
    end
    else None
  in
  let on_error =
    if peek st = Lexer.ON then begin
      advance st;
      expect st Lexer.ERROR "ERROR";
      let name = ident st in
      match Tempagg.Engine.on_error_of_string (String.lowercase_ascii name) with
      | Ok policy -> Some policy
      | Error msg -> raise (Syntax_error msg)
    end
    else None
  in
  { Ast.select; from; join; during; where; group_by; grouping; using; on_error }

(* Column types for CREATE TABLE, with the usual SQL synonyms. *)
let column_ty_of_ident name =
  match String.lowercase_ascii name with
  | "int" | "integer" -> Some Relation.Value.Tint
  | "float" | "real" | "double" -> Some Relation.Value.Tfloat
  | "string" | "text" | "varchar" -> Some Relation.Value.Tstring
  | _ -> None

let column_decl st =
  let name = ident st in
  let ty_name = ident st in
  match column_ty_of_ident ty_name with
  | Some ty -> (name, ty)
  | None ->
      raise
        (Syntax_error
           (Printf.sprintf "unknown column type %S (INT, FLOAT or STRING)"
              ty_name))

(* CREATE TABLE name (col TYPE, ...) PARTITION BY RANGE (vt) [(b1, ...)] *)
let create_table st =
  let name = ident st in
  expect st Lexer.LPAREN "'('";
  let columns = comma_separated st column_decl in
  expect st Lexer.RPAREN "')'";
  expect st Lexer.PARTITION "PARTITION BY RANGE (vt)";
  expect st Lexer.BY "BY";
  expect st Lexer.RANGE "RANGE";
  expect st Lexer.LPAREN "'('";
  (match peek st with
  | Lexer.IDENT key when String.lowercase_ascii key = "vt" -> advance st
  | _ -> fail st "the partitioning key vt");
  expect st Lexer.RPAREN "')'";
  let boundaries =
    if peek st = Lexer.LPAREN then begin
      advance st;
      let bs =
        comma_separated st (fun st ->
            match peek st with
            | Lexer.INT n -> advance st; n
            | _ -> fail st "a boundary instant")
      in
      expect st Lexer.RPAREN "')'";
      let rec ascending prev = function
        | [] -> true
        | b :: rest -> b > prev && ascending b rest
      in
      if not (ascending 0 bs) then
        raise
          (Syntax_error
             "partition boundaries must be positive and strictly increasing");
      bs
    end
    else []
  in
  Ast.Create_table { name; columns; boundaries }

let statement st =
  match peek st with
  | Lexer.SELECT -> Ast.Select (query_body st)
  | Lexer.EXPLAIN ->
      advance st;
      expect st Lexer.ANALYZE "ANALYZE";
      Ast.Explain_analyze (query_body st)
  | Lexer.ANALYZE ->
      advance st;
      Ast.Analyze (ident st)
  | Lexer.SHOW -> (
      advance st;
      match peek st with
      | Lexer.STATS ->
          advance st;
          Ast.Show_stats
      | Lexer.PARTITIONS ->
          advance st;
          Ast.Show_partitions
      | Lexer.TRACE ->
          advance st;
          Ast.Show_trace
      | Lexer.RECORDER ->
          advance st;
          Ast.Show_recorder
      | Lexer.METRICS ->
          advance st;
          Ast.Show_metrics
      | Lexer.SLO ->
          advance st;
          Ast.Show_slo
      | _ -> fail st "STATS, PARTITIONS, TRACE, RECORDER, METRICS or SLO")
  | Lexer.CREATE -> (
      advance st;
      match peek st with
      | Lexer.TABLE ->
          advance st;
          create_table st
      | Lexer.VIEW ->
          advance st;
          let name = ident st in
          expect st Lexer.AS "AS";
          Ast.Create_view { name; definition = query_body st }
      | _ -> fail st "VIEW or TABLE")
  | Lexer.REFRESH ->
      advance st;
      expect st Lexer.VIEW "VIEW";
      Ast.Refresh_view (ident st)
  | Lexer.DROP ->
      advance st;
      expect st Lexer.VIEW "VIEW";
      Ast.Drop_view (ident st)
  | Lexer.INSERT ->
      advance st;
      expect st Lexer.INTO "INTO";
      let relation = ident st in
      expect st Lexer.VALUES "VALUES";
      expect st Lexer.LPAREN "'('";
      let values = comma_separated st literal in
      expect st Lexer.RPAREN "')'";
      expect st Lexer.DURING "DURING";
      let window = during_clause st in
      Ast.Insert_into { relation; values; window }
  | Lexer.DELETE ->
      advance st;
      expect st Lexer.FROM "FROM";
      let relation = ident st in
      let where =
        if peek st = Lexer.WHERE then begin
          advance st;
          predicates st
        end
        else []
      in
      Ast.Delete_from { relation; where }
  | _ ->
      fail st
        "a statement (SELECT, EXPLAIN ANALYZE, CREATE, REFRESH, DROP, INSERT, \
         DELETE, ANALYZE, SHOW STATS, SHOW PARTITIONS, SHOW TRACE, SHOW \
         RECORDER, SHOW METRICS, SHOW SLO)"

let run_parser text parse_fn =
  match Lexer.tokenize text with
  | Error _ as e -> e
  | Ok tokens -> (
      let st = { tokens = Array.of_list tokens; pos = 0 } in
      match parse_fn st with
      | q -> Ok q
      | exception Syntax_error msg -> Error msg)

let parse text =
  run_parser text (fun st ->
      let q = query_body st in
      if peek st = Lexer.SEMI then advance st;
      expect st Lexer.EOF "end of query";
      q)

let parse_statement text =
  run_parser text (fun st ->
      let s = statement st in
      if peek st = Lexer.SEMI then advance st;
      expect st Lexer.EOF "end of statement";
      s)

let parse_script text =
  run_parser text (fun st ->
      let rec loop acc =
        while peek st = Lexer.SEMI do
          advance st
        done;
        if peek st = Lexer.EOF then List.rev acc
        else begin
          let s = statement st in
          (match peek st with
          | Lexer.SEMI | Lexer.EOF -> ()
          | _ -> fail st "';' between statements");
          loop (s :: acc)
        end
      in
      loop [])
