open Relation

type agg_spec = {
  fn : Ast.agg_fun;
  column : int option;
  column_ty : Value.ty option;
  distinct : bool;
  out_name : string;
  out_ty : Value.ty;
}

type join_spec = {
  right_relation : Trel.t;
  right_name : string;
  predicate : Join.Predicate.t;
  strategy : Join.Engine.strategy;
  join_rationale : string;
  join_stats_source : string;
  right_shard_layout : (Temporal.Interval.t * int) list;
      (* The right side's storage shards, for pruning its input scan
         against the window; [] = unpartitioned. *)
  right_scanned : int;
  right_pruned : int;
}

type plan = {
  relation : Trel.t;
  source_name : string;
  join : join_spec option;
      (* When present, the evaluated stream is the interval join of
         [relation] and [right_relation]: both sides clipped to the
         window (each skipping shards the window misses), paired by
         [predicate] under [strategy], each pair's valid time from
         [Join.Predicate.result_interval].  The rest of the plan
         (filter, grouping, aggregation) runs over that joined
         stream. *)
  filter : Tuple.t -> bool;
  group_columns : (string * int) list;
  aggregates : agg_spec list;
  algorithm : Tempagg.Engine.algorithm;
  sort_first : bool;
  on_error : Tempagg.Engine.on_error;
  granule : Temporal.Granule.t option;
  window : Temporal.Interval.t option;
  out_schema : Schema.t;
  rationale : string;
  stats_source : string;
      (* Where the plan's decisive inputs came from (declared metadata,
         observed statistics, or an explicit USING hint). *)
  plain_scan : bool;
      (* The evaluated stream is the relation in its physical order:
         no filter, no clipping, no grouping, no DISTINCT re-sort, no
         granule, no pre-sort.  Only then do run-time ordering
         observations (a k-ordered tree completing cleanly) say
         anything about the relation itself. *)
  shard_layout : (Temporal.Interval.t * int) list;
      (* The relation's storage-shard layout ([] = unpartitioned):
         (time span, cardinality) per shard, in materialization order.
         Lets the evaluator skip whole shards outside the DURING window
         and pin parallel evaluation shards to storage shards. *)
  scanned_shards : int;  (* shards overlapping the window; 0 unsharded *)
  pruned_shards : int;  (* shards skipped outright; 0 unsharded *)
}

let ( let* ) = Result.bind

(* SQL column references are case-insensitive; exact matches win, then a
   unique case-folded match is accepted.  Join schemas qualify columns
   as <relation>.<column>; an unqualified reference resolves against
   the part after the dot, and must be unique across both sides. *)
let resolve_column schema name =
  match Schema.index_of schema name with
  | Some i -> Ok (i, (Schema.column schema i).Schema.ty)
  | None -> (
      let folded = String.lowercase_ascii name in
      let unqualified = not (String.contains name '.') in
      let matches c =
        let cn = String.lowercase_ascii c.Schema.name in
        cn = folded
        || unqualified
           &&
           match String.index_opt cn '.' with
           | Some k ->
               String.sub cn (k + 1) (String.length cn - k - 1) = folded
           | None -> false
      in
      let candidates = List.filter matches (Schema.columns schema) in
      match candidates with
      | [ c ] ->
          let i = Option.get (Schema.index_of schema c.Schema.name) in
          Ok (i, c.Schema.ty)
      | [] -> Error (Printf.sprintf "unknown column %S" name)
      | cs ->
          Error
            (Printf.sprintf "ambiguous column %S (matches %s)" name
               (String.concat ", "
                  (List.map (fun c -> c.Schema.name) cs))))

let numeric = function Value.Tint | Value.Tfloat -> true | Value.Tstring -> false

let analyze_aggregate schema item =
  match item with
  | Ast.Column _ | Ast.Star -> assert false
  | Ast.Aggregate { fn; arg; distinct } -> (
      let base_name =
        Printf.sprintf "%s(%s%s)"
          (String.lowercase_ascii (Ast.agg_fun_to_string fn))
          (if distinct then "distinct " else "")
          (Option.value arg ~default:"*")
      in
      match arg with
      | None ->
          if fn = Ast.Count then
            Ok
              {
                fn;
                column = None;
                column_ty = None;
                distinct = false;
                out_name = base_name;
                out_ty = Value.Tint;
              }
          else
            Error
              (Printf.sprintf "%s requires a column argument"
                 (Ast.agg_fun_to_string fn))
      | Some col ->
          let* i, ty = resolve_column schema col in
          let* out_ty =
            match fn with
            | Ast.Count -> Ok Value.Tint
            | Ast.Avg ->
                if numeric ty then Ok Value.Tfloat
                else Error (Printf.sprintf "AVG(%s): column is not numeric" col)
            | Ast.Sum ->
                if numeric ty then Ok ty
                else Error (Printf.sprintf "SUM(%s): column is not numeric" col)
            | Ast.Min | Ast.Max -> Ok ty
          in
          Ok { fn; column = Some i; column_ty = Some ty; distinct;
               out_name = base_name; out_ty })

let literal_value ty lit =
  match (ty, lit) with
  | Value.Tint, Ast.Lint n -> Ok (Value.Int n)
  | Value.Tfloat, Ast.Lfloat f -> Ok (Value.Float f)
  | Value.Tfloat, Ast.Lint n -> Ok (Value.Float (float_of_int n))
  | Value.Tstring, Ast.Lstring s -> Ok (Value.Str s)
  | _ ->
      Error
        (Printf.sprintf "literal %s does not match a %s column"
           (Ast.literal_to_string lit)
           (Value.ty_to_string ty))

let compile_predicate schema (p : Ast.predicate) =
  let* i, ty = resolve_column schema p.Ast.column in
  let* rhs = literal_value ty p.Ast.value in
  let test tuple =
    let v = Tuple.value tuple i in
    if Value.is_null v then false (* SQL: comparisons with NULL are unknown *)
    else
      let c = Value.compare v rhs in
      match p.Ast.op with
      | Ast.Eq -> c = 0
      | Ast.Neq -> c <> 0
      | Ast.Lt -> c < 0
      | Ast.Le -> c <= 0
      | Ast.Gt -> c > 0
      | Ast.Ge -> c >= 0
  in
  Ok test

let predicate_filter schema preds =
  let rec build = function
    | [] -> Ok []
    | p :: rest ->
        let* test = compile_predicate schema p in
        let* tests = build rest in
        Ok (test :: tests)
  in
  let* tests = build preds in
  Ok (fun tuple -> List.for_all (fun test -> test tuple) tests)

let tuple_of_literals schema literals valid =
  let arity = Schema.arity schema in
  let given = List.length literals in
  if given <> arity then
    Error
      (Printf.sprintf "expected %d value(s) for %s, got %d" arity
         (String.concat ", "
            (List.map (fun c -> c.Schema.name) (Schema.columns schema)))
         given)
  else
    let rec convert i = function
      | [] -> Ok []
      | lit :: rest ->
          let ty = (Schema.column schema i).Schema.ty in
          let* v = literal_value ty lit in
          let* vs = convert (i + 1) rest in
          Ok (v :: vs)
    in
    let* values = convert 0 literals in
    Ok (Tuple.make (Array.of_list values) valid)

let rec collect_results f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = collect_results f rest in
      Ok (y :: ys)

(* Result columns need unique names; repeated aggregates get _2, _3 ... *)
let uniquify names =
  let seen = Hashtbl.create 8 in
  List.map
    (fun name ->
      match Hashtbl.find_opt seen name with
      | None ->
          Hashtbl.add seen name 1;
          name
      | Some n ->
          Hashtbl.replace seen name (n + 1);
          Printf.sprintf "%s_%d" name (n + 1))
    names

(* Whether every selected aggregate maps to an invertible monoid
   (Monoid.invertible): COUNT/SUM/AVG subtract cleanly, MIN/MAX are
   idempotent semilattices and do not.  One algorithm serves the whole
   query, so the delta-sweep fast path needs them all invertible. *)
let all_invertible aggregates =
  List.for_all
    (fun spec ->
      match spec.fn with
      | Ast.Count | Ast.Sum | Ast.Avg -> true
      | Ast.Min | Ast.Max -> false)
    aggregates

let choose_algorithm catalog relation (q : Ast.query) ~cardinality
    ~time_ordered ~invertible ~adaptive ~shard_layout granule window =
  match q.Ast.using with
  | Some hint ->
      let* algorithm = Tempagg.Engine.of_string hint in
      (* An explicit hint fails loudly by default — the user asked for
         this algorithm — unless an ON ERROR clause says otherwise. *)
      let on_error =
        Option.value q.Ast.on_error ~default:Tempagg.Engine.Fail
      in
      Ok
        ( algorithm,
          false,
          on_error,
          Printf.sprintf "USING hint: %s" hint,
          "USING hint" )
  | None ->
      let expected_constant_intervals =
        (* Upper bounds on the result size: the number of spans under
           span grouping, the window width under DURING (Section 6.3's
           "results for a single year" case). *)
        let span_estimate =
          match granule with
          | Some g ->
              Option.bind (Trel.lifespan relation) (fun span ->
                  match Temporal.Interval.duration span with
                  | Some d ->
                      Some
                        ((d / (g : Temporal.Granule.t).Temporal.Granule.length)
                        + 1)
                  | None -> None)
          | None -> None
        in
        let window_estimate =
          Option.bind window Temporal.Interval.duration
        in
        match (span_estimate, window_estimate) with
        | Some a, Some b -> Some (Stdlib.min a b)
        | (Some _ as e), None | None, (Some _ as e) -> e
        | None, None -> None
      in
      let metadata =
        {
          (Tempagg.Optimizer.default_metadata ~cardinality) with
          Tempagg.Optimizer.time_ordered;
          expected_constant_intervals;
          invertible_aggregate = invertible;
          shard_spans = List.map fst shard_layout;
          query_window = window;
        }
      in
      let choice =
        if adaptive then
          Tempagg.Optimizer.choose_observed
            (Catalog.stats_summary catalog q.Ast.from)
            metadata
        else Tempagg.Optimizer.choose metadata
      in
      Ok
        ( choice.Tempagg.Optimizer.algorithm,
          choice.Tempagg.Optimizer.sort_first,
          Option.value q.Ast.on_error
            ~default:choice.Tempagg.Optimizer.on_error,
          choice.Tempagg.Optimizer.rationale,
          choice.Tempagg.Optimizer.stats_source )

(* The shard layout is trusted only when it demonstrably describes the
   relation (a stale layout after an unmirrored write would misalign
   shard skipping with the physical tuples). *)
let trusted_layout catalog name relation =
  let l = Catalog.layout catalog name in
  if List.fold_left (fun acc (_, c) -> acc + c) 0 l = Trel.cardinality relation
  then l
  else []

let shard_counts layout window =
  match layout with
  | [] -> (0, 0)
  | layout -> (
      match window with
      | None -> (List.length layout, 0)
      | Some w ->
          let scanned =
            List.length
              (List.filter
                 (fun (span, _) -> Temporal.Interval.overlaps span w)
                 layout)
          in
          (scanned, List.length layout - scanned))

let analyze ?(adaptive = true) catalog (q : Ast.query) =
  let* relation =
    match Catalog.find catalog q.Ast.from with
    | Some rel -> Ok rel
    | None -> Error (Printf.sprintf "unknown relation %S" q.Ast.from)
  in
  let* right =
    match q.Ast.join with
    | None -> Ok None
    | Some { Ast.jright; _ } -> (
        match Catalog.find catalog jright with
        | Some rel -> Ok (Some (jright, rel))
        | None ->
            Error
              (Printf.sprintf "unknown relation %S (JOIN right side)" jright))
  in
  let schema =
    (* A join's combined schema qualifies every column as
       <relation>.<column>, left columns first; unqualified references
       resolve through [resolve_column]'s suffix match when unique. *)
    match right with
    | None -> Trel.schema relation
    | Some (jright, rrel) ->
        let qualify rel_name s =
          List.map
            (fun c -> (rel_name ^ "." ^ c.Schema.name, c.Schema.ty))
            (Schema.columns s)
        in
        Schema.of_pairs
          (qualify q.Ast.from (Trel.schema relation)
          @ qualify jright (Trel.schema rrel))
  in
  let* group_columns =
    collect_results
      (fun name ->
        let* i, _ = resolve_column schema name in
        Ok (name, i))
      q.Ast.group_by
  in
  let* () =
    if List.mem Ast.Star q.Ast.select then
      Error
        "SELECT * is only supported against a view (whose output columns \
         are fixed by its definition)"
    else Ok ()
  in
  let agg_items, column_items =
    List.partition
      (function Ast.Aggregate _ -> true | Ast.Column _ | Ast.Star -> false)
      q.Ast.select
  in
  let* () =
    if agg_items = [] then
      Error "the select list must contain at least one aggregate"
    else Ok ()
  in
  let* () =
    collect_results
      (function
        | Ast.Column name ->
            if List.mem_assoc name group_columns then Ok ()
            else
              Error
                (Printf.sprintf
                   "column %S must appear in GROUP BY to be selected" name)
        | Ast.Aggregate _ | Ast.Star -> Ok ())
      column_items
    |> Result.map (fun (_ : unit list) -> ())
  in
  let* aggregates = collect_results (analyze_aggregate schema) agg_items in
  let* predicates = collect_results (compile_predicate schema) q.Ast.where in
  let filter tuple = List.for_all (fun p -> p tuple) predicates in
  let granule =
    match q.Ast.grouping with
    | Ast.By_instant -> None
    | Ast.By_span n -> Some (Temporal.Granule.make n)
  in
  let window =
    Option.map
      (fun { Ast.w_start; w_stop } ->
        Temporal.Interval.make
          (Temporal.Chronon.of_int w_start)
          (match w_stop with
          | Some e -> Temporal.Chronon.of_int e
          | None -> Temporal.Chronon.forever))
      q.Ast.during
  in
  let shard_layout = trusted_layout catalog q.Ast.from relation in
  let join =
    match (q.Ast.join, right) with
    | Some { Ast.jpred; _ }, Some (jright, rrel) ->
        let right_shard_layout = trusted_layout catalog jright rrel in
        let right_scanned, right_pruned =
          shard_counts right_shard_layout window
        in
        let left_cardinality = Trel.cardinality relation
        and right_cardinality = Trel.cardinality rrel in
        let choice =
          if adaptive then
            Tempagg.Optimizer.choose_join
              ~left_stats:(Catalog.stats_summary catalog q.Ast.from)
              ~right_stats:(Catalog.stats_summary catalog jright)
              ~left_cardinality ~right_cardinality ()
          else
            Tempagg.Optimizer.choose_join ~left_cardinality
              ~right_cardinality ()
        in
        Some
          {
            right_relation = rrel;
            right_name = jright;
            predicate = jpred;
            strategy =
              (if choice.Tempagg.Optimizer.sweep then Join.Engine.Sweep
               else Join.Engine.Nested_loop);
            join_rationale = choice.Tempagg.Optimizer.join_rationale;
            join_stats_source = choice.Tempagg.Optimizer.join_stats_source;
            right_shard_layout;
            right_scanned;
            right_pruned;
          }
    | _ -> None
  in
  let* algorithm, sort_first, on_error, rationale, stats_source =
    (* The aggregate stage of a join query runs over the joined stream,
       which the base relation's statistics and physical properties do
       not describe: no declared order, no shard alignment, no adaptive
       claims.  The aggregation algorithm is chosen on the stream's
       estimated scale alone. *)
    match join with
    | None ->
        choose_algorithm catalog relation q
          ~cardinality:(Trel.cardinality relation)
          ~time_ordered:(Trel.is_time_ordered relation)
          ~invertible:(all_invertible aggregates)
          ~adaptive ~shard_layout granule window
    | Some j ->
        choose_algorithm catalog relation q
          ~cardinality:
            (Trel.cardinality relation + Trel.cardinality j.right_relation)
          ~time_ordered:false
          ~invertible:(all_invertible aggregates)
          ~adaptive:false ~shard_layout:[] granule window
  in
  let scanned_shards, pruned_shards = shard_counts shard_layout window in
  let plain_scan =
    Option.is_none join && q.Ast.where = [] && q.Ast.group_by = []
    && window = None
    && granule = None && (not sort_first)
    && not (List.exists (fun spec -> spec.distinct) aggregates)
  in
  let group_cols_schema =
    List.map
      (fun (name, i) -> (name, (Schema.column schema i).Schema.ty))
      group_columns
  in
  let agg_cols_schema =
    List.map (fun spec -> (spec.out_name, spec.out_ty)) aggregates
  in
  let names =
    uniquify (List.map fst group_cols_schema @ List.map fst agg_cols_schema)
  in
  let tys = List.map snd group_cols_schema @ List.map snd agg_cols_schema in
  let out_schema = Schema.of_pairs (List.combine names tys) in
  let aggregates =
    (* Propagate uniquified names back into the specs. *)
    let agg_names =
      List.filteri (fun i _ -> i >= List.length group_cols_schema) names
    in
    List.map2 (fun spec name -> { spec with out_name = name }) aggregates
      agg_names
  in
  Ok
    {
      relation;
      source_name = q.Ast.from;
      join;
      filter;
      group_columns;
      aggregates;
      algorithm;
      sort_first;
      on_error;
      granule;
      window;
      out_schema;
      rationale;
      stats_source;
      plain_scan;
      shard_layout;
      scanned_shards;
      pruned_shards;
    }
