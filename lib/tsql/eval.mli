(** Query evaluation.

    A query's result is itself a valid-time relation: one tuple per
    (group, constant interval), carrying the group-by values, the
    aggregate values, and the constant interval as its valid time —
    coalesced so that adjacent intervals with identical values are merged
    (TSQL2 result semantics, paper Section 5.1).

    For ungrouped queries the result covers the whole time-line
    (including leading/trailing intervals where the aggregate is empty,
    as in the paper's Table 1 which begins at time 0).  For queries with
    a GROUP BY attribute, each group's timeline is clipped to that
    group's lifespan, since an unbounded all-empty timeline per group is
    rarely useful. *)

val run : Semant.plan -> Relation.Trel.t
(** Execute an analyzed plan. *)

type value_monoid =
  | Value_monoid : (Relation.Value.t, 's, Relation.Value.t) Tempagg.Monoid.t -> value_monoid
      (** An aggregate monoid over relation values with its state type
          abstracted — what a heterogeneous list of per-aggregate
          evaluations (or live views) carries. *)

val monoid_of_spec : Semant.agg_spec -> value_monoid
(** The monoid an analyzed aggregate evaluates: COUNT over any column,
    SUM specialized to the column's numeric type, AVG as float,
    MIN/MAX by {!Relation.Value.compare}.  Shared by the batch path
    here and the incremental maintenance in {!Session}. *)

val zip_timelines :
  'a Temporal.Timeline.t list -> 'a list Temporal.Timeline.t
(** Refine a non-empty list of timelines over a common cover into one
    timeline of value lists (in input order). *)

val query :
  ?adaptive:bool ->
  ?algorithm:Tempagg.Engine.algorithm ->
  ?domains:int ->
  ?join_strategy:Join.Engine.strategy ->
  Catalog.t ->
  string ->
  (Relation.Trel.t, string) result
(** Parse, analyze and run: the whole pipeline.  [?adaptive] (default
    true) lets the planner consult the catalog's statistics store, and
    every successful run feeds an outcome record back into it —
    the CLI's [--no-adaptive] turns the planning half off (outcomes are
    still recorded).  [?algorithm] overrides the planned evaluation
    algorithm (the CLI's [--algorithm]); [?domains] with a value above 1
    wraps the planned algorithm in {!Tempagg.Engine.Parallel} over that
    many OCaml domains (the CLI's [--domains]); [?join_strategy] pins
    the interval-join strategy (the CLI's [--join-strategy]; ignored
    for join-free queries). *)

val record_outcome :
  ?profile:Obs.Profile.t ->
  Catalog.t ->
  Semant.plan ->
  elapsed_ms:float ->
  degradations:int ->
  Relation.Trel.t ->
  unit
(** Feed one successful run into the catalog's statistics store: input
    cardinality, algorithm, latency, peak bytes (when profiled), and —
    only for a plain scan — the result's constant-interval count and
    any k bound the run proved (a bare k-ordered tree completing with
    every aggregate consuming every tuple).  The query entry points call
    this themselves; it is exposed for {!Session}'s view-recompute
    path. *)

type robust_report = {
  result : Relation.Trel.t;
  degradations : Tempagg.Engine.degradation list;
      (** Every recovery event across all per-aggregate, per-group
          evaluations, in occurrence order.  Empty on a clean run. *)
}

val query_robust :
  ?adaptive:bool ->
  ?algorithm:Tempagg.Engine.algorithm ->
  ?domains:int ->
  ?on_error:Tempagg.Engine.on_error ->
  ?join_strategy:Join.Engine.strategy ->
  ?memory_budget:int ->
  ?deadline_ms:float ->
  Catalog.t ->
  string ->
  (robust_report, string) result
(** Like {!query}, but every engine evaluation goes through
    {!Tempagg.Engine.eval_robust}: budgets and deadlines are enforced
    (per evaluation), failures walk the plan's recovery policy
    ([?on_error] overrides the query's [ON ERROR] clause or the
    optimizer's recommendation), and every degradation is reported —
    never applied silently.  [Error _] carries the rendered structured
    error when recovery is impossible or disallowed. *)

type profiled_report = {
  result : Relation.Trel.t;
  profile : Obs.Profile.t;
      (** Plan, rationale, k estimate, every attempt (aborted ones
          included), degradations, phase timings and output size. *)
  degradations : Tempagg.Engine.degradation list;
}

val query_profiled :
  ?adaptive:bool ->
  ?algorithm:Tempagg.Engine.algorithm ->
  ?domains:int ->
  ?on_error:Tempagg.Engine.on_error ->
  ?join_strategy:Join.Engine.strategy ->
  ?memory_budget:int ->
  ?deadline_ms:float ->
  Catalog.t ->
  string ->
  (profiled_report, string) result
(** {!query_robust} with an {!Obs.Profile} threaded through every engine
    evaluation — the implementation behind [EXPLAIN ANALYZE] and the
    CLI's [--profile].  Profiling forces instrumentation, so the run
    costs what {!Tempagg.Engine.eval_with_stats} costs. *)

val explain :
  ?adaptive:bool ->
  ?algorithm:Tempagg.Engine.algorithm ->
  ?domains:int ->
  ?on_error:Tempagg.Engine.on_error ->
  ?join_strategy:Join.Engine.strategy ->
  Catalog.t ->
  string ->
  (string, string) result
(** Parse and analyze only; describe the chosen strategy (algorithm,
    sorting, grouping, join strategy and rationale for join queries,
    recovery policy when not [fail]) without running the query.  Takes
    the same overrides as {!query} so [explain] shows exactly what
    [query] would run. *)
