(** Query evaluation.

    A query's result is itself a valid-time relation: one tuple per
    (group, constant interval), carrying the group-by values, the
    aggregate values, and the constant interval as its valid time —
    coalesced so that adjacent intervals with identical values are merged
    (TSQL2 result semantics, paper Section 5.1).

    For ungrouped queries the result covers the whole time-line
    (including leading/trailing intervals where the aggregate is empty,
    as in the paper's Table 1 which begins at time 0).  For queries with
    a GROUP BY attribute, each group's timeline is clipped to that
    group's lifespan, since an unbounded all-empty timeline per group is
    rarely useful. *)

val run : Semant.plan -> Relation.Trel.t
(** Execute an analyzed plan. *)

val query :
  ?algorithm:Tempagg.Engine.algorithm ->
  ?domains:int ->
  Catalog.t ->
  string ->
  (Relation.Trel.t, string) result
(** Parse, analyze and run: the whole pipeline.  [?algorithm] overrides
    the planned evaluation algorithm (the CLI's [--algorithm]);
    [?domains] with a value above 1 wraps the planned algorithm in
    {!Tempagg.Engine.Parallel} over that many OCaml domains (the CLI's
    [--domains]). *)

val explain :
  ?algorithm:Tempagg.Engine.algorithm ->
  ?domains:int ->
  Catalog.t ->
  string ->
  (string, string) result
(** Parse and analyze only; describe the chosen strategy (algorithm,
    sorting, grouping) without running the query.  Takes the same
    overrides as {!query} so [explain] shows exactly what [query] would
    run. *)
