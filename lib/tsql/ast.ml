type agg_fun = Count | Sum | Avg | Min | Max

type select_item =
  | Column of string
  | Aggregate of { fn : agg_fun; arg : string option; distinct : bool }
  | Star

type comparison_op = Eq | Neq | Lt | Le | Gt | Ge

type literal = Lint of int | Lfloat of float | Lstring of string

type predicate = { column : string; op : comparison_op; value : literal }

type temporal_grouping = By_instant | By_span of int

type window = { w_start : int; w_stop : int option }

type join_clause = { jright : string; jpred : Join.Predicate.t }
(* [FROM from JOIN jright ON from.vt <pred> jright.vt]; the ON clause's
   side order is fixed by the parser (left = [from]), so only the right
   relation and the predicate need to be carried. *)

type query = {
  select : select_item list;
  from : string;
  join : join_clause option;
  during : window option;
  where : predicate list;
  group_by : string list;
  grouping : temporal_grouping;
  using : string option;
  on_error : Tempagg.Engine.on_error option;
}

let agg_fun_to_string = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

let op_to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let literal_to_string = function
  | Lint n -> string_of_int n
  | Lfloat f -> Printf.sprintf "%g" f
  | Lstring s -> Printf.sprintf "'%s'" s

let select_item_to_string = function
  | Column name -> name
  | Aggregate { fn; arg; distinct } ->
      Printf.sprintf "%s(%s%s)" (agg_fun_to_string fn)
        (if distinct then "DISTINCT " else "")
        (Option.value arg ~default:"*")
  | Star -> "*"

let to_string q =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  Buffer.add_string buf
    (String.concat ", " (List.map select_item_to_string q.select));
  Buffer.add_string buf (" FROM " ^ q.from);
  (match q.join with
  | Some { jright; jpred } ->
      Buffer.add_string buf
        (Printf.sprintf " JOIN %s ON %s.vt %s %s.vt" jright q.from
           (Join.Predicate.to_string jpred)
           jright)
  | None -> ());
  (match q.during with
  | Some { w_start; w_stop } ->
      Buffer.add_string buf
        (Printf.sprintf " DURING [%d,%s]" w_start
           (match w_stop with Some e -> string_of_int e | None -> "oo"))
  | None -> ());
  if q.where <> [] then begin
    Buffer.add_string buf " WHERE ";
    Buffer.add_string buf
      (String.concat " AND "
         (List.map
            (fun p ->
              Printf.sprintf "%s %s %s" p.column (op_to_string p.op)
                (literal_to_string p.value))
            q.where))
  end;
  let groups =
    q.group_by
    @ (match q.grouping with
      | By_instant -> []
      | By_span n -> [ Printf.sprintf "SPAN %d" n ])
  in
  if groups <> [] then
    Buffer.add_string buf (" GROUP BY " ^ String.concat ", " groups);
  (match q.using with
  | Some algo -> Buffer.add_string buf (" USING " ^ algo)
  | None -> ());
  (match q.on_error with
  | Some policy ->
      Buffer.add_string buf
        (" ON ERROR "
        ^ String.uppercase_ascii (Tempagg.Engine.on_error_to_string policy))
  | None -> ());
  Buffer.contents buf

type statement =
  | Select of query
  | Explain_analyze of query
  | Create_view of { name : string; definition : query }
  | Refresh_view of string
  | Drop_view of string
  | Create_table of {
      name : string;
      columns : (string * Relation.Value.ty) list;
      boundaries : int list;
          (* interior PARTITION BY RANGE starts; [] = one shard *)
    }
  | Insert_into of { relation : string; values : literal list; window : window }
  | Delete_from of { relation : string; where : predicate list }
  | Analyze of string  (* one sampled scan refreshing the relation's stats *)
  | Show_stats
  | Show_partitions
  | Show_trace
  | Show_recorder
  | Show_metrics
  | Show_slo

let window_to_string { w_start; w_stop } =
  Printf.sprintf "[%d,%s]" w_start
    (match w_stop with Some e -> string_of_int e | None -> "oo")

let ty_to_string ty =
  String.uppercase_ascii (Relation.Value.ty_to_string ty)

let statement_to_string = function
  | Select q -> to_string q
  | Analyze name -> "ANALYZE " ^ name
  | Show_stats -> "SHOW STATS"
  | Show_partitions -> "SHOW PARTITIONS"
  | Show_trace -> "SHOW TRACE"
  | Show_recorder -> "SHOW RECORDER"
  | Show_metrics -> "SHOW METRICS"
  | Show_slo -> "SHOW SLO"
  | Create_table { name; columns; boundaries } ->
      Printf.sprintf "CREATE TABLE %s (%s) PARTITION BY RANGE (vt)%s" name
        (String.concat ", "
           (List.map
              (fun (col, ty) -> Printf.sprintf "%s %s" col (ty_to_string ty))
              columns))
        (match boundaries with
        | [] -> ""
        | bs ->
            Printf.sprintf " (%s)"
              (String.concat ", " (List.map string_of_int bs)))
  | Explain_analyze q -> "EXPLAIN ANALYZE " ^ to_string q
  | Create_view { name; definition } ->
      Printf.sprintf "CREATE VIEW %s AS %s" name (to_string definition)
  | Refresh_view name -> "REFRESH VIEW " ^ name
  | Drop_view name -> "DROP VIEW " ^ name
  | Insert_into { relation; values; window } ->
      Printf.sprintf "INSERT INTO %s VALUES (%s) DURING %s" relation
        (String.concat ", " (List.map literal_to_string values))
        (window_to_string window)
  | Delete_from { relation; where } ->
      Printf.sprintf "DELETE FROM %s%s" relation
        (match where with
        | [] -> ""
        | ps ->
            " WHERE "
            ^ String.concat " AND "
                (List.map
                   (fun p ->
                     Printf.sprintf "%s %s %s" p.column (op_to_string p.op)
                       (literal_to_string p.value))
                   ps))
