(** The serve loop: execute a stream of interleaved statements against a
    {!Session} and report per-operation latency percentiles.

    Latency is wall-clock time around {!Session.exec_statement}, recorded
    into a per-kind {!Obs.Histogram} (select / insert / delete / view
    DDL / explain-analyze); percentiles come from the histogram (5%
    relative error at the default gamma), while count, mean and max stay
    exact.  The same histograms and error counters live in an
    {!Obs.Metrics} registry returned with the report, so the loop can
    periodically dump a Prometheus exposition.  Errors are reported
    inline, counted, and do not stop the stream — a serve loop keeps
    serving. *)

type op_stats = {
  ops : int;
  errors : int;
  mean_us : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  max_us : float;
}

val kind_of : Ast.statement -> string
(** The statement's display kind (["select"], ["insert"], ...) — the
    label used by the per-kind latency histograms here and by the
    network server's request metrics. *)

type report = {
  total : int;
  total_errors : int;
  elapsed_s : float;
  per_kind : (string * op_stats) list;  (** Stable display order. *)
  session_stats : Live.Stats.t;  (** The session's live counters. *)
  metrics : Obs.Metrics.t;
      (** Latency histograms, error counters, the session's live gauges
          and the per-relation statistics gauges, ready for
          {!Obs.Metrics.expose}. *)
  slowlog : Obs.Slowlog.t option;
      (** The slow-query log the loop fed, when one was passed in. *)
}

val run :
  ?echo:bool ->
  ?out:(string -> unit) ->
  ?metrics_every:int ->
  ?slowlog:Obs.Slowlog.t ->
  Session.t ->
  Ast.statement list ->
  report
(** Execute the statements in order.  [echo] (default false) prints each
    SELECT result and acknowledgement through [out] (default
    [print_string]); errors always print.  [metrics_every] (off by
    default) dumps the Prometheus exposition through [out] every that
    many statements.  [slowlog] (off by default) captures every
    statement at or over its threshold; a slow SELECT against a base
    relation is re-run under {!Eval.query_profiled} to attach the full
    profile text, and when tracing is armed the entry carries the labels
    of spans recorded during the statement. *)

val run_script :
  ?echo:bool ->
  ?out:(string -> unit) ->
  ?metrics_every:int ->
  ?slowlog:Obs.Slowlog.t ->
  Session.t ->
  string ->
  (report, string) result
(** {!Parser.parse_script} then {!run}.  [Error _] only on a parse
    failure — execution errors are counted in the report. *)

val report_to_string : report -> string
