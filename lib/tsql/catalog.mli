(** Named temporal relations available to queries, plus the per-relation
    statistics store feeding the observed optimizer path.

    Relation names are case-insensitive, as in SQL.

    Name bindings are functional ([add] returns a new catalog); the
    statistics store is shared mutable state carried along — catalogs
    are rebuilt per statement, statistics must survive that. *)

type t

val empty : t
(** No bindings, sharing one process-global statistics store.  Prefer
    {!create} when statistics isolation matters (tests, sessions). *)

val create : unit -> t
(** No bindings, fresh private statistics store. *)

val of_store : Obs.Stats.store -> t
(** No bindings, attached to an existing store. *)

val with_store : t -> Obs.Stats.store -> t
(** Same bindings, different store. *)

val store : t -> Obs.Stats.store

val add : t -> string -> Relation.Trel.t -> t
(** Replaces any previous binding of the same (case-folded) name.  The
    statistics store is carried over unchanged — note that [add] does
    {e not} invalidate statistics; callers replacing a relation's
    contents (as opposed to naming a new one) should
    [Obs.Stats.store_invalidate] themselves. *)

val find : t -> string -> Relation.Trel.t option

val with_layout : t -> string -> (Temporal.Interval.t * int) list -> t
(** Attach a time-partitioned relation's shard layout — (time span,
    cardinality) per shard, in the order {!find}'s relation materializes
    its tuples.  The planner uses it for shard pruning and
    shard-parallel evaluation; the spans must be {e sound} (every tuple
    of shard [i] falls inside span [i]) and the cardinalities must sum
    to the relation's.  Re-{!add}ing the name drops the layout. *)

val layout : t -> string -> (Temporal.Interval.t * int) list
(** [[]] for an unpartitioned (or unknown) relation. *)

val names : t -> string list
(** Bound names (as given at {!add}), sorted. *)

val stats : t -> string -> Obs.Stats.t
(** Find-or-create the named relation's statistics entry. *)

val stats_find : t -> string -> Obs.Stats.t option

val stats_summary : t -> string -> Obs.Stats.summary
(** [Obs.Stats.empty_summary] when nothing was ever recorded. *)

val with_builtins : unit -> t
(** A catalog containing the paper's [Employed] relation, on a fresh
    statistics store. *)
