(** Abstract syntax of the TSQL2 subset.

    The paper (Section 2) presents temporal aggregation through TSQL2
    queries such as

    {v
    SELECT COUNT(Name) FROM Employed
    SELECT Dept, AVG(Salary) FROM Employed GROUP BY Dept
    v}

    This subset covers aggregate queries over one relation or an
    interval join of two: a select list of columns and aggregate calls,
    an optional Allen-predicate JOIN, an optional conjunction of
    comparison predicates, attribute grouping, temporal grouping (by
    instant, the TSQL2 default, or by span), and an evaluation hint:

    {v
    query  ::= SELECT items FROM ident
               [JOIN ident ON ident '.' vt rel ident '.' vt]
               [DURING '[' int ',' stop ']']
               [WHERE pred {AND pred}] [GROUP BY group {, group}]
               [USING algo] [ON ERROR policy] [;]
    rel    ::= BEFORE | MEETS | OVERLAPS | FINISHED_BY | CONTAINS
             | STARTS | EQUALS | STARTED_BY | DURING | FINISHES
             | OVERLAPPED_BY | MET_BY | AFTER | INTERSECTS
    stop   ::= int | oo | forever
    items  ::= item {, item}
    item   ::= col | fn '(' [DISTINCT] col ')' | COUNT '(' '*' ')'
    col    ::= ident ['.' ident]  ; qualified in join queries
    fn     ::= COUNT | SUM | AVG | MIN | MAX
    pred   ::= col op literal ; op in = <> < <= > >=
    group  ::= col | INSTANT | SPAN int
    algo   ::= ident ['(' int [',' algo] ')']
               e.g. USING ktree(4), USING parallel(4, sweep)
    policy ::= FAIL | FALLBACK | SKIP
    v} *)

type agg_fun = Count | Sum | Avg | Min | Max

type select_item =
  | Column of string
  | Aggregate of { fn : agg_fun; arg : string option; distinct : bool }
      (** [arg = None] is [COUNT( * )]; [distinct] adds duplicate
          elimination (paper Section 7), e.g. [COUNT(DISTINCT name)]. *)
  | Star
      (** [SELECT *] — only valid against a view, whose materialized
          timeline already fixes the output columns. *)

type comparison_op = Eq | Neq | Lt | Le | Gt | Ge

type literal = Lint of int | Lfloat of float | Lstring of string

type predicate = { column : string; op : comparison_op; value : literal }

type temporal_grouping =
  | By_instant  (** TSQL2's default temporal grouping. *)
  | By_span of int  (** Fixed-length spans (Sections 2 and 7). *)

type window = { w_start : int; w_stop : int option }
(** A DURING window: the result is restricted to these instants
    ([w_stop = None] means forever).  Constrains the evaluation domain —
    the Section 6.3 "only interested in the results for a single year"
    case. *)

type join_clause = { jright : string; jpred : Join.Predicate.t }
(** [FROM from JOIN jright ON from.vt <pred> jright.vt].  The ON
    clause's side order is fixed (left operand is the FROM relation),
    so the clause carries only the right relation and the predicate. *)

type query = {
  select : select_item list;
  from : string;
  join : join_clause option;
      (** Interval join against a second base relation; the joined
          tuples (valid time from {!Join.Predicate.result_interval})
          feed the rest of the pipeline. *)
  during : window option;  (** valid-time window *)
  where : predicate list;  (** conjunction; empty = no filter *)
  group_by : string list;  (** attribute (value) grouping *)
  grouping : temporal_grouping;
  using : string option;  (** evaluation-algorithm hint *)
  on_error : Tempagg.Engine.on_error option;
      (** [ON ERROR] recovery policy; [None] leaves the choice to the
          optimizer (see {!Tempagg.Optimizer.choice}). *)
}

(** Top-level statements: queries plus the session-mutating DDL/DML of
    the live subsystem.

    {v
    stmt ::= query
           | EXPLAIN ANALYZE query
           | CREATE VIEW ident AS query
           | REFRESH VIEW ident
           | DROP VIEW ident
           | CREATE TABLE ident '(' col {, col} ')'
             PARTITION BY RANGE '(' vt ')' ['(' int {, int} ')']
           | INSERT INTO ident VALUES '(' literal {, literal} ')'
             DURING '[' int ',' stop ']'
           | DELETE FROM ident [WHERE pred {AND pred}]
           | ANALYZE ident
           | SHOW STATS
           | SHOW PARTITIONS
    col  ::= ident ty ; ty in INT | FLOAT | STRING (and synonyms)
    v} *)
type statement =
  | Select of query
  | Explain_analyze of query
      (** Execute the query and report an {!Obs.Profile} instead of rows. *)
  | Create_view of { name : string; definition : query }
  | Refresh_view of string
  | Drop_view of string
  | Create_table of {
      name : string;
      columns : (string * Relation.Value.ty) list;
      boundaries : int list;
          (** Interior [PARTITION BY RANGE (vt)] shard starts, strictly
              increasing; [[]] creates a single shard (later splits and
              [ANALYZE] repartitioning refine it). *)
    }
  | Insert_into of { relation : string; values : literal list; window : window }
  | Delete_from of { relation : string; where : predicate list }
  | Analyze of string
      (** One sampled scan of the named relation, refreshing its entry in
          the statistics store — and, for a partitioned relation,
          recomputing shard boundaries from the endpoint sketch. *)
  | Show_stats  (** Print the statistics store, one line per relation. *)
  | Show_partitions
      (** Print every partitioned relation's shard layout: ranges,
          cardinalities, I/O counters and pruning totals. *)
  | Show_trace
      (** Print the tracing context: current request id, armed state,
          flight-recorder ring capacity and pressure. *)
  | Show_recorder
      (** Print the flight recorder's retention state: ring pressure
          plus one line per pinned trace (id, reason, span count). *)
  | Show_metrics
      (** Print the host's metrics registry (Prometheus text
          exposition) — the in-band twin of the METRICS protocol verb. *)
  | Show_slo
      (** Print the latest SLO burn-rate report (serve-mode hosts with
          [--slo]; other sessions answer with a pointer at the flag). *)

val agg_fun_to_string : agg_fun -> string
val op_to_string : comparison_op -> string
val literal_to_string : literal -> string
val select_item_to_string : select_item -> string
val to_string : query -> string
(** Re-render a query (normalized keywords and spacing). *)

val statement_to_string : statement -> string
(** Re-render a statement; {!Select} renders via {!to_string}.  The
    canonical form — {!Session} uses it as the query-cache key. *)
