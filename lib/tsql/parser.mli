(** Recursive-descent parser for the TSQL2 subset (grammar in {!Ast}). *)

val parse : string -> (Ast.query, string) result
(** Parse one query.  Errors name the offending token and its byte
    offset, e.g. ["expected FROM but found GROUP at offset 18"]. *)

val parse_statement : string -> (Ast.statement, string) result
(** Parse one statement (query or view DDL / DML), optionally
    semicolon-terminated. *)

val parse_script : string -> (Ast.statement list, string) result
(** Parse a whole script: statements separated by semicolons (the
    semicolon after the last statement is optional; empty statements are
    skipped).  [--] line comments are handled by the lexer. *)
