(** Hand-written lexer for the TSQL2 subset.

    Keywords are case-insensitive; identifiers keep their case.  String
    literals use single quotes with [''] as the escaped quote.  [--]
    starts a line comment.  Errors carry the byte offset of the
    offending character. *)

type token =
  | SELECT
  | FROM
  | WHERE
  | GROUP
  | BY
  | AND
  | USING
  | DURING
  | DISTINCT
  | INSTANT
  | SPAN
  | ON
  | ERROR
  | CREATE
  | VIEW
  | AS
  | REFRESH
  | DROP
  | INSERT
  | INTO
  | VALUES
  | DELETE
  | EXPLAIN
  | ANALYZE
  | SHOW
  | STATS
  | TABLE
  | PARTITION
  | PARTITIONS
  | RANGE
  | JOIN
  | TRACE
  | RECORDER
  | METRICS
  | SLO
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | COMMA
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | STAR
  | SEMI
  | DOT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

val token_to_string : token -> string

val tokenize : string -> ((token * int) list, string) result
(** The token stream with byte offsets, ending in [EOF].  [Error msg] on
    an unexpected character or unterminated string. *)
