type token =
  | SELECT
  | FROM
  | WHERE
  | GROUP
  | BY
  | AND
  | USING
  | DURING
  | DISTINCT
  | INSTANT
  | SPAN
  | ON
  | ERROR
  | CREATE
  | VIEW
  | AS
  | REFRESH
  | DROP
  | INSERT
  | INTO
  | VALUES
  | DELETE
  | EXPLAIN
  | ANALYZE
  | SHOW
  | STATS
  | TABLE
  | PARTITION
  | PARTITIONS
  | RANGE
  | JOIN
  | TRACE
  | RECORDER
  | METRICS
  | SLO
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | COMMA
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | STAR
  | SEMI
  | DOT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

let token_to_string = function
  | SELECT -> "SELECT"
  | FROM -> "FROM"
  | WHERE -> "WHERE"
  | GROUP -> "GROUP"
  | BY -> "BY"
  | AND -> "AND"
  | USING -> "USING"
  | DURING -> "DURING"
  | DISTINCT -> "DISTINCT"
  | INSTANT -> "INSTANT"
  | SPAN -> "SPAN"
  | ON -> "ON"
  | ERROR -> "ERROR"
  | CREATE -> "CREATE"
  | VIEW -> "VIEW"
  | AS -> "AS"
  | REFRESH -> "REFRESH"
  | DROP -> "DROP"
  | INSERT -> "INSERT"
  | INTO -> "INTO"
  | VALUES -> "VALUES"
  | DELETE -> "DELETE"
  | EXPLAIN -> "EXPLAIN"
  | ANALYZE -> "ANALYZE"
  | SHOW -> "SHOW"
  | STATS -> "STATS"
  | TABLE -> "TABLE"
  | PARTITION -> "PARTITION"
  | PARTITIONS -> "PARTITIONS"
  | RANGE -> "RANGE"
  | JOIN -> "JOIN"
  | TRACE -> "TRACE"
  | RECORDER -> "RECORDER"
  | METRICS -> "METRICS"
  | SLO -> "SLO"
  | IDENT s -> s
  | INT n -> string_of_int n
  | FLOAT f -> Printf.sprintf "%g" f
  | STRING s -> Printf.sprintf "'%s'" s
  | COMMA -> ","
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | STAR -> "*"
  | SEMI -> ";"
  | DOT -> "."
  | EQ -> "="
  | NEQ -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<end of query>"

let keyword_of = function
  | "select" -> Some SELECT
  | "from" -> Some FROM
  | "where" -> Some WHERE
  | "group" -> Some GROUP
  | "by" -> Some BY
  | "and" -> Some AND
  | "using" -> Some USING
  | "during" -> Some DURING
  | "distinct" -> Some DISTINCT
  | "instant" -> Some INSTANT
  | "span" -> Some SPAN
  | "on" -> Some ON
  | "error" -> Some ERROR
  | "create" -> Some CREATE
  | "view" -> Some VIEW
  | "as" -> Some AS
  | "refresh" -> Some REFRESH
  | "drop" -> Some DROP
  | "insert" -> Some INSERT
  | "into" -> Some INTO
  | "values" -> Some VALUES
  | "delete" -> Some DELETE
  | "explain" -> Some EXPLAIN
  | "analyze" -> Some ANALYZE
  | "show" -> Some SHOW
  | "stats" -> Some STATS
  | "table" -> Some TABLE
  | "partition" -> Some PARTITION
  | "partitions" -> Some PARTITIONS
  | "range" -> Some RANGE
  | "join" -> Some JOIN
  | "trace" -> Some TRACE
  | "recorder" -> Some RECORDER
  | "metrics" -> Some METRICS
  | "slo" -> Some SLO
  | _ -> None

let is_ident_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
  | _ -> false

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit tok pos = tokens := (tok, pos) :: !tokens in
  let rec scan i =
    if i >= n then Ok ()
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1)
      | ',' -> emit COMMA i; scan (i + 1)
      | '(' -> emit LPAREN i; scan (i + 1)
      | ')' -> emit RPAREN i; scan (i + 1)
      | '[' -> emit LBRACKET i; scan (i + 1)
      | ']' -> emit RBRACKET i; scan (i + 1)
      | '*' -> emit STAR i; scan (i + 1)
      | ';' -> emit SEMI i; scan (i + 1)
      | '.' -> emit DOT i; scan (i + 1)
      | '=' -> emit EQ i; scan (i + 1)
      | '<' ->
          if i + 1 < n && input.[i + 1] = '>' then begin
            emit NEQ i; scan (i + 2)
          end
          else if i + 1 < n && input.[i + 1] = '=' then begin
            emit LE i; scan (i + 2)
          end
          else begin emit LT i; scan (i + 1) end
      | '>' ->
          if i + 1 < n && input.[i + 1] = '=' then begin
            emit GE i; scan (i + 2)
          end
          else begin emit GT i; scan (i + 1) end
      | '-' when i + 1 < n && input.[i + 1] = '-' ->
          (* SQL line comment: skip to end of line. *)
          let rec eol j =
            if j < n && input.[j] <> '\n' then eol (j + 1) else j
          in
          scan (eol (i + 2))
      | '\'' -> string_lit (i + 1) i (Buffer.create 16)
      | c when is_digit c -> number i
      | c when is_ident_start c -> ident i
      | c -> Error (Printf.sprintf "unexpected character %C at offset %d" c i)
  and string_lit i start buf =
    if i >= n then
      Error (Printf.sprintf "unterminated string starting at offset %d" start)
    else if input.[i] = '\'' then
      if i + 1 < n && input.[i + 1] = '\'' then begin
        Buffer.add_char buf '\'';
        string_lit (i + 2) start buf
      end
      else begin
        emit (STRING (Buffer.contents buf)) start;
        scan (i + 1)
      end
    else begin
      Buffer.add_char buf input.[i];
      string_lit (i + 1) start buf
    end
  and number start =
    let rec digits i = if i < n && is_digit input.[i] then digits (i + 1) else i in
    let int_end = digits start in
    let is_float =
      int_end < n && input.[int_end] = '.'
      && int_end + 1 < n
      && is_digit input.[int_end + 1]
    in
    if is_float then begin
      let frac_end = digits (int_end + 1) in
      let text = String.sub input start (frac_end - start) in
      emit (FLOAT (float_of_string text)) start;
      scan frac_end
    end
    else begin
      let text = String.sub input start (int_end - start) in
      match int_of_string_opt text with
      | Some v -> emit (INT v) start; scan int_end
      | None -> Error (Printf.sprintf "integer literal too large at offset %d" start)
    end
  and ident start =
    let rec chars i =
      if i < n && is_ident_char input.[i] then chars (i + 1) else i
    in
    let stop = chars start in
    let text = String.sub input start (stop - start) in
    (match keyword_of (String.lowercase_ascii text) with
    | Some kw -> emit kw start
    | None -> emit (IDENT text) start);
    scan stop
  in
  match scan 0 with
  | Ok () ->
      emit EOF n;
      Ok (List.rev !tokens)
  | Error _ as e -> e
