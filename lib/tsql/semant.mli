(** Semantic analysis: resolve and type-check a parsed query against a
    catalog, producing an executable plan.

    Enforced rules:
    - the FROM relation must exist in the catalog;
    - the select list must contain at least one aggregate;
    - a plain column in the select list must appear in GROUP BY;
    - all referenced columns must exist, with types compatible with their
      use (SUM/AVG need numeric columns; WHERE literals must match the
      column's type, ints being acceptable for float columns);
    - [COUNT( * )] takes no column, other aggregates take exactly one;
    - a USING hint must name a known algorithm.

    When no USING hint is given, the algorithm is chosen by
    {!Tempagg.Optimizer.choose_observed} from what is known about the
    relation (cardinality, physical time-orderedness, expected result
    size under span grouping), about the query (whether every selected
    aggregate is invertible — COUNT/SUM/AVG — which enables the
    delta-sweep), and from the catalog's statistics store (observed k
    bounds, measured result sizes).  Passing [~adaptive:false] ignores
    the store and plans from declared metadata alone
    ({!Tempagg.Optimizer.choose}). *)

type agg_spec = {
  fn : Ast.agg_fun;
  column : int option;  (** [None] for [COUNT( * )]. *)
  column_ty : Relation.Value.ty option;
  distinct : bool;  (** Duplicate elimination before aggregation. *)
  out_name : string;  (** Result-relation column name, e.g. [count(name)]. *)
  out_ty : Relation.Value.ty;
}

type join_spec = {
  right_relation : Relation.Trel.t;
  right_name : string;
  predicate : Join.Predicate.t;
  strategy : Join.Engine.strategy;
      (** Sweep vs nested loop, from
          {!Tempagg.Optimizer.choose_join} on the two sides'
          cardinalities (observed statistics preferred). *)
  join_rationale : string;
  join_stats_source : string;
  right_shard_layout : (Temporal.Interval.t * int) list;
      (** The right side's shard layout, trusted under the same
          cardinality check as [shard_layout]; lets the evaluator skip
          right-side shards outside the window. *)
  right_scanned : int;
  right_pruned : int;
}

type plan = {
  relation : Relation.Trel.t;
  source_name : string;
  join : join_spec option;
      (** Interval join: both sides are clipped to the window (skipping
          shards the window misses), paired under [predicate], and the
          joined stream — valid times from
          {!Join.Predicate.result_interval} — feeds the filter,
          grouping and aggregation below.  The ON clause is evaluated
          on the {e clipped} intervals, which is what makes per-side
          shard pruning sound. *)
  filter : Relation.Tuple.t -> bool;  (** Compiled WHERE conjunction. *)
  group_columns : (string * int) list;  (** GROUP BY name and column index. *)
  aggregates : agg_spec list;
  algorithm : Tempagg.Engine.algorithm;
  sort_first : bool;  (** Sort the relation by time before evaluating. *)
  on_error : Tempagg.Engine.on_error;
      (** Recovery policy for robust execution: an explicit [ON ERROR]
          clause, else [Fail] for a [USING] hint, else the optimizer's
          recommendation.  {!Eval.run} ignores it; {!Eval.query_robust}
          honours it. *)
  granule : Temporal.Granule.t option;  (** [Some _] for GROUP BY SPAN. *)
  window : Temporal.Interval.t option;
      (** DURING window: evaluation is restricted to these instants. *)
  out_schema : Relation.Schema.t;
  rationale : string;  (** Why this algorithm (hint or optimizer rule). *)
  stats_source : string;
      (** Provenance of the decisive planner inputs: ["declared
          metadata"], ["observed (...)"], or ["USING hint"]. *)
  plain_scan : bool;
      (** The evaluated stream is exactly the relation in physical
          order (no filter/clip/group/distinct/granule/pre-sort), so
          run-time ordering observations transfer to the relation. *)
  shard_layout : (Temporal.Interval.t * int) list;
      (** The relation's storage-shard layout from
          {!Catalog.layout} ([[]] = unpartitioned), kept only when its
          cardinalities sum to the relation's.  {!Eval} uses it to skip
          shards outside the DURING window without touching their
          tuples, and to pin a [Parallel] plan's evaluation shards to
          storage shards. *)
  scanned_shards : int;
      (** Shards overlapping the window (all of them without a window);
          0 for an unpartitioned relation. *)
  pruned_shards : int;
      (** Shards skipped outright; 0 for an unpartitioned relation. *)
}

val analyze : ?adaptive:bool -> Catalog.t -> Ast.query -> (plan, string) result
(** [adaptive] (default true) lets the planner consult the catalog's
    statistics store. *)

val predicate_filter :
  Relation.Schema.t ->
  Ast.predicate list ->
  (Relation.Tuple.t -> bool, string) result
(** Compile a WHERE conjunction against a schema — the same resolution
    and typing rules as {!analyze}, exposed for the session's DELETE
    path and view maintenance. *)

val tuple_of_literals :
  Relation.Schema.t ->
  Ast.literal list ->
  Temporal.Interval.t ->
  (Relation.Tuple.t, string) result
(** Type-check an INSERT's value list against a schema (arity and
    per-column literal compatibility) and build the tuple with the given
    valid interval. *)
