open Temporal
open Relation

let ( let* ) = Result.bind
let fold = String.lowercase_ascii

type outcome = Rows of Trel.t | Ack of string

(* A mutable base relation: tuples keyed by a session-assigned id (so a
   DELETE can tell the views exactly which contributions to retire),
   with a cached immutable snapshot for the batch path. *)
type base = {
  bname : string;  (* original spelling *)
  schema : Schema.t;
  ids : (int, Tuple.t) Hashtbl.t;
  mutable next_id : int;
  mutable cached : Trel.t option;
  part : Storage.Partition.t option;
      (* Time-partitioned backing store.  Writes go to both the id table
         (which the incremental views key their handles on) and the
         partition; reads materialize from the partition so the tuple
         order matches the shard layout handed to the planner. *)
}

type agg_view =
  | Agg : {
      spec : Semant.agg_spec;
      view : (Value.t, 's, Value.t) Live.View.t;
    }
      -> agg_view

type incremental = {
  aggs : agg_view list;
  inc_filter : Tuple.t -> bool;
  inc_window : Interval.t option;
  handles : (int, Live.View.handle option list) Hashtbl.t;
      (* base tuple id -> per-aggregate view handles (None where the
         tuple was skipped, e.g. a NULL in that aggregate's column) *)
}

type strategy =
  | Incremental of incremental
  | Recompute of { mutable rel : Trel.t; mutable stale : bool }

type view = {
  vname : string;
  source : string;  (* case-folded base-relation name *)
  definition : Ast.query;
  out_schema : Schema.t;
  mutable strategy : strategy;
  mutable vversion : int;
}

type t = {
  bases : (string, base) Hashtbl.t;
  views : (string, view) Hashtbl.t;
  cache : Trel.t Live.Cache.t;
  stats : Live.Stats.t;
  store : Obs.Stats.store;
      (* Per-relation statistics, inherited from the source catalog so
         observations made before the session carry over; every catalog
         the session materializes is attached to this same store. *)
  adaptive : bool;
  mutable data_dir : string option;
      (* Where CREATE TABLE places partition directories; a temp dir is
         made on first use when none was given. *)
  split_threshold : int option;  (* Partition shard-split threshold. *)
  mutable last_join : string option;
      (* Join strategy chosen by the most recent statement's plan, with
         a marker appended when the evaluation fell back to a
         nested-loop retry — what the slow-query log records. *)
  mutable last_degradations : int;
      (* Degradations reported by the most recent statement — how the
         network server learns a guarded SELECT survived by falling
         back rather than completing cleanly. *)
  mutable metrics_provider : (unit -> string) option;
      (* SHOW METRICS body — the host (CLI, network server) decides what
         registry backs it. *)
  mutable slo_provider : (unit -> string) option;  (* SHOW SLO body *)
}

let materialize base =
  match base.cached with
  | Some rel -> rel
  | None ->
      let rel =
        match base.part with
        | Some p -> Storage.Partition.materialize p
        | None ->
            let rows =
              Hashtbl.fold (fun id tu acc -> (id, tu) :: acc) base.ids []
            in
            let rows =
              List.sort (fun (a, _) (b, _) -> Int.compare a b) rows
            in
            Trel.create base.schema (List.map snd rows)
      in
      base.cached <- Some rel;
      rel

let catalog t =
  Hashtbl.fold
    (fun _ base acc ->
      let acc = Catalog.add acc base.bname (materialize base) in
      match base.part with
      | Some p ->
          Catalog.with_layout acc base.bname (Storage.Partition.shard_layout p)
      | None -> acc)
    t.bases (Catalog.of_store t.store)

let add_base ?part t name rel =
  let ids = Hashtbl.create (max 16 (Trel.cardinality rel)) in
  List.iteri (fun i tu -> Hashtbl.replace ids i tu) (Trel.tuples rel);
  Hashtbl.replace t.bases (fold name)
    {
      bname = name;
      schema = Trel.schema rel;
      ids;
      next_id = Trel.cardinality rel;
      cached = Some rel;
      part;
    }

let create ?(cache_capacity = 128) ?(adaptive = true) ?data_dir
    ?split_threshold source =
  let stats = Live.Stats.create () in
  let t =
    {
      bases = Hashtbl.create 8;
      views = Hashtbl.create 8;
      cache = Live.Cache.create ~capacity:cache_capacity stats;
      stats;
      store = Catalog.store source;
      adaptive;
      data_dir;
      split_threshold;
      last_join = None;
      last_degradations = 0;
      metrics_provider = None;
      slo_provider = None;
    }
  in
  List.iter
    (fun name -> add_base t name (Option.get (Catalog.find source name)))
    (Catalog.names source);
  t

let ensure_data_dir t =
  match t.data_dir with
  | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      dir
  | None ->
      let dir = Filename.temp_dir "tempagg-session" "" in
      t.data_dir <- Some dir;
      dir

let add_partition t name p =
  add_base ~part:p t name (Storage.Partition.materialize p)

let partitions t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold
       (fun _ b acc ->
         match b.part with Some p -> (b.bname, p) :: acc | None -> acc)
       t.bases [])

let stats t = t.stats
let cache_length t = Live.Cache.length t.cache
let store t = t.store

let relation t name =
  Option.map materialize (Hashtbl.find_opt t.bases (fold name))

let base_names t =
  List.sort String.compare
    (Hashtbl.fold (fun _ b acc -> b.bname :: acc) t.bases [])

let view_names t =
  List.sort String.compare
    (Hashtbl.fold (fun _ v acc -> v.vname :: acc) t.views [])

let view_version t name =
  Option.map (fun v -> v.vversion) (Hashtbl.find_opt t.views (fold name))

let view_strategy t name =
  Option.map
    (fun v ->
      match v.strategy with
      | Incremental _ -> "incremental"
      | Recompute _ -> "recompute")
    (Hashtbl.find_opt t.views (fold name))

(* ---- incremental maintenance ---- *)

let value_for (spec : Semant.agg_spec) tuple =
  match spec.Semant.column with
  | None -> Some Value.Null (* COUNT( * ) consumes every tuple *)
  | Some i ->
      let v = Tuple.value tuple i in
      if Value.is_null v then None else Some v

let clipped_interval incr tuple =
  match incr.inc_window with
  | None -> Some (Tuple.valid tuple)
  | Some w -> Interval.intersect (Tuple.valid tuple) w

let insert_tuple incr id tuple =
  if incr.inc_filter tuple then
    match clipped_interval incr tuple with
    | None -> ()
    | Some iv ->
        let hs =
          List.map
            (function
              | Agg { spec; view } ->
                  Option.map
                    (fun v -> Live.View.insert view iv v)
                    (value_for spec tuple))
            incr.aggs
        in
        Hashtbl.replace incr.handles id hs

let delete_tuple incr id =
  match Hashtbl.find_opt incr.handles id with
  | None -> ()
  | Some hs ->
      Hashtbl.remove incr.handles id;
      List.iter2
        (fun agg h ->
          match agg with
          | Agg { view; _ } ->
              Option.iter (fun h -> ignore (Live.View.delete view h)) h)
        incr.aggs hs

(* Seed the views with the base's current tuples: one bulk [View.load]
   (a single batch sweep) per aggregate, not one patch per tuple. *)
let load_incremental incr base =
  let rows = Hashtbl.fold (fun id tu acc -> (id, tu) :: acc) base.ids [] in
  let rows = List.sort (fun (a, _) (b, _) -> Int.compare a b) rows in
  let eligible =
    List.filter_map
      (fun (id, tu) ->
        if incr.inc_filter tu then
          Option.map (fun iv -> (id, tu, iv)) (clipped_interval incr tu)
        else None)
      rows
  in
  let per_agg =
    List.map
      (function
        | Agg { spec; view } ->
            let entries =
              List.filter_map
                (fun (id, tu, iv) ->
                  Option.map (fun v -> (id, (iv, v))) (value_for spec tu))
                eligible
            in
            let handles =
              Live.View.load view (List.to_seq (List.map snd entries))
            in
            let tbl = Hashtbl.create (max 16 (List.length entries)) in
            List.iter2 (fun (id, _) h -> Hashtbl.replace tbl id h) entries
              handles;
            tbl)
      incr.aggs
  in
  List.iter
    (fun (id, _, _) ->
      Hashtbl.replace incr.handles id
        (List.map (fun tbl -> Hashtbl.find_opt tbl id) per_agg))
    eligible

let build_incremental t (plan : Semant.plan) base =
  let origin, horizon =
    match plan.Semant.window with
    | Some w -> (Interval.start w, Interval.stop w)
    | None -> (Chronon.origin, Chronon.forever)
  in
  let aggs =
    List.map
      (fun spec ->
        match Eval.monoid_of_spec spec with
        | Eval.Value_monoid m ->
            Agg
              { spec; view = Live.View.create ~origin ~horizon ~stats:t.stats m })
      plan.Semant.aggregates
  in
  let incr =
    {
      aggs;
      inc_filter = plan.Semant.filter;
      inc_window = plan.Semant.window;
      handles = Hashtbl.create 64;
    }
  in
  load_incremental incr base;
  incr

(* Every write to [source] funnels through here: incremental views apply
   the delta, recompute views go stale, and either way the view version
   advances so cache entries are traceable to a maintenance state. *)
let touch_views t source apply =
  Hashtbl.iter
    (fun _ v ->
      if String.equal v.source source then begin
        (match v.strategy with
        | Incremental incr -> apply incr
        | Recompute r -> r.stale <- true);
        v.vversion <- v.vversion + 1
      end)
    t.views

(* ---- statement execution ---- *)

let interval_of_window { Ast.w_start; w_stop } =
  Interval.make (Chronon.of_int w_start)
    (match w_stop with Some e -> Chronon.of_int e | None -> Chronon.forever)

let run_plan t plan =
  let t0_us = Obs.Trace.now_us () in
  match Eval.run plan with
  | rel ->
      Eval.record_outcome (catalog t) plan
        ~elapsed_ms:(float_of_int (Obs.Trace.now_us () - t0_us) /. 1000.)
        ~degradations:0 rel;
      Ok rel
  | exception Invalid_argument msg -> Error ("evaluation failed: " ^ msg)
  | exception Tempagg.Korder_tree.Order_violation { position; _ } ->
      Error
        (Printf.sprintf
           "evaluation failed: input not k-ordered for the hinted k (tuple \
            %d); sort the relation or raise k"
           position)

let incremental_capable (q : Ast.query) (plan : Semant.plan) =
  q.Ast.group_by = []
  && plan.Semant.granule = None
  && List.for_all (fun s -> not s.Semant.distinct) plan.Semant.aggregates

let create_view t name definition =
  let key = fold name in
  if Hashtbl.mem t.bases key then
    Error (Printf.sprintf "%S is a base relation" name)
  else if Hashtbl.mem t.views (fold definition.Ast.from) then
    Error "views cannot be defined over views"
  else
    let* plan = Semant.analyze ~adaptive:t.adaptive (catalog t) definition in
    let source = fold definition.Ast.from in
    let base = Hashtbl.find t.bases source in
    let* strategy =
      if incremental_capable definition plan then
        Ok (Incremental (build_incremental t plan base))
      else
        let* rel = run_plan t plan in
        Ok (Recompute { rel; stale = false })
    in
    let replaced = Hashtbl.mem t.views key in
    (* Cached results of a same-named earlier view would be returned
       verbatim for textually identical queries: drop everything. *)
    ignore (Live.Cache.clear t.cache);
    Hashtbl.replace t.views key
      {
        vname = name;
        source;
        definition;
        out_schema = plan.Semant.out_schema;
        strategy;
        vversion = 0;
      };
    Ok
      (Ack
         (Printf.sprintf "view %s %s (%s maintenance)" name
            (if replaced then "replaced" else "created")
            (match strategy with
            | Incremental _ -> "incremental"
            | Recompute _ -> "recompute")))

let refresh_view t name =
  match Hashtbl.find_opt t.views (fold name) with
  | None -> Error (Printf.sprintf "unknown view %S" name)
  | Some v ->
      let* plan = Semant.analyze ~adaptive:t.adaptive (catalog t) v.definition in
      let base = Hashtbl.find t.bases v.source in
      let* strategy =
        match v.strategy with
        | Incremental _ -> Ok (Incremental (build_incremental t plan base))
        | Recompute _ ->
            let* rel = run_plan t plan in
            t.stats.Live.Stats.rebuilds <- t.stats.Live.Stats.rebuilds + 1;
            Ok (Recompute { rel; stale = false })
      in
      v.strategy <- strategy;
      v.vversion <- v.vversion + 1;
      Ok (Ack (Printf.sprintf "view %s refreshed (version %d)" v.vname v.vversion))

let drop_view t name =
  match Hashtbl.find_opt t.views (fold name) with
  | None -> Error (Printf.sprintf "unknown view %S" name)
  | Some v ->
      Hashtbl.remove t.views (fold name);
      ignore (Live.Cache.clear t.cache);
      Ok (Ack (Printf.sprintf "view %s dropped" v.vname))

let insert_into t rel_name values window =
  let key = fold rel_name in
  if Hashtbl.mem t.views key then
    Error (Printf.sprintf "cannot INSERT into view %S" rel_name)
  else
    match Hashtbl.find_opt t.bases key with
    | None -> Error (Printf.sprintf "unknown relation %S" rel_name)
    | Some base ->
        let iv = interval_of_window window in
        let* tuple = Semant.tuple_of_literals base.schema values iv in
        let id = base.next_id in
        base.next_id <- id + 1;
        Hashtbl.replace base.ids id tuple;
        (match base.part with
        | Some p ->
            Storage.Partition.insert p tuple;
            Storage.Partition.flush p
        | None -> ());
        base.cached <- None;
        Obs.Stats.store_invalidate t.store key;
        touch_views t key (fun incr -> insert_tuple incr id tuple);
        ignore (Live.Cache.invalidate t.cache ~scope:key ~interval:iv);
        Ok (Ack (Printf.sprintf "inserted 1 tuple into %s" base.bname))

let delete_from t rel_name where =
  let key = fold rel_name in
  if Hashtbl.mem t.views key then
    Error (Printf.sprintf "cannot DELETE from view %S" rel_name)
  else
    match Hashtbl.find_opt t.bases key with
    | None -> Error (Printf.sprintf "unknown relation %S" rel_name)
    | Some base ->
        let* filter = Semant.predicate_filter base.schema where in
        let victims =
          Hashtbl.fold
            (fun id tu acc -> if filter tu then (id, tu) :: acc else acc)
            base.ids []
        in
        List.iter
          (fun (id, tu) ->
            Hashtbl.remove base.ids id;
            touch_views t key (fun incr -> delete_tuple incr id);
            ignore
              (Live.Cache.invalidate t.cache ~scope:key
                 ~interval:(Tuple.valid tu)))
          victims;
        if victims <> [] then begin
          (match base.part with
          | Some p -> ignore (Storage.Partition.delete p filter)
          | None -> ());
          base.cached <- None;
          Obs.Stats.store_invalidate t.store key
        end;
        Ok
          (Ack
             (Printf.sprintf "deleted %d tuple(s) from %s"
                (List.length victims) base.bname))

let create_table t name columns boundaries =
  let key = fold name in
  if Hashtbl.mem t.views key then
    Error (Printf.sprintf "%S is a view" name)
  else if Hashtbl.mem t.bases key then
    Error (Printf.sprintf "relation %S already exists" name)
  else
    match Schema.of_pairs columns with
    | exception Invalid_argument msg -> Error ("invalid schema: " ^ msg)
    | schema -> (
        let dir = Filename.concat (ensure_data_dir t) key in
        match
          Storage.Partition.create ?split_threshold:t.split_threshold
            ~boundaries ~dir schema
        with
        | exception Invalid_argument msg ->
            Error ("CREATE TABLE failed: " ^ msg)
        | p ->
            Hashtbl.replace t.bases key
              {
                bname = name;
                schema;
                ids = Hashtbl.create 16;
                next_id = 0;
                cached = None;
                part = Some p;
              };
            Ok
              (Ack
                 (Printf.sprintf "table %s created: %d shard(s) in %s" name
                    (Storage.Partition.shard_count p)
                    dir)))

let show_partitions t =
  match partitions t with
  | [] -> Ok (Ack "no partitioned relations")
  | parts ->
      let buf = Buffer.create 256 in
      List.iter
        (fun (name, p) ->
          let module P = Storage.Partition in
          Buffer.add_string buf
            (Printf.sprintf
               "partition %s: %d shard(s), %d tuple(s), split threshold %d, \
                dir %s\n"
               name (P.shard_count p) (P.cardinality p) (P.split_threshold p)
               (P.dir p));
          List.iter
            (fun (i : P.shard_info) ->
              Buffer.add_string buf
                (Printf.sprintf
                   "  shard %d: %s  %s  %d tuple(s)  io: %dr/%dw/%dretry/%dbad\n"
                   i.P.si_index i.P.si_file
                   (Interval.to_string i.P.si_cover)
                   i.P.si_cardinality i.P.si_io.Storage.Io_stats.pages_read
                   i.P.si_io.Storage.Io_stats.pages_written
                   i.P.si_io.Storage.Io_stats.retries
                   i.P.si_io.Storage.Io_stats.corrupt_pages))
            (P.shard_infos p);
          let queries, scanned, pruned = P.pruning_totals p in
          Buffer.add_string buf
            (Printf.sprintf
               "  pruning: %d quer%s planned, %d shard(s) scanned, %d pruned%s\n"
               queries
               (if queries = 1 then "y" else "ies")
               scanned pruned
               (if scanned + pruned = 0 then ""
                else
                  Printf.sprintf " (%.1f%% pruned)"
                    (100.
                    *. float_of_int pruned
                    /. float_of_int (scanned + pruned)))))
        parts;
      Ok (Ack (String.trim (Buffer.contents buf)))

(* ---- queries ---- *)

let view_query_shape_ok (q : Ast.query) =
  q.Ast.select = [ Ast.Star ]
  && q.Ast.where = []
  && q.Ast.group_by = []
  && q.Ast.grouping = Ast.By_instant
  && q.Ast.using = None

let compute_view_rows t v window =
  match v.strategy with
  | Incremental incr ->
      let timelines =
        List.map (function Agg { view; _ } -> Live.View.snapshot view) incr.aggs
      in
      let zipped =
        Timeline.coalesce
          ~equal:(List.equal Value.equal)
          (Eval.zip_timelines timelines)
      in
      let clipped =
        match window with
        | None -> Some zipped
        | Some w -> Timeline.clip zipped w
      in
      let rows =
        match clipped with
        | None -> []
        | Some tl ->
            List.map
              (fun (iv, values) -> Tuple.make (Array.of_list values) iv)
              (Timeline.to_list tl)
      in
      Ok (Trel.create v.out_schema rows)
  | Recompute r ->
      let* () =
        if r.stale then begin
          let* plan =
            Semant.analyze ~adaptive:t.adaptive (catalog t) v.definition
          in
          let* rel = run_plan t plan in
          r.rel <- rel;
          r.stale <- false;
          t.stats.Live.Stats.rebuilds <- t.stats.Live.Stats.rebuilds + 1;
          Ok ()
        end
        else Ok ()
      in
      let rows =
        match window with
        | None -> Trel.tuples r.rel
        | Some w ->
            List.filter_map
              (fun tu ->
                Option.map (Tuple.with_valid tu)
                  (Interval.intersect (Tuple.valid tu) w))
              (Trel.tuples r.rel)
      in
      Ok (Trel.create (Trel.schema r.rel) rows)

let select_view t v (q : Ast.query) =
  if not (view_query_shape_ok q) then
    Error
      (Printf.sprintf
         "queries against view %S must be SELECT * FROM %s [DURING [a,b]]; \
          re-aggregating a view is not supported"
         v.vname v.vname)
  else
    let window = Option.map interval_of_window q.Ast.during in
    let cache_key = Ast.statement_to_string (Ast.Select q) in
    match Live.Cache.find t.cache cache_key with
    | Some rel -> Ok (Rows rel)
    | None ->
        let* rel = compute_view_rows t v window in
        Live.Cache.add t.cache ~key:cache_key ~scope:v.source
          ~interval:(Option.value window ~default:Interval.full)
          ~version:v.vversion rel;
        Ok (Rows rel)

let select ?memory_budget ?deadline_ms ?on_error t (q : Ast.query) =
  match Hashtbl.find_opt t.views (fold q.Ast.from) with
  | Some v -> select_view t v q
  | None ->
      let* plan = Semant.analyze ~adaptive:t.adaptive (catalog t) q in
      (if plan.Semant.shard_layout <> [] then
         match Hashtbl.find_opt t.bases (fold q.Ast.from) with
         | Some { part = Some p; _ } ->
             Storage.Partition.record_pruning p
               ~scanned:plan.Semant.scanned_shards
               ~pruned:plan.Semant.pruned_shards
         | _ -> ());
      (* A join's right side prunes against its own layout; credit its
         partition the same way. *)
      (match plan.Semant.join with
      | Some j when j.Semant.right_shard_layout <> [] -> (
          match Hashtbl.find_opt t.bases (fold j.Semant.right_name) with
          | Some { part = Some p; _ } ->
              Storage.Partition.record_pruning p
                ~scanned:j.Semant.right_scanned ~pruned:j.Semant.right_pruned
          | _ -> ())
      | _ -> ());
      (match plan.Semant.join with
      | Some j ->
          t.last_join <- Some (Join.Engine.strategy_to_string j.Semant.strategy)
      | None -> ());
      if memory_budget = None && deadline_ms = None && on_error = None then
        let* rel = run_plan t plan in
        Ok (Rows rel)
      else
        (* A caller-imposed budget (the network server's admission
           controller) routes the evaluation through the robust engine:
           blown budgets walk the fallback chain instead of failing, and
           the degradation count is surfaced via [last_degradations]. *)
        match
          Eval.query_robust ~adaptive:t.adaptive ?on_error ?memory_budget
            ?deadline_ms (catalog t) (Ast.to_string q)
        with
        | Ok { Eval.result; degradations } ->
            t.last_degradations <- List.length degradations;
            (* A degradation event in a join stage means the planned
               strategy was abandoned for the nested-loop retry; mark
               the recorded strategy so the slowlog can tell them
               apart. *)
            (match t.last_join with
            | Some chosen
              when List.exists
                     (fun d ->
                       String.length d.Tempagg.Engine.stage >= 5
                       && String.sub d.Tempagg.Engine.stage 0 5 = "join:")
                     degradations ->
                t.last_join <-
                  Some (chosen ^ " -> nested-loop-join (fallback)")
            | _ -> ());
            Ok (Rows result)
        | Error _ as e -> e

let explain_analyze t (q : Ast.query) =
  match Hashtbl.find_opt t.views (fold q.Ast.from) with
  | Some v ->
      Error
        (Printf.sprintf
           "EXPLAIN ANALYZE targets a base relation; %S is a view (its \
            answers come from a materialized timeline, not a fresh \
            evaluation)"
           v.vname)
  | None -> (
      match
        Eval.query_profiled ~adaptive:t.adaptive (catalog t) (Ast.to_string q)
      with
      | Ok { Eval.profile; _ } -> Ok (Ack (Obs.Profile.to_string profile))
      | Error _ as e -> e)

(* ANALYZE: one pass over the relation in physical order, feeding the
   streaming k estimator and the distinct-endpoint sketch; the exact
   k-ordered-percentage at the estimated k is affordable because the
   relation is already in memory.  Results land in the statistics store
   under the relation's name, replacing any previous analysis. *)
let analyze_relation t name =
  let key = fold name in
  if Hashtbl.mem t.views key then
    Error
      (Printf.sprintf
         "ANALYZE targets a base relation; %S is a view (its materialized \
          timeline is not what queries scan)"
         name)
  else
    match Hashtbl.find_opt t.bases key with
    | None -> Error (Printf.sprintf "unknown relation %S" name)
    | Some base ->
        let rel = materialize base in
        let est = Ordering.Korder.relation_estimator rel in
        let sketch = Obs.Stats.Distinct.sketch () in
        List.iter
          (fun tu ->
            let iv = Tuple.valid tu in
            Obs.Stats.Distinct.add sketch (Chronon.to_int (Interval.start iv));
            Obs.Stats.Distinct.add sketch (Chronon.to_int (Interval.stop iv)))
          (Trel.tuples rel);
        let k = Ordering.Korder.estimate est in
        let slack = Ordering.Korder.slack est in
        let percentage =
          if k = 0 then None
          else Some (Ordering.Korder.relation_percentage ~k rel)
        in
        let analysis =
          {
            Obs.Stats.an_cardinality = Trel.cardinality rel;
            an_k = k;
            an_slack = slack;
            an_percentage = percentage;
            an_time_ordered = k = 0;
            an_distinct_endpoints = Obs.Stats.Distinct.estimate sketch;
          }
        in
        Obs.Stats.set_analysis (Obs.Stats.store_get t.store key) analysis;
        (* A partitioned base additionally gets its shard boundaries
           re-derived from the endpoint sketch (equi-depth over the
           sampled instants) and one statistics entry per shard, so the
           planner and SHOW STATS see the post-ANALYZE layout. *)
        let repartition_note =
          match base.part with
          | None -> ""
          | Some _ when Trel.cardinality rel = 0 -> ""
          | Some p ->
              let starts =
                List.map
                  (fun tu -> Chronon.to_int (Interval.start (Tuple.valid tu)))
                  (Trel.tuples rel)
              in
              let lo = List.fold_left min max_int starts in
              let hi = List.fold_left max 0 starts in
              let shards =
                max
                  (Storage.Partition.shard_count p)
                  Tempagg.Optimizer.max_eval_shards
              in
              let boundaries =
                Storage.Partition.choose_boundaries ~shards ~lifespan:(lo, hi)
                  (Obs.Stats.Distinct.sample sketch)
              in
              Storage.Partition.repartition p boundaries;
              base.cached <- None;
              List.iter
                (fun (i : Storage.Partition.shard_info) ->
                  let tuples =
                    Storage.Partition.shard_tuples p i.Storage.Partition.si_index
                  in
                  let sest =
                    Ordering.Korder.estimator ~compare:Int.compare ()
                  in
                  let ssketch = Obs.Stats.Distinct.sketch () in
                  List.iter
                    (fun tu ->
                      let iv = Tuple.valid tu in
                      Ordering.Korder.observe sest
                        (Chronon.to_int (Interval.start iv));
                      Obs.Stats.Distinct.add ssketch
                        (Chronon.to_int (Interval.start iv));
                      Obs.Stats.Distinct.add ssketch
                        (Chronon.to_int (Interval.stop iv)))
                    tuples;
                  let sk = Ordering.Korder.estimate sest in
                  Obs.Stats.set_analysis
                    (Obs.Stats.store_get t.store
                       (Printf.sprintf "%s/shard-%d" key
                          i.Storage.Partition.si_index))
                    {
                      Obs.Stats.an_cardinality = List.length tuples;
                      an_k = sk;
                      an_slack = Ordering.Korder.slack sest;
                      an_percentage = None;
                      an_time_ordered = sk = 0;
                      an_distinct_endpoints =
                        Obs.Stats.Distinct.estimate ssketch;
                    })
                (Storage.Partition.shard_infos p);
              Printf.sprintf ", repartitioned into %d shard(s)"
                (Storage.Partition.shard_count p)
        in
        Ok
          (Ack
             (Printf.sprintf
                "analyzed %s: %d tuple(s), k<=%d%s%s, %s, ~%d distinct \
                 endpoint(s)%s"
                base.bname analysis.Obs.Stats.an_cardinality k
                (if slack > 0 then Printf.sprintf " (+%d merge slack)" slack
                 else "")
                (match percentage with
                | Some p -> Printf.sprintf " (%.1f%% of the k budget)" (100. *. p)
                | None -> "")
                (if k = 0 then "sorted by time" else "not time-ordered")
                analysis.Obs.Stats.an_distinct_endpoints repartition_note))

let show_stats t = Ok (Ack (Obs.Stats.store_to_string t.store))

let show_trace () = Ok (Ack (Obs.Recorder.trace_status ()))
let show_recorder () = Ok (Ack (Obs.Recorder.summary ()))

let set_introspection ?metrics ?slo t =
  (match metrics with Some f -> t.metrics_provider <- Some f | None -> ());
  match slo with Some f -> t.slo_provider <- Some f | None -> ()

let show_metrics t =
  match t.metrics_provider with
  | Some f -> Ok (Ack (f ()))
  | None -> Ok (Ack "no metrics registry attached to this session")

let show_slo t =
  match t.slo_provider with
  | Some f -> Ok (Ack (f ()))
  | None ->
      Ok (Ack "no SLO engine attached to this session (serve with --slo FILE)")

(* Swap a base relation's contents wholesale — how the server pushes a
   fresh scrape of the self-relations into every session.  Statistics
   and cached results tied to the old contents are invalidated;
   dependent views are rebuilt (incremental) or marked stale
   (recompute), since a replacement has no per-tuple delta. *)
let replace_base t name rel =
  let key = fold name in
  (match Hashtbl.find_opt t.bases key with
  | Some base when not (Schema.equal base.schema (Trel.schema rel)) ->
      invalid_arg
        (Printf.sprintf "Session.replace_base: schema of %S changed" name)
  | _ -> ());
  add_base t name rel;
  Obs.Stats.store_invalidate t.store key;
  ignore (Live.Cache.invalidate t.cache ~scope:key ~interval:Interval.full);
  Hashtbl.iter
    (fun _ v ->
      if String.equal v.source key then begin
        (match v.strategy with
        | Recompute r -> r.stale <- true
        | Incremental _ -> (
            let base = Hashtbl.find t.bases key in
            match
              Semant.analyze ~adaptive:t.adaptive (catalog t) v.definition
            with
            | Ok plan -> v.strategy <- Incremental (build_incremental t plan base)
            | Error _ ->
                v.strategy <-
                  Recompute { rel = Trel.create v.out_schema []; stale = true }));
        v.vversion <- v.vversion + 1
      end)
    t.views

let exec_statement ?memory_budget ?deadline_ms ?on_error t stmt =
  t.last_degradations <- 0;
  t.last_join <- None;
  match stmt with
  | Ast.Select q -> select ?memory_budget ?deadline_ms ?on_error t q
  | Ast.Explain_analyze q -> explain_analyze t q
  | Ast.Analyze name -> analyze_relation t name
  | Ast.Show_stats -> show_stats t
  | Ast.Create_view { name; definition } -> create_view t name definition
  | Ast.Refresh_view name -> refresh_view t name
  | Ast.Drop_view name -> drop_view t name
  | Ast.Insert_into { relation; values; window } ->
      insert_into t relation values window
  | Ast.Delete_from { relation; where } -> delete_from t relation where
  | Ast.Create_table { name; columns; boundaries } ->
      create_table t name columns boundaries
  | Ast.Show_partitions -> show_partitions t
  | Ast.Show_trace -> show_trace ()
  | Ast.Show_recorder -> show_recorder ()
  | Ast.Show_metrics -> show_metrics t
  | Ast.Show_slo -> show_slo t

let last_degradations t = t.last_degradations
let last_join t = t.last_join

let exec t text =
  let* stmt = Parser.parse_statement text in
  exec_statement t stmt
