type op_stats = {
  ops : int;
  errors : int;
  mean_us : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  max_us : float;
}

type report = {
  total : int;
  total_errors : int;
  elapsed_s : float;
  per_kind : (string * op_stats) list;
  session_stats : Live.Stats.t;
}

let kind_of = function
  | Ast.Select _ -> "select"
  | Ast.Create_view _ -> "create-view"
  | Ast.Refresh_view _ -> "refresh-view"
  | Ast.Drop_view _ -> "drop-view"
  | Ast.Insert_into _ -> "insert"
  | Ast.Delete_from _ -> "delete"

(* Kinds in a stable display order. *)
let kind_order =
  [ "select"; "insert"; "delete"; "create-view"; "refresh-view"; "drop-view" ]

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float ((p *. float_of_int (n - 1)) +. 0.5) in
    sorted.(min (n - 1) (max 0 idx))

let summarize samples errors =
  let sorted = Array.of_list samples in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let mean =
    if n = 0 then 0. else Array.fold_left ( +. ) 0. sorted /. float_of_int n
  in
  {
    ops = n;
    errors;
    mean_us = mean;
    p50_us = percentile sorted 0.5;
    p90_us = percentile sorted 0.9;
    p99_us = percentile sorted 0.99;
    max_us = (if n = 0 then 0. else sorted.(n - 1));
  }

let run ?(echo = false) ?(out = print_string) session statements =
  let samples : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let errors : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let bucket tbl zero k =
    match Hashtbl.find_opt tbl k with
    | Some r -> r
    | None ->
        let r = ref zero in
        Hashtbl.replace tbl k r;
        r
  in
  let started = Unix.gettimeofday () in
  List.iter
    (fun stmt ->
      let kind = kind_of stmt in
      let t0 = Unix.gettimeofday () in
      let result = Session.exec_statement session stmt in
      let dt_us = (Unix.gettimeofday () -. t0) *. 1e6 in
      let s = bucket samples [] kind in
      s := dt_us :: !s;
      match result with
      | Ok (Session.Rows rel) ->
          if echo then
            let text = Pretty.result_to_string rel in
            out
              (if String.length text > 0 && text.[String.length text - 1] = '\n'
               then text
               else text ^ "\n")
      | Ok (Session.Ack msg) -> if echo then out (msg ^ "\n")
      | Error msg ->
          incr (bucket errors 0 kind);
          out (Printf.sprintf "error: %s\n" msg))
    statements;
  let elapsed_s = Unix.gettimeofday () -. started in
  let kinds =
    let present = Hashtbl.fold (fun k _ acc -> k :: acc) samples [] in
    List.filter (fun k -> List.mem k present) kind_order
    @ List.filter (fun k -> not (List.mem k kind_order)) present
  in
  let per_kind =
    List.map
      (fun k ->
        let s = match Hashtbl.find_opt samples k with
          | Some r -> !r
          | None -> []
        in
        let e = match Hashtbl.find_opt errors k with
          | Some r -> !r
          | None -> 0
        in
        (k, summarize s e))
      kinds
  in
  {
    total = List.length statements;
    total_errors =
      Hashtbl.fold (fun _ r acc -> acc + !r) errors 0;
    elapsed_s;
    per_kind;
    session_stats = Session.stats session;
  }

let run_script ?echo ?out session text =
  match Parser.parse_script text with
  | Error msg -> Error msg
  | Ok statements -> Ok (run ?echo ?out session statements)

let report_to_string r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "serve: %d op(s) in %.3f s%s\n" r.total r.elapsed_s
       (if r.total_errors > 0 then
          Printf.sprintf " (%d error(s))" r.total_errors
        else ""));
  Buffer.add_string buf
    (Printf.sprintf "  %-14s %6s %6s %10s %10s %10s %10s %10s\n" "kind" "ops"
       "errs" "mean-us" "p50-us" "p90-us" "p99-us" "max-us");
  List.iter
    (fun (kind, s) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-14s %6d %6d %10.1f %10.1f %10.1f %10.1f %10.1f\n"
           kind s.ops s.errors s.mean_us s.p50_us s.p90_us s.p99_us s.max_us))
    r.per_kind;
  Buffer.add_string buf
    ("  live: " ^ Live.Stats.to_string r.session_stats ^ "\n");
  Buffer.contents buf
