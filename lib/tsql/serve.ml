type op_stats = {
  ops : int;
  errors : int;
  mean_us : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  max_us : float;
}

type report = {
  total : int;
  total_errors : int;
  elapsed_s : float;
  per_kind : (string * op_stats) list;
  session_stats : Live.Stats.t;
  metrics : Obs.Metrics.t;
  slowlog : Obs.Slowlog.t option;
}

let kind_of = function
  | Ast.Select _ -> "select"
  | Ast.Explain_analyze _ -> "explain-analyze"
  | Ast.Create_view _ -> "create-view"
  | Ast.Refresh_view _ -> "refresh-view"
  | Ast.Drop_view _ -> "drop-view"
  | Ast.Insert_into _ -> "insert"
  | Ast.Delete_from _ -> "delete"
  | Ast.Analyze _ -> "analyze"
  | Ast.Show_stats -> "show-stats"
  | Ast.Create_table _ -> "create-table"
  | Ast.Show_partitions -> "show-partitions"
  | Ast.Show_trace -> "show-trace"
  | Ast.Show_recorder -> "show-recorder"
  | Ast.Show_metrics -> "show-metrics"
  | Ast.Show_slo -> "show-slo"

(* Kinds in a stable display order. *)
let kind_order =
  [ "select"; "insert"; "delete"; "create-table"; "create-view";
    "refresh-view"; "drop-view"; "explain-analyze"; "analyze"; "show-stats";
    "show-partitions"; "show-trace"; "show-recorder"; "show-metrics";
    "show-slo" ]

(* Latencies live in per-kind log-bucketed histograms (gamma 1.05, a 5%
   relative error bound on percentiles) instead of raw sample arrays:
   count/mean/max stay exact, and the same histograms feed the registry's
   Prometheus exposition. *)
let stats_of_histogram h errors =
  {
    ops = Obs.Histogram.count h;
    errors;
    mean_us = Obs.Histogram.mean h;
    p50_us = Obs.Histogram.percentile h 0.5;
    p90_us = Obs.Histogram.percentile h 0.9;
    p99_us = Obs.Histogram.percentile h 0.99;
    max_us = Obs.Histogram.max_value h;
  }

let refresh_session_metrics registry session =
  Live.Stats.to_metrics registry (Session.stats session);
  Obs.Stats.store_to_metrics registry (Session.store session);
  Join.Telemetry.to_metrics registry;
  (* Partitioned-storage gauges, one set per partitioned relation.
     Registering the same (name, labels) pair on every refresh returns
     the existing gauge, so this is idempotent. *)
  List.iter
    (fun (name, p) ->
      let labels = [ ("relation", name) ] in
      Obs.Metrics.set_int
        (Obs.Metrics.gauge registry
           ~help:"Storage shards per partitioned relation" ~labels
           "tempagg_partition_shards")
        (Storage.Partition.shard_count p);
      let queries, scanned, pruned = Storage.Partition.pruning_totals p in
      Obs.Metrics.set_int
        (Obs.Metrics.gauge registry
           ~help:"Planned queries against the partitioned relation" ~labels
           "tempagg_partition_queries")
        queries;
      Obs.Metrics.set_int
        (Obs.Metrics.gauge registry
           ~help:"Shards scanned by planned queries" ~labels
           "tempagg_partition_shards_scanned")
        scanned;
      Obs.Metrics.set_int
        (Obs.Metrics.gauge registry
           ~help:"Shards pruned by planned queries" ~labels
           "tempagg_partition_shards_pruned")
        pruned;
      Obs.Metrics.set
        (Obs.Metrics.gauge registry
           ~help:
             "Fraction of candidate shards pruned across planned queries"
           ~labels "tempagg_partition_pruning_ratio")
        (if scanned + pruned = 0 then 0.
         else float_of_int pruned /. float_of_int (scanned + pruned)))
    (Session.partitions session)

(* A slow SELECT against a base relation is re-run under
   [Eval.query_profiled] to attach the full profile to its slowlog
   entry.  The re-run reads the same immutable snapshot the statement
   just read (the serve loop is single-threaded, and nothing ran in
   between), so it is safe; it does cost a second evaluation, which is
   the price of capturing attempt-level detail only for statements that
   already proved slow. *)
let slow_detail session stmt =
  match stmt with
  | Ast.Select q
    when not
           (List.exists
              (fun v -> String.lowercase_ascii v = String.lowercase_ascii q.Ast.from)
              (Session.view_names session)) -> (
      match Eval.query_profiled (Session.catalog session) (Ast.to_string q) with
      | Ok { Eval.profile; _ } -> Some (Obs.Profile.to_string profile)
      | Error _ -> None)
  | _ -> None

let run ?(echo = false) ?(out = print_string) ?metrics_every ?slowlog session
    statements =
  let registry = Obs.Metrics.create () in
  (* SHOW METRICS answers with this loop's registry, refreshed at
     execution time — safe here because the serve loop is
     single-threaded. *)
  Session.set_introspection
    ~metrics:(fun () ->
      refresh_session_metrics registry session;
      Obs.Metrics.expose registry)
    session;
  let latency kind =
    Obs.Metrics.histogram registry
      ~help:"Statement latency in microseconds, by statement kind"
      ~labels:[ ("kind", kind) ]
      "tempagg_serve_latency_us"
  in
  let errors kind =
    Obs.Metrics.counter registry ~help:"Failed statements by kind"
      ~labels:[ ("kind", kind) ]
      "tempagg_serve_errors_total"
  in
  let seen_kinds = ref [] in
  let note_kind k =
    if not (List.mem k !seen_kinds) then seen_kinds := k :: !seen_kinds
  in
  (* Latencies and total elapsed time come from the monotonized clock
     shared with [Obs.Trace], not the wall clock, so reports survive
     clock steps and NTP adjustments mid-run. *)
  let started_us = Obs.Trace.now_us () in
  let executed = ref 0 in
  List.iter
    (fun stmt ->
      let kind = kind_of stmt in
      note_kind kind;
      let spans_before =
        if Obs.Trace.is_armed () then List.length (Obs.Trace.spans ()) else 0
      in
      let t0_us = Obs.Trace.now_us () in
      let result = Session.exec_statement session stmt in
      let dt_us = float_of_int (Obs.Trace.now_us () - t0_us) in
      Obs.Histogram.observe (latency kind) dt_us;
      (match slowlog with
      | Some log when dt_us /. 1000. >= Obs.Slowlog.threshold_ms log ->
          let span_labels =
            if Obs.Trace.is_armed () then
              List.filteri
                (fun i _ -> i >= spans_before)
                (Obs.Trace.spans ())
              |> List.map (fun (sp : Obs.Trace.span) -> sp.Obs.Trace.label)
            else []
          in
          let detail =
            if Result.is_ok result then slow_detail session stmt else None
          in
          ignore
            (Obs.Slowlog.observe log ~kind
               ~statement:(Ast.statement_to_string stmt)
               ~elapsed_ms:(dt_us /. 1000.) ?detail ~span_labels
               ?join:(Session.last_join session) ())
      | _ -> ());
      (match result with
      | Ok (Session.Rows rel) ->
          if echo then
            let text = Pretty.result_to_string rel in
            out
              (if String.length text > 0 && text.[String.length text - 1] = '\n'
               then text
               else text ^ "\n")
      | Ok (Session.Ack msg) -> if echo then out (msg ^ "\n")
      | Error msg ->
          Obs.Metrics.inc (errors kind);
          out (Printf.sprintf "error: %s\n" msg));
      incr executed;
      match metrics_every with
      | Some every when every > 0 && !executed mod every = 0 ->
          refresh_session_metrics registry session;
          out
            (Printf.sprintf "-- metrics after %d statement(s) --\n%s" !executed
               (Obs.Metrics.expose registry))
      | _ -> ())
    statements;
  let elapsed_s = float_of_int (Obs.Trace.now_us () - started_us) /. 1e6 in
  refresh_session_metrics registry session;
  let present = List.rev !seen_kinds in
  let kinds =
    List.filter (fun k -> List.mem k present) kind_order
    @ List.filter (fun k -> not (List.mem k kind_order)) present
  in
  let per_kind =
    List.map
      (fun k ->
        ( k,
          stats_of_histogram (latency k)
            (int_of_float (Obs.Metrics.counter_value (errors k))) ))
      kinds
  in
  {
    total = List.length statements;
    total_errors =
      List.fold_left
        (fun acc k -> acc + int_of_float (Obs.Metrics.counter_value (errors k)))
        0 kinds;
    elapsed_s;
    per_kind;
    session_stats = Session.stats session;
    metrics = registry;
    slowlog;
  }

let run_script ?echo ?out ?metrics_every ?slowlog session text =
  match Parser.parse_script text with
  | Error msg -> Error msg
  | Ok statements ->
      Ok (run ?echo ?out ?metrics_every ?slowlog session statements)

let report_to_string r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "serve: %d op(s) in %.3f s%s\n" r.total r.elapsed_s
       (if r.total_errors > 0 then
          Printf.sprintf " (%d error(s))" r.total_errors
        else ""));
  Buffer.add_string buf
    (Printf.sprintf "  %-14s %6s %6s %10s %10s %10s %10s %10s\n" "kind" "ops"
       "errs" "mean-us" "p50-us" "p90-us" "p99-us" "max-us");
  List.iter
    (fun (kind, s) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-14s %6d %6d %10.1f %10.1f %10.1f %10.1f %10.1f\n"
           kind s.ops s.errors s.mean_us s.p50_us s.p90_us s.p99_us s.max_us))
    r.per_kind;
  Buffer.add_string buf
    ("  live: " ^ Live.Stats.to_string r.session_stats ^ "\n");
  (match r.slowlog with
  | None -> ()
  | Some log ->
      Buffer.add_string buf
        (match Obs.Slowlog.worst log with
        | None ->
            Printf.sprintf "  slowlog: 0 hit(s) at >= %.1f ms\n"
              (Obs.Slowlog.threshold_ms log)
        | Some w ->
            Printf.sprintf
              "  slowlog: %d hit(s) at >= %.1f ms; worst: %s (%.3f ms%s)\n"
              (Obs.Slowlog.hits log)
              (Obs.Slowlog.threshold_ms log)
              w.Obs.Slowlog.statement w.Obs.Slowlog.elapsed_ms
              (match List.assoc_opt w.Obs.Slowlog.kind r.per_kind with
              | Some s -> Printf.sprintf ", %s p99 %.1f us" w.Obs.Slowlog.kind s.p99_us
              | None -> "")));
  Buffer.contents buf
