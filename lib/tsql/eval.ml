open Temporal
open Relation

(* One (interval, value) pair per tuple relevant to this aggregate:
   COUNT( * ) consumes every tuple; column aggregates skip SQL NULLs. *)
let data_for tuples (spec : Semant.agg_spec) =
  match spec.Semant.column with
  | None -> List.to_seq (List.map (fun t -> (Tuple.valid t, Value.Null)) tuples)
  | Some i ->
      List.to_seq tuples
      |> Seq.filter_map (fun t ->
             let v = Tuple.value t i in
             if Value.is_null v then None else Some (Tuple.valid t, v))

(* Mutable context for one robust query run: the budgets to enforce and
   the degradation events accumulated across every per-aggregate,
   per-group engine evaluation. *)
type robust_ctx = {
  memory_budget : int option;
  deadline_ms : float option;
  mutable events : Tempagg.Engine.degradation list;
  profile : Obs.Profile.t option;
}

(* Carries a structured engine error out of the evaluation loops;
   intercepted in [query_robust], never escapes this module. *)
exception Robust_error of Tempagg.Engine.error

let run_engine ?robust ?shard_offsets (plan : Semant.plan) monoid data =
  let origin, horizon =
    match plan.Semant.window with
    | Some w -> (Interval.start w, Interval.stop w)
    | None -> (Chronon.origin, Chronon.forever)
  in
  match robust with
  | None -> (
      match plan.Semant.granule with
      | Some granule ->
          Tempagg.Span.eval ~origin ~horizon ~algorithm:plan.Semant.algorithm
            ~granule monoid data
      | None ->
          Tempagg.Engine.eval ~origin ~horizon ?shard_offsets
            plan.Semant.algorithm monoid data)
  | Some ctx -> (
      let result =
        match plan.Semant.granule with
        | Some granule ->
            Tempagg.Span.eval_robust ~origin ~horizon
              ~algorithm:plan.Semant.algorithm ~on_error:plan.Semant.on_error
              ?memory_budget:ctx.memory_budget ?deadline_ms:ctx.deadline_ms
              ?profile:ctx.profile ~granule monoid data
        | None ->
            Tempagg.Engine.eval_robust ~origin ~horizon
              ~on_error:plan.Semant.on_error
              ?memory_budget:ctx.memory_budget ?deadline_ms:ctx.deadline_ms
              ?profile:ctx.profile ?shard_offsets plan.Semant.algorithm monoid
              data
      in
      match result with
      | Ok (timeline, degradations) ->
          ctx.events <- ctx.events @ degradations;
          timeline
      | Error e -> raise (Robust_error e))

let int_value n = Value.Int n

let option_value = function None -> Value.Null | Some v -> v

type value_monoid =
  | Value_monoid : (Value.t, 's, Value.t) Tempagg.Monoid.t -> value_monoid

let monoid_of_spec (spec : Semant.agg_spec) =
  let module M = Tempagg.Monoid in
  match (spec.Semant.fn, spec.Semant.column_ty) with
  | Ast.Count, _ -> Value_monoid (M.map_output int_value M.count)
  | Ast.Sum, Some Value.Tfloat ->
      Value_monoid
        (M.contramap
           (fun v -> Option.value (Value.to_float v) ~default:0.)
           M.sum_float
        |> M.map_output (fun f -> Value.Float f))
  | Ast.Sum, _ ->
      Value_monoid
        (M.contramap (fun v -> Option.value (Value.to_int v) ~default:0)
           M.sum_int
        |> M.map_output int_value)
  | Ast.Avg, _ ->
      Value_monoid
        (M.contramap
           (fun v -> Option.value (Value.to_float v) ~default:0.)
           M.avg_float
        |> M.map_output (function
             | None -> Value.Null
             | Some f -> Value.Float f))
  | Ast.Min, _ ->
      Value_monoid (M.map_output option_value (M.minimum ~compare:Value.compare))
  | Ast.Max, _ ->
      Value_monoid (M.map_output option_value (M.maximum ~compare:Value.compare))

(* Merge per-storage-shard stream sizes into at most [target] evaluation
   shards of roughly equal tuple count, as cut offsets into the
   concatenated stream ([0; ...; total]).  Adjacent storage shards stay
   adjacent, so each evaluation shard still covers a contiguous slice. *)
let group_offsets ~target sizes =
  let total = List.fold_left ( + ) 0 sizes in
  let per = Stdlib.max 1 ((total + Stdlib.max 1 target - 1) / Stdlib.max 1 target) in
  let cuts = ref [] in
  let pos = ref 0 in
  let last = ref 0 in
  List.iter
    (fun s ->
      pos := !pos + s;
      if !pos - !last >= per && !pos < total then begin
        cuts := !pos :: !cuts;
        last := !pos
      end)
    sizes;
  Array.of_list ((0 :: List.rev !cuts) @ [ total ])

let agg_timeline ?robust ?shard_blocks plan tuples (spec : Semant.agg_spec) =
  (* A partitioned plan under a Parallel algorithm evaluates each
     storage shard's slice in its own evaluation shard: the per-shard
     streams (after this aggregate's NULL filtering) give the explicit
     offsets [Engine.eval] pins the parallel split to.  DISTINCT
     re-sorts by value and span grouping goes through [Span.eval], so
     both keep the unpinned path. *)
  let sharded =
    match (shard_blocks, plan.Semant.algorithm, plan.Semant.granule) with
    | Some blocks, Tempagg.Engine.Parallel { domains; _ }, None
      when not spec.Semant.distinct ->
        Some (blocks, domains)
    | _ -> None
  in
  let data, shard_offsets =
    match sharded with
    | Some (blocks, domains) ->
        let data_blocks =
          List.map (fun b -> List.of_seq (data_for b spec)) blocks
        in
        ( List.to_seq (List.concat data_blocks),
          Some
            (group_offsets ~target:domains
               (List.map List.length data_blocks)) )
    | None -> (data_for tuples spec, None)
  in
  let data =
    (* Duplicate elimination happens before the relation is processed
       (paper Section 7); the prepared stream is value-ordered. *)
    if spec.Semant.distinct then
      List.to_seq (Tempagg.Distinct.prepare ~compare:Value.compare data)
    else data
  in
  (* The value-ordered distinct stream is no longer k-ordered, even
     inside a parallel shard (contiguous sharding preserves input order,
     but the distinct preparation re-sorts by value first). *)
  let rec needs_time_order = function
    | Tempagg.Engine.Korder_tree _ -> true
    | Tempagg.Engine.Parallel { inner; _ } -> needs_time_order inner
    | _ -> false
  in
  let rec without_korder = function
    | Tempagg.Engine.Korder_tree _ -> Tempagg.Engine.Aggregation_tree
    | Tempagg.Engine.Parallel { domains; inner } ->
        Tempagg.Engine.Parallel { domains; inner = without_korder inner }
    | a -> a
  in
  let plan =
    if spec.Semant.distinct && needs_time_order plan.Semant.algorithm then
      { plan with Semant.algorithm = without_korder plan.Semant.algorithm }
    else plan
  in
  match monoid_of_spec spec with
  | Value_monoid monoid -> run_engine ?robust ?shard_offsets plan monoid data

(* Pair up the per-aggregate timelines into one timeline of value lists.
   All of them cover the full [origin,horizon], so refine never fails. *)
let zip_timelines = function
  | [] -> assert false
  | first :: rest ->
      List.fold_left
        (fun acc tl -> Timeline.map (fun (l, v) -> l @ [ v ]) (Timeline.refine acc tl))
        (Timeline.map (fun v -> [ v ]) first)
        rest

(* Restrict a timeline to the segments intersecting [hull], trimming the
   first and last. *)
let clip_to hull tl =
  let segments =
    List.filter_map
      (fun (ivl, v) ->
        Option.map (fun i -> (i, v)) (Interval.intersect ivl hull))
      (Timeline.to_list tl)
  in
  match segments with [] -> None | _ -> Some (Timeline.of_list segments)

let clip_tuple w t =
  Option.map
    (fun clipped -> Tuple.with_valid t clipped)
    (Interval.intersect (Tuple.valid t) w)

(* Split the first [n] elements off a list. *)
let rec take n acc rest =
  if n = 0 then (List.rev acc, rest)
  else
    match rest with
    | [] -> (List.rev acc, [])
    | x :: tl -> take (n - 1) (x :: acc) tl

(* Materialize one join side: walk its shard layout block by block,
   skipping shards whose span misses the window wholesale, and clip
   every kept tuple to the window.  No WHERE filtering here — a join
   query's WHERE is compiled against the combined schema and runs on
   the joined stream. *)
let side_tuples ~window ~layout relation =
  let all = Trel.tuples relation in
  match (layout : (Interval.t * int) list) with
  | [] -> (
      match window with
      | None -> all
      | Some w -> List.filter_map (clip_tuple w) all)
  | layout ->
      let rec split tuples = function
        | [] -> []
        | (span, count) :: rest ->
            let block, tail = take count [] tuples in
            let kept =
              match window with
              | Some w when not (Interval.overlaps span w) -> []
              | Some w -> List.filter_map (clip_tuple w) block
              | None -> block
            in
            kept :: split tail rest
      in
      List.concat (split all layout)

(* Execute the plan's interval join: materialize both sides (each
   pruned by its own shard layout and clipped to the window), pair
   them under the ON predicate with the planned strategy, and build
   the joined tuples — left values then right values, valid time from
   {!Join.Predicate.result_interval}.

   The robust path runs the join under one Guard spanning both
   attempts (a retry does not restart the deadline clock, matching
   [Engine.eval_robust]); the sweep's active-map slots are metered
   through an Instrument, so a sweep that blows the memory budget
   retries as the nested loop — which keeps no per-tuple state — when
   the recovery policy allows, recorded as a degradation and counted
   by {!Join.Telemetry}. *)
let joined_tuples ?robust (plan : Semant.plan) (j : Semant.join_spec) =
  let left =
    Array.of_list
      (side_tuples ~window:plan.Semant.window ~layout:plan.Semant.shard_layout
         plan.Semant.relation)
  and right =
    Array.of_list
      (side_tuples ~window:plan.Semant.window
         ~layout:j.Semant.right_shard_layout j.Semant.right_relation)
  in
  let livs = Array.map Tuple.valid left
  and rivs = Array.map Tuple.valid right in
  let pairs = ref [] in
  let npairs = ref 0 in
  let execute ?guard ?instrument strategy =
    pairs := [];
    npairs := 0;
    Join.Engine.run ?guard ?instrument strategy j.Semant.predicate ~left:livs
      ~right:rivs (fun l r ->
        pairs := (l, r) :: !pairs;
        incr npairs)
  in
  let span_label s = "join:" ^ Join.Engine.strategy_to_string s in
  let used =
    match robust with
    | None ->
        Obs.Trace.with_span (span_label j.Semant.strategy) (fun () ->
            execute j.Semant.strategy);
        j.Semant.strategy
    | Some ctx ->
        let run_join () =
          let guard =
            Tempagg.Guard.create ?memory_budget:ctx.memory_budget
              ?deadline_ms:ctx.deadline_ms ()
          in
          let attempt strategy =
            let instrument = Tempagg.Instrument.create () in
            Tempagg.Guard.attach guard instrument;
            Obs.Trace.with_span (span_label strategy) (fun () ->
                execute ~guard ~instrument strategy)
          in
          try
            attempt j.Semant.strategy;
            j.Semant.strategy
          with
          | Tempagg.Guard.Deadline_exceeded { deadline_ms; elapsed_ms } ->
              raise
                (Robust_error
                   (Tempagg.Engine.Deadline_exhausted { deadline_ms; elapsed_ms }))
          | Tempagg.Guard.Budget_exceeded { budget_bytes; used_bytes } as e -> (
              match (plan.Semant.on_error, j.Semant.strategy) with
              | (Tempagg.Engine.Fallback | Tempagg.Engine.Skip), Join.Engine.Sweep
                -> (
                  let d =
                    {
                      Tempagg.Engine.stage = span_label Join.Engine.Sweep;
                      reason =
                        Option.value (Tempagg.Guard.describe e)
                          ~default:"memory budget exceeded";
                      action = "retried as nested-loop-join (no live state)";
                    }
                  in
                  ctx.events <- ctx.events @ [ d ];
                  Option.iter
                    (fun p ->
                      Obs.Profile.note_degradation p
                        (Tempagg.Engine.degradation_to_string d))
                    ctx.profile;
                  Join.Telemetry.record_fallback ();
                  (* Same guard: the deadline keeps counting across the
                     retry; the nested loop allocates nothing, so the
                     budget cannot trip again. *)
                  try
                    Obs.Trace.with_span (span_label Join.Engine.Nested_loop)
                      (fun () -> execute ~guard Join.Engine.Nested_loop);
                    Join.Engine.Nested_loop
                  with
                  | Tempagg.Guard.Deadline_exceeded { deadline_ms; elapsed_ms }
                    ->
                      raise
                        (Robust_error
                           (Tempagg.Engine.Deadline_exhausted
                              { deadline_ms; elapsed_ms })))
              | _ ->
                  raise
                    (Robust_error
                       (Tempagg.Engine.Budget_exhausted
                          { budget_bytes; used_bytes })))
        in
        (match ctx.profile with
        | Some p -> Obs.Profile.time_phase p "join" run_join
        | None -> run_join ())
  in
  Join.Telemetry.record ~strategy:used ~pairs:!npairs;
  List.rev_map
    (fun (l, r) ->
      Tuple.make
        (Array.append (Tuple.values left.(l)) (Tuple.values right.(r)))
        (Join.Predicate.result_interval j.Semant.predicate livs.(l) rivs.(r)))
    !pairs

let partitions (plan : Semant.plan) tuples =
  match plan.Semant.group_columns with
  | [] -> [ ([], tuples) ]
  | cols ->
      let groups = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun t ->
          let key = List.map (fun (_, i) -> Tuple.value t i) cols in
          (match Hashtbl.find_opt groups key with
          | None ->
              order := key :: !order;
              Hashtbl.add groups key [ t ]
          | Some ts -> Hashtbl.replace groups key (t :: ts)))
        tuples;
      List.sort
        (fun (a, _) (b, _) -> List.compare Value.compare a b)
        (List.map
           (fun key -> (key, List.rev (Hashtbl.find groups key)))
           !order)

let run_aux ?robust (plan : Semant.plan) =
  (* Partitioned relation: the physical tuple list is the shards
     concatenated in order, so walk it block by block.  A shard whose
     time span misses the DURING window is skipped wholesale — its
     tuples are never filtered, clipped or even looked at, which is
     where partition pruning actually saves work on the batch path.
     A join query does its own per-side pruning in [joined_tuples]. *)
  let blocks =
    match (plan.Semant.join, plan.Semant.shard_layout) with
    | Some _, _ | None, [] -> None
    | None, layout ->
        let rec split tuples = function
          | [] -> []
          | (span, count) :: rest ->
              let block, tail = take count [] tuples in
              let kept =
                match plan.Semant.window with
                | Some w when not (Interval.overlaps span w) -> []
                | Some w ->
                    List.filter_map
                      (fun t ->
                        if plan.Semant.filter t then clip_tuple w t else None)
                      block
                | None -> List.filter plan.Semant.filter block
              in
              kept :: split tail rest
        in
        Some (split (Trel.tuples plan.Semant.relation) layout)
  in
  let tuples =
    match (plan.Semant.join, blocks) with
    | Some j, _ ->
        (* The joined stream is already windowed per side; WHERE runs
           on the combined tuples. *)
        List.filter plan.Semant.filter (joined_tuples ?robust plan j)
    | None, Some bs -> List.concat bs
    | None, None ->
        let tuples =
          List.filter plan.Semant.filter (Trel.tuples plan.Semant.relation)
        in
        (* DURING window: keep only the overlapping part of each tuple. *)
        (match plan.Semant.window with
        | None -> tuples
        | Some w -> List.filter_map (clip_tuple w) tuples)
  in
  let tuples =
    if plan.Semant.sort_first then
      List.stable_sort Tuple.compare_by_time tuples
    else tuples
  in
  (* Shard blocks stay usable as evaluation-shard boundaries only while
     the concatenation order is untouched: a pre-sort reorders across
     blocks, and grouping partitions the tuples by value. *)
  let shard_blocks =
    match blocks with
    | Some bs
      when plan.Semant.group_columns = [] && not plan.Semant.sort_first ->
        Some bs
    | _ -> None
  in
  let grouped = plan.Semant.group_columns <> [] in
  let rows =
    List.concat_map
      (fun (key, group_tuples) ->
        let timelines =
          List.map (agg_timeline ?robust ?shard_blocks plan group_tuples)
            plan.Semant.aggregates
        in
        let zipped =
          Timeline.coalesce
            ~equal:(List.equal Value.equal)
            (zip_timelines timelines)
        in
        let clipped =
          if grouped then
            let hull =
              List.fold_left
                (fun acc t ->
                  match acc with
                  | None -> Some (Tuple.valid t)
                  | Some h -> Some (Interval.hull h (Tuple.valid t)))
                None group_tuples
            in
            match hull with
            | None -> None
            | Some h -> clip_to h zipped
          else Some zipped
        in
        match clipped with
        | None -> []
        | Some tl ->
            List.map
              (fun (ivl, values) ->
                Tuple.make (Array.of_list (key @ values)) ivl)
              (Timeline.to_list tl))
      (partitions plan tuples)
  in
  Trel.create plan.Semant.out_schema rows

let run plan = run_aux plan

let ( let* ) = Result.bind

(* Command-line overrides: --algorithm replaces the planned algorithm
   outright; --domains N (N > 1) wraps whatever was chosen in a parallel
   divide-and-conquer over N OCaml domains; --on-error replaces the
   recovery policy; --join-strategy pins the interval-join strategy
   (ignored for join-free queries). *)
let apply_overrides ?algorithm ?domains ?on_error ?join_strategy plan =
  let plan =
    match on_error with
    | None -> plan
    | Some p -> { plan with Semant.on_error = p }
  in
  let plan =
    match (join_strategy, plan.Semant.join) with
    | Some s, Some j ->
        {
          plan with
          Semant.join =
            Some
              {
                j with
                Semant.strategy = s;
                join_rationale =
                  Printf.sprintf "--join-strategy override: %s"
                    (Join.Engine.strategy_to_string s);
                join_stats_source = "--join-strategy override";
              };
        }
    | _ -> plan
  in
  let plan =
    match algorithm with
    | None -> plan
    | Some a ->
        {
          plan with
          Semant.algorithm = a;
          rationale =
            Printf.sprintf "--algorithm override: %s" (Tempagg.Engine.name a);
          stats_source = "--algorithm override";
        }
  in
  match domains with
  | Some d when d > 1 ->
      {
        plan with
        Semant.algorithm =
          Tempagg.Engine.Parallel { domains = d; inner = plan.Semant.algorithm };
        rationale =
          plan.Semant.rationale
          ^ Printf.sprintf "; sharded across %d domains (--domains)" d;
      }
  | _ -> plan

(* Harvest one outcome record into the statistics store after a
   successful run: what ran, how long it took, and — only when the plan
   was a plain scan of the relation — what the run proved about the
   relation itself.  A k-ordered tree completing without an order
   violation proves the evaluated stream k-ordered; that transfers to
   the relation only when the stream was the relation (bare tree, not a
   parallel shard whose per-shard success says nothing globally) and
   every aggregate consumed every tuple (a column aggregate skips SQL
   NULLs, and a subsequence can be *worse*-ordered than its source). *)
let record_outcome ?profile catalog (plan : Semant.plan) ~elapsed_ms
    ~degradations result =
  let bare_korder = function
    | Tempagg.Engine.Korder_tree { k } -> Some k
    | _ -> None
  in
  let full_streams =
    List.for_all
      (fun (s : Semant.agg_spec) -> s.Semant.column = None)
      plan.Semant.aggregates
  in
  let k_observed =
    if plan.Semant.plain_scan && degradations = 0 && full_streams then
      bare_korder plan.Semant.algorithm
    else None
  in
  let segments =
    if plan.Semant.plain_scan then Some (Trel.cardinality result) else None
  in
  Obs.Stats.record
    (Catalog.stats catalog plan.Semant.source_name)
    {
      Obs.Stats.cardinality = Trel.cardinality plan.Semant.relation;
      algorithm = Tempagg.Engine.name plan.Semant.algorithm;
      elapsed_ms;
      peak_bytes =
        (match profile with Some p -> Obs.Profile.peak_bytes p | None -> 0);
      k_observed;
      segments;
      degradations;
    }

let query ?(adaptive = true) ?algorithm ?domains ?join_strategy catalog text =
  let t0 = Unix.gettimeofday () in
  let* ast = Parser.parse text in
  let* plan = Semant.analyze ~adaptive catalog ast in
  let plan = apply_overrides ?algorithm ?domains ?join_strategy plan in
  match run plan with
  | rel ->
      record_outcome catalog plan
        ~elapsed_ms:((Unix.gettimeofday () -. t0) *. 1000.)
        ~degradations:0 rel;
      Ok rel
  | exception Invalid_argument msg -> Error ("evaluation failed: " ^ msg)
  | exception Tempagg.Korder_tree.Order_violation { position; _ } ->
      Error
        (Printf.sprintf
           "evaluation failed: input not k-ordered for the hinted k (tuple \
            %d); sort the relation or raise k"
           position)

type robust_report = {
  result : Trel.t;
  degradations : Tempagg.Engine.degradation list;
}

let query_robust ?(adaptive = true) ?algorithm ?domains ?on_error
    ?join_strategy ?memory_budget ?deadline_ms catalog text =
  let t0 = Unix.gettimeofday () in
  let* ast = Parser.parse text in
  let* plan = Semant.analyze ~adaptive catalog ast in
  let plan = apply_overrides ?algorithm ?domains ?on_error ?join_strategy plan in
  let ctx = { memory_budget; deadline_ms; events = []; profile = None } in
  match run_aux ~robust:ctx plan with
  | rel ->
      record_outcome catalog plan
        ~elapsed_ms:((Unix.gettimeofday () -. t0) *. 1000.)
        ~degradations:(List.length ctx.events)
        rel;
      Ok { result = rel; degradations = ctx.events }
  | exception Robust_error e ->
      Error ("evaluation failed: " ^ Tempagg.Engine.error_to_string e)
  | exception Invalid_argument msg -> Error ("evaluation failed: " ^ msg)

type profiled_report = {
  result : Trel.t;
  profile : Obs.Profile.t;
  degradations : Tempagg.Engine.degradation list;
}

let query_profiled ?(adaptive = true) ?algorithm ?domains ?on_error
    ?join_strategy ?memory_budget ?deadline_ms catalog text =
  let profile = Obs.Profile.create () in
  let t0 = Unix.gettimeofday () in
  let* ast = Parser.parse text in
  let* plan = Semant.analyze ~adaptive catalog ast in
  let plan = apply_overrides ?algorithm ?domains ?on_error ?join_strategy plan in
  Obs.Profile.set_query profile (Ast.to_string ast);
  Obs.Profile.set_plan profile
    ~algorithm:(Tempagg.Engine.name plan.Semant.algorithm)
    ~rationale:plan.Semant.rationale;
  Obs.Profile.set_stats_source profile plan.Semant.stats_source;
  Option.iter
    (fun (j : Semant.join_spec) ->
      Obs.Profile.set_join profile
        ~strategy:(Join.Engine.strategy_to_string j.Semant.strategy)
        ~rationale:j.Semant.join_rationale
        ~stats_source:j.Semant.join_stats_source)
    plan.Semant.join;
  (* The k the optimizer (or an override) settled on, when a k-ordered
     tree is anywhere in the plan. *)
  let rec k_of = function
    | Tempagg.Engine.Korder_tree { k } -> Some k
    | Tempagg.Engine.Parallel { inner; _ } -> k_of inner
    | _ -> None
  in
  Option.iter (Obs.Profile.set_k_estimate profile) (k_of plan.Semant.algorithm);
  Obs.Profile.add_phase profile "parse+analyze"
    ((Unix.gettimeofday () -. t0) *. 1000.);
  let ctx =
    { memory_budget; deadline_ms; events = []; profile = Some profile }
  in
  match run_aux ~robust:ctx plan with
  | rel ->
      Obs.Profile.set_segments profile (Trel.cardinality rel);
      let total_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      Obs.Profile.set_total_ms profile total_ms;
      record_outcome ~profile catalog plan ~elapsed_ms:total_ms
        ~degradations:(List.length ctx.events)
        rel;
      Ok { result = rel; profile; degradations = ctx.events }
  | exception Robust_error e ->
      Error ("evaluation failed: " ^ Tempagg.Engine.error_to_string e)
  | exception Invalid_argument msg -> Error ("evaluation failed: " ^ msg)

let explain ?(adaptive = true) ?algorithm ?domains ?on_error ?join_strategy
    catalog text =
  let* ast = Parser.parse text in
  let* plan = Semant.analyze ~adaptive catalog ast in
  let plan = apply_overrides ?algorithm ?domains ?on_error ?join_strategy plan in
  let join_scan =
    match plan.Semant.join with
    | None -> ""
    | Some j ->
        Printf.sprintf "; %s %s (%d tuples)%s on vt %s vt"
          (Join.Engine.strategy_to_string j.Semant.strategy)
          j.Semant.right_name
          (Trel.cardinality j.Semant.right_relation)
          (match j.Semant.right_shard_layout with
          | [] -> ""
          | layout ->
              Printf.sprintf " [%d shard(s): %d scanned, %d pruned]"
                (List.length layout) j.Semant.right_scanned
                j.Semant.right_pruned)
          (Join.Predicate.to_string j.Semant.predicate)
  in
  let join_why =
    match plan.Semant.join with
    | None -> ""
    | Some j ->
        Printf.sprintf "\n  join why: %s\n  join stats: %s"
          j.Semant.join_rationale j.Semant.join_stats_source
  in
  let grouping =
    match plan.Semant.granule with
    | None -> "by instant"
    | Some g ->
        Printf.sprintf "by span of %d instants"
          (g : Granule.t).Granule.length
  in
  Ok
    (Printf.sprintf
       "scan %s (%d tuples)%s%s%s; aggregate %s grouped %s%s using %s%s\n\
       \  why: %s"
       plan.Semant.source_name
       (Trel.cardinality plan.Semant.relation)
       ((match plan.Semant.window with
        | Some w -> Printf.sprintf " during %s" (Interval.to_string w)
        | None -> "")
       ^
       match plan.Semant.shard_layout with
       | [] -> ""
       | layout ->
           Printf.sprintf " [%d shard(s): %d scanned, %d pruned]"
             (List.length layout) plan.Semant.scanned_shards
             plan.Semant.pruned_shards)
       join_scan
       (if plan.Semant.sort_first then ", sort by time" else "")
       (String.concat ", "
          (List.map
             (fun (s : Semant.agg_spec) -> s.Semant.out_name)
             plan.Semant.aggregates))
       grouping
       (match plan.Semant.group_columns with
       | [] -> ""
       | cols ->
           Printf.sprintf " and by (%s)"
             (String.concat ", " (List.map fst cols)))
       (Tempagg.Engine.name plan.Semant.algorithm)
       (match plan.Semant.on_error with
       | Tempagg.Engine.Fail -> ""
       | p ->
           Printf.sprintf " (on error: %s)"
             (Tempagg.Engine.on_error_to_string p))
       plan.Semant.rationale
     ^ join_why
     ^ Printf.sprintf "\n  stats: %s" plan.Semant.stats_source)
