type 'a t = (Interval.t * 'a) array
(* Array representation keeps [value_at] a binary search and avoids
   re-validating the contiguity invariant on every traversal. *)

let check_contiguous ~what segs =
  let n = Array.length segs in
  if n = 0 then invalid_arg (what ^ ": empty timeline");
  for i = 0 to n - 2 do
    let prev, _ = segs.(i) and next, _ = segs.(i + 1) in
    let expected =
      if Chronon.is_finite (Interval.stop prev) then
        Chronon.succ (Interval.stop prev)
      else invalid_arg (what ^ ": segment after an infinite segment")
    in
    if not (Chronon.equal (Interval.start next) expected) then
      invalid_arg
        (Printf.sprintf "%s: gap or overlap between %s and %s" what
           (Interval.to_string prev) (Interval.to_string next))
  done

let of_list l =
  let segs = Array.of_list l in
  check_contiguous ~what:"Timeline.of_list" segs;
  segs

let init n f =
  let segs = Array.init n f in
  check_contiguous ~what:"Timeline.init" segs;
  segs

let to_list = Array.to_list
let singleton iv v = [| (iv, v) |]

let cover t =
  let first, _ = t.(0) and last, _ = t.(Array.length t - 1) in
  Interval.make (Interval.start first) (Interval.stop last)

let length = Array.length

let value_at t c =
  if not (Interval.contains (cover t) c) then None
  else
    let rec search lo hi =
      let mid = (lo + hi) / 2 in
      let iv, v = t.(mid) in
      if Chronon.( < ) c (Interval.start iv) then search lo (mid - 1)
      else if Chronon.( > ) c (Interval.stop iv) then search (mid + 1) hi
      else Some v
    in
    search 0 (Array.length t - 1)

let map f t = Array.map (fun (iv, v) -> (iv, f v)) t
let iter f t = Array.iter (fun (iv, v) -> f iv v) t
let fold f acc t = Array.fold_left (fun acc (iv, v) -> f acc iv v) acc t

let coalesce ~equal t =
  let merged =
    Array.fold_left
      (fun acc (iv, v) ->
        match acc with
        | (piv, pv) :: rest when equal pv v ->
            (Interval.make (Interval.start piv) (Interval.stop iv), pv) :: rest
        | _ -> (iv, v) :: acc)
      [] t
  in
  Array.of_list (List.rev merged)

let refine a b =
  if not (Interval.equal (cover a) (cover b)) then
    invalid_arg "Timeline.refine: covers differ";
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  let cursor = ref (Interval.start (cover a)) in
  while !i < Array.length a && !j < Array.length b do
    let iva, va = a.(!i) and ivb, vb = b.(!j) in
    let stop = Chronon.min (Interval.stop iva) (Interval.stop ivb) in
    out := (Interval.make !cursor stop, (va, vb)) :: !out;
    if Chronon.equal stop (Interval.stop iva) then incr i;
    if Chronon.equal stop (Interval.stop ivb) then incr j;
    if Chronon.is_finite stop then cursor := Chronon.succ stop
  done;
  Array.of_list (List.rev !out)

let merge ~combine a b =
  if not (Interval.equal (cover a) (cover b)) then
    invalid_arg "Timeline.merge: covers differ";
  (* Same zip as [refine], but combining the two values in place instead
     of pairing them: one O(n+m) pass, no intermediate pair segments. *)
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  let cursor = ref (Interval.start (cover a)) in
  while !i < Array.length a && !j < Array.length b do
    let iva, va = a.(!i) and ivb, vb = b.(!j) in
    let stop = Chronon.min (Interval.stop iva) (Interval.stop ivb) in
    out := (Interval.make !cursor stop, combine va vb) :: !out;
    if Chronon.equal stop (Interval.stop iva) then incr i;
    if Chronon.equal stop (Interval.stop ivb) then incr j;
    if Chronon.is_finite stop then cursor := Chronon.succ stop
  done;
  Array.of_list (List.rev !out)

(* Index of the segment containing instant [c].  The caller guarantees
   [c] lies within [cover t]. *)
let index_of t c =
  let rec search lo hi =
    let mid = (lo + hi) / 2 in
    let iv, _ = t.(mid) in
    if Chronon.( < ) c (Interval.start iv) then search lo (mid - 1)
    else if Chronon.( > ) c (Interval.stop iv) then search (mid + 1) hi
    else mid
  in
  search 0 (Array.length t - 1)

let patch ?equal t span f =
  if not (Interval.covers (cover t) span) then
    invalid_arg
      (Printf.sprintf "Timeline.patch: %s outside the cover %s"
         (Interval.to_string span)
         (Interval.to_string (cover t)));
  let n = Array.length t in
  let lo = index_of t (Interval.start span)
  and hi = index_of t (Interval.stop span) in
  (* Rebuild only segments [lo..hi]: split the two boundary segments at
     the span's endpoints, apply [f] to the covered parts, keep the
     uncovered remainders untouched. *)
  let middle = ref [] in
  let push iv v = middle := (iv, v) :: !middle in
  for i = lo to hi do
    let iv, v = t.(i) in
    let s = Chronon.max (Interval.start iv) (Interval.start span)
    and e = Chronon.min (Interval.stop iv) (Interval.stop span) in
    if i = lo && Chronon.( < ) (Interval.start iv) s then
      push (Interval.make (Interval.start iv) (Chronon.pred s)) v;
    push (Interval.make s e) (f v);
    if i = hi && Chronon.( > ) (Interval.stop iv) e then
      push (Interval.make (Chronon.succ e) (Interval.stop iv)) v
  done;
  let middle = List.rev !middle in
  match equal with
  | None ->
      let prefix = Array.to_list (Array.sub t 0 lo)
      and suffix = Array.to_list (Array.sub t (hi + 1) (n - hi - 1)) in
      Array.of_list (prefix @ middle @ suffix)
  | Some eq ->
      (* Re-coalesce only around the patched zone: pull in the one
         segment on each side so a delta that restores a neighbouring
         value merges back, leaving the O(n) remainder untouched. *)
      let zone, pre_rest_rev =
        if lo > 0 then (t.(lo - 1) :: middle, List.rev (Array.to_list (Array.sub t 0 (lo - 1))))
        else (middle, [])
      in
      let zone, suffix_rest =
        if hi + 1 < n then (zone @ [ t.(hi + 1) ], Array.to_list (Array.sub t (hi + 2) (n - hi - 2)))
        else (zone, [])
      in
      let zone = Array.to_list (coalesce ~equal:eq (Array.of_list zone)) in
      Array.of_list (List.rev_append pre_rest_rev (zone @ suffix_rest))

let clip t span =
  match Interval.intersect (cover t) span with
  | None -> None
  | Some span ->
      let lo = index_of t (Interval.start span)
      and hi = index_of t (Interval.stop span) in
      Some
        (Array.init
           (hi - lo + 1)
           (fun i ->
             let iv, v = t.(lo + i) in
             match Interval.intersect iv span with
             | Some iv -> (iv, v)
             | None -> assert false))

let equal eq a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (iva, va) (ivb, vb) -> Interval.equal iva ivb && eq va vb)
       a b

let equivalent eq a b = equal eq (coalesce ~equal:eq a) (coalesce ~equal:eq b)

let pp ppv ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i (iv, v) ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%a %a" Interval.pp iv ppv v)
    t;
  Format.fprintf ppf "@]"
