type 'a t = (Interval.t * 'a) array
(* Array representation keeps [value_at] a binary search and avoids
   re-validating the contiguity invariant on every traversal. *)

let check_contiguous ~what segs =
  let n = Array.length segs in
  if n = 0 then invalid_arg (what ^ ": empty timeline");
  for i = 0 to n - 2 do
    let prev, _ = segs.(i) and next, _ = segs.(i + 1) in
    let expected =
      if Chronon.is_finite (Interval.stop prev) then
        Chronon.succ (Interval.stop prev)
      else invalid_arg (what ^ ": segment after an infinite segment")
    in
    if not (Chronon.equal (Interval.start next) expected) then
      invalid_arg
        (Printf.sprintf "%s: gap or overlap between %s and %s" what
           (Interval.to_string prev) (Interval.to_string next))
  done

let of_list l =
  let segs = Array.of_list l in
  check_contiguous ~what:"Timeline.of_list" segs;
  segs

let init n f =
  let segs = Array.init n f in
  check_contiguous ~what:"Timeline.init" segs;
  segs

let to_list = Array.to_list
let singleton iv v = [| (iv, v) |]

let cover t =
  let first, _ = t.(0) and last, _ = t.(Array.length t - 1) in
  Interval.make (Interval.start first) (Interval.stop last)

let length = Array.length

let value_at t c =
  if not (Interval.contains (cover t) c) then None
  else
    let rec search lo hi =
      let mid = (lo + hi) / 2 in
      let iv, v = t.(mid) in
      if Chronon.( < ) c (Interval.start iv) then search lo (mid - 1)
      else if Chronon.( > ) c (Interval.stop iv) then search (mid + 1) hi
      else Some v
    in
    search 0 (Array.length t - 1)

let map f t = Array.map (fun (iv, v) -> (iv, f v)) t
let iter f t = Array.iter (fun (iv, v) -> f iv v) t
let fold f acc t = Array.fold_left (fun acc (iv, v) -> f acc iv v) acc t

let coalesce ~equal t =
  let merged =
    Array.fold_left
      (fun acc (iv, v) ->
        match acc with
        | (piv, pv) :: rest when equal pv v ->
            (Interval.make (Interval.start piv) (Interval.stop iv), pv) :: rest
        | _ -> (iv, v) :: acc)
      [] t
  in
  Array.of_list (List.rev merged)

let refine a b =
  if not (Interval.equal (cover a) (cover b)) then
    invalid_arg "Timeline.refine: covers differ";
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  let cursor = ref (Interval.start (cover a)) in
  while !i < Array.length a && !j < Array.length b do
    let iva, va = a.(!i) and ivb, vb = b.(!j) in
    let stop = Chronon.min (Interval.stop iva) (Interval.stop ivb) in
    out := (Interval.make !cursor stop, (va, vb)) :: !out;
    if Chronon.equal stop (Interval.stop iva) then incr i;
    if Chronon.equal stop (Interval.stop ivb) then incr j;
    if Chronon.is_finite stop then cursor := Chronon.succ stop
  done;
  Array.of_list (List.rev !out)

let merge ~combine a b =
  if not (Interval.equal (cover a) (cover b)) then
    invalid_arg "Timeline.merge: covers differ";
  (* Same zip as [refine], but combining the two values in place instead
     of pairing them: one O(n+m) pass, no intermediate pair segments. *)
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  let cursor = ref (Interval.start (cover a)) in
  while !i < Array.length a && !j < Array.length b do
    let iva, va = a.(!i) and ivb, vb = b.(!j) in
    let stop = Chronon.min (Interval.stop iva) (Interval.stop ivb) in
    out := (Interval.make !cursor stop, combine va vb) :: !out;
    if Chronon.equal stop (Interval.stop iva) then incr i;
    if Chronon.equal stop (Interval.stop ivb) then incr j;
    if Chronon.is_finite stop then cursor := Chronon.succ stop
  done;
  Array.of_list (List.rev !out)

let equal eq a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (iva, va) (ivb, vb) -> Interval.equal iva ivb && eq va vb)
       a b

let equivalent eq a b = equal eq (coalesce ~equal:eq a) (coalesce ~equal:eq b)

let pp ppv ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i (iv, v) ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%a %a" Interval.pp iv ppv v)
    t;
  Format.fprintf ppf "@]"
