(** Timelines: contiguous sequences of intervals carrying values.

    The result of a temporal aggregate grouped by instant is a timeline of
    {e constant intervals}: consecutive, non-overlapping intervals that
    partition a stretch of the time-line, each carrying the aggregate value
    over that interval (paper, Sections 2 and 5).

    Invariants enforced by this module:
    - at least one segment;
    - segments appear in increasing time order;
    - each segment starts exactly one instant after the previous one ends
      (no gaps, no overlaps). *)

type 'a t

val of_list : (Interval.t * 'a) list -> 'a t
(** Validates the invariants. @raise Invalid_argument if they fail. *)

val init : int -> (int -> Interval.t * 'a) -> 'a t
(** [init n f] is the timeline of segments [f 0 .. f (n-1)], validated
    like {!of_list} but without materializing an intermediate list —
    the cheap constructor for algorithms that already know their segment
    count.  @raise Invalid_argument if the invariants fail. *)

val to_list : 'a t -> (Interval.t * 'a) list

val singleton : Interval.t -> 'a -> 'a t

val cover : 'a t -> Interval.t
(** The stretch of the time-line the timeline partitions. *)

val length : 'a t -> int
(** Number of segments. *)

val value_at : 'a t -> Chronon.t -> 'a option
(** The value of the segment containing the given instant, if within
    {!cover}.  Binary search, O(log n). *)

val map : ('a -> 'b) -> 'a t -> 'b t

val iter : (Interval.t -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> Interval.t -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val coalesce : equal:('a -> 'a -> bool) -> 'a t -> 'a t
(** Merge adjacent segments carrying equal values — TSQL2's valid-time
    coalescing of the result ("each interval in the result is a constant
    interval", Section 5.1).  Idempotent. *)

val refine : 'a t -> 'b t -> ('a * 'b) t
(** [refine a b] splits both timelines at the union of their boundaries and
    pairs the values.  The covers must be equal.
    @raise Invalid_argument if the covers differ. *)

val merge : combine:('a -> 'a -> 'a) -> 'a t -> 'a t -> 'a t
(** [merge ~combine a b] zips two timelines over the same cover into one,
    splitting at the union of their boundaries and combining the values of
    the overlapping segments — the parallel divide-and-conquer step: two
    partial-aggregate timelines computed over disjoint tuple shards merge
    into the timeline of their union.  O(n+m), one pass.  When [combine]
    is the combine of a commutative monoid, [merge] is associative and
    commutative, and a single-segment timeline carrying [empty] is an
    identity up to segment refinement.
    @raise Invalid_argument if the covers differ. *)

val patch : ?equal:('a -> 'a -> bool) -> 'a t -> Interval.t -> ('a -> 'a) -> 'a t
(** [patch t span f] splices a delta over a sub-span: every segment
    overlapping [span] has [f] applied to the covered part of its value,
    the two boundary segments are split at the span's endpoints, and the
    rest of the timeline is shared untouched.  The incremental-maintenance
    primitive: a tuple insertion or retirement patches only the constant
    intervals it overlaps, O(log n + c) where c is the number of segments
    touched.  When [?equal] is given, the result is re-coalesced — but
    only at the seams of the patched zone, not over the whole timeline.
    @raise Invalid_argument if [span] is not within {!cover}. *)

val clip : 'a t -> Interval.t -> 'a t option
(** [clip t span] restricts the timeline to [span ∩ cover t]: boundary
    segments are trimmed, values unchanged.  [None] when the span misses
    the cover entirely.  O(log n + k) for k surviving segments. *)

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
(** Segment-wise equality (same boundaries, equal values). *)

val equivalent : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
(** Equality up to coalescing: do the two timelines denote the same
    function from instants to values? *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
