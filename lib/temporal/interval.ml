type t = { start : Chronon.t; stop : Chronon.t }

let make start stop =
  if not (Chronon.is_finite start) then
    invalid_arg "Interval.make: start must be finite"
  else if Chronon.( > ) start stop then
    invalid_arg
      (Printf.sprintf "Interval.make: start %s after stop %s"
         (Chronon.to_string start) (Chronon.to_string stop))
  else { start; stop }

let of_ints s e = make (Chronon.of_int s) (Chronon.of_int e)
let from s = make s Chronon.forever
let at c = make c c
let full = { start = Chronon.origin; stop = Chronon.forever }
let start i = i.start
let stop i = i.stop
let equal a b = Chronon.equal a.start b.start && Chronon.equal a.stop b.stop

let compare a b =
  let c = Chronon.compare a.start b.start in
  if c <> 0 then c else Chronon.compare a.stop b.stop

let duration i =
  if Chronon.is_finite i.stop then
    Some (Chronon.diff i.stop i.start + 1)
  else None

let contains i c = Chronon.( <= ) i.start c && Chronon.( <= ) c i.stop
let covers a b = Chronon.( <= ) a.start b.start && Chronon.( >= ) a.stop b.stop

let overlaps a b =
  Chronon.( <= ) a.start b.stop && Chronon.( <= ) b.start a.stop

let adjacent a b =
  let meets x y =
    Chronon.is_finite x.stop && Chronon.equal (Chronon.succ x.stop) y.start
  in
  meets a b || meets b a

let intersect a b =
  if overlaps a b then
    Some (make (Chronon.max a.start b.start) (Chronon.min a.stop b.stop))
  else None

let hull a b = make (Chronon.min a.start b.start) (Chronon.max a.stop b.stop)
let merge a b = if overlaps a b || adjacent a b then Some (hull a b) else None

type allen =
  | Before
  | Meets
  | Overlaps
  | Finished_by
  | Contains
  | Starts
  | Equals
  | Started_by
  | During
  | Finishes
  | Overlapped_by
  | Met_by
  | After

(* Closed integer intervals: "a meets b" when succ a.stop = b.start, and
   "a before b" when there is at least one instant between them. *)
let allen a b =
  if Chronon.is_finite a.stop && Chronon.( > ) b.start (Chronon.succ a.stop)
  then Before
  else if
    Chronon.is_finite a.stop && Chronon.equal (Chronon.succ a.stop) b.start
  then Meets
  else if
    Chronon.is_finite b.stop && Chronon.( > ) a.start (Chronon.succ b.stop)
  then After
  else if
    Chronon.is_finite b.stop && Chronon.equal (Chronon.succ b.stop) a.start
  then Met_by
  else
    let s = Chronon.compare a.start b.start
    and e = Chronon.compare a.stop b.stop in
    if s = 0 && e = 0 then Equals
    else if s = 0 then if e < 0 then Starts else Started_by
    else if e = 0 then if s > 0 then Finishes else Finished_by
    else if s < 0 && e > 0 then Contains
    else if s > 0 && e < 0 then During
    else if s < 0 then Overlaps
    else Overlapped_by

let relate = allen

let allen_to_string = function
  | Before -> "before"
  | Meets -> "meets"
  | Overlaps -> "overlaps"
  | Finished_by -> "finished-by"
  | Contains -> "contains"
  | Starts -> "starts"
  | Equals -> "equals"
  | Started_by -> "started-by"
  | During -> "during"
  | Finishes -> "finishes"
  | Overlapped_by -> "overlapped-by"
  | Met_by -> "met-by"
  | After -> "after"

let to_string i =
  Printf.sprintf "[%s,%s]" (Chronon.to_string i.start)
    (Chronon.to_string i.stop)

let pp ppf i = Format.pp_print_string ppf (to_string i)
