(** Closed intervals of chronons, the valid-time dimension of tuples.

    The paper assumes closed intervals [[start, stop]] with [start <= stop];
    [stop] may be {!Chronon.forever}, [start] must be finite.  An interval
    denotes the set of instants it contains, so [[3,3]] is the single
    instant 3 and two intervals [[a,b]] and [[b+1,c]] are adjacent but
    disjoint. *)

type t = private { start : Chronon.t; stop : Chronon.t }

val make : Chronon.t -> Chronon.t -> t
(** [make start stop] is the closed interval [[start, stop]].
    @raise Invalid_argument if [start > stop] or [start] is not finite. *)

val of_ints : int -> int -> t
(** [of_ints s e] is [make (Chronon.of_int s) (Chronon.of_int e)]. *)

val from : Chronon.t -> t
(** [from s] is [[s, forever]]. *)

val at : Chronon.t -> t
(** [at c] is the single-instant interval [[c, c]].
    @raise Invalid_argument if [c] is not finite. *)

val full : t
(** [[origin, forever]] — the whole time-line. *)

val start : t -> Chronon.t
val stop : t -> Chronon.t

val equal : t -> t -> bool

val compare : t -> t -> int
(** Orders by start time, ties broken by stop time — the paper's
    "totally ordered by time" order (Section 5.2). *)

val duration : t -> int option
(** Number of instants contained; [None] if [stop] is {!Chronon.forever}. *)

val contains : t -> Chronon.t -> bool
(** [contains i c] — does instant [c] fall within [i]? *)

val covers : t -> t -> bool
(** [covers a b] — is every instant of [b] also in [a]? *)

val overlaps : t -> t -> bool
(** [overlaps a b] — do [a] and [b] share at least one instant? *)

val adjacent : t -> t -> bool
(** [adjacent a b] — disjoint but with no instant between them
    (one ends exactly where the other begins). *)

val intersect : t -> t -> t option
(** The common instants, if any. *)

val hull : t -> t -> t
(** Smallest interval containing both arguments. *)

val merge : t -> t -> t option
(** Union as a single interval, when the arguments overlap or are adjacent. *)

(** Allen's thirteen interval relations, adapted to closed integer
    intervals: "meets" holds when one interval ends on the instant just
    before the other starts. For any two intervals exactly one relation
    holds. *)
type allen =
  | Before
  | Meets
  | Overlaps
  | Finished_by
  | Contains
  | Starts
  | Equals
  | Started_by
  | During
  | Finishes
  | Overlapped_by
  | Met_by
  | After

val allen : t -> t -> allen

val relate : t -> t -> allen
(** [relate a b] is the unique Allen relation holding between [a] and
    [b] — an alias of {!allen} under the name join predicates use. *)

val allen_to_string : allen -> string

val to_string : t -> string
(** E.g. ["[8,20]"], ["[18,oo]"]. *)

val pp : Format.formatter -> t -> unit
