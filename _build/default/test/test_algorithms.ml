(* Unit tests for the aggregation algorithms: the paper's running example
   (Employed / Table 1 / Figure 3), instrumentation, garbage collection,
   span grouping, the optimizer rules, and the engine dispatch. *)

open Temporal
open Tempagg

let c = Chronon.of_int
let iv = Interval.of_ints

let int_timeline =
  Alcotest.testable (Timeline.pp Format.pp_print_int) (Timeline.equal Int.equal)

let opt_int_timeline =
  Alcotest.testable
    (Timeline.pp (Format.pp_print_option Format.pp_print_int))
    (Timeline.equal (Option.equal Int.equal))

let employed_data () =
  Relation.Trel.agg_input (Relation.Fixtures.employed ()) ~column:"salary"
  |> Seq.map (fun (ivl, v) ->
         match Relation.Value.to_int v with
         | Some n -> (ivl, n)
         | None -> Alcotest.fail "salary not an int")
  |> List.of_seq

let employed_sorted () =
  List.sort (fun (a, _) (b, _) -> Interval.compare a b) (employed_data ())

let table1 = Timeline.of_list Relation.Fixtures.employed_count

let count_of data = List.to_seq data |> Seq.map (fun (ivl, _) -> (ivl, ()))

(* ------------------------------------------------------------------ *)
(* Aggregation tree (Section 5.1, Figure 3)                            *)
(* ------------------------------------------------------------------ *)

let test_tree_initial_state () =
  let t = Agg_tree.create Monoid.count in
  Alcotest.(check int) "one node" 1 (Agg_tree.node_count t);
  Alcotest.check int_timeline "single empty constant interval"
    (Timeline.singleton Interval.full 0)
    (Agg_tree.result t)

let test_tree_figure3_stages () =
  (* Figure 3: inserting Richard [18,oo], Karen [8,20], Nathan [7,12],
     Nathan [18,21] into the initial tree. *)
  let t = Agg_tree.create Monoid.count in
  (* 3.b: [18,oo] has one unique timestamp -> one split, 3 nodes. *)
  Agg_tree.insert t (Interval.from (c 18)) ();
  Alcotest.(check int) "3.b nodes" 3 (Agg_tree.node_count t);
  Alcotest.check int_timeline "3.b"
    (Timeline.of_list [ (iv 0 17, 0); (Interval.from (c 18), 1) ])
    (Agg_tree.result t);
  (* 3.c: [8,20] has two unique timestamps -> two splits, 7 nodes. *)
  Agg_tree.insert t (iv 8 20) ();
  Alcotest.(check int) "3.c nodes" 7 (Agg_tree.node_count t);
  Alcotest.check int_timeline "3.c"
    (Timeline.of_list
       [ (iv 0 7, 0); (iv 8 17, 1); (iv 18 20, 2); (Interval.from (c 21), 1) ])
    (Agg_tree.result t);
  (* 3.d: [7,12] and [18,21] complete the Employed relation. *)
  Agg_tree.insert t (iv 7 12) ();
  Agg_tree.insert t (iv 18 21) ();
  Alcotest.(check int) "3.d nodes" 13 (Agg_tree.node_count t);
  Alcotest.check int_timeline "Table 1" table1 (Agg_tree.result t)

let test_tree_employed_count () =
  Alcotest.check int_timeline "count"
    table1
    (Agg_tree.eval Monoid.count (count_of (employed_data ())))

let test_tree_no_split_on_existing_timestamps () =
  let t = Agg_tree.create Monoid.count in
  Agg_tree.insert t (iv 8 20) ();
  let nodes = Agg_tree.node_count t in
  Agg_tree.insert t (iv 8 20) ();
  Alcotest.(check int) "no new nodes" nodes (Agg_tree.node_count t)

let test_tree_internal_node_update () =
  (* Inserting an interval that fully covers an internal node updates the
     node without splitting leaves below it (the paper's [5,50] example):
     node count grows only by the splits for 5 and 50 themselves. *)
  let t = Agg_tree.create Monoid.count in
  List.iter
    (fun (ivl, v) -> Agg_tree.insert t ivl v)
    (List.map (fun (ivl, _) -> (ivl, ())) (employed_data ()));
  let nodes = Agg_tree.node_count t in
  Agg_tree.insert t (iv 5 50) ();
  Alcotest.(check int) "two splits only" (nodes + 4) (Agg_tree.node_count t);
  Alcotest.(check (option int)) "updated region" (Some 3)
    (Timeline.value_at (Agg_tree.result t) (c 10))

let test_tree_instrument_counts_nodes () =
  let inst = Instrument.create () in
  let t = Agg_tree.create ~instrument:inst Monoid.count in
  Agg_tree.insert t (iv 8 20) ();
  Agg_tree.insert t (iv 5 50) ();
  Alcotest.(check int) "allocated = size" (Agg_tree.node_count t)
    (Instrument.allocated inst);
  Alcotest.(check int) "nothing freed" (Instrument.allocated inst)
    (Instrument.live inst);
  Alcotest.(check int) "16-byte nodes"
    (16 * Instrument.peak_live inst)
    (Instrument.peak_bytes inst)

let test_tree_restricted_domain () =
  let t = Agg_tree.create ~origin:(c 10) ~horizon:(c 99) Monoid.count in
  Agg_tree.insert t (iv 20 30) ();
  Alcotest.check int_timeline "clipped domain"
    (Timeline.of_list [ (iv 10 19, 0); (iv 20 30, 1); (iv 31 99, 0) ])
    (Agg_tree.result t)

let test_tree_rejects_out_of_domain () =
  let t = Agg_tree.create ~origin:(c 10) ~horizon:(c 99) Monoid.count in
  Alcotest.check_raises "before origin"
    (Invalid_argument "Agg_tree.insert: [5,20] outside [10,99]") (fun () ->
      Agg_tree.insert t (iv 5 20) ());
  Alcotest.check_raises "after horizon"
    (Invalid_argument "Agg_tree.insert: [20,100] outside [10,99]") (fun () ->
      Agg_tree.insert t (iv 20 100) ())

let test_tree_rejects_bad_domain () =
  Alcotest.check_raises "origin after horizon"
    (Invalid_argument "Agg_tree.create: origin after horizon") (fun () ->
      ignore (Agg_tree.create ~origin:(c 5) ~horizon:(c 1) Monoid.count))

let test_tree_sorted_input_degenerates () =
  (* Time-sorted input produces a linear right spine: depth grows with n
     (the paper's O(n^2) case). *)
  let n = 64 in
  let data =
    List.init n (fun i -> (iv (10 * i) ((10 * i) + 5), ()))
  in
  let t = Agg_tree.create Monoid.count in
  List.iter (fun (ivl, v) -> Agg_tree.insert t ivl v) data;
  Alcotest.(check bool) "deep spine" true (Agg_tree.depth t > n)

let test_tree_render_mentions_spans () =
  let t = Agg_tree.create Monoid.count in
  Agg_tree.insert t (Interval.from (c 18)) ();
  let rendered = Agg_tree.render string_of_int t in
  Alcotest.(check bool) "root span" true
    (String.length rendered > 0
    && String.split_on_char '\n' rendered
       |> List.exists (fun l -> l = "[0,oo] 0"))

(* Aggregates other than count over Employed. *)

let test_tree_max_salary () =
  let expected =
    Timeline.of_list
      [
        (iv 0 6, None); (iv 7 7, Some 35_000); (iv 8 12, Some 45_000);
        (iv 13 17, Some 45_000); (iv 18 20, Some 45_000);
        (iv 21 21, Some 40_000); (Interval.from (c 22), Some 40_000);
      ]
  in
  Alcotest.check opt_int_timeline "max"
    expected
    (Agg_tree.eval Monoid.max_int (List.to_seq (employed_data ())))

let test_tree_min_salary () =
  let expected =
    Timeline.of_list
      [
        (iv 0 6, None); (iv 7 7, Some 35_000); (iv 8 12, Some 35_000);
        (iv 13 17, Some 45_000); (iv 18 20, Some 37_000);
        (iv 21 21, Some 37_000); (Interval.from (c 22), Some 40_000);
      ]
  in
  Alcotest.check opt_int_timeline "min"
    expected
    (Agg_tree.eval Monoid.min_int (List.to_seq (employed_data ())))

let test_tree_sum_salary () =
  let tl = Agg_tree.eval Monoid.sum_int (List.to_seq (employed_data ())) in
  Alcotest.(check (option int)) "peak period" (Some 122_000)
    (Timeline.value_at tl (c 19));
  Alcotest.(check (option int)) "empty period" (Some 0)
    (Timeline.value_at tl (c 3))

let test_tree_avg_salary () =
  let tl = Agg_tree.eval Monoid.avg_int (List.to_seq (employed_data ())) in
  match Timeline.value_at tl (c 19) with
  | Some (Some avg) ->
      Alcotest.(check (float 1e-6)) "avg [18,20]" (122_000. /. 3.) avg
  | _ -> Alcotest.fail "expected an average over [18,20]"

(* ------------------------------------------------------------------ *)
(* Linked list (Section 4.2)                                           *)
(* ------------------------------------------------------------------ *)

let test_list_employed_count () =
  Alcotest.check int_timeline "count" table1
    (Linked_list.eval Monoid.count (count_of (employed_data ())))

let test_list_initial_state () =
  let t = Linked_list.create Monoid.count in
  Alcotest.(check int) "one cell" 1 (Linked_list.cell_count t);
  Alcotest.check int_timeline "empty" (Timeline.singleton Interval.full 0)
    (Linked_list.result t)

let test_list_cell_growth () =
  let t = Linked_list.create Monoid.count in
  Linked_list.insert t (iv 10 20) ();
  (* Two unique timestamps -> two splits -> three cells. *)
  Alcotest.(check int) "3 cells" 3 (Linked_list.cell_count t);
  Linked_list.insert t (iv 10 20) ();
  Alcotest.(check int) "no growth on duplicate" 3 (Linked_list.cell_count t);
  Linked_list.insert t (iv 15 25) ();
  Alcotest.(check int) "5 cells" 5 (Linked_list.cell_count t)

let test_list_one_cell_per_constant_interval () =
  let t = Linked_list.create Monoid.count in
  List.iter
    (fun (ivl, _) -> Linked_list.insert t ivl ())
    (employed_data ());
  Alcotest.(check int) "7 constant intervals -> 7 cells" 7
    (Linked_list.cell_count t);
  Alcotest.(check int) "instrument agrees" 7
    (Instrument.live (Linked_list.instrument t))

let test_list_rejects_out_of_domain () =
  let t = Linked_list.create ~origin:(c 10) ~horizon:(c 99) Monoid.count in
  Alcotest.check_raises "outside"
    (Invalid_argument "Linked_list.insert: [0,5] outside [10,99]") (fun () ->
      Linked_list.insert t (iv 0 5) ())

let test_list_full_walk_same_result () =
  let data = employed_data () in
  Alcotest.check int_timeline "full walk identical" table1
    (Linked_list.eval ~full_walk:true Monoid.count (count_of data));
  let spec = Workload.Spec.make ~n:300 ~lifespan:10_000 ~seed:17 () in
  let arr = Workload.Generate.random_intervals spec in
  let seq () = Array.to_seq (Array.map (fun (ivl, _) -> (ivl, ())) arr) in
  Alcotest.check int_timeline "random data identical"
    (Linked_list.eval Monoid.count (seq ()))
    (Linked_list.eval ~full_walk:true Monoid.count (seq ()))

let test_list_interval_at_horizon_edge () =
  let t = Linked_list.create ~origin:(c 0) ~horizon:(c 9) Monoid.count in
  Linked_list.insert t (iv 0 9) ();
  Linked_list.insert t (iv 9 9) ();
  Alcotest.check int_timeline "edges"
    (Timeline.of_list [ (iv 0 8, 1); (iv 9 9, 2) ])
    (Linked_list.result t)

(* ------------------------------------------------------------------ *)
(* k-ordered aggregation tree (Section 5.3)                            *)
(* ------------------------------------------------------------------ *)

let test_ktree_employed_sorted () =
  Alcotest.check int_timeline "k=1 on sorted" table1
    (Korder_tree.eval ~k:1 Monoid.count (count_of (employed_sorted ())))

let test_ktree_employed_unsorted_with_large_k () =
  (* Employed is 3-ordered, so k=3 handles it without sorting. *)
  Alcotest.check int_timeline "k=3 on raw order" table1
    (Korder_tree.eval ~k:3 Monoid.count (count_of (employed_data ())))

let test_ktree_order_violation () =
  let t = Korder_tree.create ~k:0 Monoid.count in
  Korder_tree.insert t (iv 100 200) ();
  Korder_tree.insert t (iv 300 400) ();
  (* Window size 1: after the second insert the frontier has passed 300;
     a tuple starting at 5 violates 0-orderedness. *)
  Alcotest.(check bool) "raises Order_violation" true
    (match Korder_tree.insert t (iv 5 6) () with
    | () -> false
    | exception Korder_tree.Order_violation { start; frontier; _ } ->
        Chronon.equal start (c 5) && Chronon.( > ) frontier (c 5))

let test_ktree_gc_reclaims_memory () =
  let n = 400 in
  let data =
    List.init n (fun i -> (iv (100 * i) ((100 * i) + 50), ()))
  in
  let t = Korder_tree.create ~k:1 Monoid.count in
  List.iter (fun (ivl, v) -> Korder_tree.insert t ivl v) data;
  let inst = Korder_tree.instrument t in
  Alcotest.(check bool) "peak far below total" true
    (Instrument.peak_live inst * 4 < Instrument.allocated inst);
  Alcotest.(check bool) "live tree is small" true (Korder_tree.live_nodes t < 32);
  let tl = Korder_tree.finish t in
  Alcotest.(check int) "all nodes freed" 0 (Instrument.live inst);
  Alcotest.check int_timeline "same result as plain tree"
    (Agg_tree.eval Monoid.count (List.to_seq data))
    tl

let test_ktree_no_gc_when_k_large () =
  let data = List.init 10 (fun i -> (iv (10 * i) ((10 * i) + 5), ())) in
  let t = Korder_tree.create ~k:100 Monoid.count in
  List.iter (fun (ivl, v) -> Korder_tree.insert t ivl v) data;
  let inst = Korder_tree.instrument t in
  Alcotest.(check int) "nothing collected" (Instrument.allocated inst)
    (Instrument.live inst)

let test_ktree_on_emit_streams_in_order () =
  let emitted = ref [] in
  let t =
    Korder_tree.create ~k:1
      ~on_emit:(fun ivl v -> emitted := (ivl, v) :: !emitted)
      Monoid.count
  in
  let data = List.init 50 (fun i -> (iv (100 * i) ((100 * i) + 20), ())) in
  List.iter (fun (ivl, v) -> Korder_tree.insert t ivl v) data;
  Alcotest.(check bool) "streamed before finish" true
    (List.length !emitted > 10);
  let tl = Korder_tree.finish t in
  (* The streamed prefix must be exactly the head of the final timeline. *)
  let streamed = List.rev !emitted in
  let final = Timeline.to_list tl in
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | (ia, va) :: ra, (ib, vb) :: rb ->
        Interval.equal ia ib && va = vb && is_prefix ra rb
    | _ :: _, [] -> false
  in
  Alcotest.(check bool) "prefix of final result" true (is_prefix streamed final)

let test_ktree_insert_after_finish_rejected () =
  let t = Korder_tree.create ~k:1 Monoid.count in
  Korder_tree.insert t (iv 0 5) ();
  ignore (Korder_tree.finish t);
  Alcotest.check_raises "finished"
    (Invalid_argument "Korder_tree.insert: already finished") (fun () ->
      Korder_tree.insert t (iv 10 15) ())

let test_ktree_negative_k_rejected () =
  Alcotest.check_raises "k" (Invalid_argument "Korder_tree.create: negative k")
    (fun () -> ignore (Korder_tree.create ~k:(-1) Monoid.count))

let test_ktree_empty_input () =
  let t = Korder_tree.create ~k:1 Monoid.count in
  Alcotest.check int_timeline "empty" (Timeline.singleton Interval.full 0)
    (Korder_tree.finish t)

let test_ktree_matches_tree_on_k_ordered_input () =
  let spec = Workload.Spec.make ~n:300 ~lifespan:50_000 ~seed:7 () in
  let data = Workload.Generate.k_ordered_intervals ~k:4 ~percentage:0.1 spec in
  let expected = Agg_tree.eval Monoid.count (Array.to_seq data) in
  Alcotest.check int_timeline "k=4" expected
    (Korder_tree.eval ~k:4 Monoid.count (Array.to_seq data))

(* ------------------------------------------------------------------ *)
(* Two-scan (Section 4.1)                                              *)
(* ------------------------------------------------------------------ *)

let test_twoscan_employed_count () =
  Alcotest.check int_timeline "count" table1
    (Two_scan.eval Monoid.count (count_of (employed_data ())))

let test_twoscan_constant_intervals () =
  let cis =
    Two_scan.constant_intervals
      (List.to_seq (List.map fst (employed_data ())))
  in
  Alcotest.(check int) "seven" 7 (Array.length cis);
  Alcotest.(check (list string)) "exact intervals"
    [ "[0,6]"; "[7,7]"; "[8,12]"; "[13,17]"; "[18,20]"; "[21,21]"; "[22,oo]" ]
    (Array.to_list (Array.map Interval.to_string cis))

let test_twoscan_buckets_counted () =
  let _, stats = Two_scan.eval_with_stats Monoid.count (count_of (employed_data ())) in
  Alcotest.(check int) "one bucket per constant interval" 7
    stats.Instrument.allocated

(* ------------------------------------------------------------------ *)
(* Balanced tree (Section 7 future work)                               *)
(* ------------------------------------------------------------------ *)

let test_balanced_employed_count () =
  Alcotest.check int_timeline "count" table1
    (Balanced_tree.eval Monoid.count (count_of (employed_data ())))

let test_balanced_stays_shallow_on_sorted_input () =
  let n = 512 in
  let data = List.init n (fun i -> (iv (10 * i) ((10 * i) + 5), ())) in
  let t = Balanced_tree.create Monoid.count in
  List.iter (fun (ivl, v) -> Balanced_tree.insert t ivl v) data;
  let nodes = Balanced_tree.node_count t in
  let avl_bound =
    int_of_float (1.4405 *. log (float_of_int (nodes + 2)) /. log 2.) + 1
  in
  Alcotest.(check bool)
    (Printf.sprintf "depth %d within AVL bound %d" (Balanced_tree.depth t)
       avl_bound)
    true
    (Balanced_tree.depth t <= avl_bound);
  Alcotest.check int_timeline "same result as plain tree"
    (Agg_tree.eval Monoid.count (List.to_seq data))
    (Balanced_tree.result t)

let test_balanced_matches_tree_on_employed_aggregates () =
  let data = employed_data () in
  Alcotest.check opt_int_timeline "max"
    (Agg_tree.eval Monoid.max_int (List.to_seq data))
    (Balanced_tree.eval Monoid.max_int (List.to_seq data))

let test_balanced_node_bytes () =
  let _, stats =
    Balanced_tree.eval_with_stats Monoid.count (count_of (employed_data ()))
  in
  Alcotest.(check int) "20-byte nodes" 20 stats.Instrument.node_bytes

(* ------------------------------------------------------------------ *)
(* Span grouping (Sections 2 and 7)                                    *)
(* ------------------------------------------------------------------ *)

let test_span_employed_by_decade () =
  let tl =
    Span.eval ~granule:(Granule.make 10) Monoid.count
      (count_of (employed_data ()))
  in
  Alcotest.check int_timeline "decades"
    (Timeline.of_list
       [ (iv 0 9, 2); (iv 10 19, 4); (iv 20 29, 3); (Interval.from (c 30), 1) ])
    tl

let test_span_instant_granule_is_identity () =
  let data = employed_data () in
  Alcotest.check int_timeline "span(1) = instant grouping"
    (Agg_tree.eval Monoid.count (count_of data))
    (Span.eval ~granule:Granule.instant Monoid.count (count_of data))

let test_span_fewer_buckets () =
  let spec = Workload.Spec.make ~n:500 ~lifespan:100_000 ~seed:3 () in
  let data = Workload.Generate.random_intervals spec in
  let _, fine =
    Engine.eval_with_stats Engine.Aggregation_tree Monoid.count
      (Array.to_seq (Array.map (fun (ivl, _) -> (ivl, ())) data))
  in
  let _, coarse =
    Span.eval_with_stats ~granule:(Granule.make 10_000) Monoid.count
      (Array.to_seq (Array.map (fun (ivl, _) -> (ivl, ())) data))
  in
  Alcotest.(check bool) "far fewer buckets" true
    (coarse.Instrument.peak_live * 10 < fine.Instrument.peak_live)

let test_span_with_linked_list_algorithm () =
  let data = employed_data () in
  Alcotest.check int_timeline "same by any algorithm"
    (Span.eval ~granule:(Granule.make 10) Monoid.count (count_of data))
    (Span.eval ~algorithm:Engine.Linked_list ~granule:(Granule.make 10)
       Monoid.count (count_of data))

let test_span_rejects_late_anchor () =
  Alcotest.check_raises "anchor"
    (Invalid_argument "Span.eval: granule anchor after origin") (fun () ->
      ignore
        (Span.eval
           ~granule:(Granule.make ~anchor:(c 5) 10)
           Monoid.count Seq.empty))

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_names_roundtrip () =
  List.iter
    (fun a ->
      match Engine.of_string (Engine.name a) with
      | Ok a' ->
          Alcotest.(check string) "roundtrip" (Engine.name a) (Engine.name a')
      | Error msg -> Alcotest.fail msg)
    (Engine.all @ [ Engine.Korder_tree { k = 400 } ])

let test_engine_rejects_unknown () =
  Alcotest.(check bool) "error" true
    (Result.is_error (Engine.of_string "btree"));
  Alcotest.(check bool) "bad k" true
    (Result.is_error (Engine.of_string "ktree(x)"))

let test_engine_all_agree_on_employed () =
  List.iter
    (fun algorithm ->
      let data =
        if algorithm = Engine.Korder_tree { k = 1 } then employed_sorted ()
        else employed_data ()
      in
      Alcotest.check int_timeline (Engine.name algorithm) table1
        (Engine.eval algorithm Monoid.count (count_of data)))
    Engine.all

let test_engine_stats_node_bytes () =
  List.iter
    (fun algorithm ->
      let _, stats =
        Engine.eval_with_stats algorithm Monoid.count
          (count_of (employed_sorted ()))
      in
      Alcotest.(check int)
        (Engine.name algorithm)
        (Engine.node_bytes algorithm)
        stats.Instrument.node_bytes)
    Engine.all

(* ------------------------------------------------------------------ *)
(* Optimizer (Section 6.3)                                             *)
(* ------------------------------------------------------------------ *)

let test_optimizer_sorted_relation () =
  let md =
    { (Optimizer.default_metadata ~cardinality:100_000) with
      Optimizer.time_ordered = true }
  in
  let choice = Optimizer.choose md in
  Alcotest.(check string) "ktree k=1" "ktree(1)"
    (Engine.name choice.Optimizer.algorithm);
  Alcotest.(check bool) "no sort" false choice.Optimizer.sort_first

let test_optimizer_retroactively_bounded () =
  let md =
    { (Optimizer.default_metadata ~cardinality:100_000) with
      Optimizer.retroactive_bound = Some 40 }
  in
  let choice = Optimizer.choose md in
  Alcotest.(check string) "ktree k=40" "ktree(40)"
    (Engine.name choice.Optimizer.algorithm);
  Alcotest.(check bool) "no sort" false choice.Optimizer.sort_first

let test_optimizer_unordered_with_memory () =
  let choice = Optimizer.choose (Optimizer.default_metadata ~cardinality:100_000) in
  Alcotest.(check string) "aggregation tree" "aggregation-tree"
    (Engine.name choice.Optimizer.algorithm)

let test_optimizer_unordered_memory_tight () =
  let md =
    { (Optimizer.default_metadata ~cardinality:100_000) with
      Optimizer.memory_budget = Some 1_000_000 }
  in
  let choice = Optimizer.choose md in
  Alcotest.(check string) "sort + ktree" "ktree(1)"
    (Engine.name choice.Optimizer.algorithm);
  Alcotest.(check bool) "sort required" true choice.Optimizer.sort_first

let test_optimizer_few_constant_intervals () =
  let md =
    { (Optimizer.default_metadata ~cardinality:1_000_000) with
      Optimizer.expected_constant_intervals = Some 365 }
  in
  let choice = Optimizer.choose md in
  Alcotest.(check string) "linked list" "linked-list"
    (Engine.name choice.Optimizer.algorithm)

let test_optimizer_tree_estimate () =
  Alcotest.(check int) "bytes" ((4 * 1000 + 1) * 16)
    (Optimizer.estimated_tree_bytes ~cardinality:1000)

(* ------------------------------------------------------------------ *)
(* Instrument                                                          *)
(* ------------------------------------------------------------------ *)

let test_instrument_counters () =
  let i = Instrument.create () in
  Instrument.alloc i;
  Instrument.alloc i;
  Instrument.alloc i;
  Instrument.free i;
  Alcotest.(check int) "allocated" 3 (Instrument.allocated i);
  Alcotest.(check int) "live" 2 (Instrument.live i);
  Alcotest.(check int) "peak" 3 (Instrument.peak_live i);
  Instrument.free_many i 2;
  Alcotest.(check int) "drained" 0 (Instrument.live i);
  Alcotest.(check int) "peak sticky" 3 (Instrument.peak_live i);
  Instrument.reset i;
  Alcotest.(check int) "reset" 0 (Instrument.allocated i)

let test_instrument_snapshot () =
  let i = Instrument.create ~node_bytes:20 () in
  Instrument.alloc i;
  let s = Instrument.snapshot i in
  Alcotest.(check int) "bytes" 20 s.Instrument.peak_bytes;
  Alcotest.(check int) "node bytes" 20 s.Instrument.node_bytes

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "algorithms"
    [
      ( "aggregation-tree",
        [
          quick "initial state" test_tree_initial_state;
          quick "Figure 3 stages" test_tree_figure3_stages;
          quick "Employed count (Table 1)" test_tree_employed_count;
          quick "no split on existing timestamps"
            test_tree_no_split_on_existing_timestamps;
          quick "internal node update" test_tree_internal_node_update;
          quick "instrument counts nodes" test_tree_instrument_counts_nodes;
          quick "restricted domain" test_tree_restricted_domain;
          quick "rejects out-of-domain" test_tree_rejects_out_of_domain;
          quick "rejects bad domain" test_tree_rejects_bad_domain;
          quick "sorted input degenerates" test_tree_sorted_input_degenerates;
          quick "render" test_tree_render_mentions_spans;
          quick "max salary" test_tree_max_salary;
          quick "min salary" test_tree_min_salary;
          quick "sum salary" test_tree_sum_salary;
          quick "avg salary" test_tree_avg_salary;
        ] );
      ( "linked-list",
        [
          quick "Employed count (Table 1)" test_list_employed_count;
          quick "initial state" test_list_initial_state;
          quick "cell growth" test_list_cell_growth;
          quick "one cell per constant interval"
            test_list_one_cell_per_constant_interval;
          quick "rejects out-of-domain" test_list_rejects_out_of_domain;
          quick "full walk gives identical results" test_list_full_walk_same_result;
          quick "horizon edges" test_list_interval_at_horizon_edge;
        ] );
      ( "korder-tree",
        [
          quick "Employed sorted, k=1" test_ktree_employed_sorted;
          quick "Employed raw order, k=3"
            test_ktree_employed_unsorted_with_large_k;
          quick "order violation detected" test_ktree_order_violation;
          quick "gc reclaims memory" test_ktree_gc_reclaims_memory;
          quick "no gc when k covers input" test_ktree_no_gc_when_k_large;
          quick "on_emit streams in order" test_ktree_on_emit_streams_in_order;
          quick "insert after finish rejected"
            test_ktree_insert_after_finish_rejected;
          quick "negative k rejected" test_ktree_negative_k_rejected;
          quick "empty input" test_ktree_empty_input;
          quick "matches tree on k-ordered input"
            test_ktree_matches_tree_on_k_ordered_input;
        ] );
      ( "two-scan",
        [
          quick "Employed count (Table 1)" test_twoscan_employed_count;
          quick "constant intervals (Figure 2)" test_twoscan_constant_intervals;
          quick "buckets counted" test_twoscan_buckets_counted;
        ] );
      ( "balanced-tree",
        [
          quick "Employed count (Table 1)" test_balanced_employed_count;
          quick "stays shallow on sorted input"
            test_balanced_stays_shallow_on_sorted_input;
          quick "matches plain tree on other aggregates"
            test_balanced_matches_tree_on_employed_aggregates;
          quick "20-byte nodes" test_balanced_node_bytes;
        ] );
      ( "span",
        [
          quick "Employed by decade" test_span_employed_by_decade;
          quick "instant granule is identity"
            test_span_instant_granule_is_identity;
          quick "fewer buckets than instant grouping" test_span_fewer_buckets;
          quick "any algorithm underneath" test_span_with_linked_list_algorithm;
          quick "rejects late anchor" test_span_rejects_late_anchor;
        ] );
      ( "engine",
        [
          quick "names roundtrip" test_engine_names_roundtrip;
          quick "rejects unknown names" test_engine_rejects_unknown;
          quick "all algorithms agree on Employed"
            test_engine_all_agree_on_employed;
          quick "stats use per-algorithm node bytes"
            test_engine_stats_node_bytes;
        ] );
      ( "optimizer",
        [
          quick "sorted relation" test_optimizer_sorted_relation;
          quick "retroactively bounded" test_optimizer_retroactively_bounded;
          quick "unordered with memory" test_optimizer_unordered_with_memory;
          quick "unordered, memory tight" test_optimizer_unordered_memory_tight;
          quick "few constant intervals" test_optimizer_few_constant_intervals;
          quick "tree size estimate" test_optimizer_tree_estimate;
        ] );
      ( "instrument",
        [
          quick "counters" test_instrument_counters;
          quick "snapshot" test_instrument_snapshot;
        ] );
    ]
