(* End-to-end tests across the whole stack: workload generation -> CSV ->
   catalog -> TSQL -> engine, cross-checked against direct engine calls. *)

open Temporal
open Relation

let int_timeline =
  Alcotest.testable (Timeline.pp Format.pp_print_int) (Timeline.equal Int.equal)

(* A generated relation, round-tripped through CSV, queried through TSQL;
   the counts must equal a direct engine evaluation on the raw data. *)
let test_pipeline_count_matches_engine () =
  let spec = Workload.Spec.make ~n:300 ~lifespan:10_000 ~seed:21 () in
  let rel = Workload.Generate.relation spec in
  let rel =
    match Csv_io.of_string (Csv_io.to_string rel) with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  let catalog = Tsql.Catalog.add (Tsql.Catalog.with_builtins ()) "Jobs" rel in
  let result =
    match Tsql.Eval.query catalog "SELECT COUNT(*) FROM Jobs" with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  let from_query =
    Timeline.of_list
      (List.map
         (fun t ->
           match Tuple.value t 0 with
           | Value.Int n -> (Tuple.valid t, n)
           | _ -> Alcotest.fail "count should be an int")
         (Trel.tuples result))
  in
  let direct =
    Tempagg.Engine.eval Tempagg.Engine.Aggregation_tree Tempagg.Monoid.count
      (Seq.map (fun iv -> (iv, ())) (Trel.intervals rel))
  in
  (* The query result is coalesced; compare up to coalescing. *)
  Alcotest.(check bool) "equivalent" true
    (Timeline.equivalent Int.equal from_query direct)

(* The optimizer must route a pre-sorted relation to the k-ordered tree
   and produce the same answer. *)
let test_optimizer_uses_ktree_on_sorted_relation () =
  let spec = Workload.Spec.make ~n:200 ~lifespan:20_000 ~seed:5 () in
  let rel = Trel.sort_by_time (Workload.Generate.relation spec) in
  let catalog = Tsql.Catalog.add (Tsql.Catalog.with_builtins ()) "Sorted" rel in
  (match Tsql.Eval.explain catalog "SELECT COUNT(*) FROM Sorted" with
  | Ok text ->
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec go i =
          i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "plans ktree(1)" true (contains text "ktree(1)")
  | Error msg -> Alcotest.fail msg);
  match Tsql.Eval.query catalog "SELECT COUNT(*) FROM Sorted" with
  | Error msg -> Alcotest.fail msg
  | Ok result -> Alcotest.(check bool) "non-empty" true (Trel.cardinality result > 0)

(* Same query under every USING hint gives identical rows. *)
let test_all_hints_agree_on_generated_data () =
  let spec =
    Workload.Spec.make ~n:150 ~long_lived_fraction:0.3 ~lifespan:5_000 ~seed:9 ()
  in
  let rel = Trel.sort_by_time (Workload.Generate.relation spec) in
  let catalog = Tsql.Catalog.add (Tsql.Catalog.with_builtins ()) "Work" rel in
  let results =
    List.map
      (fun hint ->
        match
          Tsql.Eval.query catalog
            (Printf.sprintf
               "SELECT SUM(salary), COUNT(*) FROM Work USING %s" hint)
        with
        | Ok r -> Tsql.Pretty.result_to_string r
        | Error msg -> Alcotest.fail (hint ^ ": " ^ msg))
      [ "aggregation_tree"; "linked_list"; "two_scan"; "balanced_tree";
        "ktree(1)" ]
  in
  match results with
  | first :: rest ->
      List.iteri
        (fun i other -> Alcotest.(check string) (string_of_int i) first other)
        rest
  | [] -> assert false

(* Span grouping through TSQL equals Span.eval directly. *)
let test_span_query_matches_span_eval () =
  let spec = Workload.Spec.make ~n:120 ~lifespan:8_000 ~seed:31 () in
  let rel = Workload.Generate.relation spec in
  let catalog = Tsql.Catalog.add (Tsql.Catalog.with_builtins ()) "W" rel in
  let result =
    match
      Tsql.Eval.query catalog "SELECT COUNT(*) FROM W GROUP BY SPAN 500"
    with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  let from_query =
    Timeline.of_list
      (List.map
         (fun t ->
           match Tuple.value t 0 with
           | Value.Int n -> (Tuple.valid t, n)
           | _ -> Alcotest.fail "count"
           )
         (Trel.tuples result))
  in
  let direct =
    Tempagg.Span.eval ~granule:(Granule.make 500) Tempagg.Monoid.count
      (Seq.map (fun iv -> (iv, ())) (Trel.intervals rel))
  in
  Alcotest.check int_timeline "equal (coalesced)"
    (Timeline.coalesce ~equal:Int.equal direct)
    (Timeline.coalesce ~equal:Int.equal from_query)

(* GROUP BY over a generated column: partition sums must add up to the
   ungrouped sum at probe instants. *)
let test_group_by_partitions_sum () =
  let spec = Workload.Spec.make ~n:100 ~lifespan:2_000 ~seed:13 () in
  let rel = Workload.Generate.relation spec in
  let catalog = Tsql.Catalog.add (Tsql.Catalog.with_builtins ()) "P" rel in
  let grouped =
    match
      Tsql.Eval.query catalog "SELECT name, COUNT(*) FROM P GROUP BY name"
    with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  let ungrouped =
    match Tsql.Eval.query catalog "SELECT COUNT(*) FROM P" with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  let count_at rel col probe =
    List.fold_left
      (fun acc t ->
        if Interval.contains (Tuple.valid t) probe then
          match Tuple.value t col with Value.Int n -> acc + n | _ -> acc
        else acc)
      0 (Trel.tuples rel)
  in
  List.iter
    (fun p ->
      let probe = Chronon.of_int p in
      Alcotest.(check int)
        (Printf.sprintf "probe %d" p)
        (count_at ungrouped 0 probe)
        (count_at grouped 1 probe))
    [ 0; 100; 500; 999; 1500; 1999 ]

(* CLI-less CSV export of a query result re-parses. *)
let test_query_result_csv_roundtrip () =
  let catalog = Tsql.Catalog.with_builtins () in
  let result =
    match
      Tsql.Eval.query catalog
        "SELECT name, MIN(salary), AVG(salary) FROM Employed GROUP BY name"
    with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  match Csv_io.of_string (Csv_io.to_string result) with
  | Error msg -> Alcotest.fail msg
  | Ok rel ->
      Alcotest.(check int) "rows preserved" (Trel.cardinality result)
        (Trel.cardinality rel)

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          quick "workload -> CSV -> TSQL = engine"
            test_pipeline_count_matches_engine;
          quick "optimizer routes sorted input to ktree"
            test_optimizer_uses_ktree_on_sorted_relation;
          quick "all hints agree" test_all_hints_agree_on_generated_data;
          quick "span query = Span.eval" test_span_query_matches_span_eval;
          quick "group-by partitions sum to total"
            test_group_by_partitions_sum;
          quick "query result CSV roundtrip" test_query_result_csv_roundtrip;
        ] );
    ]
