(* Tests for the future-work extensions: the limited-memory paged
   aggregation tree, duplicate elimination (DISTINCT), snapshot
   aggregates, variance/stddev, and page randomization. *)

open Temporal
open Tempagg

let c = Chronon.of_int
let iv = Interval.of_ints

let int_timeline =
  Alcotest.testable (Timeline.pp Format.pp_print_int) (Timeline.equal Int.equal)

let count_seq data () = Array.to_seq (Array.map (fun (i, _) -> (i, ())) data)

(* ------------------------------------------------------------------ *)
(* Paged tree                                                          *)
(* ------------------------------------------------------------------ *)

let random_workload ?(n = 2000) ?(long = 0.3) ?(seed = 3) () =
  Workload.Generate.random_intervals
    (Workload.Spec.make ~n ~lifespan:50_000 ~long_lived_fraction:long ~seed ())

let test_paged_equals_plain_across_budgets () =
  let data = random_workload () in
  let expected = Agg_tree.eval Monoid.count (count_seq data ()) in
  List.iter
    (fun budget ->
      Alcotest.check int_timeline
        (Printf.sprintf "budget %d" budget)
        expected
        (Paged_tree.eval ~budget_nodes:budget Monoid.count (count_seq data ())))
    [ 1_000_000; 2048; 256; 32; 8 ]

let test_paged_equals_plain_on_sorted_input () =
  let data = random_workload ~n:1500 () in
  Array.sort (fun (a, _) (b, _) -> Interval.compare a b) data;
  let expected = Korder_tree.eval ~k:1 Monoid.count (count_seq data ()) in
  Alcotest.check int_timeline "sorted adversarial input" expected
    (Paged_tree.eval ~budget_nodes:128 Monoid.count (count_seq data ()))

let test_paged_equals_plain_on_reverse_sorted_input () =
  (* Reverse time order is adversarial for the evict-the-larger-child
     policy in the opposite direction from sorted input. *)
  let data = random_workload ~n:1500 () in
  Array.sort (fun (a, _) (b, _) -> Interval.compare b a) data;
  let expected = Agg_tree.eval Monoid.count (count_seq data ()) in
  Alcotest.check int_timeline "reverse-sorted input" expected
    (Paged_tree.eval ~budget_nodes:128 Monoid.count (count_seq data ()))

let test_paged_memory_bounded () =
  let data = random_workload ~n:4000 () in
  let budget = 512 in
  let _, stats =
    Paged_tree.eval_with_stats ~budget_nodes:budget Monoid.count
      (count_seq data ())
  in
  let _, unbounded =
    Agg_tree.eval_with_stats Monoid.count (count_seq data ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "peak %d within ~3x budget %d"
       stats.Paged_tree.peak_live_nodes budget)
    true
    (stats.Paged_tree.peak_live_nodes <= 3 * budget);
  Alcotest.(check bool) "evictions happened" true (stats.Paged_tree.evictions > 0);
  Alcotest.(check bool) "spill happened" true (stats.Paged_tree.spilled_bytes > 0);
  Alcotest.(check bool) "far below the unbounded tree" true
    (stats.Paged_tree.peak_live_nodes * 4 < unbounded.Instrument.peak_live)

let test_paged_no_evictions_under_budget () =
  let data = random_workload ~n:200 () in
  let _, stats =
    Paged_tree.eval_with_stats ~budget_nodes:100_000 Monoid.count
      (count_seq data ())
  in
  Alcotest.(check int) "no evictions" 0 stats.Paged_tree.evictions;
  Alcotest.(check int) "no spill" 0 stats.Paged_tree.spilled_bytes

let test_paged_spill_files_removed () =
  let dir = Filename.temp_file "tempagg_spill" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let data = random_workload ~n:1000 () in
      ignore
        (Paged_tree.eval ~spill_dir:dir ~budget_nodes:64 Monoid.count
           (count_seq data ()));
      Alcotest.(check (array string)) "spill dir empty after result" [||]
        (Sys.readdir dir))

let test_paged_other_aggregates () =
  let data = random_workload ~n:800 () in
  let seq () = Array.to_seq data in
  Alcotest.(check bool) "sum" true
    (Timeline.equal Int.equal
       (Agg_tree.eval Monoid.sum_int (seq ()))
       (Paged_tree.eval ~budget_nodes:128 Monoid.sum_int (seq ())));
  Alcotest.(check bool) "max" true
    (Timeline.equal (Option.equal Int.equal)
       (Agg_tree.eval Monoid.max_int (seq ()))
       (Paged_tree.eval ~budget_nodes:128 Monoid.max_int (seq ())))

let test_paged_validation () =
  Alcotest.(check bool) "budget too small" true
    (match Paged_tree.create ~budget_nodes:4 Monoid.count with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let t = Paged_tree.create ~budget_nodes:64 Monoid.count in
  ignore (Paged_tree.result t);
  Alcotest.(check bool) "insert after result" true
    (match Paged_tree.insert t (iv 0 1) () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_paged_equals_reference =
  QCheck2.Test.make ~name:"paged tree = reference (random budgets)" ~count:100
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 40)
           (let* s = int_bound 100 in
            let* len = int_bound 30 in
            let* v = int_range 1 50 in
            return (iv s (s + len), v)))
        (int_range 8 64))
    (fun (data, budget) ->
      let expected = Reference.eval Monoid.sum_int data in
      Timeline.equal Int.equal expected
        (Paged_tree.eval ~budget_nodes:budget Monoid.sum_int
           (List.to_seq data)))

(* ------------------------------------------------------------------ *)
(* Distinct                                                            *)
(* ------------------------------------------------------------------ *)

let test_merge_intervals () =
  let merged =
    Distinct.merge_intervals [ iv 5 9; iv 0 2; iv 8 12; iv 3 3; iv 20 25 ]
  in
  Alcotest.(check (list string)) "merged"
    [ "[0,3]"; "[5,12]"; "[20,25]" ]
    (List.map Interval.to_string merged)

let test_merge_intervals_unbounded () =
  let merged =
    Distinct.merge_intervals [ Interval.from (c 10); iv 0 4; iv 8 12 ]
  in
  Alcotest.(check (list string)) "merged" [ "[0,4]"; "[8,oo]" ]
    (List.map Interval.to_string merged)

let test_distinct_count () =
  (* Two "alice" tuples overlap during [5,8]: DISTINCT counts one. *)
  let data =
    [ (iv 0 8, "alice"); (iv 5 12, "alice"); (iv 5 6, "bob") ]
  in
  let plain = Agg_tree.eval Monoid.count (List.to_seq data) in
  let distinct =
    Distinct.eval ~compare:String.compare Monoid.count (List.to_seq data)
  in
  Alcotest.(check (option int)) "plain sees 3 at 5" (Some 3)
    (Timeline.value_at plain (c 5));
  Alcotest.(check (option int)) "distinct sees 2 at 5" (Some 2)
    (Timeline.value_at distinct (c 5));
  Alcotest.(check (option int)) "identical where no dupes" (Some 1)
    (Timeline.value_at distinct (c 10))

let test_distinct_adjacent_intervals_merge () =
  (* [0,4] and [5,9] for the same value are adjacent: still one logical
     validity period. *)
  let data = [ (iv 0 4, "x"); (iv 5 9, "x") ] in
  let prepared = Distinct.prepare ~compare:String.compare (List.to_seq data) in
  Alcotest.(check int) "one merged interval" 1 (List.length prepared)

let prop_distinct_is_pointwise_dedup =
  QCheck2.Test.make ~name:"distinct = per-instant value dedup" ~count:200
    QCheck2.Gen.(
      list_size (int_range 0 25)
        (let* s = int_bound 60 in
         let* len = int_bound 20 in
         let* v = int_range 1 5 in
         return (iv s (s + len), v)))
    (fun data ->
      let tl =
        Distinct.eval ~compare:Int.compare Monoid.count (List.to_seq data)
      in
      List.for_all
        (fun probe ->
          let p = c probe in
          let expected =
            List.sort_uniq Int.compare
              (List.filter_map
                 (fun (i, v) -> if Interval.contains i p then Some v else None)
                 data)
            |> List.length
          in
          Timeline.value_at tl p = Some expected)
        [ 0; 3; 17; 42; 60; 90 ])

let tsql_catalog =
  let schema =
    Relation.Schema.of_pairs
      [ ("name", Relation.Value.Tstring); ("salary", Relation.Value.Tint) ]
  in
  let mk name salary a b =
    Relation.Tuple.make
      [| Relation.Value.Str name; Relation.Value.Int salary |]
      (iv a b)
  in
  Tsql.Catalog.add (Tsql.Catalog.with_builtins ()) "Shifts"
    (Relation.Trel.create schema
       [ mk "alice" 10 0 8; mk "alice" 10 5 12; mk "bob" 20 5 6 ])

let test_tsql_count_distinct () =
  match
    Tsql.Eval.query tsql_catalog "SELECT COUNT(DISTINCT name) FROM Shifts"
  with
  | Error msg -> Alcotest.fail msg
  | Ok rel ->
      let at probe =
        List.find_map
          (fun t ->
            if Interval.contains (Relation.Tuple.valid t) (c probe) then
              Relation.Value.to_int (Relation.Tuple.value t 0)
            else None)
          (Relation.Trel.tuples rel)
      in
      Alcotest.(check (option int)) "2 distinct at 5" (Some 2) (at 5);
      Alcotest.(check (option int)) "1 distinct at 10" (Some 1) (at 10)

let test_tsql_distinct_star_rejected () =
  Alcotest.(check bool) "error" true
    (Result.is_error
       (Tsql.Eval.query tsql_catalog "SELECT COUNT(DISTINCT *) FROM Shifts"))

let test_tsql_distinct_roundtrip () =
  let q = "SELECT COUNT(DISTINCT name) FROM Shifts" in
  match Tsql.Parser.parse q with
  | Error msg -> Alcotest.fail msg
  | Ok ast -> Alcotest.(check string) "roundtrip" q (Tsql.Ast.to_string ast)

(* ------------------------------------------------------------------ *)
(* Snapshot aggregates (Section 3)                                     *)
(* ------------------------------------------------------------------ *)

let employed_data () =
  Relation.Trel.agg_input (Relation.Fixtures.employed ()) ~column:"salary"
  |> Seq.map (fun (i, v) ->
         (i, Option.value (Relation.Value.to_int v) ~default:0))
  |> List.of_seq

let test_snapshot_scalar () =
  let result, counter =
    Snapshot.scalar Monoid.avg_int (List.to_seq [ 1; 2; 3; 6 ])
  in
  Alcotest.(check (option (float 1e-9))) "avg" (Some 3.) result;
  Alcotest.(check int) "counter" 4 counter

let test_snapshot_scalar_empty () =
  let result, counter = Snapshot.scalar Monoid.min_int Seq.empty in
  Alcotest.(check (option int)) "empty min" None result;
  Alcotest.(check int) "counter" 0 counter

let test_snapshot_grouped () =
  let words = [ "a"; "bb"; "cc"; "d"; "eee" ] in
  let groups =
    Snapshot.grouped ~compare:Int.compare ~key:String.length Monoid.count
      (List.to_seq words)
  in
  Alcotest.(check (list (triple int int int))) "by length"
    [ (1, 2, 2); (2, 2, 2); (3, 1, 1) ]
    groups

let test_snapshot_timeslice () =
  let data = employed_data () in
  Alcotest.(check (list int)) "snapshot at 19"
    [ 40_000; 45_000; 37_000 ]
    (List.of_seq (Snapshot.timeslice ~at:(c 19) (List.to_seq data)))

let test_snapshot_at_matches_timeline () =
  let data = employed_data () in
  let tl = Agg_tree.eval Monoid.count (count_seq (Array.of_list data) ()) in
  List.iter
    (fun probe ->
      Alcotest.(check (option int))
        (Printf.sprintf "instant %d" probe)
        (Timeline.value_at tl (c probe))
        (Some
           (Snapshot.at ~at:(c probe)
              (Monoid.contramap (fun (_ : int) -> ()) Monoid.count)
              (List.to_seq data))))
    [ 0; 7; 10; 15; 19; 21; 100 ]

let prop_snapshot_equals_timeline_sample =
  QCheck2.Test.make ~name:"snapshot at t = timeline sampled at t" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 30)
           (let* s = int_bound 80 in
            let* len = int_bound 25 in
            let* v = int_range 1 100 in
            return (iv s (s + len), v)))
        (int_bound 120))
    (fun (data, probe) ->
      let tl = Agg_tree.eval Monoid.sum_int (List.to_seq data) in
      Timeline.value_at tl (c probe)
      = Some (Snapshot.at ~at:(c probe) Monoid.sum_int (List.to_seq data)))

(* ------------------------------------------------------------------ *)
(* Variance / stddev                                                   *)
(* ------------------------------------------------------------------ *)

let test_variance_values () =
  let fold m vs =
    m.Monoid.output
      (List.fold_left
         (fun acc v -> m.Monoid.combine acc (m.Monoid.inject v))
         m.Monoid.empty vs)
  in
  (match fold Monoid.variance [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] with
  | Some v -> Alcotest.(check (float 1e-9)) "variance" 4. v
  | None -> Alcotest.fail "expected variance");
  (match fold Monoid.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] with
  | Some s -> Alcotest.(check (float 1e-9)) "stddev" 2. s
  | None -> Alcotest.fail "expected stddev");
  Alcotest.(check bool) "empty" true (fold Monoid.variance [] = None);
  (match fold Monoid.variance [ 5. ] with
  | Some v -> Alcotest.(check (float 1e-9)) "singleton" 0. v
  | None -> Alcotest.fail "expected 0 variance")

let test_variance_over_timeline () =
  let data = [ (iv 0 9, 2.); (iv 5 9, 4.); (iv 5 9, 6.) ] in
  let tl = Agg_tree.eval Monoid.variance (List.to_seq data) in
  (match Timeline.value_at tl (c 7) with
  | Some (Some v) ->
      (* values {2,4,6}: mean 4, variance 8/3 *)
      Alcotest.(check (float 1e-9)) "variance at 7" (8. /. 3.) v
  | _ -> Alcotest.fail "expected variance");
  match Timeline.value_at tl (c 2) with
  | Some (Some v) -> Alcotest.(check (float 1e-9)) "single value" 0. v
  | _ -> Alcotest.fail "expected variance"

(* ------------------------------------------------------------------ *)
(* Page randomization (Section 7)                                      *)
(* ------------------------------------------------------------------ *)

let mk_rand seed =
  let prng = Workload.Prng.create ~seed in
  Workload.Prng.int_bounded prng

let test_page_randomized_is_permutation () =
  let a = Array.init 1000 Fun.id in
  let out =
    Ordering.Perturb.page_randomized ~rand:(mk_rand 1) ~page_tuples:64
      ~buffer_pages:4 a
  in
  let sorted = Array.copy out in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" a sorted

let test_page_randomized_k_bound () =
  let a = Array.init 5000 Fun.id in
  let group = 64 * 4 in
  let out =
    Ordering.Perturb.page_randomized ~rand:(mk_rand 2) ~page_tuples:64
      ~buffer_pages:4 a
  in
  Alcotest.(check bool) "k below group size" true
    (Ordering.Korder.k_of ~compare:Int.compare out < group);
  Alcotest.(check bool) "actually disordered" true
    (Ordering.Korder.k_of ~compare:Int.compare out > 0)

let test_page_randomized_debalances_tree () =
  (* The Section 7 claim: page randomization avoids linearizing the tree
     on sorted input. *)
  let spec = Workload.Spec.make ~n:2000 ~lifespan:100_000 ~seed:9 () in
  let sorted = Workload.Generate.sorted_intervals spec in
  let randomized =
    Ordering.Perturb.page_randomized ~rand:(mk_rand 3) ~page_tuples:64
      ~buffer_pages:8 sorted
  in
  let depth_of data =
    let t = Agg_tree.create Monoid.count in
    Array.iter (fun (i, _) -> Agg_tree.insert t i ()) data;
    Agg_tree.depth t
  in
  let sorted_depth = depth_of sorted and randomized_depth = depth_of randomized in
  Alcotest.(check bool)
    (Printf.sprintf "depth %d << %d" randomized_depth sorted_depth)
    true
    (randomized_depth * 5 < sorted_depth);
  (* And the result is unchanged. *)
  Alcotest.check int_timeline "same result"
    (Agg_tree.eval Monoid.count (count_seq sorted ()))
    (Agg_tree.eval Monoid.count (count_seq randomized ()))

let test_page_randomized_validation () =
  Alcotest.(check bool) "page_tuples" true
    (match
       Ordering.Perturb.page_randomized ~rand:(mk_rand 1) ~page_tuples:0
         ~buffer_pages:1 [| 1 |]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "extensions"
    [
      ( "paged-tree",
        [
          quick "equals plain tree across budgets"
            test_paged_equals_plain_across_budgets;
          quick "sorted adversarial input" test_paged_equals_plain_on_sorted_input;
          quick "reverse-sorted adversarial input"
            test_paged_equals_plain_on_reverse_sorted_input;
          quick "memory bounded" test_paged_memory_bounded;
          quick "no evictions under budget" test_paged_no_evictions_under_budget;
          quick "spill files removed" test_paged_spill_files_removed;
          quick "other aggregates" test_paged_other_aggregates;
          quick "validation" test_paged_validation;
          QCheck_alcotest.to_alcotest ~long:false prop_paged_equals_reference;
        ] );
      ( "distinct",
        [
          quick "merge intervals" test_merge_intervals;
          quick "merge unbounded" test_merge_intervals_unbounded;
          quick "distinct count" test_distinct_count;
          quick "adjacent intervals merge" test_distinct_adjacent_intervals_merge;
          QCheck_alcotest.to_alcotest ~long:false prop_distinct_is_pointwise_dedup;
          quick "TSQL COUNT(DISTINCT col)" test_tsql_count_distinct;
          quick "TSQL rejects DISTINCT *" test_tsql_distinct_star_rejected;
          quick "TSQL distinct roundtrip" test_tsql_distinct_roundtrip;
        ] );
      ( "snapshot",
        [
          quick "scalar with counter" test_snapshot_scalar;
          quick "scalar over empty input" test_snapshot_scalar_empty;
          quick "grouped (temporary relation)" test_snapshot_grouped;
          quick "timeslice" test_snapshot_timeslice;
          quick "at matches timeline" test_snapshot_at_matches_timeline;
          QCheck_alcotest.to_alcotest ~long:false
            prop_snapshot_equals_timeline_sample;
        ] );
      ( "variance",
        [
          quick "values" test_variance_values;
          quick "over a timeline" test_variance_over_timeline;
        ] );
      ( "page-randomization",
        [
          quick "permutation" test_page_randomized_is_permutation;
          quick "k bounded by group" test_page_randomized_k_bound;
          quick "avoids tree linearization" test_page_randomized_debalances_tree;
          quick "validation" test_page_randomized_validation;
        ] );
    ]
