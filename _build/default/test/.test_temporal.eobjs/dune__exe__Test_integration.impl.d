test/test_integration.ml: Alcotest Chronon Csv_io Format Granule Int Interval List Printf Relation Seq String Tempagg Temporal Timeline Trel Tsql Tuple Value Workload
