test/test_ordering.ml: Alcotest Array Float Fun Int Korder List Ordering Perturb Printf QCheck2 QCheck_alcotest Relation Workload
