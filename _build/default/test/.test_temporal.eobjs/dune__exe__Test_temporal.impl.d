test/test_temporal.ml: Alcotest Chronon Format Granule Int Interval Interval_set List QCheck2 QCheck_alcotest Temporal Timeline
