test/test_relation.ml: Alcotest Chronon Csv_io Filename Fixtures Fun Interval List Option Printf Relation Result Schema Seq String Sys Temporal Trel Tuple Value
