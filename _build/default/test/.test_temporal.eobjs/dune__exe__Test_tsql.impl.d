test/test_tsql.ml: Alcotest Array Fixtures List Option Printf Relation Result Schema String Temporal Trel Tsql Tuple Value
