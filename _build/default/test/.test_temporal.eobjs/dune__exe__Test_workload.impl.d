test/test_workload.ml: Alcotest Array Chronon Float Generate Interval List Ordering Printf Prng QCheck2 QCheck_alcotest Relation Spec Stdlib String Temporal Workload
