test/test_cli.ml: Alcotest Array Filename Fun In_channel List Printf String Sys
