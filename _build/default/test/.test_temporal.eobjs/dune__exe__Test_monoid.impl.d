test/test_monoid.ml: Alcotest Float Int List Monoid Option QCheck2 QCheck_alcotest String Tempagg
