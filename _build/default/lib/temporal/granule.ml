type t = { length : int; anchor : Chronon.t }

let make ?(anchor = Chronon.origin) length =
  if length <= 0 then invalid_arg "Granule.make: span length must be positive";
  if not (Chronon.is_finite anchor) then
    invalid_arg "Granule.make: anchor must be finite";
  { length; anchor }

let instant = { length = 1; anchor = Chronon.origin }

let index_of g c =
  if not (Chronon.is_finite c) then
    invalid_arg "Granule.index_of: infinite instant";
  if Chronon.( < ) c g.anchor then
    invalid_arg "Granule.index_of: instant before anchor";
  Chronon.diff c g.anchor / g.length

let span_of g i =
  if i < 0 then invalid_arg "Granule.span_of: negative index";
  let start = Chronon.add g.anchor (i * g.length) in
  Interval.make start (Chronon.add start (g.length - 1))

let quantize g iv =
  let lo = index_of g (Interval.start iv) in
  let hi =
    if Chronon.is_finite (Interval.stop iv) then
      Some (index_of g (Interval.stop iv))
    else None
  in
  (lo, hi)

let align g iv =
  let lo, hi = quantize g iv in
  let start = Interval.start (span_of g lo) in
  match hi with
  | Some hi -> Interval.make start (Interval.stop (span_of g hi))
  | None -> Interval.from start

let pp ppf g =
  Format.fprintf ppf "span(length=%d,anchor=%a)" g.length Chronon.pp g.anchor
