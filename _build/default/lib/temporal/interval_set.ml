type t = Interval.t list
(* Invariant: time-ordered, pairwise disjoint, non-adjacent (canonical). *)

let empty = []
let is_empty t = t = []
let of_interval iv = [ iv ]

let of_intervals intervals =
  let sorted = List.sort Interval.compare intervals in
  let merged =
    List.fold_left
      (fun acc iv ->
        match acc with
        | prev :: rest -> (
            match Interval.merge prev iv with
            | Some joined -> joined :: rest
            | None -> iv :: acc)
        | [] -> [ iv ])
      [] sorted
  in
  List.rev merged

let intervals t = t
let cardinal = List.length

let duration t =
  List.fold_left
    (fun acc iv ->
      match (acc, Interval.duration iv) with
      | Some total, Some d -> Some (total + d)
      | _ -> None)
    (Some 0) t

let mem t c =
  let rec search = function
    | [] -> false
    | iv :: rest ->
        if Chronon.( < ) c (Interval.start iv) then false
        else Interval.contains iv c || search rest
  in
  search t

let add t iv = of_intervals (iv :: t)
let union a b = of_intervals (a @ b)

let inter a b =
  let rec go acc a b =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | ia :: ra, ib :: rb -> (
        let acc =
          match Interval.intersect ia ib with
          | Some common -> common :: acc
          | None -> acc
        in
        match Chronon.compare (Interval.stop ia) (Interval.stop ib) with
        | c when c < 0 -> go acc ra b
        | 0 -> go acc ra rb
        | _ -> go acc a rb)
  in
  go [] a b

let diff a b =
  let rec go acc a b =
    match (a, b) with
    | [], _ -> List.rev acc
    | rest, [] -> List.rev_append acc rest
    | ia :: ra, ib :: rb ->
        if Chronon.( < ) (Interval.stop ia) (Interval.start ib) then
          go (ia :: acc) ra b
        else if Chronon.( < ) (Interval.stop ib) (Interval.start ia) then
          go acc a rb
        else begin
          (* Overlap: keep the part of [ia] before [ib], requeue the part
             after [ib]. *)
          let acc =
            if Chronon.( < ) (Interval.start ia) (Interval.start ib) then
              Interval.make (Interval.start ia)
                (Chronon.pred (Interval.start ib))
              :: acc
            else acc
          in
          if Chronon.( > ) (Interval.stop ia) (Interval.stop ib) then
            go acc
              (Interval.make
                 (Chronon.succ (Interval.stop ib))
                 (Interval.stop ia)
              :: ra)
              rb
          else go acc ra b
        end
  in
  go [] a b

let complement ?(within = Interval.full) t =
  diff (of_interval within) t

let equal a b = List.equal Interval.equal a b
let is_empty_diff a b = is_empty (diff a b)
let subset a b = is_empty_diff a b

let hull = function
  | [] -> None
  | first :: _ as t ->
      let last = List.nth t (List.length t - 1) in
      Some (Interval.make (Interval.start first) (Interval.stop last))

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat " " (List.map Interval.to_string t))
