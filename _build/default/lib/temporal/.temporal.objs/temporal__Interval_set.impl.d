lib/temporal/interval_set.ml: Chronon Format Interval List String
