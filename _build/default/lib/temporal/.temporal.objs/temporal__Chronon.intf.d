lib/temporal/chronon.mli: Format
