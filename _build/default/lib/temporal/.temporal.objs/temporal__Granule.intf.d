lib/temporal/granule.mli: Chronon Format Interval
