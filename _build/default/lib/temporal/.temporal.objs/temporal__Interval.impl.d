lib/temporal/interval.ml: Chronon Format Printf
