lib/temporal/interval_set.mli: Chronon Format Interval
