lib/temporal/timeline.ml: Array Chronon Format Interval List Printf
