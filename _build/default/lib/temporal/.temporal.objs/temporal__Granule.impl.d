lib/temporal/granule.ml: Chronon Format Interval
