lib/temporal/interval.mli: Chronon Format
