lib/temporal/timeline.mli: Chronon Format Interval
