lib/temporal/chronon.ml: Format Int Stdlib
