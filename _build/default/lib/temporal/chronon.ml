type t = int

let origin = 0
let forever = max_int

let of_int n =
  if n < 0 then invalid_arg "Chronon.of_int: negative chronon" else n

let to_int c = c
let is_finite c = c <> forever
let equal = Int.equal
let compare = Int.compare
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let min (a : t) b = Stdlib.min a b
let max (a : t) b = Stdlib.max a b
let succ c = if c = forever then forever else c + 1

let pred c =
  if c = origin then invalid_arg "Chronon.pred: origin has no predecessor"
  else if c = forever then invalid_arg "Chronon.pred: forever has no predecessor"
  else c - 1

let add c n =
  if Stdlib.( < ) n 0 then invalid_arg "Chronon.add: negative delta"
  else if c = forever then forever
  else if Stdlib.( > ) c (forever - n) then forever
  else c + n

let diff a b =
  if a = forever || b = forever then invalid_arg "Chronon.diff: infinite chronon"
  else a - b

let to_string c = if c = forever then "oo" else string_of_int c
let pp ppf c = Format.pp_print_string ppf (to_string c)
