(** Chronons: the discrete instants of the temporal database time-line.

    The paper models time as the instants [0 .. +infinity], where an instant
    (a {e chronon}) is the smallest measurable period of time.  We represent
    chronons as non-negative [int]s; the distinguished value {!forever}
    plays the role of the paper's [oo] (the greatest timestamp).

    All functions in this module treat {!forever} as an absorbing maximum:
    it compares greater than every finite chronon, and arithmetic saturates
    at it. *)

type t = private int

val origin : t
(** The earliest timestamp, [0]. *)

val forever : t
(** The greatest timestamp, the paper's [oo]. *)

val of_int : int -> t
(** [of_int n] is the chronon [n].
    @raise Invalid_argument if [n < 0]. [of_int max_int] is {!forever}. *)

val to_int : t -> int
(** [to_int c] is the underlying integer; [to_int forever = max_int]. *)

val is_finite : t -> bool
(** [is_finite c] is [false] exactly for {!forever}. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val succ : t -> t
(** [succ c] is the next instant.  [succ forever = forever]. *)

val pred : t -> t
(** [pred c] is the previous instant.
    @raise Invalid_argument on {!origin} or {!forever} (the predecessor of
    the greatest timestamp is not representable). *)

val add : t -> int -> t
(** [add c n] advances [c] by [n >= 0] instants, saturating at {!forever}.
    @raise Invalid_argument if [n < 0]. *)

val diff : t -> t -> int
(** [diff a b] is [to_int a - to_int b] for finite chronons.
    @raise Invalid_argument if either argument is {!forever}. *)

val to_string : t -> string
(** Decimal digits, or ["oo"] for {!forever}. *)

val pp : Format.formatter -> t -> unit
