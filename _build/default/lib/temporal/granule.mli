(** Spans: fixed-length partitionings of the time-line.

    TSQL2 temporal grouping partitions either by instant or by a {e span} —
    a calendar-defined length of time such as a year (paper, Section 2).
    A granularity [g] with span length [len] and anchor [a] partitions the
    finite time-line into spans
    [[a, a+len-1]], [[a+len, a+2len-1]], ... indexed from 0. *)

type t = private { length : int; anchor : Chronon.t }

val make : ?anchor:Chronon.t -> int -> t
(** [make ?anchor len] is the granularity of spans of [len] instants
    starting at [anchor] (default {!Chronon.origin}).
    @raise Invalid_argument if [len <= 0] or [anchor] is not finite. *)

val instant : t
(** Span length 1 — grouping by instant. *)

val index_of : t -> Chronon.t -> int
(** The index of the span containing the given finite instant.
    @raise Invalid_argument if the instant is infinite or before the
    anchor. *)

val span_of : t -> int -> Interval.t
(** [span_of g i] is the interval of span index [i >= 0]. *)

val quantize : t -> Interval.t -> int * int option
(** [quantize g iv] is the inclusive range [(lo, hi)] of span indices
    overlapped by [iv]; [hi = None] when [iv] extends to
    {!Chronon.forever}. *)

val align : t -> Interval.t -> Interval.t
(** The smallest span-aligned interval covering the argument (the stop
    stays {!Chronon.forever} for unbounded intervals). *)

val pp : Format.formatter -> t -> unit
