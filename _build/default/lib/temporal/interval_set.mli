(** Sets of instants, represented as maximal disjoint intervals in time
    order.

    The temporal database's value-equivalent coalescing, duplicate
    elimination and valid-time windows all manipulate unions of
    intervals; this module gives them one canonical representation with
    the usual set algebra.  All operations preserve and rely on the
    canonical form: intervals sorted, pairwise disjoint and
    non-adjacent. *)

type t

val empty : t
val is_empty : t -> bool

val of_interval : Interval.t -> t

val of_intervals : Interval.t list -> t
(** Union of arbitrary (possibly overlapping, unordered) intervals. *)

val intervals : t -> Interval.t list
(** The canonical decomposition, in time order. *)

val cardinal : t -> int
(** Number of maximal intervals (not instants). *)

val duration : t -> int option
(** Total number of instants contained; [None] if unbounded. *)

val mem : t -> Chronon.t -> bool

val add : t -> Interval.t -> t

val union : t -> t -> t
val inter : t -> t -> t

val diff : t -> t -> t
(** Instants in the first set but not the second. *)

val complement : ?within:Interval.t -> t -> t
(** Instants of [within] (default the full time-line) not in the set. *)

val equal : t -> t -> bool
val subset : t -> t -> bool

val hull : t -> Interval.t option
(** Smallest single interval covering the set; [None] when empty. *)

val pp : Format.formatter -> t -> unit
