(** Heap files: temporal relations on disk as pages of fixed-width slots.

    Layout: a header page (magic, version, page size, slot size, tuple
    count, and the schema as a CSV-style declaration) followed by data
    pages, each holding a slot count and up to
    [(page_size - 4) / slot_bytes] encoded tuples.  Scans read one page at
    a time and charge every page transfer to the supplied {!Io_stats}.

    Heap files preserve physical tuple order — the property the paper's
    algorithms care about (sorted / k-ordered / random). *)

open Relation

val default_page_size : int
(** 8192 bytes. *)

(** {1 Writing} *)

type writer

val create :
  ?page_size:int ->
  ?slot_bytes:int ->
  stats:Io_stats.t ->
  string ->
  Schema.t ->
  writer
(** Create (truncate) the named file.
    @raise Invalid_argument if a page cannot hold at least one slot, or
    the schema declaration does not fit the header page. *)

val append : writer -> Tuple.t -> unit
(** @raise Invalid_argument if the tuple does not fit a slot or disagrees
    with the schema. *)

val close_writer : writer -> unit
(** Flush the final partial page and the header.  Idempotent. *)

(** {1 Reading} *)

type reader

val open_reader : stats:Io_stats.t -> string -> reader
(** @raise Invalid_argument on a missing or malformed file. *)

val schema : reader -> Schema.t
val cardinality : reader -> int
val page_size : reader -> int
val slot_bytes : reader -> int

val data_pages : reader -> int
(** Number of data pages (excluding the header). *)

val scan : ?pool:Buffer_pool.t -> reader -> Tuple.t Seq.t
(** Sequential scan in physical order; pages are charged as they are
    pulled.  The sequence may be re-consumed (each traversal re-reads).
    With [pool], cached pages are served without touching the disk or the
    {!Io_stats} counters — how a second scan (e.g. Tuma's two-scan
    algorithm) can come for free when the relation fits the pool. *)

val close_reader : reader -> unit

(** {1 Whole-relation convenience} *)

val write_relation :
  ?page_size:int -> ?slot_bytes:int -> stats:Io_stats.t -> string -> Trel.t -> unit

val read_relation : stats:Io_stats.t -> string -> Trel.t
