(** Disk-I/O accounting.

    The paper's Section 6.3 weighs "the cost of increased memory
    requirements [against] the cost of disk access" — e.g. whether the
    disk time needed to sort the relation beats the aggregation tree's
    memory appetite.  Every storage operation in this library charges its
    page reads and writes to an [Io_stats.t] so that trade-off can be
    measured rather than guessed. *)

type t

val create : unit -> t

val read_page : t -> unit
val write_page : t -> unit

val pages_read : t -> int
val pages_written : t -> int

val total_pages : t -> int

val reset : t -> unit

type snapshot = { pages_read : int; pages_written : int }

val snapshot : t -> snapshot
val pp_snapshot : Format.formatter -> snapshot -> unit
