lib/storage/heap_file.ml: Array Buffer_pool Bytes Codec Fun Int32 Int64 Io_stats List Printf Relation Schema Seq String Trel Tuple Value
