lib/storage/codec.ml: Array Bytes Char Chronon Int64 Interval Printf Relation Schema String Temporal Tuple Value
