lib/storage/heap_file.mli: Buffer_pool Io_stats Relation Schema Seq Trel Tuple
