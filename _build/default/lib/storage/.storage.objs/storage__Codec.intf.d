lib/storage/codec.mli: Relation
