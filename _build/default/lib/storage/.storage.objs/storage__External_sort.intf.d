lib/storage/external_sort.mli: Io_stats
