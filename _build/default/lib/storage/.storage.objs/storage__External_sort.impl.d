lib/storage/external_sort.ml: Array Filename Fun Heap_file List Relation Seq Stdlib Sys Tuple
