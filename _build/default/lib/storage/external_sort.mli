(** External merge sort of heap files by valid time.

    The paper's headline recommendation — "first sort the underlying
    relation, then apply the k-ordered aggregation tree with k = 1" —
    requires sorting relations that exceed main memory.  This is the
    classic run-formation + k-way-merge sort: runs of [memory_tuples]
    tuples are sorted in memory and spilled, then merged [fan_in] runs at
    a time.  All page traffic (source scan, run writes, merge passes) is
    charged to the supplied {!Io_stats}, so the Section 6.3 trade-off
    "disk access time necessary to sort" can be measured. *)

val sort :
  ?memory_tuples:int ->
  ?fan_in:int ->
  stats:Io_stats.t ->
  src:string ->
  dst:string ->
  unit ->
  unit
(** Sort the heap file [src] into a new heap file [dst] by (start, stop).
    The sort is stable.  Defaults: [memory_tuples = 4096] (a few hundred
    KB of 128-byte slots), [fan_in = 16].  Temporary run files are
    created via {!Filename.temp_file} and removed afterwards.
    @raise Invalid_argument if [src] is not a heap file, or the knobs are
    not positive. *)

val run_count : n:int -> memory_tuples:int -> int
(** Number of initial runs the sort will form — exposed for cost
    estimation ([ceil (n / memory_tuples)]). *)

val estimated_page_io : n:int -> pages:int -> memory_tuples:int -> fan_in:int -> int
(** Predicted total page transfers: one read and one write of the data
    per merge level plus the initial run formation. *)
