type t = { mutable reads : int; mutable writes : int }

let create () = { reads = 0; writes = 0 }
let read_page t = t.reads <- t.reads + 1
let write_page t = t.writes <- t.writes + 1
let pages_read t = t.reads
let pages_written t = t.writes
let total_pages t = t.reads + t.writes

let reset t =
  t.reads <- 0;
  t.writes <- 0

type snapshot = { pages_read : int; pages_written : int }

let snapshot t = { pages_read = t.reads; pages_written = t.writes }

let pp_snapshot ppf s =
  Format.fprintf ppf "pages_read=%d pages_written=%d" s.pages_read
    s.pages_written
