(** Sortedness metrics for temporal relations (paper, Section 5.2).

    A sequence is {e k-ordered} when every element is at most [k]
    positions away from its position in the stable-sorted order; totally
    ordered is 0-ordered.  The {e k-ordered-percentage} summarizes how
    much of that disorder budget a sequence uses:

    {v
      k-ordered-percentage = (sum over i of i * n_i) / (k * n)
    v}

    where [n_i] is the number of elements [i] positions out of order.  It
    is 0 for a sorted sequence and at most 1 (only attainable for certain
    [k] and [n]); see the paper's Table 2 for worked examples. *)

val displacements : compare:('a -> 'a -> int) -> 'a array -> int array
(** [displacements ~compare a] gives, for each position of [a], the
    distance between that position and the element's position in the
    stable sort of [a].  Stability makes the result well-defined under
    duplicate keys. *)

val k_of : compare:('a -> 'a -> int) -> 'a array -> int
(** The smallest [k] for which the array is k-ordered: the maximum
    displacement (0 for empty or sorted arrays). *)

val percentage : compare:('a -> 'a -> int) -> k:int -> 'a array -> float
(** The k-ordered-percentage for the given [k].
    @raise Invalid_argument if [k <= 0], or if the array is not k-ordered
    for this [k] (some displacement exceeds [k], making the ratio
    meaningless). *)

(** The same metrics over a relation's physical tuple order, compared by
    valid time (start, then stop). *)

val relation_displacements : Relation.Trel.t -> int array
val k_of_relation : Relation.Trel.t -> int
val relation_percentage : k:int -> Relation.Trel.t -> float
