lib/ordering/korder.ml: Array Fun Int Printf Relation Stdlib
