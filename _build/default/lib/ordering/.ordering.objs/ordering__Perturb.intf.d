lib/ordering/perturb.mli:
