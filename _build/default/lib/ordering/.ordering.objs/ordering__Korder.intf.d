lib/ordering/korder.mli: Relation
