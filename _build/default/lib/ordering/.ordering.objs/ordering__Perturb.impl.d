lib/ordering/perturb.ml: Array Float Int List Stdlib
