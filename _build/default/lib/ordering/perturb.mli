(** Controlled disordering of sorted sequences.

    The paper's Figures 7–9 run the algorithms over relations that are
    "sorted, then altered according to various k-ordered and
    k-ordered-percentage values".  This module builds such inputs:
    {!k_ordered} realizes a target (k, percentage) with random
    transpositions; {!realize_displacements} builds the exact displacement
    profiles of the paper's Table 2; {!shuffle} produces the fully random
    order used in Figure 6.

    All functions return a fresh array (the input is not modified) and
    draw randomness only from the supplied [rand] (see
    {!Workload.Prng.int_bounded}). *)

val shuffle : rand:(int -> int) -> 'a array -> 'a array
(** Fisher–Yates; [rand n] must return a uniform draw from [[0, n-1]]. *)

val k_ordered : rand:(int -> int) -> k:int -> percentage:float -> 'a array -> 'a array
(** Perturb a sorted array with [round (percentage * n / 2)] disjoint
    transpositions of elements exactly [k] apart: each transposition
    displaces two elements by [k], so the result (for distinct keys) is
    exactly k-ordered with k-ordered-percentage ≈ [percentage].
    @raise Invalid_argument if [k <= 0], [percentage] is outside [0, 1],
    or the array is too small to host the required disjoint
    transpositions. *)

val realize_displacements : (int * int) list -> 'a array -> 'a array
(** [realize_displacements spec a] permutes the sorted array [a] so that,
    for every [(d, count)] in [spec], exactly [count] elements end up [d]
    positions out of order, and all other elements stay in place.

    Even [count]s are realized by [count/2] transpositions of distance
    [d].  Odd leftovers are grouped into 4-cycles realizing displacements
    [(a, b, c, d)] with [a + b = c + d]; this works whenever the leftover
    displacements form pairs of equal sums when matched smallest-with-
    largest (true for the arithmetic runs used in the paper's Table 2).
    @raise Invalid_argument when the spec is unrealizable by this
    strategy, a displacement is non-positive, or the array is too small. *)

val page_randomized :
  rand:(int -> int) -> page_tuples:int -> buffer_pages:int -> 'a array -> 'a array
(** Simulate the paper's Section 7 proposal for running the aggregation
    tree over a sorted relation: "randomize the relation's pages when
    they are read to avoid linearizing the aggregation tree ...
    performed on each group of pages read into memory".  The array is
    processed in groups of [buffer_pages * page_tuples] consecutive
    elements; each group is shuffled internally, leaving the relation
    k-ordered with k < group size while breaking the insertion-order
    degeneracy.
    @raise Invalid_argument if either knob is non-positive. *)
