let displacements ~compare a =
  let n = Array.length a in
  (* Stable sort of indices by element: position j in [order] holds the
     original index of the element ranked j-th. *)
  let order = Array.init n Fun.id in
  let cmp i j =
    let c = compare a.(i) a.(j) in
    if c <> 0 then c else Int.compare i j
  in
  Array.sort cmp order;
  let disp = Array.make n 0 in
  Array.iteri
    (fun rank original -> disp.(original) <- abs (rank - original))
    order;
  disp

let k_of ~compare a =
  Array.fold_left Stdlib.max 0 (displacements ~compare a)

let percentage ~compare ~k a =
  if k <= 0 then invalid_arg "Korder.percentage: k must be positive";
  let disp = displacements ~compare a in
  let n = Array.length a in
  if n = 0 then 0.
  else begin
    let sum =
      Array.fold_left
        (fun acc d ->
          if d > k then
            invalid_arg
              (Printf.sprintf
                 "Korder.percentage: displacement %d exceeds k=%d" d k)
          else acc + d)
        0 disp
    in
    float_of_int sum /. float_of_int (k * n)
  end

let tuples_array rel = Array.of_list (Relation.Trel.tuples rel)

let relation_displacements rel =
  displacements ~compare:Relation.Tuple.compare_by_time (tuples_array rel)

let k_of_relation rel =
  k_of ~compare:Relation.Tuple.compare_by_time (tuples_array rel)

let relation_percentage ~k rel =
  percentage ~compare:Relation.Tuple.compare_by_time ~k (tuples_array rel)
