let shuffle ~rand a =
  let out = Array.copy a in
  for i = Array.length out - 1 downto 1 do
    let j = rand (i + 1) in
    let tmp = out.(i) in
    out.(i) <- out.(j);
    out.(j) <- tmp
  done;
  out

let k_ordered ~rand ~k ~percentage a =
  if k <= 0 then invalid_arg "Perturb.k_ordered: k must be positive";
  if percentage < 0. || percentage > 1. then
    invalid_arg "Perturb.k_ordered: percentage outside [0,1]";
  let n = Array.length a in
  let swaps =
    int_of_float (Float.round (percentage *. float_of_int n /. 2.))
  in
  let out = Array.copy a in
  if swaps = 0 then out
  else if n <= k then
    invalid_arg "Perturb.k_ordered: array too small for distance-k swaps"
  else begin
    let used = Array.make n false in
    (* Pick disjoint transpositions (i, i+k).  Random probing almost always
       succeeds at the paper's densities (percentage <= 0.14); fall back to
       a scan when it does not. *)
    let place () =
      let rec probe attempts =
        if attempts = 0 then scan 0
        else
          let i = rand (n - k) in
          if used.(i) || used.(i + k) then probe (attempts - 1) else i
      and scan i =
        if i >= n - k then
          invalid_arg
            "Perturb.k_ordered: no room left for disjoint distance-k swaps"
        else if used.(i) || used.(i + k) then scan (i + 1)
        else i
      in
      probe 64
    in
    for _ = 1 to swaps do
      let i = place () in
      used.(i) <- true;
      used.(i + k) <- true;
      let tmp = out.(i) in
      out.(i) <- out.(i + k);
      out.(i + k) <- tmp
    done;
    out
  end

(* Finds the lowest base position where all (relative) offsets are free,
   marks them used, and returns the base. *)
let allocate used offsets =
  let n = Array.length used in
  let fits p =
    List.for_all (fun off -> p + off < n && not used.(p + off)) offsets
  in
  let rec scan p =
    if p >= n then
      invalid_arg "Perturb.realize_displacements: array too small"
    else if fits p then p
    else scan (p + 1)
  in
  let p = scan 0 in
  List.iter (fun off -> used.(p + off) <- true) offsets;
  p

let realize_displacements spec a =
  List.iter
    (fun (d, count) ->
      if d <= 0 then
        invalid_arg "Perturb.realize_displacements: non-positive displacement";
      if count < 0 then
        invalid_arg "Perturb.realize_displacements: negative count")
    spec;
  let out = Array.copy a in
  let used = Array.make (Array.length a) false in
  let swap i j =
    let tmp = out.(i) in
    out.(i) <- out.(j);
    out.(j) <- tmp
  in
  (* Even part: count/2 transpositions per displacement. *)
  List.iter
    (fun (d, count) ->
      for _ = 1 to count / 2 do
        let p = allocate used [ 0; d ] in
        swap p (p + d)
      done)
    spec;
  (* Odd leftovers: match smallest with largest into equal-sum pairs, then
     group two pairs into a 4-cycle realizing displacements (a,b,c,d) with
     a+b = c+d. *)
  let odds =
    List.sort Int.compare
      (List.filter_map
         (fun (d, count) -> if count mod 2 = 1 then Some d else None)
         spec)
  in
  let m = List.length odds in
  if m > 0 then begin
    if m mod 4 <> 0 then
      invalid_arg
        "Perturb.realize_displacements: odd counts not groupable into \
         4-cycles (need a multiple of four of them)";
    let arr = Array.of_list odds in
    let sum = arr.(0) + arr.(m - 1) in
    for i = 0 to (m / 2) - 1 do
      if arr.(i) + arr.(m - 1 - i) <> sum then
        invalid_arg
          "Perturb.realize_displacements: odd displacements do not pair \
           into equal sums"
    done;
    for g = 0 to (m / 4) - 1 do
      let a = arr.(2 * g)
      and b = arr.(m - 1 - (2 * g))
      and c = arr.((2 * g) + 1)
      in
      (* 4-cycle positions: q1=p, q2=p+a, q3=p+a+b, q4=p+a+b-c; the fourth
         realized displacement is d = a+b-c = arr.(m-2-2g) by the
         equal-sum property. *)
      let p = allocate used [ 0; a; a + b; a + b - c ] in
      let q1 = p and q2 = p + a and q3 = p + a + b in
      let q4 = p + a + b - c in
      let e1 = out.(q1) and e2 = out.(q2) and e3 = out.(q3) in
      let e4 = out.(q4) in
      out.(q2) <- e1;
      out.(q3) <- e2;
      out.(q4) <- e3;
      out.(q1) <- e4
    done
  end;
  out

let page_randomized ~rand ~page_tuples ~buffer_pages a =
  if page_tuples <= 0 then
    invalid_arg "Perturb.page_randomized: page_tuples must be positive";
  if buffer_pages <= 0 then
    invalid_arg "Perturb.page_randomized: buffer_pages must be positive";
  let group = page_tuples * buffer_pages in
  let out = Array.copy a in
  let n = Array.length out in
  let start = ref 0 in
  while !start < n do
    let len = Stdlib.min group (n - !start) in
    for i = len - 1 downto 1 do
      let j = rand (i + 1) in
      let tmp = out.(!start + i) in
      out.(!start + i) <- out.(!start + j);
      out.(!start + j) <- tmp
    done;
    start := !start + group
  done;
  out
