(** Deterministic pseudo-random numbers (splitmix64).

    All randomness in the workload generators flows through this module
    with explicit seeds, so every experiment in the paper reproduction is
    repeatable bit-for-bit.  The paper ran "each test several times with
    different random number seeds"; the benches do the same by varying
    the seed. *)

type t

val create : seed:int -> t

val copy : t -> t

val next_int64 : t -> int64
(** The raw splitmix64 output. *)

val int_bounded : t -> int -> int
(** [int_bounded t n] is uniform over [[0, n-1]] (rejection-sampled, no
    modulo bias).
    @raise Invalid_argument if [n <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform over the inclusive range [[lo, hi]].
    @raise Invalid_argument if [lo > hi]. *)

val float_unit : t -> float
(** Uniform in [[0, 1)]. *)

val bool_with : t -> probability:float -> bool
(** [true] with the given probability. *)
