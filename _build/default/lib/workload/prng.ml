type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64 (Steele, Lea & Flood 2014): tiny state, excellent statistical
   quality for simulation workloads, trivially reproducible. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A non-negative 62-bit int. *)
let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int_bounded t n =
  if n <= 0 then invalid_arg "Prng.int_bounded: bound must be positive";
  (* Rejection sampling over the largest multiple of [n] below 2^62. *)
  let limit = (max_int / n) * n in
  let rec draw () =
    let x = next_nonneg t in
    if x < limit then x mod n else draw ()
  in
  draw ()

let int_in t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in: empty range";
  lo + int_bounded t (hi - lo + 1)

let float_unit t =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x /. 9007199254740992. (* 2^53 *)

let bool_with t ~probability = float_unit t < probability
