lib/workload/generate.mli: Interval Relation Seq Spec Temporal
