lib/workload/prng.mli:
