lib/workload/spec.mli: Format
