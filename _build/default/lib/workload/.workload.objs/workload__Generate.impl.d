lib/workload/generate.ml: Array Char Float Interval Ordering Prng Relation Spec String Temporal
