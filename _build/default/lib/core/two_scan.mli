(** Tuma's two-scan algorithm (paper, Section 4.1; Tuma 1992, TempIS).

    The only temporal-aggregation algorithm implemented before the paper:
    first scan the relation to determine the constant intervals (the
    periods during which no tuple enters or exits), then scan it again to
    compute the aggregate value over each constant interval.  The paper's
    algorithms beat it by needing only one scan; it is included here as
    the historical baseline.

    This implementation keeps the two logical passes: pass one collects
    and sorts the unique interval endpoints into the constant-interval
    array ("buckets"); pass two re-reads the relation and folds each
    tuple's contribution into every bucket it overlaps (located by binary
    search). *)

open Temporal

val eval :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?instrument:Instrument.t ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t
(** The input sequence is materialized internally so that it can be
    scanned twice.
    @raise Invalid_argument if an interval is not within
    [[origin, horizon]]. *)

val eval_with_stats :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t * Instrument.snapshot

val constant_intervals :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  Interval.t Seq.t ->
  Interval.t array
(** Just pass one: the constant intervals induced by the given tuple
    intervals, in time order, partitioning [[origin, horizon]]. *)
