(** The linked-list (naive) algorithm (paper, Section 4.2).

    An ordered list of constant intervals with their partial aggregate
    states, covering the whole span, incrementally refined: each tuple is
    walked from the head of the list, splitting the cells containing its
    start and stop timestamps and folding its contribution into every cell
    it overlaps.  One scan of the relation — the paper's improvement over
    Tuma's two-scan approach — but [O(list length)] per tuple, hence
    [O(n^2)] overall.

    Its performance is insensitive to tuple order and to long-lived
    tuples, and it is expected to win when the result has very few
    constant intervals (Section 6.3).

    Two walk strategies are provided.  The paper's description compares
    "the tuple's start and end times with the start and end times of
    each interval in the list" — a full walk whose cost depends only on
    the list length, which is why the paper finds the algorithm
    unaffected by long-lived tuples.  By default this implementation
    stops the walk at the tuple's end timestamp ([full_walk = false]),
    which is never slower; pass [~full_walk:true] to reproduce the
    paper's cost behaviour exactly. *)

open Temporal

type ('v, 's, 'r) t

val create :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?instrument:Instrument.t ->
  ?full_walk:bool ->
  ('v, 's, 'r) Monoid.t ->
  ('v, 's, 'r) t
(** Initially the single constant interval [[origin, horizon]] with the
    empty state.  [full_walk] defaults to [false] (stop each insertion
    walk at the tuple's end).
    @raise Invalid_argument if [origin > horizon]. *)

val insert : ('v, 's, 'r) t -> Interval.t -> 'v -> unit
(** @raise Invalid_argument if the interval is not within
    [[origin, horizon]]. *)

val insert_all : ('v, 's, 'r) t -> (Interval.t * 'v) Seq.t -> unit

val result : ('v, 's, 'r) t -> 'r Timeline.t

val cell_count : ('v, 's, 'r) t -> int
val instrument : ('v, 's, 'r) t -> Instrument.t

val eval :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?instrument:Instrument.t ->
  ?full_walk:bool ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t

val eval_with_stats :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t * Instrument.snapshot
