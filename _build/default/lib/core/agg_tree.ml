open Temporal

type ('v, 's, 'r) t = {
  monoid : ('v, 's, 'r) Monoid.t;
  origin : Chronon.t;
  horizon : Chronon.t;
  inst : Instrument.t;
  mutable root : 's Seg_node.t;
}

let create ?(origin = Chronon.origin) ?(horizon = Chronon.forever)
    ?instrument monoid =
  if Chronon.( > ) origin horizon then
    invalid_arg "Agg_tree.create: origin after horizon";
  let inst =
    match instrument with Some i -> i | None -> Instrument.create ()
  in
  Instrument.alloc inst;
  { monoid; origin; horizon; inst; root = Seg_node.leaf monoid.Monoid.empty }

let check_interval t iv =
  if
    Chronon.( < ) (Interval.start iv) t.origin
    || Chronon.( > ) (Interval.stop iv) t.horizon
  then
    invalid_arg
      (Printf.sprintf "Agg_tree.insert: %s outside [%s,%s]"
         (Interval.to_string iv)
         (Chronon.to_string t.origin)
         (Chronon.to_string t.horizon))

let insert t iv v =
  check_interval t iv;
  let m = t.monoid in
  t.root <-
    Seg_node.insert ~combine:m.Monoid.combine ~empty:m.Monoid.empty
      ~inst:t.inst t.root ~lo:t.origin ~hi:t.horizon ~start:(Interval.start iv)
      ~stop:(Interval.stop iv) (m.Monoid.inject v)

let insert_all t data = Seq.iter (fun (iv, v) -> insert t iv v) data

let result t =
  let m = t.monoid in
  let segments = ref [] in
  Seg_node.dfs ~combine:m.Monoid.combine ~acc:m.Monoid.empty t.root
    ~lo:t.origin ~hi:t.horizon ~emit:(fun iv state ->
      segments := (iv, m.Monoid.output state) :: !segments);
  Timeline.of_list (List.rev !segments)

let node_count t = Seg_node.size t.root
let depth t = Seg_node.depth t.root
let instrument t = t.inst

let render state_to_string t =
  Seg_node.render ~state_to_string t.root ~lo:t.origin ~hi:t.horizon

let eval ?origin ?horizon ?instrument monoid data =
  let t = create ?origin ?horizon ?instrument monoid in
  insert_all t data;
  result t

let eval_with_stats ?origin ?horizon monoid data =
  let inst = Instrument.create () in
  let timeline = eval ?origin ?horizon ~instrument:inst monoid data in
  (timeline, Instrument.snapshot inst)
