(** A limited-main-memory aggregation tree with spilling — the paper's
    Section 5.1/7 sketch made concrete:

    "If we do not balance the aggregation tree, then it is simple to page
    portions of the tree to disk ... simply to mark a parent as pointing
    to a subtree not currently in memory.  Simply accumulate the tuples
    which would overlap this region of the tree and process them later."

    The tree is built as usual until the live node count would exceed
    [budget_nodes].  Then a large subtree is {e evicted}: its constant
    intervals are flattened to (interval, state) fragments and written to
    a spill file, and the subtree is replaced by a one-node marker.
    Later tuples that fall inside an evicted region are not inserted —
    their clipped fragments are appended to the region's spill file
    (tuples fully covering the region still just merge into the marker's
    state, as with any internal node).  {!result} processes the evicted
    regions one at a time, each under the same node budget (regions may
    re-spill recursively), so peak tree memory stays bounded by the
    budget no matter the relation size.

    States must be marshallable (plain data — true of every aggregate in
    {!Monoid}); spill files live in [spill_dir] and are removed by
    {!result}. *)

open Temporal

type ('v, 's, 'r) t

val create :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?instrument:Instrument.t ->
  ?spill_dir:string ->
  budget_nodes:int ->
  ('v, 's, 'r) Monoid.t ->
  ('v, 's, 'r) t
(** @raise Invalid_argument if [budget_nodes < 8] (too small to hold a
    working tree) or [origin > horizon]. *)

val insert : ('v, 's, 'r) t -> Interval.t -> 'v -> unit
(** @raise Invalid_argument if the interval is not within
    [[origin, horizon]]. *)

val insert_all : ('v, 's, 'r) t -> (Interval.t * 'v) Seq.t -> unit

val result : ('v, 's, 'r) t -> 'r Timeline.t
(** Resolve every evicted region (in time order, region by region) and
    return the full timeline.  Removes all spill files; the tree must not
    be used afterwards. *)

val live_nodes : ('v, 's, 'r) t -> int
val evictions : ('v, 's, 'r) t -> int
val spilled_bytes : ('v, 's, 'r) t -> int
(** Total bytes ever written to spill files (the "disk" traffic). *)

val instrument : ('v, 's, 'r) t -> Instrument.t

val eval :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?instrument:Instrument.t ->
  ?spill_dir:string ->
  budget_nodes:int ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t

type stats = {
  peak_live_nodes : int;
  evictions : int;
  spilled_bytes : int;
}

val eval_with_stats :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?spill_dir:string ->
  budget_nodes:int ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t * stats
