(** A balanced aggregation tree — the paper's first "future work" item
    (Section 7): "One alternative to examine is a balanced aggregation
    tree, which should be especially efficient in the case of a k-ordered
    relation."

    This variant keeps the tree AVL-balanced on its split timestamps.  A
    rotation would change root-to-leaf paths, so before rotating, the
    states of the rotated nodes are pushed down to their children — legal
    because aggregate states form a commutative monoid — after which the
    shape change cannot alter any path combination.  Inserting a tuple
    first adds its (at most two) new boundaries as AVL key insertions,
    then performs a standard segment-tree range update.

    Worst-case [O(n log n)] regardless of input order, where the plain
    {!Agg_tree} degenerates to [O(n^2)] on sorted input.  The price is one
    extra word per node (the height): 20 bytes/node against the paper's
    16. *)

open Temporal

type ('v, 's, 'r) t

val node_bytes : int
(** 20 — the paper's 16-byte node plus the AVL height word. *)

val create :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?instrument:Instrument.t ->
  ('v, 's, 'r) Monoid.t ->
  ('v, 's, 'r) t
(** @raise Invalid_argument if [origin > horizon].  When [instrument] is
    omitted, a fresh one with {!node_bytes}-byte nodes is used. *)

val insert : ('v, 's, 'r) t -> Interval.t -> 'v -> unit
(** @raise Invalid_argument if the interval is not within
    [[origin, horizon]]. *)

val insert_all : ('v, 's, 'r) t -> (Interval.t * 'v) Seq.t -> unit

val result : ('v, 's, 'r) t -> 'r Timeline.t

val node_count : ('v, 's, 'r) t -> int

val depth : ('v, 's, 'r) t -> int
(** Height of the tree — AVL-bounded by ~1.44 log2 of the node count. *)

val instrument : ('v, 's, 'r) t -> Instrument.t

val eval :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?instrument:Instrument.t ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t

val eval_with_stats :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t * Instrument.snapshot
