(** The k-ordered aggregation tree (paper, Section 5.3).

    A relation is {e k-ordered} when every tuple is at most [k] positions
    away from its place in the start-time-sorted order (Section 5.2).  For
    such input, once tuple [i] has been processed, every constant interval
    that ends before the start time of tuple [i - (2k+1)] can never be
    affected again: it is emitted to the next query-evaluation stage and
    its tree nodes are garbage-collected.  This keeps the live tree small
    — with a sorted relation and [k = 1] it is the paper's recommended
    strategy (best time {e and} memory).

    Retroactively bounded relations (updates recorded within a bounded
    delay) are k-ordered for the corresponding k under a uniform arrival
    rate, so the algorithm applies to them without sorting (Sections 5.2
    and 6.3). *)

open Temporal

exception Order_violation of { position : int; start : Chronon.t; frontier : Chronon.t }
(** Raised when a tuple starts before the already-emitted part of the
    time-line — the input was not k-ordered for the configured [k].
    [position] is the 0-based index of the offending tuple. *)

type ('v, 's, 'r) t

val create :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?instrument:Instrument.t ->
  ?on_emit:(Interval.t -> 'r -> unit) ->
  k:int ->
  ('v, 's, 'r) Monoid.t ->
  ('v, 's, 'r) t
(** [on_emit] is called, in time order, for every constant interval as it
    becomes final — use it to stream results to the next stage.  Emitted
    segments are also buffered so that {!finish} can return the complete
    timeline.
    @raise Invalid_argument if [k < 0] or [origin > horizon]. *)

val insert : ('v, 's, 'r) t -> Interval.t -> 'v -> unit
(** Process one tuple; may emit and garbage-collect finalized constant
    intervals.
    @raise Order_violation if the tuple start precedes the emitted
    frontier (input not k-ordered for this [k]).
    @raise Invalid_argument if the interval is not within
    [[origin, horizon]]. *)

val insert_all : ('v, 's, 'r) t -> (Interval.t * 'v) Seq.t -> unit

val finish : ('v, 's, 'r) t -> 'r Timeline.t
(** Emit the remaining tree and return the complete timeline (previously
    emitted segments included).  The tree must not be used afterwards. *)

val live_nodes : ('v, 's, 'r) t -> int
(** Current tree size — bounded by the window, not by the relation. *)

val instrument : ('v, 's, 'r) t -> Instrument.t

val eval :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?instrument:Instrument.t ->
  k:int ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t

val eval_with_stats :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  k:int ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t * Instrument.snapshot
