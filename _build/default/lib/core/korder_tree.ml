open Temporal

exception
  Order_violation of {
    position : int;
    start : Chronon.t;
    frontier : Chronon.t;
  }

type ('v, 's, 'r) t = {
  monoid : ('v, 's, 'r) Monoid.t;
  origin : Chronon.t;
  horizon : Chronon.t;
  inst : Instrument.t;
  on_emit : (Interval.t -> 'r -> unit) option;
  window : Chronon.t Queue.t;  (* start times of the last 2k+1 tuples *)
  window_size : int;
  mutable root : 's Seg_node.t;
  mutable frontier : Chronon.t;  (* span start of the live tree *)
  mutable position : int;
  mutable emitted : (Interval.t * 'r) list;  (* reversed *)
  mutable finished : bool;
}

let create ?(origin = Chronon.origin) ?(horizon = Chronon.forever)
    ?instrument ?on_emit ~k monoid =
  if k < 0 then invalid_arg "Korder_tree.create: negative k";
  if Chronon.( > ) origin horizon then
    invalid_arg "Korder_tree.create: origin after horizon";
  let inst =
    match instrument with Some i -> i | None -> Instrument.create ()
  in
  Instrument.alloc inst;
  {
    monoid;
    origin;
    horizon;
    inst;
    on_emit;
    window = Queue.create ();
    window_size = (2 * k) + 1;
    root = Seg_node.leaf monoid.Monoid.empty;
    frontier = origin;
    position = 0;
    emitted = [];
    finished = false;
  }

let emit t iv state =
  let r = t.monoid.Monoid.output state in
  t.emitted <- (iv, r) :: t.emitted;
  match t.on_emit with None -> () | Some f -> f iv r

let check_interval t iv =
  if
    Chronon.( < ) (Interval.start iv) t.origin
    || Chronon.( > ) (Interval.stop iv) t.horizon
  then
    invalid_arg
      (Printf.sprintf "Korder_tree.insert: %s outside [%s,%s]"
         (Interval.to_string iv)
         (Chronon.to_string t.origin)
         (Chronon.to_string t.horizon))

let insert t iv v =
  if t.finished then invalid_arg "Korder_tree.insert: already finished";
  check_interval t iv;
  let s = Interval.start iv in
  if Chronon.( < ) s t.frontier then
    raise
      (Order_violation
         { position = t.position; start = s; frontier = t.frontier });
  let m = t.monoid in
  t.root <-
    Seg_node.insert ~combine:m.Monoid.combine ~empty:m.Monoid.empty
      ~inst:t.inst t.root ~lo:t.frontier ~hi:t.horizon ~start:s
      ~stop:(Interval.stop iv) (m.Monoid.inject v);
  t.position <- t.position + 1;
  Queue.push s t.window;
  if Queue.length t.window > t.window_size then begin
    (* The start time of the tuple 2k+1 positions back: every constant
       interval ending before it is final (paper, Section 5.3). *)
    let threshold = Queue.pop t.window in
    if Chronon.( > ) threshold t.frontier then begin
      let root, frontier =
        Seg_node.gc ~combine:m.Monoid.combine ~inst:t.inst ~threshold
          ~acc:m.Monoid.empty t.root ~lo:t.frontier ~hi:t.horizon
          ~emit:(fun iv state -> emit t iv state)
      in
      t.root <- root;
      t.frontier <- frontier
    end
  end

let insert_all t data = Seq.iter (fun (iv, v) -> insert t iv v) data

let finish t =
  if not t.finished then begin
    t.finished <- true;
    let m = t.monoid in
    Seg_node.dfs ~combine:m.Monoid.combine ~acc:m.Monoid.empty t.root
      ~lo:t.frontier ~hi:t.horizon ~emit:(fun iv state -> emit t iv state);
    Instrument.free_many t.inst (Seg_node.size t.root)
  end;
  Timeline.of_list (List.rev t.emitted)

let live_nodes t = Seg_node.size t.root
let instrument t = t.inst

let eval ?origin ?horizon ?instrument ~k monoid data =
  let t = create ?origin ?horizon ?instrument ~k monoid in
  insert_all t data;
  finish t

let eval_with_stats ?origin ?horizon ~k monoid data =
  let inst = Instrument.create () in
  let timeline = eval ?origin ?horizon ~instrument:inst ~k monoid data in
  (timeline, Instrument.snapshot inst)
