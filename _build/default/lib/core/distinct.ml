open Temporal

let merge_intervals intervals =
  Interval_set.intervals (Interval_set.of_intervals intervals)

let prepare (type v) ~(compare : v -> v -> int) data =
  let module Values = Map.Make (struct
    type t = v

    let compare = compare
  end) in
  let by_value =
    Seq.fold_left
      (fun acc (iv, v) ->
        Values.update v
          (function None -> Some [ iv ] | Some l -> Some (iv :: l))
          acc)
      Values.empty data
  in
  List.concat_map
    (fun (v, intervals) ->
      List.map (fun iv -> (iv, v)) (merge_intervals intervals))
    (Values.bindings by_value)

let eval ?origin ?horizon ?(algorithm = Engine.Aggregation_tree) ~compare
    monoid data =
  Engine.eval ?origin ?horizon algorithm monoid
    (List.to_seq (prepare ~compare data))
