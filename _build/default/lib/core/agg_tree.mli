(** The aggregation tree (paper, Section 5.1).

    A binary tree over the constant intervals induced by the tuples'
    timestamps, built incrementally in one scan of the relation.  Each
    unique timestamp splits a leaf (adding two nodes); a tuple whose
    interval fully covers a node's span records its contribution at that
    node without descending further.  A final depth-first traversal
    combines states along each root-to-leaf path and emits the constant
    intervals in time order.

    Best suited to {e randomly ordered} relations (the tree stays roughly
    balanced); a time-sorted relation degenerates into a linear right
    spine and [O(n^2)] behaviour — use {!Korder_tree} (after sorting, with
    [k = 1]) or {!Balanced_tree} instead. *)

open Temporal

type ('v, 's, 'r) t

val create :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?instrument:Instrument.t ->
  ('v, 's, 'r) Monoid.t ->
  ('v, 's, 'r) t
(** A tree over the span [[origin, horizon]] (default the full
    time-line), initially the single empty constant interval (Figure 3.a).
    @raise Invalid_argument if [origin > horizon]. *)

val insert : ('v, 's, 'r) t -> Interval.t -> 'v -> unit
(** Add one tuple's contribution.
    @raise Invalid_argument if the interval is not within
    [[origin, horizon]]. *)

val insert_all : ('v, 's, 'r) t -> (Interval.t * 'v) Seq.t -> unit

val result : ('v, 's, 'r) t -> 'r Timeline.t
(** The depth-first traversal: every constant interval with its aggregate
    value, in time order, covering [[origin, horizon]].  The tree may keep
    being extended afterwards. *)

val node_count : ('v, 's, 'r) t -> int
val depth : ('v, 's, 'r) t -> int
val instrument : ('v, 's, 'r) t -> Instrument.t

val render : ('s -> string) -> ('v, 's, 'r) t -> string
(** ASCII rendering of the current tree (spans and node states) — compare
    with the paper's Figure 3 stages. *)

val eval :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?instrument:Instrument.t ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t
(** One-shot: build the tree from the sequence and traverse it. *)

val eval_with_stats :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t * Instrument.snapshot
