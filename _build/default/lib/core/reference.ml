open Temporal

let value_at monoid data c =
  let state =
    List.fold_left
      (fun acc (iv, v) ->
        if Interval.contains iv c then
          monoid.Monoid.combine acc (monoid.Monoid.inject v)
        else acc)
      monoid.Monoid.empty data
  in
  monoid.Monoid.output state

let eval ?(origin = Chronon.origin) ?(horizon = Chronon.forever) monoid data =
  List.iter
    (fun (iv, _) ->
      if
        Chronon.( < ) (Interval.start iv) origin
        || Chronon.( > ) (Interval.stop iv) horizon
      then invalid_arg "Reference.eval: interval out of range")
    data;
  let points =
    List.concat_map
      (fun (iv, _) ->
        let starts =
          if Chronon.( > ) (Interval.start iv) origin then
            [ Interval.start iv ]
          else []
        in
        let stop = Interval.stop iv in
        if Chronon.is_finite stop && Chronon.( < ) stop horizon then
          Chronon.succ stop :: starts
        else starts)
      data
  in
  let starts = List.sort_uniq Chronon.compare (origin :: points) in
  let rec segments = function
    | [] -> []
    | [ last ] -> [ (Interval.make last horizon, value_at monoid data last) ]
    | s :: (next :: _ as rest) ->
        (Interval.make s (Chronon.pred next), value_at monoid data s)
        :: segments rest
  in
  Timeline.of_list (segments starts)
