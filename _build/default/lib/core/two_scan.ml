open Temporal

let check_interval origin horizon iv =
  if
    Chronon.( < ) (Interval.start iv) origin
    || Chronon.( > ) (Interval.stop iv) horizon
  then
    invalid_arg
      (Printf.sprintf "Two_scan: %s outside [%s,%s]" (Interval.to_string iv)
         (Chronon.to_string origin)
         (Chronon.to_string horizon))

(* The boundaries are the origin plus, for every tuple [s,e], the points
   where the overlapping set changes: s and (e+1).  Sorted and deduplicated
   they give the starts of the constant intervals. *)
let boundaries ~origin ~horizon intervals =
  let add acc c = c :: acc in
  let points =
    Seq.fold_left
      (fun acc iv ->
        check_interval origin horizon iv;
        let acc =
          if Chronon.( > ) (Interval.start iv) origin then
            add acc (Interval.start iv)
          else acc
        in
        let stop = Interval.stop iv in
        if Chronon.is_finite stop && Chronon.( < ) stop horizon then
          add acc (Chronon.succ stop)
        else acc)
      [] intervals
  in
  let sorted = List.sort_uniq Chronon.compare (origin :: points) in
  Array.of_list sorted

let intervals_of_boundaries ~horizon starts =
  let m = Array.length starts in
  Array.init m (fun i ->
      let stop =
        if i + 1 < m then Chronon.pred starts.(i + 1) else horizon
      in
      Interval.make starts.(i) stop)

let constant_intervals ?(origin = Chronon.origin)
    ?(horizon = Chronon.forever) intervals =
  let starts = boundaries ~origin ~horizon intervals in
  intervals_of_boundaries ~horizon starts

(* Index of the bucket whose start is the greatest one <= c. *)
let bucket_of starts c =
  let rec search lo hi =
    if lo = hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if Chronon.( <= ) starts.(mid) c then search mid hi
      else search lo (mid - 1)
  in
  search 0 (Array.length starts - 1)

let eval ?(origin = Chronon.origin) ?(horizon = Chronon.forever) ?instrument
    monoid data =
  let inst =
    match instrument with Some i -> i | None -> Instrument.create ()
  in
  let tuples = Array.of_seq data in
  (* Scan one: the constant intervals. *)
  let starts =
    boundaries ~origin ~horizon (Seq.map fst (Array.to_seq tuples))
  in
  let m = Array.length starts in
  let states = Array.make m monoid.Monoid.empty in
  for _ = 1 to m do
    Instrument.alloc inst
  done;
  (* Scan two: fold each tuple into the buckets it overlaps. *)
  Array.iter
    (fun (iv, v) ->
      let st = monoid.Monoid.inject v in
      let first = bucket_of starts (Interval.start iv) in
      let stop = Interval.stop iv in
      let rec fill i =
        if i < m && Chronon.( <= ) starts.(i) stop then begin
          states.(i) <- monoid.Monoid.combine states.(i) st;
          fill (i + 1)
        end
      in
      fill first)
    tuples;
  let spans = intervals_of_boundaries ~horizon starts in
  Timeline.of_list
    (Array.to_list
       (Array.map2 (fun iv st -> (iv, monoid.Monoid.output st)) spans states))

let eval_with_stats ?origin ?horizon monoid data =
  let inst = Instrument.create () in
  let timeline = eval ?origin ?horizon ~instrument:inst monoid data in
  (timeline, Instrument.snapshot inst)
