lib/core/paged_tree.ml: Array Bytes Chronon Filename Fun Instrument Int64 Interval List Marshal Monoid Printf Seq Stdlib String Sys Temporal Timeline
