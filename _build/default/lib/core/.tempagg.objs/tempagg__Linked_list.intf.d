lib/core/linked_list.mli: Chronon Instrument Interval Monoid Seq Temporal Timeline
