lib/core/reference.mli: Chronon Interval Monoid Temporal Timeline
