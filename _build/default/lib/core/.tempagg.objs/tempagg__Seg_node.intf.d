lib/core/seg_node.mli: Chronon Instrument Interval Temporal
