lib/core/paged_tree.mli: Chronon Instrument Interval Monoid Seq Temporal Timeline
