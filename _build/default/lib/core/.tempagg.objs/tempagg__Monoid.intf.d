lib/core/monoid.mli:
