lib/core/reference.ml: Chronon Interval List Monoid Temporal Timeline
