lib/core/engine.mli: Chronon Instrument Interval Monoid Seq Temporal Timeline
