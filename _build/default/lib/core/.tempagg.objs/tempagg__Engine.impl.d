lib/core/engine.ml: Agg_tree Balanced_tree Instrument Korder_tree Linked_list Printf String Two_scan
