lib/core/instrument.ml: Format
