lib/core/agg_tree.ml: Chronon Instrument Interval List Monoid Printf Seg_node Seq Temporal Timeline
