lib/core/balanced_tree.ml: Chronon Instrument Interval List Monoid Printf Seq Stdlib Temporal Timeline
