lib/core/seg_node.ml: Buffer Chronon Instrument Interval Printf Stdlib Temporal
