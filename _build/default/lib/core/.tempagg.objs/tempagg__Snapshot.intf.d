lib/core/snapshot.mli: Chronon Interval Monoid Seq Temporal
