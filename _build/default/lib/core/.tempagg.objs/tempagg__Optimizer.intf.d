lib/core/optimizer.mli: Engine Format
