lib/core/two_scan.mli: Chronon Instrument Interval Monoid Seq Temporal Timeline
