lib/core/balanced_tree.mli: Chronon Instrument Interval Monoid Seq Temporal Timeline
