lib/core/snapshot.ml: Interval List Map Monoid Seq Temporal
