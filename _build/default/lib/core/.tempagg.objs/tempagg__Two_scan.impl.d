lib/core/two_scan.ml: Array Chronon Instrument Interval List Monoid Printf Seq Temporal Timeline
