lib/core/optimizer.ml: Engine Format Printf
