lib/core/instrument.mli: Format
