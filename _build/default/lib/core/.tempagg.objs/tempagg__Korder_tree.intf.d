lib/core/korder_tree.mli: Chronon Instrument Interval Monoid Seq Temporal Timeline
