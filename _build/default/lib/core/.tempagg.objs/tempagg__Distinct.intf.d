lib/core/distinct.mli: Chronon Engine Interval Monoid Seq Temporal Timeline
