lib/core/monoid.ml: Float Fun Int Option Printf String
