lib/core/span.mli: Chronon Engine Granule Instrument Interval Monoid Seq Temporal Timeline
