lib/core/linked_list.ml: Chronon Instrument Interval List Monoid Printf Seq Sys Temporal Timeline
