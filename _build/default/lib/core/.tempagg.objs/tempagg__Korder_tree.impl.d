lib/core/korder_tree.ml: Chronon Instrument Interval List Monoid Printf Queue Seg_node Seq Temporal Timeline
