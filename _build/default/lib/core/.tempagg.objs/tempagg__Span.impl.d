lib/core/span.ml: Chronon Engine Granule Instrument Interval List Option Printf Seq Temporal Timeline
