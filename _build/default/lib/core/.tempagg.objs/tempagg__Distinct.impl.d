lib/core/distinct.ml: Engine Interval_set List Map Seq Temporal
