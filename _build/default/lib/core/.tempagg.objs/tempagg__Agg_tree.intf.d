lib/core/agg_tree.mli: Chronon Instrument Interval Monoid Seq Temporal Timeline
