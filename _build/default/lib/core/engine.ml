type algorithm =
  | Linked_list
  | Aggregation_tree
  | Korder_tree of { k : int }
  | Balanced_tree
  | Two_scan

let name = function
  | Linked_list -> "linked-list"
  | Aggregation_tree -> "aggregation-tree"
  | Korder_tree { k } -> Printf.sprintf "ktree(%d)" k
  | Balanced_tree -> "balanced-tree"
  | Two_scan -> "two-scan"

let of_string s =
  (* Accept underscores for contexts (like TSQL identifiers) where hyphens
     cannot appear. *)
  let s = String.map (function '_' -> '-' | c -> c) s in
  match s with
  | "linked-list" -> Ok Linked_list
  | "aggregation-tree" -> Ok Aggregation_tree
  | "balanced-tree" -> Ok Balanced_tree
  | "two-scan" -> Ok Two_scan
  | _ ->
      let ktree_k =
        if String.length s > 6 && String.sub s 0 6 = "ktree(" && s.[String.length s - 1] = ')'
        then int_of_string_opt (String.sub s 6 (String.length s - 7))
        else None
      in
      (match ktree_k with
      | Some k when k >= 0 -> Ok (Korder_tree { k })
      | Some _ | None ->
          Error
            (Printf.sprintf
               "unknown algorithm %S (expected linked-list, \
                aggregation-tree, ktree(K), balanced-tree or two-scan)"
               s))

let all =
  [ Linked_list; Aggregation_tree; Korder_tree { k = 1 }; Balanced_tree;
    Two_scan ]

let node_bytes = function
  | Balanced_tree -> Balanced_tree.node_bytes
  | Linked_list | Aggregation_tree | Korder_tree _ | Two_scan -> 16

let eval ?origin ?horizon ?instrument algorithm monoid data =
  match algorithm with
  | Linked_list -> Linked_list.eval ?origin ?horizon ?instrument monoid data
  | Aggregation_tree -> Agg_tree.eval ?origin ?horizon ?instrument monoid data
  | Korder_tree { k } ->
      Korder_tree.eval ?origin ?horizon ?instrument ~k monoid data
  | Balanced_tree -> Balanced_tree.eval ?origin ?horizon ?instrument monoid data
  | Two_scan -> Two_scan.eval ?origin ?horizon ?instrument monoid data

let eval_with_stats ?origin ?horizon algorithm monoid data =
  let inst = Instrument.create ~node_bytes:(node_bytes algorithm) () in
  let timeline = eval ?origin ?horizon ~instrument:inst algorithm monoid data in
  (timeline, Instrument.snapshot inst)
