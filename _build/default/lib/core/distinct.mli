(** Duplicate elimination for temporal aggregates (paper, Section 7).

    Two value-equivalent tuples overlapping the same instant should count
    once under DISTINCT semantics.  The paper suggests "removing the
    duplicates before the relation is processed, perhaps by sorting";
    {!prepare} does exactly that: it groups the input by value, unions
    each value's intervals (merging overlapping and adjacent ones), and
    emits the merged stream, over which {e any} of the algorithms
    computes the DISTINCT variant of {e any} aggregate. *)

open Temporal

val merge_intervals : Interval.t list -> Interval.t list
(** Union of the given intervals as maximal disjoint intervals in time
    order. *)

val prepare :
  compare:('v -> 'v -> int) ->
  (Interval.t * 'v) Seq.t ->
  (Interval.t * 'v) list
(** The duplicate-free stream: for every distinct value (under [compare])
    its merged intervals, ordered by value then time.  Materializes the
    input (duplicate elimination is blocking, as the paper notes). *)

val eval :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ?algorithm:Engine.algorithm ->
  compare:('v -> 'v -> int) ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) Seq.t ->
  'r Timeline.t
(** [prepare] then evaluate; default algorithm is the aggregation tree.
    Note the prepared stream is value-ordered, not time-ordered — callers
    hinting [Korder_tree] must account for that. *)
