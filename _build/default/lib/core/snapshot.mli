(** Snapshot (conventional) aggregate computation — the paper's Section 3.

    Epstein's two-step technique for scalar aggregates: allocate a result
    cell holding a counter (initialized to zero) and a partial result,
    then fold every qualifying value into it.  The counter serves
    aggregates that need the qualifying cardinality (count, average) and
    lets min/max recognize the first tuple — our monoids absorb both
    roles, but the counter is still exposed because TSQL2's non-temporal
    queries and the optimizer use it.

    Group-by is handled with Epstein's temporary-relation approach: one
    cell per distinct grouping value.

    Temporal relations are reduced to snapshots with {!timeslice}: the
    state of the relation at one instant. *)

open Temporal

val scalar : ('v, 's, 'r) Monoid.t -> 'v Seq.t -> 'r * int
(** The aggregate over all values, and the qualifying-tuple counter. *)

val grouped :
  compare:('k -> 'k -> int) ->
  key:('v -> 'k) ->
  ('v, 's, 'r) Monoid.t ->
  'v Seq.t ->
  ('k * 'r * int) list
(** One (group, aggregate, counter) triple per distinct key, ordered by
    key — the temporary relation of grouped results. *)

val timeslice : at:Chronon.t -> (Interval.t * 'v) Seq.t -> 'v Seq.t
(** The values of the tuples whose valid interval overlaps the instant
    [at] — the snapshot of a valid-time relation. *)

val at : at:Chronon.t -> ('v, 's, 'r) Monoid.t -> (Interval.t * 'v) Seq.t -> 'r
(** Scalar aggregate of the snapshot at one instant: what a TSQL2 query
    with a single-instant valid clause computes.  Equal to the temporal
    aggregate's timeline sampled at [at] (property-tested). *)
