(** Brute-force reference implementation — the executable specification of
    instant-grouped temporal aggregation, used as the oracle in tests.

    For every constant interval (delimited by the unique interval
    endpoints), the whole input is re-scanned and every overlapping
    tuple's value folded in.  O(n · m) — never use it for real work; its
    value is that it shares no code or algorithmic idea with the
    algorithms under test. *)

open Temporal

val eval :
  ?origin:Chronon.t ->
  ?horizon:Chronon.t ->
  ('v, 's, 'r) Monoid.t ->
  (Interval.t * 'v) list ->
  'r Timeline.t

val value_at :
  ('v, 's, 'r) Monoid.t -> (Interval.t * 'v) list -> Chronon.t -> 'r
(** The aggregate at one instant, by direct scan. *)
