open Temporal

let scalar monoid values =
  let state, counter =
    Seq.fold_left
      (fun (state, counter) v ->
        (monoid.Monoid.combine state (monoid.Monoid.inject v), counter + 1))
      (monoid.Monoid.empty, 0) values
  in
  (monoid.Monoid.output state, counter)

let grouped (type k) ~(compare : k -> k -> int) ~key monoid values =
  let module Groups = Map.Make (struct
    type t = k

    let compare = compare
  end) in
  let cells =
    Seq.fold_left
      (fun acc v ->
        let k = key v in
        let state, counter =
          match Groups.find_opt k acc with
          | Some cell -> cell
          | None -> (monoid.Monoid.empty, 0)
        in
        Groups.add k
          (monoid.Monoid.combine state (monoid.Monoid.inject v), counter + 1)
          acc)
      Groups.empty values
  in
  List.map
    (fun (k, (state, counter)) -> (k, monoid.Monoid.output state, counter))
    (Groups.bindings cells)

let timeslice ~at data =
  Seq.filter_map
    (fun (iv, v) -> if Interval.contains iv at then Some v else None)
    data

let at ~at:instant monoid data =
  fst (scalar monoid (timeslice ~at:instant data))
