open Temporal

(* Fragments are (start, stop, state) range-updates, with chronons as raw
   ints (max_int encodes forever).  Both a flattened subtree and a later
   tuple clipped to a region are fragments, so replaying a region is
   uniform: build a fresh tree over the region's span from its fragment
   stream. *)
type 's fragment = int * int * 's

type 's region = {
  r_lo : Chronon.t;
  r_hi : Chronon.t;
  path : string;
  mutable pending : 's fragment list;  (* reversed; flushed in batches *)
  mutable pending_count : int;
}

type 's pnode =
  | Leaf of { mutable state : 's }
  | Node of {
      split : Chronon.t;
      mutable left : 's pnode;
      mutable right : 's pnode;
      mutable state : 's;
    }
  | Evicted of { region : 's region; mutable state : 's }

type ('v, 's, 'r) t = {
  monoid : ('v, 's, 'r) Monoid.t;
  origin : Chronon.t;
  horizon : Chronon.t;
  inst : Instrument.t;
  spill_dir : string;
  budget : int;
  mutable root : 's pnode;
  mutable live : int;
  evicted : int ref;  (* shared with region sub-evaluators *)
  spilled : int ref;
  mutable finished : bool;
}

let pending_flush_threshold = 256

let create ?(origin = Chronon.origin) ?(horizon = Chronon.forever)
    ?instrument ?spill_dir ~budget_nodes monoid =
  if budget_nodes < 8 then
    invalid_arg "Paged_tree.create: budget_nodes must be at least 8";
  if Chronon.( > ) origin horizon then
    invalid_arg "Paged_tree.create: origin after horizon";
  let inst =
    match instrument with Some i -> i | None -> Instrument.create ()
  in
  Instrument.alloc inst;
  {
    monoid;
    origin;
    horizon;
    inst;
    spill_dir =
      (match spill_dir with
      | Some dir -> dir
      | None -> Filename.get_temp_dir_name ());
    budget = budget_nodes;
    root = Leaf { state = monoid.Monoid.empty };
    live = 1;
    evicted = ref 0;
    spilled = ref 0;
    finished = false;
  }

(* A sub-evaluator over a region's span sharing budget, instrument and
   spill accounting with the parent. *)
let sub_tree t ~lo ~hi =
  Instrument.alloc t.inst;
  {
    t with
    origin = lo;
    horizon = hi;
    root = Leaf { state = t.monoid.Monoid.empty };
    live = 1;
    finished = false;
  }

(* ------------------------------------------------------------------ *)
(* Spill files                                                         *)
(* ------------------------------------------------------------------ *)

let append_fragments t region frags =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o600 region.path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun frag ->
          let data = Marshal.to_string (frag : _ fragment) [] in
          output_string oc data;
          t.spilled := !(t.spilled) + String.length data)
        frags)

let flush_pending t region =
  if region.pending_count > 0 then begin
    append_fragments t region (List.rev region.pending);
    region.pending <- [];
    region.pending_count <- 0
  end

let add_fragment t region frag =
  region.pending <- frag :: region.pending;
  region.pending_count <- region.pending_count + 1;
  if region.pending_count >= pending_flush_threshold then
    flush_pending t region

(* Copy an inner region's spill bytes into an outer region's file (the
   marshalled fragment streams concatenate) and drop the inner file. *)
let absorb_region t outer inner =
  flush_pending t inner;
  let ic = open_in_bin inner.path in
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o600 outer.path
  in
  Fun.protect
    ~finally:(fun () ->
      close_in ic;
      close_out oc;
      Sys.remove inner.path)
    (fun () ->
      let buf = Bytes.create 65536 in
      let rec copy () =
        let n = input ic buf 0 (Bytes.length buf) in
        if n > 0 then begin
          output oc buf 0 n;
          copy ()
        end
      in
      copy ())

let read_fragments region =
  let from_file =
    if Sys.file_exists region.path then begin
      let ic = open_in_bin region.path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let frags = ref [] in
          (try
             while true do
               frags := (Marshal.from_channel ic : _ fragment) :: !frags
             done
           with End_of_file -> ());
          List.rev !frags)
    end
    else []
  in
  from_file @ List.rev region.pending

(* ------------------------------------------------------------------ *)
(* Size and eviction                                                   *)
(* ------------------------------------------------------------------ *)

let rec size = function
  | Leaf _ | Evicted _ -> 1
  | Node n -> 1 + size n.left + size n.right

(* Flatten a subtree over [lo,hi] into fragments (its constant intervals
   with fully combined states); nested evicted regions contribute their
   marker state as a covering fragment and donate their spill bytes. *)
let rec flatten t ~acc node ~lo ~hi ~region =
  let combine = t.monoid.Monoid.combine in
  match node with
  | Leaf { state } ->
      add_fragment t region
        (Chronon.to_int lo, Chronon.to_int hi, combine acc state)
  | Node n ->
      let acc = combine acc n.state in
      flatten t ~acc n.left ~lo ~hi:n.split ~region;
      flatten t ~acc n.right ~lo:(Chronon.succ n.split) ~hi ~region
  | Evicted ev ->
      add_fragment t region
        (Chronon.to_int lo, Chronon.to_int hi, combine acc ev.state);
      absorb_region t region ev.region

let new_region t ~lo ~hi =
  {
    r_lo = lo;
    r_hi = hi;
    path = Filename.temp_file ~temp_dir:t.spill_dir "tempagg_region" ".spill";
    pending = [];
    pending_count = 0;
  }

(* Evict the root's larger child: flatten it to a fresh region and
   replace it with a one-node marker.  Returns the number of freed
   nodes. *)
let evict t =
  match t.root with
  | Leaf _ | Evicted _ -> 0
  | Node n ->
      let left_size = size n.left and right_size = size n.right in
      let victim, lo, hi =
        if left_size >= right_size then (`Left, t.origin, n.split)
        else (`Right, Chronon.succ n.split, t.horizon)
      in
      let node = match victim with `Left -> n.left | `Right -> n.right in
      let victim_size = Stdlib.max left_size right_size in
      if victim_size <= 1 then 0
      else begin
        let region = new_region t ~lo ~hi in
        flatten t ~acc:t.monoid.Monoid.empty node ~lo ~hi ~region;
        let marker = Evicted { region; state = t.monoid.Monoid.empty } in
        (match victim with
        | `Left -> n.left <- marker
        | `Right -> n.right <- marker);
        let freed = victim_size - 1 in
        t.live <- t.live - freed;
        Instrument.free_many t.inst freed;
        incr t.evicted;
        freed
      end

let enforce_budget t =
  let rec loop () =
    if t.live > t.budget then
      let freed = evict t in
      if freed > 0 then loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Insertion                                                           *)
(* ------------------------------------------------------------------ *)

let rec ins t node ~lo ~hi ~start ~stop st =
  let m = t.monoid in
  if Chronon.( <= ) start lo && Chronon.( <= ) hi stop then begin
    (match node with
    | Leaf l -> l.state <- m.Monoid.combine l.state st
    | Node n -> n.state <- m.Monoid.combine n.state st
    | Evicted ev -> ev.state <- m.Monoid.combine ev.state st);
    node
  end
  else
    match node with
    | Leaf { state } ->
        let split =
          if Chronon.( > ) start lo then Chronon.pred start else stop
        in
        Instrument.alloc t.inst;
        Instrument.alloc t.inst;
        t.live <- t.live + 2;
        let node =
          Node
            {
              split;
              left = Leaf { state = m.Monoid.empty };
              right = Leaf { state = m.Monoid.empty };
              state;
            }
        in
        ins t node ~lo ~hi ~start ~stop st
    | Node n ->
        if Chronon.( <= ) start n.split then
          n.left <- ins t n.left ~lo ~hi:n.split ~start ~stop st;
        if Chronon.( > ) stop n.split then
          n.right <- ins t n.right ~lo:(Chronon.succ n.split) ~hi ~start ~stop st;
        node
    | Evicted ev ->
        (* Partial overlap with a paged-out region: accumulate the
           clipped fragment for later (paper Section 5.1). *)
        add_fragment t ev.region
          ( Chronon.to_int (Chronon.max start lo),
            Chronon.to_int (Chronon.min stop hi),
            st );
        node

let insert_state t iv st =
  t.root <-
    ins t t.root ~lo:t.origin ~hi:t.horizon ~start:(Interval.start iv)
      ~stop:(Interval.stop iv) st;
  enforce_budget t

let check_interval t iv =
  if
    Chronon.( < ) (Interval.start iv) t.origin
    || Chronon.( > ) (Interval.stop iv) t.horizon
  then
    invalid_arg
      (Printf.sprintf "Paged_tree.insert: %s outside [%s,%s]"
         (Interval.to_string iv)
         (Chronon.to_string t.origin)
         (Chronon.to_string t.horizon))

let insert t iv v =
  if t.finished then invalid_arg "Paged_tree.insert: already finished";
  check_interval t iv;
  insert_state t iv (t.monoid.Monoid.inject v)

let insert_all t data = Seq.iter (fun (iv, v) -> insert t iv v) data

(* ------------------------------------------------------------------ *)
(* Result                                                              *)
(* ------------------------------------------------------------------ *)

(* Deterministic Fisher-Yates over the fragment array (splitmix64).
   Spill files hold fragments in time order; replaying them in that order
   would rebuild a degenerate right spine whose root split is useless for
   eviction (the region would barely shrink).  Randomizing the replay
   order keeps the rebuilt tree balanced — the paper's own remedy for
   linearization ("randomize the relation's pages when they are read",
   Section 7). *)
let shuffle_fragments arr =
  let state = ref 0x9E3779B97F4A7C15L in
  let next_int bound =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical (Int64.logxor z (Int64.shift_right_logical z 31)) 1)
         (Int64.of_int bound))
  in
  for i = Array.length arr - 1 downto 1 do
    let j = next_int (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Rebuild a region from its fragments under the shared budget.  The
   result may itself contain evicted markers; the traversal below
   resolves them from its explicit stack, so nesting never deepens the
   OCaml call stack. *)
let replay_region t region =
  let sub = sub_tree t ~lo:region.r_lo ~hi:region.r_hi in
  let fragments = Array.of_list (read_fragments region) in
  shuffle_fragments fragments;
  Array.iter
    (fun (s, e, st) ->
      let start = Chronon.of_int s in
      let stop = if e = max_int then Chronon.forever else Chronon.of_int e in
      insert_state sub (Interval.make start stop) st)
    fragments;
  if Sys.file_exists region.path then Sys.remove region.path;
  sub

let result t =
  if t.finished then invalid_arg "Paged_tree.result: already finished";
  t.finished <- true;
  let m = t.monoid in
  let segments = ref [] in
  (* Explicit in-order traversal; each visited node is freed in the
     instrument so the measured peak reflects region-at-a-time work. *)
  let stack = ref [ (t.root, t.origin, t.horizon, m.Monoid.empty) ] in
  let continue_loop = ref true in
  while !continue_loop do
    match !stack with
    | [] -> continue_loop := false
    | (node, lo, hi, acc) :: rest -> (
        stack := rest;
        Instrument.free t.inst;
        match node with
        | Leaf { state } ->
            segments :=
              (Interval.make lo hi, m.Monoid.output (m.Monoid.combine acc state))
              :: !segments
        | Node n ->
            let acc = m.Monoid.combine acc n.state in
            stack :=
              (n.left, lo, n.split, acc)
              :: (n.right, Chronon.succ n.split, hi, acc)
              :: !stack
        | Evicted ev ->
            let acc = m.Monoid.combine acc ev.state in
            let sub = replay_region t ev.region in
            stack := (sub.root, lo, hi, acc) :: !stack)
  done;
  Timeline.of_list (List.rev !segments)

let live_nodes t = t.live
let evictions t = !(t.evicted)
let spilled_bytes t = !(t.spilled)
let instrument t = t.inst

let eval ?origin ?horizon ?instrument ?spill_dir ~budget_nodes monoid data =
  let t = create ?origin ?horizon ?instrument ?spill_dir ~budget_nodes monoid in
  insert_all t data;
  result t

type stats = {
  peak_live_nodes : int;
  evictions : int;
  spilled_bytes : int;
}

let eval_with_stats ?origin ?horizon ?spill_dir ~budget_nodes monoid data =
  let inst = Instrument.create () in
  let t =
    create ?origin ?horizon ~instrument:inst ?spill_dir ~budget_nodes monoid
  in
  insert_all t data;
  let timeline = result t in
  ( timeline,
    {
      peak_live_nodes = Instrument.peak_live inst;
      evictions = !(t.evicted);
      spilled_bytes = !(t.spilled);
    } )
