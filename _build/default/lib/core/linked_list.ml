open Temporal

(* One cell per constant interval: two timestamps, a state and a next
   pointer — the paper's 16-byte list node. *)
type 's cell = {
  mutable first : Chronon.t;
  mutable last : Chronon.t;
  mutable state : 's;
  mutable next : 's cell option;
}

type ('v, 's, 'r) t = {
  monoid : ('v, 's, 'r) Monoid.t;
  origin : Chronon.t;
  horizon : Chronon.t;
  inst : Instrument.t;
  full_walk : bool;
  head : 's cell;
  mutable cells : int;
}

let create ?(origin = Chronon.origin) ?(horizon = Chronon.forever)
    ?instrument ?(full_walk = false) monoid =
  if Chronon.( > ) origin horizon then
    invalid_arg "Linked_list.create: origin after horizon";
  let inst =
    match instrument with Some i -> i | None -> Instrument.create ()
  in
  Instrument.alloc inst;
  {
    monoid;
    origin;
    horizon;
    inst;
    full_walk;
    head =
      { first = origin; last = horizon; state = monoid.Monoid.empty;
        next = None };
    cells = 1;
  }

let check_interval t iv =
  if
    Chronon.( < ) (Interval.start iv) t.origin
    || Chronon.( > ) (Interval.stop iv) t.horizon
  then
    invalid_arg
      (Printf.sprintf "Linked_list.insert: %s outside [%s,%s]"
         (Interval.to_string iv)
         (Chronon.to_string t.origin)
         (Chronon.to_string t.horizon))

(* Splits [cell] so that a new cell starts at [at], returning the new
   (second) cell.  The state is duplicated: both halves were overlapped by
   exactly the tuples that overlapped the original. *)
let split_at t cell at =
  let second =
    { first = at; last = cell.last; state = cell.state; next = cell.next }
  in
  cell.last <- Chronon.pred at;
  cell.next <- Some second;
  Instrument.alloc t.inst;
  t.cells <- t.cells + 1;
  second

let insert t iv v =
  check_interval t iv;
  let m = t.monoid in
  let st = m.Monoid.inject v in
  let s = Interval.start iv and e = Interval.stop iv in
  (* Walk from the head: skip cells ending before [s], split the cells
     containing [s] and [e] if the timestamps fall strictly inside, and
     fold [st] into every cell within [s,e].  The list always partitions
     [origin,horizon], so the walk cannot run off the end. *)
  let rec walk cell =
    if Chronon.( < ) cell.last s then
      match cell.next with
      | Some next -> walk next
      | None -> assert false
    else if Chronon.( < ) cell.first s then walk (split_at t cell s)
    else if Chronon.( <= ) cell.last e then begin
      cell.state <- m.Monoid.combine cell.state st;
      if Chronon.( < ) cell.last e then
        match cell.next with
        | Some next -> walk next
        | None -> assert false
      else if t.full_walk then touch_rest cell
    end
    else begin
      ignore (split_at t cell (Chronon.succ e));
      cell.state <- m.Monoid.combine cell.state st;
      if t.full_walk then touch_rest cell
    end
  (* The paper's variant examines every remaining list element too; the
     comparison is performed purely for its cost. *)
  and touch_rest cell =
    match cell.next with
    | None -> ()
    | Some next ->
        ignore (Sys.opaque_identity (Chronon.compare next.last s));
        touch_rest next
  in
  walk t.head

let insert_all t data = Seq.iter (fun (iv, v) -> insert t iv v) data

let result t =
  let m = t.monoid in
  let rec collect acc cell =
    let seg =
      (Interval.make cell.first cell.last, m.Monoid.output cell.state)
    in
    match cell.next with
    | None -> List.rev (seg :: acc)
    | Some next -> collect (seg :: acc) next
  in
  Timeline.of_list (collect [] t.head)

let cell_count t = t.cells
let instrument t = t.inst

let eval ?origin ?horizon ?instrument ?full_walk monoid data =
  let t = create ?origin ?horizon ?instrument ?full_walk monoid in
  insert_all t data;
  result t

let eval_with_stats ?origin ?horizon monoid data =
  let inst = Instrument.create () in
  let timeline = eval ?origin ?horizon ~instrument:inst monoid data in
  (timeline, Instrument.snapshot inst)
