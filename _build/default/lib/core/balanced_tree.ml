open Temporal

let node_bytes = 20

type 's node = Leaf of { mutable state : 's } | Node of 's inner

and 's inner = {
  split : Chronon.t;
  mutable left : 's node;
  mutable right : 's node;
  mutable state : 's;
  mutable height : int;
}

type ('v, 's, 'r) t = {
  monoid : ('v, 's, 'r) Monoid.t;
  origin : Chronon.t;
  horizon : Chronon.t;
  inst : Instrument.t;
  mutable root : 's node;
}

let height = function Leaf _ -> 1 | Node n -> n.height

let update_height n =
  n.height <- 1 + Stdlib.max (height n.left) (height n.right)

let balance_factor n = height n.left - height n.right

let absorb ~combine child state =
  match child with
  | Leaf l -> l.state <- combine state l.state
  | Node m -> m.state <- combine state m.state

(* Push a node's state down to both children, leaving it empty.  After
   this the node contributes nothing to any root-to-leaf path, so the
   subtree can be restructured without changing any path combination. *)
let push_down ~combine ~empty n =
  absorb ~combine n.left n.state;
  absorb ~combine n.right n.state;
  n.state <- empty

let rotate_right ~combine ~empty node =
  match node with
  | Node z -> (
      let pivot = z.left in
      match pivot with
      | Node y ->
          push_down ~combine ~empty z;
          push_down ~combine ~empty y;
          z.left <- y.right;
          update_height z;
          y.right <- node;
          update_height y;
          pivot
      | Leaf _ -> invalid_arg "Balanced_tree: rotate_right on leaf child")
  | Leaf _ -> invalid_arg "Balanced_tree: rotate_right on leaf"

let rotate_left ~combine ~empty node =
  match node with
  | Node z -> (
      let pivot = z.right in
      match pivot with
      | Node y ->
          push_down ~combine ~empty z;
          push_down ~combine ~empty y;
          z.right <- y.left;
          update_height z;
          y.left <- node;
          update_height y;
          pivot
      | Leaf _ -> invalid_arg "Balanced_tree: rotate_left on leaf child")
  | Leaf _ -> invalid_arg "Balanced_tree: rotate_left on leaf"

let rebalance ~combine ~empty node =
  match node with
  | Leaf _ -> node
  | Node z ->
      update_height z;
      let b = balance_factor z in
      if b > 1 then begin
        (match z.left with
        | Node y when balance_factor y < 0 ->
            z.left <- rotate_left ~combine ~empty z.left
        | Node _ | Leaf _ -> ());
        rotate_right ~combine ~empty node
      end
      else if b < -1 then begin
        (match z.right with
        | Node y when balance_factor y > 0 ->
            z.right <- rotate_right ~combine ~empty z.right
        | Node _ | Leaf _ -> ());
        rotate_left ~combine ~empty node
      end
      else node

(* Ensures a split exists at [b], where [lo <= b < hi] for the subtree's
   span [lo,hi].  An absent split turns the containing leaf into an
   internal node whose state is the old leaf's (both halves inherit it);
   the path back up is AVL-rebalanced. *)
let rec add_boundary ~combine ~empty ~inst node ~lo ~hi b =
  match node with
  | Leaf { state } ->
      Instrument.alloc inst;
      Instrument.alloc inst;
      Node
        {
          split = b;
          left = Leaf { state = empty };
          right = Leaf { state = empty };
          state;
          height = 2;
        }
  | Node n ->
      if Chronon.equal b n.split then node
      else begin
        if Chronon.( < ) b n.split then
          n.left <- add_boundary ~combine ~empty ~inst n.left ~lo ~hi:n.split b
        else
          n.right <-
            add_boundary ~combine ~empty ~inst n.right
              ~lo:(Chronon.succ n.split) ~hi b;
        rebalance ~combine ~empty node
      end

(* Standard segment-tree range update; boundaries for [s] and [e] have
   been inserted first, so every leaf reached is fully covered. *)
let rec range_add ~combine node ~lo ~hi ~start ~stop st =
  if Chronon.( <= ) start lo && Chronon.( <= ) hi stop then
    match node with
    | Leaf l -> l.state <- combine l.state st
    | Node n -> n.state <- combine n.state st
  else
    match node with
    | Leaf _ ->
        (* Unreachable: add_boundary aligned the leaves with [start,stop]. *)
        assert false
    | Node n ->
        if Chronon.( <= ) start n.split then
          range_add ~combine n.left ~lo ~hi:n.split ~start ~stop st;
        if Chronon.( > ) stop n.split then
          range_add ~combine n.right ~lo:(Chronon.succ n.split) ~hi ~start
            ~stop st

let rec dfs ~combine ~acc node ~lo ~hi ~emit =
  match node with
  | Leaf { state } -> emit (Interval.make lo hi) (combine acc state)
  | Node n ->
      let acc = combine acc n.state in
      dfs ~combine ~acc n.left ~lo ~hi:n.split ~emit;
      dfs ~combine ~acc n.right ~lo:(Chronon.succ n.split) ~hi ~emit

let rec size = function
  | Leaf _ -> 1
  | Node n -> 1 + size n.left + size n.right

let create ?(origin = Chronon.origin) ?(horizon = Chronon.forever)
    ?instrument monoid =
  if Chronon.( > ) origin horizon then
    invalid_arg "Balanced_tree.create: origin after horizon";
  let inst =
    match instrument with
    | Some i -> i
    | None -> Instrument.create ~node_bytes ()
  in
  Instrument.alloc inst;
  { monoid; origin; horizon; inst; root = Leaf { state = monoid.Monoid.empty } }

let check_interval t iv =
  if
    Chronon.( < ) (Interval.start iv) t.origin
    || Chronon.( > ) (Interval.stop iv) t.horizon
  then
    invalid_arg
      (Printf.sprintf "Balanced_tree.insert: %s outside [%s,%s]"
         (Interval.to_string iv)
         (Chronon.to_string t.origin)
         (Chronon.to_string t.horizon))

let insert t iv v =
  check_interval t iv;
  let m = t.monoid in
  let combine = m.Monoid.combine and empty = m.Monoid.empty in
  let s = Interval.start iv and e = Interval.stop iv in
  if Chronon.( > ) s t.origin then
    t.root <-
      add_boundary ~combine ~empty ~inst:t.inst t.root ~lo:t.origin
        ~hi:t.horizon (Chronon.pred s);
  if Chronon.( < ) e t.horizon then
    t.root <-
      add_boundary ~combine ~empty ~inst:t.inst t.root ~lo:t.origin
        ~hi:t.horizon e;
  range_add ~combine t.root ~lo:t.origin ~hi:t.horizon ~start:s ~stop:e
    (m.Monoid.inject v)

let insert_all t data = Seq.iter (fun (iv, v) -> insert t iv v) data

let result t =
  let m = t.monoid in
  let segments = ref [] in
  dfs ~combine:m.Monoid.combine ~acc:m.Monoid.empty t.root ~lo:t.origin
    ~hi:t.horizon ~emit:(fun iv state ->
      segments := (iv, m.Monoid.output state) :: !segments);
  Timeline.of_list (List.rev !segments)

let node_count t = size t.root
let depth t = height t.root
let instrument t = t.inst

let eval ?origin ?horizon ?instrument monoid data =
  let t = create ?origin ?horizon ?instrument monoid in
  insert_all t data;
  result t

let eval_with_stats ?origin ?horizon monoid data =
  let inst = Instrument.create ~node_bytes () in
  let timeline = eval ?origin ?horizon ~instrument:inst monoid data in
  (timeline, Instrument.snapshot inst)
