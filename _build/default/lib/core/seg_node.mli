(** Internal: the raw aggregation-tree node structure shared by
    {!Agg_tree} and {!Korder_tree}.  Not part of the stable API — use those
    modules instead.

    A tree covers an implicit span [[lo, hi]] known to the caller; an
    internal node carries only its split timestamp (the paper's
    space-efficient "single timestamp per node variation"): the left child
    covers [[lo, split]], the right [[split+1, hi]].  A node's [state] is
    the combined contribution of tuples whose interval fully covered the
    node's span when inserted; a constant interval's aggregate is the
    combination of the states on its root-to-leaf path. *)

open Temporal

type 's t =
  | Leaf of { mutable state : 's }
  | Node of {
      split : Chronon.t;
      mutable left : 's t;
      mutable right : 's t;
      mutable state : 's;
    }

val leaf : 's -> 's t

val insert :
  combine:('s -> 's -> 's) ->
  empty:'s ->
  inst:Instrument.t ->
  's t ->
  lo:Chronon.t ->
  hi:Chronon.t ->
  start:Chronon.t ->
  stop:Chronon.t ->
  's ->
  's t
(** [insert node ~lo ~hi ~start ~stop st] adds a tuple whose interval
    [[start, stop]] (clipped to [[lo, hi]] by the caller) contributes state
    [st], splitting leaves at the new unique timestamps and returning the
    (possibly replaced) node.  Counts two {!Instrument.alloc}s per leaf
    split. *)

val dfs :
  combine:('s -> 's -> 's) ->
  acc:'s ->
  's t ->
  lo:Chronon.t ->
  hi:Chronon.t ->
  emit:(Interval.t -> 's -> unit) ->
  unit
(** Depth-first traversal emitting every constant interval with its fully
    combined state, in time order (the paper's second phase). *)

val gc :
  combine:('s -> 's -> 's) ->
  inst:Instrument.t ->
  threshold:Chronon.t ->
  acc:'s ->
  's t ->
  lo:Chronon.t ->
  hi:Chronon.t ->
  emit:(Interval.t -> 's -> unit) ->
  's t * Chronon.t
(** [gc ~threshold ~acc node ~lo ~hi ~emit] emits (in time order, with
    [acc] merged in) and removes every leading constant interval whose
    stop is before [threshold], returning the remaining tree and its new
    span start.  Requires [hi >= threshold] so the tree is never emptied.
    Frees removed nodes in the instrument. *)

val size : 's t -> int
(** Number of nodes (leaves + internal). *)

val depth : 's t -> int

val render : state_to_string:('s -> string) -> 's t -> lo:Chronon.t -> hi:Chronon.t -> string
(** Multi-line ASCII rendering for debugging and the Figure 3 example. *)
