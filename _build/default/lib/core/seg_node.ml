open Temporal

type 's t =
  | Leaf of { mutable state : 's }
  | Node of {
      split : Chronon.t;
      mutable left : 's t;
      mutable right : 's t;
      mutable state : 's;
    }

let leaf state = Leaf { state }

(* Inserting [start,stop] into a node spanning [lo,hi].  When the tuple
   fully covers the span, its contribution is recorded here and the
   descent stops (the paper's "we adjust the internal node aggregate
   values when a tuple's constant interval completely overlaps a node").
   A partially covered leaf is split at one of the tuple's unique
   timestamps; the old leaf's state moves to the new internal node, which
   both new leaves sit under, preserving root-to-leaf sums.  Each split
   allocates two nodes, matching the paper's "each unique timestamp adds
   two nodes". *)
let rec insert ~combine ~empty ~inst node ~lo ~hi ~start ~stop st =
  if Chronon.( <= ) start lo && Chronon.( <= ) hi stop then begin
    (match node with
    | Leaf l -> l.state <- combine l.state st
    | Node n -> n.state <- combine n.state st);
    node
  end
  else
    match node with
    | Leaf { state } ->
        let split =
          if Chronon.( > ) start lo then Chronon.pred start else stop
        in
        Instrument.alloc inst;
        Instrument.alloc inst;
        let node =
          Node { split; left = leaf empty; right = leaf empty; state }
        in
        insert ~combine ~empty ~inst node ~lo ~hi ~start ~stop st
    | Node n ->
        if Chronon.( <= ) start n.split then
          n.left <-
            insert ~combine ~empty ~inst n.left ~lo ~hi:n.split ~start ~stop
              st;
        if Chronon.( > ) stop n.split then
          n.right <-
            insert ~combine ~empty ~inst n.right ~lo:(Chronon.succ n.split)
              ~hi ~start ~stop st;
        node

let rec dfs ~combine ~acc node ~lo ~hi ~emit =
  match node with
  | Leaf { state } -> emit (Interval.make lo hi) (combine acc state)
  | Node n ->
      let acc = combine acc n.state in
      dfs ~combine ~acc n.left ~lo ~hi:n.split ~emit;
      dfs ~combine ~acc n.right ~lo:(Chronon.succ n.split) ~hi ~emit

let rec size = function
  | Leaf _ -> 1
  | Node n -> 1 + size n.left + size n.right

let rec depth = function
  | Leaf _ -> 1
  | Node n -> 1 + Stdlib.max (depth n.left) (depth n.right)

(* Emits and removes the leading run of constant intervals that end before
   [threshold].  A left subtree entirely before the threshold is flushed
   with [dfs] and freed, and the internal node spliced out with its state
   pushed into the promoted right child (legal: states form a commutative
   monoid).  Only the earliest consecutive part of the tree is collected,
   so no hole is ever created (paper, Section 5.3). *)
let rec gc ~combine ~inst ~threshold ~acc node ~lo ~hi ~emit =
  match node with
  | Leaf _ ->
      (* The leaf spans [lo, hi] with hi >= threshold: not collectible. *)
      (node, lo)
  | Node n ->
      if Chronon.( < ) n.split threshold then begin
        dfs ~combine ~acc:(combine acc n.state) n.left ~lo ~hi:n.split ~emit;
        Instrument.free_many inst (size n.left + 1);
        (match n.right with
        | Leaf l -> l.state <- combine n.state l.state
        | Node r -> r.state <- combine n.state r.state);
        gc ~combine ~inst ~threshold ~acc n.right ~lo:(Chronon.succ n.split)
          ~hi ~emit
      end
      else begin
        let left', lo' =
          gc ~combine ~inst ~threshold ~acc:(combine acc n.state) n.left ~lo
            ~hi:n.split ~emit
        in
        n.left <- left';
        (node, lo')
      end

let render ~state_to_string node ~lo ~hi =
  let buf = Buffer.create 256 in
  let interval lo hi =
    Printf.sprintf "[%s,%s]" (Chronon.to_string lo) (Chronon.to_string hi)
  in
  let rec go prefix node lo hi =
    match node with
    | Leaf { state } ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" prefix (interval lo hi)
             (state_to_string state))
    | Node n ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" prefix (interval lo hi)
             (state_to_string n.state));
        let child = prefix ^ "  " in
        go child n.left lo n.split;
        go child n.right (Chronon.succ n.split) hi
  in
  go "" node lo hi;
  Buffer.contents buf
