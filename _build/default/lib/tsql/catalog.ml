module Names = Map.Make (String)

type t = (string * Relation.Trel.t) Names.t
(* Keyed by the case-folded name; the original spelling is kept for
   listings. *)

let empty = Names.empty
let fold_name = String.lowercase_ascii
let add t name rel = Names.add (fold_name name) (name, rel) t
let find t name = Option.map snd (Names.find_opt (fold_name name) t)

let names t =
  List.sort String.compare
    (List.map (fun (_, (name, _)) -> name) (Names.bindings t))

let with_builtins () = add empty "Employed" (Relation.Fixtures.employed ())
