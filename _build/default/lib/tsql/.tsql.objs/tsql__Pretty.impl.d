lib/tsql/pretty.ml: Array List Relation Schema Stdlib String Temporal Trel Tuple Value
