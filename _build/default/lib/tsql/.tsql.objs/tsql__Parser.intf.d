lib/tsql/parser.mli: Ast
