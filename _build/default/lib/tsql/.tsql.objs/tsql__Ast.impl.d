lib/tsql/ast.ml: Buffer List Option Printf String
