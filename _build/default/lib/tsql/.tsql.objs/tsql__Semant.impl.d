lib/tsql/semant.ml: Ast Catalog Hashtbl List Option Printf Relation Result Schema Stdlib String Tempagg Temporal Trel Tuple Value
