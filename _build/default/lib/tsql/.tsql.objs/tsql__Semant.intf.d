lib/tsql/semant.mli: Ast Catalog Relation Tempagg Temporal
