lib/tsql/eval.mli: Catalog Relation Semant
