lib/tsql/catalog.mli: Relation
