lib/tsql/ast.mli:
