lib/tsql/eval.ml: Array Ast Chronon Granule Hashtbl Interval List Option Parser Printf Relation Result Semant Seq String Tempagg Temporal Timeline Trel Tuple Value
