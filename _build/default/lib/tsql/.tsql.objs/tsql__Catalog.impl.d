lib/tsql/catalog.ml: List Map Option Relation String
