lib/tsql/pretty.mli: Relation
