lib/tsql/lexer.mli:
