lib/tsql/lexer.ml: Buffer List Printf String
