(** Rendering query results.

    A result relation prints as a table with one column per schema column
    plus a final [valid] column, e.g. for the paper's
    [SELECT COUNT(Name) FROM Employed]:

    {v
    +-------------+---------+
    | count(name) | valid   |
    +-------------+---------+
    |           0 | [0,6]   |
    |           1 | [7,7]   |
    |           2 | [8,12]  |
    |           1 | [13,17] |
    |           3 | [18,20] |
    |           2 | [21,21] |
    |           1 | [22,oo] |
    +-------------+---------+
    v} *)

val result_to_string : Relation.Trel.t -> string

val print_result : Relation.Trel.t -> unit
