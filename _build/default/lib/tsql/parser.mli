(** Recursive-descent parser for the TSQL2 subset (grammar in {!Ast}). *)

val parse : string -> (Ast.query, string) result
(** Parse one query.  Errors name the offending token and its byte
    offset, e.g. ["expected FROM but found GROUP at offset 18"]. *)
