(** Named temporal relations available to queries.

    Relation names are case-insensitive, as in SQL. *)

type t

val empty : t

val add : t -> string -> Relation.Trel.t -> t
(** Replaces any previous binding of the same (case-folded) name. *)

val find : t -> string -> Relation.Trel.t option

val names : t -> string list
(** Bound names (as given at {!add}), sorted. *)

val with_builtins : unit -> t
(** A catalog containing the paper's [Employed] relation. *)
