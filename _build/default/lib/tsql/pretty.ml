open Relation

let result_to_string rel =
  let schema = Trel.schema rel in
  let headers =
    List.map (fun c -> c.Schema.name) (Schema.columns schema) @ [ "valid" ]
  in
  let rows =
    List.map
      (fun t ->
        Array.to_list (Array.map Value.to_string (Tuple.values t))
        @ [ Temporal.Interval.to_string (Tuple.valid t) ])
      (Trel.tuples rel)
  in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (List.iteri (fun i cell ->
         widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
    rows;
  let is_numeric s =
    s <> ""
    && String.for_all
         (function '0' .. '9' | '.' | '-' -> true | _ -> false)
         s
  in
  let pad i cell =
    let gap = widths.(i) - String.length cell in
    if is_numeric cell then String.make gap ' ' ^ cell
    else cell ^ String.make gap ' '
  in
  let line cells = "| " ^ String.concat " | " (List.mapi pad cells) ^ " |" in
  let rule =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  String.concat "\n"
    ([ rule; line headers; rule ] @ List.map line rows @ [ rule ])

let print_result rel = print_endline (result_to_string rel)
