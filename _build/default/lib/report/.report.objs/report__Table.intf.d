lib/report/table.mli:
