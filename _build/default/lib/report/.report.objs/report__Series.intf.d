lib/report/series.mli:
