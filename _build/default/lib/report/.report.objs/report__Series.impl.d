lib/report/series.ml: Float Hashtbl List Printf String Table
