let is_numeric s =
  s <> ""
  && String.for_all
       (function
         | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' | '%' | 'x' -> true
         | _ -> false)
       s

let to_string ~headers rows =
  let arity = List.length headers in
  List.iteri
    (fun i row ->
      if List.length row <> arity then
        invalid_arg
          (Printf.sprintf "Table.to_string: row %d has %d cells, expected %d"
             i (List.length row) arity))
    rows;
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (List.iteri (fun i cell ->
         widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
    rows;
  let pad i cell =
    let w = widths.(i) in
    let gap = w - String.length cell in
    if is_numeric cell then String.make gap ' ' ^ cell
    else cell ^ String.make gap ' '
  in
  let line cells = "| " ^ String.concat " | " (List.mapi pad cells) ^ " |" in
  let rule =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (line headers ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

let print ~headers rows = print_endline (to_string ~headers rows)
