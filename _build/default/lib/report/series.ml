type t = {
  title : string;
  x_label : string;
  unit_label : string;
  mutable xs : int list;  (* reversed insertion order *)
  mutable names : string list;  (* reversed insertion order *)
  points : (int * string, float) Hashtbl.t;
}

let create ~title ~x_label ~unit_label =
  { title; x_label; unit_label; xs = []; names = []; points = Hashtbl.create 64 }

let add t ~x ~series v =
  if not (List.mem x t.xs) then t.xs <- x :: t.xs;
  if not (List.mem series t.names) then t.names <- series :: t.names;
  Hashtbl.replace t.points (x, series) v

let x_values t = List.rev t.xs
let series_names t = List.rev t.names
let get t ~x ~series = Hashtbl.find_opt t.points (x, series)

let format_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else if Float.abs v >= 100. then Printf.sprintf "%.1f" v
  else if Float.abs v >= 1. then Printf.sprintf "%.3f" v
  else Printf.sprintf "%.6f" v

let rows t =
  List.map
    (fun x ->
      string_of_int x
      :: List.map
           (fun name ->
             match get t ~x ~series:name with
             | Some v -> format_value v
             | None -> "-")
           (series_names t))
    (x_values t)

let to_string t =
  Printf.sprintf "%s (%s)\n%s" t.title t.unit_label
    (Table.to_string ~headers:(t.x_label :: series_names t) (rows t))

let to_csv t =
  let header = String.concat "," (t.x_label :: series_names t) in
  let lines = List.map (String.concat ",") (rows t) in
  String.concat "\n" (header :: lines) ^ "\n"

let print t = print_endline (to_string t)
