(** Experiment series — the textual equivalent of the paper's log-log
    figures: one row per x value (relation size), one column per curve
    (algorithm). *)

type t

val create : title:string -> x_label:string -> unit_label:string -> t

val add : t -> x:int -> series:string -> float -> unit
(** Record one measurement.  Re-adding the same (x, series) overwrites. *)

val x_values : t -> int list
val series_names : t -> string list
val get : t -> x:int -> series:string -> float option

val to_string : t -> string
(** Render as a table: first column x, then one column per series (in
    insertion order), missing points as ["-"].  Values are printed with
    engineering-style precision. *)

val to_csv : t -> string

val print : t -> unit
