(** Fixed-width ASCII tables for experiment output. *)

val to_string : headers:string list -> string list list -> string
(** Render rows under the given headers; every column is sized to its
    widest cell.  Numeric-looking cells are right-aligned, the rest
    left-aligned.
    @raise Invalid_argument if a row's arity differs from the header's. *)

val print : headers:string list -> string list list -> unit
(** [to_string] to stdout. *)
