(** Attribute values of temporal relations.

    The paper's test relation carries a name (string), a salary (int) and
    the two timestamps; we support the scalar types needed by the TSQL2
    subset and the aggregates. *)

type ty = Tint | Tfloat | Tstring

type t =
  | Int of int
  | Float of float
  | Str of string
  | Null  (** SQL NULL; aggregates skip it, comparisons treat it as unknown *)

val type_of : t -> ty option
(** [None] for {!Null}. *)

val ty_to_string : ty -> string
val ty_of_string : string -> ty option

val is_null : t -> bool
val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order for sorting: Null < Int/Float (numerically) < Str. *)

val to_int : t -> int option
val to_float : t -> float option
(** Numeric coercions; [Int] coerces to float, nothing coerces to int. *)

val of_string : ty -> string -> (t, string) result
(** Parse a literal of the given type; empty string parses to {!Null}. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
