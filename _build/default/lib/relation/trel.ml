open Temporal

type t = { schema : Schema.t; tuples : Tuple.t array }

let check_tuple schema tuple =
  let values = Tuple.values tuple in
  if Array.length values <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Trel: tuple arity %d, schema arity %d"
         (Array.length values) (Schema.arity schema));
  Array.iteri
    (fun i v ->
      match Value.type_of v with
      | None -> ()
      | Some ty ->
          let col = Schema.column schema i in
          if col.Schema.ty <> ty then
            invalid_arg
              (Printf.sprintf "Trel: column %s expects %s, got %s"
                 col.Schema.name
                 (Value.ty_to_string col.Schema.ty)
                 (Value.ty_to_string ty)))
    values

let of_array schema tuples =
  Array.iter (check_tuple schema) tuples;
  { schema; tuples }

let create schema tuples = of_array schema (Array.of_list tuples)
let schema t = t.schema
let cardinality t = Array.length t.tuples

let get t i =
  if i < 0 || i >= Array.length t.tuples then
    invalid_arg "Trel.get: out of range";
  t.tuples.(i)

let tuples t = Array.to_list t.tuples
let to_seq t = Array.to_seq t.tuples
let iter f t = Array.iter f t.tuples
let fold f acc t = Array.fold_left f acc t.tuples

let filter p t =
  { t with tuples = Array.of_list (List.filter p (tuples t)) }

let append a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Trel.append: schemas differ";
  { a with tuples = Array.append a.tuples b.tuples }

let sort_by_time t =
  let copy = Array.copy t.tuples in
  Array.stable_sort Tuple.compare_by_time copy;
  { t with tuples = copy }

let is_time_ordered t =
  let ordered = ref true in
  for i = 0 to Array.length t.tuples - 2 do
    if Tuple.compare_by_time t.tuples.(i) t.tuples.(i + 1) > 0 then
      ordered := false
  done;
  !ordered

let lifespan t =
  Array.fold_left
    (fun acc tuple ->
      let iv = Tuple.valid tuple in
      match acc with
      | None -> Some iv
      | Some hull -> Some (Interval.hull hull iv))
    None t.tuples

let agg_input t ~column =
  match Schema.index_of t.schema column with
  | None -> invalid_arg (Printf.sprintf "Trel.agg_input: no column %S" column)
  | Some i ->
      Seq.map
        (fun tuple -> (Tuple.valid tuple, Tuple.value tuple i))
        (to_seq t)

let intervals t = Seq.map Tuple.valid (to_seq t)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,%a@]" Schema.pp t.schema
    (Format.pp_print_list Tuple.pp)
    (tuples t)
