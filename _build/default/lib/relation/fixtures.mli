(** Canonical example relations from the paper. *)

val employed_schema : Schema.t
(** [(name:string, salary:int)] plus valid time. *)

val employed : unit -> Trel.t
(** The Employed relation of Figure 1:
    {v
    Richard  40K  [18,oo]
    Karen    45K  [ 8,20]
    Nathan   35K  [ 7,12]
    Nathan   37K  [18,21]
    v}
    Nathan is unemployed during [13,17]; the relation is in no particular
    order; COUNT over it yields the seven constant intervals of Table 1. *)

val employed_count : (Temporal.Interval.t * int) list
(** Table 1 extended with the leading empty interval: the COUNT aggregate of
    the Employed relation at every instant — the 7 constant intervals
    [[0,6]:0; [7,7]:1; [8,12]:2; [13,17]:1; [18,20]:3; [21,21]:2;
    [22,oo]:1]. *)
