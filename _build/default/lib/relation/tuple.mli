(** Tuples of a valid-time relation: column values plus a valid interval. *)

open Temporal

type t

val make : Value.t array -> Interval.t -> t

val values : t -> Value.t array
(** The underlying array; callers must not mutate it. *)

val value : t -> int -> Value.t
(** @raise Invalid_argument if the index is out of range. *)

val valid : t -> Interval.t

val with_valid : t -> Interval.t -> t

val start : t -> Chronon.t
val stop : t -> Chronon.t

val compare_by_time : t -> t -> int
(** The paper's "totally ordered by time": by start time, ties broken by
    stop time (Section 5.2). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
