type ty = Tint | Tfloat | Tstring

type t = Int of int | Float of float | Str of string | Null

let type_of = function
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Str _ -> Some Tstring
  | Null -> None

let ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "string"

let ty_of_string = function
  | "int" -> Some Tint
  | "float" -> Some Tfloat
  | "string" -> Some Tstring
  | _ -> None

let is_null = function Null -> true | Int _ | Float _ | Str _ -> false
let equal a b = Stdlib.compare a b = 0

let rank = function Null -> 0 | Int _ -> 1 | Float _ -> 1 | Str _ -> 2

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Null, Null -> 0
  | _ -> Int.compare (rank a) (rank b)

let to_int = function Int n -> Some n | Float _ | Str _ | Null -> None

let to_float = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | Str _ | Null -> None

let of_string ty s =
  if s = "" then Ok Null
  else
    match ty with
    | Tint -> (
        match int_of_string_opt s with
        | Some n -> Ok (Int n)
        | None -> Error (Printf.sprintf "not an int literal: %S" s))
    | Tfloat -> (
        match float_of_string_opt s with
        | Some f -> Ok (Float f)
        | None -> Error (Printf.sprintf "not a float literal: %S" s))
    | Tstring -> Ok (Str s)

let to_string = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Null -> ""

let pp ppf v = Format.pp_print_string ppf (to_string v)
