lib/relation/trel.ml: Array Format Interval List Printf Schema Seq Temporal Tuple Value
