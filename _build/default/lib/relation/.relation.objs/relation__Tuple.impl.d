lib/relation/tuple.ml: Array Format Interval String Temporal Value
