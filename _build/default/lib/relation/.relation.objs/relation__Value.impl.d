lib/relation/value.ml: Float Format Int Printf Stdlib String
