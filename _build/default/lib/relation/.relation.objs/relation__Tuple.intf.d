lib/relation/tuple.mli: Chronon Format Interval Temporal Value
