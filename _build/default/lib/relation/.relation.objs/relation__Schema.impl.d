lib/relation/schema.ml: Array Format Hashtbl List Option Printf String Value
