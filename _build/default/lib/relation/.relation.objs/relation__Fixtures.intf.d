lib/relation/fixtures.mli: Schema Temporal Trel
