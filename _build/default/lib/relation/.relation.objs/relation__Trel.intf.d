lib/relation/trel.mli: Format Interval Schema Seq Temporal Tuple Value
