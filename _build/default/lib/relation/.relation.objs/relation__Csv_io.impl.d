lib/relation/csv_io.ml: Array Buffer Chronon In_channel Interval List Out_channel Printf Schema String Temporal Trel Tuple Value
