lib/relation/fixtures.ml: Chronon Interval Schema Temporal Trel Tuple Value
