lib/relation/csv_io.mli: Trel
