type column = { name : string; ty : Value.ty }

type t = column array

let make cols =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if c.name = "" then invalid_arg "Schema.make: empty column name";
      if Hashtbl.mem seen c.name then
        invalid_arg (Printf.sprintf "Schema.make: duplicate column %S" c.name);
      Hashtbl.add seen c.name ())
    cols;
  Array.of_list cols

let of_pairs pairs = make (List.map (fun (name, ty) -> { name; ty }) pairs)
let columns t = Array.to_list t
let arity = Array.length

let index_of t name =
  let rec search i =
    if i >= Array.length t then None
    else if t.(i).name = name then Some i
    else search (i + 1)
  in
  search 0

let column t i =
  if i < 0 || i >= Array.length t then invalid_arg "Schema.column: out of range";
  t.(i)

let ty_of t name = Option.map (fun i -> t.(i).ty) (index_of t name)
let mem t name = Option.is_some (index_of t name)

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> x.name = y.name && x.ty = y.ty) a b

let pp ppf t =
  Format.fprintf ppf "(%s)"
    (String.concat ", "
       (List.map
          (fun c -> Printf.sprintf "%s:%s" c.name (Value.ty_to_string c.ty))
          (columns t)))
