(** Relation schemas: ordered, uniquely named, typed columns.

    The valid-time dimension is not a column; every tuple of a temporal
    relation carries a valid interval alongside its column values
    (see {!Tuple}). *)

type column = { name : string; ty : Value.ty }

type t

val make : column list -> t
(** @raise Invalid_argument on duplicate or empty column names. *)

val of_pairs : (string * Value.ty) list -> t

val columns : t -> column list
val arity : t -> int

val index_of : t -> string -> int option
(** Position of the named column. *)

val column : t -> int -> column
(** @raise Invalid_argument if out of range. *)

val ty_of : t -> string -> Value.ty option

val mem : t -> string -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
