(** Valid-time relations: a schema and a sequence of tuples.

    Relations are immutable; operations that "modify" a relation return a
    new one sharing tuples where possible. Tuple order is significant — the
    paper's algorithms are sensitive to the physical order of the relation
    (sorted, k-ordered, random). *)

open Temporal

type t

val create : Schema.t -> Tuple.t list -> t
(** @raise Invalid_argument if a tuple's arity or value types disagree with
    the schema (Null is allowed in any column). *)

val of_array : Schema.t -> Tuple.t array -> t
(** Like {!create}; takes ownership of the array (do not mutate it). *)

val schema : t -> Schema.t
val cardinality : t -> int

val get : t -> int -> Tuple.t
(** @raise Invalid_argument if out of range. *)

val tuples : t -> Tuple.t list
val to_seq : t -> Tuple.t Seq.t
val iter : (Tuple.t -> unit) -> t -> unit
val fold : ('acc -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc

val filter : (Tuple.t -> bool) -> t -> t

val append : t -> t -> t
(** @raise Invalid_argument if the schemas differ. *)

val sort_by_time : t -> t
(** Stable sort by (start, stop) — the paper's total time order. *)

val is_time_ordered : t -> bool

val lifespan : t -> Interval.t option
(** Hull of all valid intervals; [None] for the empty relation. *)

val agg_input : t -> column:string -> (Interval.t * Value.t) Seq.t
(** The (valid interval, attribute value) stream the aggregation algorithms
    consume, in the relation's physical order.
    @raise Invalid_argument if the column does not exist. *)

val intervals : t -> Interval.t Seq.t
(** Just the valid intervals, in physical order (for [COUNT] over whole
    tuples rather than a column). *)

val pp : Format.formatter -> t -> unit
