open Temporal

type t = { values : Value.t array; valid : Interval.t }

let make values valid = { values; valid }
let values t = t.values

let value t i =
  if i < 0 || i >= Array.length t.values then
    invalid_arg "Tuple.value: column index out of range";
  t.values.(i)

let valid t = t.valid
let with_valid t valid = { t with valid }
let start t = Interval.start t.valid
let stop t = Interval.stop t.valid
let compare_by_time a b = Interval.compare a.valid b.valid

let equal a b =
  Interval.equal a.valid b.valid
  && Array.length a.values = Array.length b.values
  && Array.for_all2 Value.equal a.values b.values

let pp ppf t =
  Format.fprintf ppf "(%s) %a"
    (String.concat ", "
       (Array.to_list (Array.map Value.to_string t.values)))
    Interval.pp t.valid
