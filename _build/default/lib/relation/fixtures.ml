open Temporal

let employed_schema =
  Schema.of_pairs [ ("name", Value.Tstring); ("salary", Value.Tint) ]

let employed_tuple name salary start stop =
  Tuple.make
    [| Value.Str name; Value.Int salary |]
    (Interval.make (Chronon.of_int start) stop)

let employed () =
  Trel.create employed_schema
    [
      employed_tuple "Richard" 40_000 18 Chronon.forever;
      employed_tuple "Karen" 45_000 8 (Chronon.of_int 20);
      employed_tuple "Nathan" 35_000 7 (Chronon.of_int 12);
      employed_tuple "Nathan" 37_000 18 (Chronon.of_int 21);
    ]

let employed_count =
  [
    (Interval.of_ints 0 6, 0);
    (Interval.of_ints 7 7, 1);
    (Interval.of_ints 8 12, 2);
    (Interval.of_ints 13 17, 1);
    (Interval.of_ints 18 20, 3);
    (Interval.of_ints 21 21, 2);
    (Interval.make (Chronon.of_int 22) Chronon.forever, 1);
  ]
