(* The Section 6.3 query-optimizer rules in action.

     dune exec examples/optimizer_demo.exe

   Feeds the optimizer the situations the paper discusses — unordered
   relations with and without memory pressure, sorted relations,
   declared retroactive bounds, coarse groupings — and prints the chosen
   strategy with its rationale.  Then verifies two of the choices by
   actually running and timing them. *)

let describe title metadata =
  let choice = Tempagg.Optimizer.choose metadata in
  Printf.printf "%-46s -> %s\n" title
    (Format.asprintf "%a" Tempagg.Optimizer.pp_choice choice)

let time f =
  let t0 = Sys.time () in
  let result = f () in
  (result, Sys.time () -. t0)

let () =
  let base = Tempagg.Optimizer.default_metadata ~cardinality:65_536 in
  print_endline "Optimizer decisions (65,536-tuple relation):\n";
  describe "unordered, plenty of memory" base;
  describe "unordered, 1 MB budget"
    { base with Tempagg.Optimizer.memory_budget = Some 1_000_000 };
  describe "sorted by time" { base with Tempagg.Optimizer.time_ordered = true };
  describe "retroactively bounded (k=40)"
    { base with Tempagg.Optimizer.retroactive_bound = Some 40 };
  describe "~365 expected result intervals"
    { base with Tempagg.Optimizer.expected_constant_intervals = Some 365 };

  (* Back the first and third decision with a measurement. *)
  print_endline "\nMeasured on 16,384 tuples (COUNT, seconds of CPU):\n";
  let spec = Workload.Spec.make ~n:16_384 ~seed:1 () in
  let random = Workload.Generate.random_intervals spec in
  let sorted = Workload.Generate.sorted_intervals spec in
  let run algorithm data =
    let _, dt =
      time (fun () ->
          Tempagg.Engine.eval algorithm Tempagg.Monoid.count
            (Array.to_seq data))
    in
    dt
  in
  Printf.printf "  random order : aggregation-tree %.3fs vs ktree(1)+sort \
                 %.3fs (tree wins without the sort)\n"
    (run Tempagg.Engine.Aggregation_tree random)
    (let t0 = Sys.time () in
     let copy = Array.copy random in
     Array.stable_sort
       (fun (a, _) (b, _) -> Temporal.Interval.compare a b)
       copy;
     let dt_sort = Sys.time () -. t0 in
     dt_sort +. run (Tempagg.Engine.Korder_tree { k = 1 }) copy);
  Printf.printf "  sorted input : aggregation-tree %.3fs vs ktree(1) %.3fs \
                 (degenerate spine vs gc'd tree)\n"
    (run Tempagg.Engine.Aggregation_tree sorted)
    (run (Tempagg.Engine.Korder_tree { k = 1 }) sorted)
