examples/optimizer_demo.ml: Array Format Printf Sys Tempagg Temporal Workload
