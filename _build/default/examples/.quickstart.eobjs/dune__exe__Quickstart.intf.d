examples/quickstart.mli:
