examples/retroactive.ml: Array Int Interval Printf Tempagg Temporal Timeline Workload
