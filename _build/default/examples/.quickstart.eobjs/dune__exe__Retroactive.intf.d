examples/retroactive.mli:
