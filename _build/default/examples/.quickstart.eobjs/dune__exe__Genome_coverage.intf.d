examples/genome_coverage.mli:
