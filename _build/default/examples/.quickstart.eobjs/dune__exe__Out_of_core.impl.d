examples/out_of_core.ml: Array External_sort Filename Fun Heap_file Int Io_stats Printf Relation Seq Storage Sys Tempagg Temporal Timeline Workload
