examples/genome_coverage.ml: Chronon Granule Interval Interval_set List Printf Stdlib String Tempagg Temporal Timeline Workload
