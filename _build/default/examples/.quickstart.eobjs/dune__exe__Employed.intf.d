examples/employed.mli:
