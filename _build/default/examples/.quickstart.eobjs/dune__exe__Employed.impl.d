examples/employed.ml: Array Fixtures Interval List Printf Relation Seq String Tempagg Temporal Timeline Trel Tsql Tuple Value
