examples/payroll.ml: Array List Printf Relation Schema Temporal Trel Tsql Tuple Value Workload
