examples/payroll.mli:
