examples/quickstart.ml: Interval List Printf Relation Tempagg Temporal Timeline Tsql
