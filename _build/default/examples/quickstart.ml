(* Quickstart: compute a temporal aggregate in a few lines.

     dune exec examples/quickstart.exe

   A temporal COUNT asks "how many tuples are valid at each instant?" and
   returns a timeline of constant intervals.  Here: three meeting-room
   bookings, and the number of concurrent bookings over the day. *)

open Temporal

let bookings =
  [
    (Interval.of_ints 9 11, "standup room");
    (Interval.of_ints 10 14, "big room");
    (Interval.of_ints 13 17, "big room");
  ]

let () =
  (* Count concurrent bookings at every instant with the aggregation
     tree — one pass over the input, O(log n) per tuple on random
     order. *)
  let occupancy = Tempagg.Agg_tree.eval Tempagg.Monoid.count
      (List.to_seq bookings)
  in
  print_endline "Concurrent bookings over the day:";
  Timeline.iter
    (fun interval count ->
      Printf.printf "  %-8s %d booking%s\n"
        (Interval.to_string interval)
        count
        (if count = 1 then "" else "s"))
    occupancy;

  (* The same through the TSQL2 subset, as in the paper's Section 2. *)
  let schema = Relation.Schema.of_pairs [ ("room", Relation.Value.Tstring) ] in
  let relation =
    Relation.Trel.create schema
      (List.map
         (fun (iv, room) ->
           Relation.Tuple.make [| Relation.Value.Str room |] iv)
         bookings)
  in
  let catalog = Tsql.Catalog.add Tsql.Catalog.empty "Bookings" relation in
  print_endline "\nSELECT COUNT(room) FROM Bookings:";
  match Tsql.Eval.query catalog "SELECT COUNT(room) FROM Bookings" with
  | Ok result -> Tsql.Pretty.print_result result
  | Error msg -> prerr_endline msg
