(* Payroll analytics: the paper's motivating workload at a realistic size.

     dune exec examples/payroll.exe

   Builds a company's employment history (600 stints across 4
   departments over ~10 "years" of 365-instant spans), then answers
   time-varying questions with the TSQL2 subset:

   - head count over time (grouped by instant),
   - average salary per department over time,
   - yearly head count (GROUP BY SPAN 365 — far fewer buckets),
   - peak-era staffing via WHERE.  *)

open Relation

let schema =
  Schema.of_pairs
    [ ("name", Value.Tstring); ("dept", Value.Tstring);
      ("salary", Value.Tint) ]

let departments = [| "engineering"; "sales"; "support"; "research" |]

let build_history () =
  let prng = Workload.Prng.create ~seed:2024 in
  let year = 365 in
  let horizon = 10 * year in
  let stint i =
    let dept = departments.(Workload.Prng.int_bounded prng 4) in
    let start = Workload.Prng.int_bounded prng (horizon - 30) in
    let duration = Workload.Prng.int_in prng ~lo:30 ~hi:(3 * year) in
    let stop = min (horizon - 1) (start + duration - 1) in
    Tuple.make
      [|
        Value.Str (Printf.sprintf "emp%03d" i);
        Value.Str dept;
        Value.Int (Workload.Prng.int_in prng ~lo:30_000 ~hi:90_000);
      |]
      (Temporal.Interval.of_ints start stop)
  in
  Trel.create schema (List.init 600 stint)

let show catalog query =
  Printf.printf "\n%s\n" query;
  match Tsql.Eval.explain catalog query with
  | Error msg -> prerr_endline msg
  | Ok plan -> (
      Printf.printf "-- %s\n" plan;
      match Tsql.Eval.query catalog query with
      | Error msg -> prerr_endline msg
      | Ok result ->
          let rows = Trel.cardinality result in
          if rows <= 12 then Tsql.Pretty.print_result result
          else begin
            (* Large results: show the first rows and the total. *)
            let preview =
              Trel.create (Trel.schema result)
                (List.filteri (fun i _ -> i < 8) (Trel.tuples result))
            in
            Tsql.Pretty.print_result preview;
            Printf.printf "... %d rows total\n" rows
          end)

let () =
  let history = build_history () in
  let catalog = Tsql.Catalog.add Tsql.Catalog.empty "Payroll" history in
  Printf.printf "Payroll history: %d employment stints over 10 years\n"
    (Trel.cardinality history);
  show catalog "SELECT COUNT(*) FROM Payroll";
  show catalog "SELECT dept, AVG(salary) FROM Payroll GROUP BY dept";
  show catalog "SELECT COUNT(*) FROM Payroll GROUP BY SPAN 365";
  show catalog
    "SELECT dept, COUNT(*), MAX(salary) FROM Payroll \
     WHERE salary >= 60000 GROUP BY dept, SPAN 365 USING balanced_tree"
