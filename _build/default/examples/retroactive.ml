(* Streaming aggregation over a retroactively bounded feed.

     dune exec examples/retroactive.exe

   An audit log records facts shortly after they become true — a tuple
   may arrive up to a bounded number of positions out of order
   (Section 5.2: a retroactively bounded relation, approximated by a
   k-ordered relation).  The k-ordered aggregation tree exploits the
   bound: once a constant interval can no longer change, it is emitted
   downstream and its nodes garbage-collected, so the working set stays
   tiny no matter how long the feed runs.

   The demo streams 50,000 nearly ordered records, prints the first
   emitted results while the stream is still running, and compares the
   memory high-water mark against the plain aggregation tree. *)

open Temporal

let n = 50_000
let k = 16

let feed () =
  let spec =
    Workload.Spec.make ~n ~lifespan:1_000_000 ~short_max:500 ~seed:99 ()
  in
  Workload.Generate.k_ordered_intervals ~k ~percentage:0.10 spec

let () =
  let data = feed () in
  Printf.printf "streaming %d records, at most %d positions out of order\n\n"
    n k;

  let emitted = ref 0 in
  let tree =
    Tempagg.Korder_tree.create ~k
      ~on_emit:(fun interval count ->
        incr emitted;
        if !emitted <= 5 then
          Printf.printf "  emitted early: %-18s count=%d\n"
            (Interval.to_string interval)
            count)
      Tempagg.Monoid.count
  in
  Array.iter (fun (iv, _) -> Tempagg.Korder_tree.insert tree iv ()) data;
  Printf.printf "  ... %d constant intervals emitted before end of stream\n"
    !emitted;
  Printf.printf "  live tree at end of stream: %d nodes\n\n"
    (Tempagg.Korder_tree.live_nodes tree);
  let timeline = Tempagg.Korder_tree.finish tree in
  let ktree_stats =
    Tempagg.Instrument.snapshot (Tempagg.Korder_tree.instrument tree)
  in

  (* The plain aggregation tree computes the same answer but must hold
     every constant interval in memory until the end. *)
  let plain, plain_stats =
    Tempagg.Agg_tree.eval_with_stats Tempagg.Monoid.count (Array.to_seq data)
  in
  assert (Timeline.equal Int.equal plain timeline);

  Printf.printf "results identical; %d constant intervals total\n\n"
    (Timeline.length timeline);
  Printf.printf "%-22s %14s %12s\n" "" "peak nodes" "peak bytes";
  Printf.printf "%-22s %14d %12d\n" "aggregation tree"
    plain_stats.Tempagg.Instrument.peak_live
    plain_stats.Tempagg.Instrument.peak_bytes;
  Printf.printf "%-22s %14d %12d\n"
    (Printf.sprintf "k-ordered tree (k=%d)" k)
    ktree_stats.Tempagg.Instrument.peak_live
    ktree_stats.Tempagg.Instrument.peak_bytes;
  Printf.printf "\nmemory reduction: %.0fx\n"
    (float_of_int plain_stats.Tempagg.Instrument.peak_bytes
    /. float_of_int ktree_stats.Tempagg.Instrument.peak_bytes)
