(* Aggregating a relation that must live on disk.

     dune exec examples/out_of_core.exe

   A telemetry archive of 40,000 sessions is stored in a heap file
   (8 KB pages of 128-byte slots — the paper's tuple format).  We want
   the concurrent-session count at every instant, but only have a small
   memory budget for the algorithm's state.  Section 6.3's trade-off,
   measured:

   1. the paper's recommendation — external-sort the file, then stream
      it through the k-ordered aggregation tree with k = 1 (more disk
      I/O, almost no memory);
   2. the future-work alternative — one scan into the paged aggregation
      tree, which spills cold subtrees and stays within its node budget
      (one read pass plus spill traffic);
   3. the baseline — one scan into the unbounded aggregation tree
      (minimal I/O, maximal memory). *)

open Temporal
open Storage

let n = 40_000

let in_dir f =
  let dir = Filename.temp_file "tempagg_ooc" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name -> Sys.remove (Filename.concat dir name))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let count_of_scan reader =
  Seq.map (fun t -> (Relation.Tuple.valid t, ())) (Heap_file.scan reader)

let () =
  in_dir @@ fun dir ->
  let archive = Filename.concat dir "sessions.heap" in
  let sorted_path = Filename.concat dir "sessions.sorted.heap" in

  (* Build the archive. *)
  let io = Io_stats.create () in
  let spec = Workload.Spec.make ~n ~long_lived_fraction:0.2 ~seed:77 () in
  Heap_file.write_relation ~stats:io archive (Workload.Generate.relation spec);
  Printf.printf "archive: %d sessions, %d data pages of %d bytes\n\n" n
    (Io_stats.pages_written io - 1)
    Heap_file.default_page_size;

  let report name timeline ~io ~peak_bytes ~seconds =
    Printf.printf
      "%-28s %8.3fs   %6d pages read  %6d written   %9d state bytes   (%d \
       constant intervals)\n"
      name seconds (Io_stats.pages_read io) (Io_stats.pages_written io)
      peak_bytes (Timeline.length timeline)
  in

  (* 1. Sort externally, stream through ktree(1). *)
  let io1 = Io_stats.create () in
  let t0 = Sys.time () in
  External_sort.sort ~memory_tuples:4096 ~stats:io1 ~src:archive
    ~dst:sorted_path ();
  let reader = Heap_file.open_reader ~stats:io1 sorted_path in
  let inst1 = Tempagg.Instrument.create () in
  let tl1 =
    Tempagg.Korder_tree.eval ~instrument:inst1 ~k:1 Tempagg.Monoid.count
      (count_of_scan reader)
  in
  Heap_file.close_reader reader;
  report "sort + ktree(1)" tl1 ~io:io1
    ~peak_bytes:(Tempagg.Instrument.peak_bytes inst1)
    ~seconds:(Sys.time () -. t0);

  (* 2. One scan into the paged aggregation tree. *)
  let io2 = Io_stats.create () in
  let t0 = Sys.time () in
  let reader = Heap_file.open_reader ~stats:io2 archive in
  let inst2 = Tempagg.Instrument.create () in
  let t =
    Tempagg.Paged_tree.create ~instrument:inst2 ~spill_dir:dir
      ~budget_nodes:4096 Tempagg.Monoid.count
  in
  Seq.iter (fun (iv, ()) -> Tempagg.Paged_tree.insert t iv ()) (count_of_scan reader);
  Heap_file.close_reader reader;
  let spilled = ref 0 in
  let tl2 =
    let result = Tempagg.Paged_tree.result t in
    spilled := Tempagg.Paged_tree.spilled_bytes t;
    result
  in
  Printf.printf
    "%-28s %8.3fs   %6d pages read  %6d spill-page equivalents   %9d state \
     bytes   (%d constant intervals)\n"
    "paged tree (4096 nodes)"
    (Sys.time () -. t0)
    (Io_stats.pages_read io2)
    (!spilled / Heap_file.default_page_size)
    (Tempagg.Instrument.peak_bytes inst2)
    (Timeline.length tl2);

  (* 3. Unbounded aggregation tree. *)
  let io3 = Io_stats.create () in
  let t0 = Sys.time () in
  let reader = Heap_file.open_reader ~stats:io3 archive in
  let inst3 = Tempagg.Instrument.create () in
  let tl3 =
    Tempagg.Agg_tree.eval ~instrument:inst3 Tempagg.Monoid.count
      (count_of_scan reader)
  in
  Heap_file.close_reader reader;
  report "unbounded tree (baseline)" tl3 ~io:io3
    ~peak_bytes:(Tempagg.Instrument.peak_bytes inst3)
    ~seconds:(Sys.time () -. t0);

  assert (Timeline.equal Int.equal tl1 tl2);
  assert (Timeline.equal Int.equal tl1 tl3);
  print_endline "\nall three strategies computed the identical timeline";
  print_endline
    "trade-off (Section 6.3): the sort pays extra disk passes for minimal \
     memory; the paged tree\npays spill traffic to respect a budget; the \
     plain tree pays memory for a single pass."
