(* Spatial aggregation: the paper's closing remark made concrete.

     dune exec examples/genome_coverage.exe

   "The techniques described here may also be applied to spatial and
   spatiotemporal databases to compute aggregates and associate them
   with intervals in space and time" (Section 7).  Nothing in the
   library is specific to time: here the "chronons" are genome
   positions, the "tuples" are sequencing reads (intervals of base
   pairs with a quality score), and the temporal aggregates become the
   classics of coverage analysis:

   - per-position coverage depth       = COUNT grouped by instant,
   - per-position mean read quality    = AVG grouped by instant,
   - per-kilobase coverage             = COUNT grouped by span,
   - uncovered regions                 = complement of the reads' union. *)

open Temporal

let genome_length = 100_000
let read_count = 2_000

let reads =
  let prng = Workload.Prng.create ~seed:11 in
  List.init read_count (fun _ ->
      let start = Workload.Prng.int_bounded prng (genome_length - 150) in
      let len = Workload.Prng.int_in prng ~lo:80 ~hi:150 in
      let quality = float_of_int (Workload.Prng.int_in prng ~lo:20 ~hi:42) in
      (Interval.of_ints start (start + len - 1), quality))

let horizon = Chronon.of_int (genome_length - 1)

let () =
  Printf.printf "%d reads of 80-150bp over a %dbp contig\n\n" read_count
    genome_length;

  (* Coverage depth at every position (one constant interval per depth
     change), plus mean quality, in one pass each. *)
  let depth =
    Tempagg.Agg_tree.eval ~horizon Tempagg.Monoid.count (List.to_seq reads)
  in
  let quality =
    Tempagg.Agg_tree.eval ~horizon Tempagg.Monoid.avg_float
      (List.to_seq reads)
  in
  let max_depth = Timeline.fold (fun acc _ d -> Stdlib.max acc d) 0 depth in
  Printf.printf "coverage changes %d times; max depth %d\n"
    (Timeline.length depth) max_depth;
  (match
     Timeline.fold
       (fun acc iv d -> if d = max_depth then Some iv else acc)
       None depth
   with
  | Some iv -> (
      Printf.printf "deepest pileup at %s" (Interval.to_string iv);
      match Timeline.value_at quality (Interval.start iv) with
      | Some (Some q) -> Printf.printf " (mean quality %.1f)\n" q
      | _ -> print_newline ())
  | None -> ());

  (* Per-kilobase binning = grouping by span. *)
  let per_kb =
    Tempagg.Span.eval ~horizon ~granule:(Granule.make 1_000)
      Tempagg.Monoid.count (List.to_seq reads)
  in
  print_endline "\nreads per kilobase (first 10 bins):";
  List.iteri
    (fun i (iv, n) ->
      if i < 10 then
        Printf.printf "  %-16s %s (%d)\n" (Interval.to_string iv)
          (String.make (Stdlib.min 60 (n / 2)) '#')
          n)
    (Timeline.to_list per_kb);

  (* Dead zones: positions no read covers — interval-set complement. *)
  let covered = Interval_set.of_intervals (List.map fst reads) in
  let gaps =
    Interval_set.complement
      ~within:(Interval.make Chronon.origin horizon)
      covered
  in
  Printf.printf "\n%d uncovered regions" (Interval_set.cardinal gaps);
  (match Interval_set.duration gaps with
  | Some d ->
      Printf.printf " totalling %dbp (%.2f%% of the contig)\n" d
        (100. *. float_of_int d /. float_of_int genome_length)
  | None -> print_newline ());
  List.iteri
    (fun i iv ->
      if i < 5 then Printf.printf "  %s\n" (Interval.to_string iv))
    (Interval_set.intervals gaps);

  (* Cross-check: depth is zero exactly on the gaps. *)
  let zero_depth =
    Timeline.fold
      (fun acc iv d -> if d = 0 then Interval_set.add acc iv else acc)
      Interval_set.empty depth
  in
  assert (Interval_set.equal zero_depth gaps);
  print_endline "\n(zero-depth regions = coverage complement: verified)"
