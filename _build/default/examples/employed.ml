(* The paper's running example, end to end.

     dune exec examples/employed.exe

   Reproduces, in order: the Employed relation of Figure 1; the constant
   intervals it induces (Figure 2); the aggregation-tree construction
   stages of Figure 3 (tree rendered after each insertion); the COUNT
   result of Table 1 from every algorithm; and the same query through the
   TSQL2 subset. *)

open Temporal
open Relation

let rule title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let () =
  let employed = Fixtures.employed () in

  rule "Figure 1: the Employed relation";
  List.iter
    (fun t ->
      Printf.printf "  %-8s %6s  %s\n"
        (Value.to_string (Tuple.value t 0))
        (Value.to_string (Tuple.value t 1))
        (Interval.to_string (Tuple.valid t)))
    (Trel.tuples employed);

  rule "Figure 2: induced constant intervals";
  let cis = Tempagg.Two_scan.constant_intervals (Trel.intervals employed) in
  Printf.printf "  %d tuples with 6 unique timestamps induce %d constant \
                 intervals:\n  %s\n"
    (Trel.cardinality employed) (Array.length cis)
    (String.concat " " (Array.to_list (Array.map Interval.to_string cis)));

  rule "Figure 3: building the aggregation tree (COUNT)";
  let tree = Tempagg.Agg_tree.create Tempagg.Monoid.count in
  Printf.printf "initial tree (3.a):\n%s"
    (Tempagg.Agg_tree.render string_of_int tree);
  Trel.iter
    (fun t ->
      Tempagg.Agg_tree.insert tree (Tuple.valid t) ();
      Printf.printf "after inserting %s (%d nodes):\n%s"
        (Interval.to_string (Tuple.valid t))
        (Tempagg.Agg_tree.node_count tree)
        (Tempagg.Agg_tree.render string_of_int tree))
    employed;

  rule "Table 1: COUNT at every instant, by every algorithm";
  let data () = Seq.map (fun iv -> (iv, ())) (Trel.intervals employed) in
  let sorted_data () =
    Seq.map
      (fun iv -> (iv, ()))
      (Trel.intervals (Trel.sort_by_time employed))
  in
  List.iter
    (fun algorithm ->
      let input =
        match algorithm with
        | Tempagg.Engine.Korder_tree _ -> sorted_data ()
        | _ -> data ()
      in
      let timeline, stats =
        Tempagg.Engine.eval_with_stats algorithm Tempagg.Monoid.count input
      in
      Printf.printf "  %-16s -> %s   (peak %d bytes)\n"
        (Tempagg.Engine.name algorithm)
        (String.concat " "
           (List.map
              (fun (iv, n) ->
                Printf.sprintf "%s:%d" (Interval.to_string iv) n)
              (Timeline.to_list timeline)))
        stats.Tempagg.Instrument.peak_bytes)
    Tempagg.Engine.all;

  rule "TSQL2: SELECT COUNT(Name) FROM Employed";
  let catalog = Tsql.Catalog.with_builtins () in
  (match Tsql.Eval.explain catalog "SELECT COUNT(Name) FROM Employed" with
  | Ok plan -> Printf.printf "plan: %s\n" plan
  | Error msg -> prerr_endline msg);
  match Tsql.Eval.query catalog "SELECT COUNT(Name) FROM Employed" with
  | Ok result -> Tsql.Pretty.print_result result
  | Error msg -> prerr_endline msg
