(* Property tests for time-partitioned storage: a sharded partition must
   be indistinguishable from a single heap — same tuples, same aggregate
   timelines under any clip window and any boundary choice — while
   pruning, splitting, repartitioning and shard faults happen around it.

   The load-bearing property is [sharded_equals_single ~monoid]: route
   random tuples through random boundaries, prune against a random
   window, evaluate the surviving shard blocks shard-parallel with the
   storage joints pinned via [shard_offsets], and demand the exact
   brute-force timeline.  A pruning rule that used the owned range
   instead of the extent (dropping tuples that start in one shard but
   overhang into the window) fails this immediately. *)

open Temporal
open Relation
open Storage

let iv = Interval.of_ints
let schema = Schema.of_pairs [ ("v", Value.Tint) ]
let tuple_of (ivl, v) = Tuple.make [| Value.Int v |] ivl

let value_of t =
  match Tuple.value t 0 with Value.Int v -> v | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Temp-dir plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_partition ?split_threshold ?fault ~boundaries tuples f =
  let dir = Filename.temp_file "tempagg_part" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let p = Partition.create ?split_threshold ?fault ~boundaries ~dir schema in
      List.iter (fun d -> Partition.insert p (tuple_of d)) tuples;
      Partition.flush p;
      f p)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let max_time = 200

(* Bounded intervals over a small domain, so boundary collisions and
   shard-straddling overhangs are common. *)
let gen_data =
  QCheck2.Gen.(
    let gen_tuple =
      let* s = int_bound (max_time - 1) in
      let* len = int_bound 60 in
      let* v = int_range 1 100 in
      return (iv s (min (max_time - 1) (s + len)), v)
    in
    list_size (int_range 0 40) gen_tuple)

let gen_boundaries =
  QCheck2.Gen.(
    let* bs = list_size (int_range 0 6) (int_range 1 (max_time - 1)) in
    return (List.sort_uniq Int.compare bs))

let gen_window =
  QCheck2.Gen.(
    let* none = map (fun n -> n = 0) (int_bound 4) in
    if none then return None
    else
      let* lo = int_bound (max_time - 1) in
      let* len = int_bound 80 in
      return (Some (iv lo (min (max_time - 1) (lo + len)))))

let gen_case = QCheck2.Gen.triple gen_data gen_boundaries gen_window

let print_case (data, boundaries, window) =
  Printf.sprintf "data=[%s] boundaries=[%s] window=%s"
    (String.concat "; "
       (List.map
          (fun (ivl, v) -> Printf.sprintf "%s=%d" (Interval.to_string ivl) v)
          data))
    (String.concat "," (List.map string_of_int boundaries))
    (match window with None -> "none" | Some w -> Interval.to_string w)

(* ------------------------------------------------------------------ *)
(* The sharded evaluation path, as the TSQL layer drives it            *)
(* ------------------------------------------------------------------ *)

let clip window ivl =
  match window with None -> Some ivl | Some w -> Interval.intersect ivl w

let eval_sharded p window monoid =
  let keep = Partition.prune p window in
  let blocks =
    List.map
      (fun i ->
        List.filter_map
          (fun t ->
            Option.map (fun ivl -> (ivl, value_of t)) (clip window (Tuple.valid t)))
          (Partition.shard_tuples p i))
      keep
  in
  let offsets = Array.make (List.length blocks + 1) 0 in
  List.iteri (fun i b -> offsets.(i + 1) <- offsets.(i) + List.length b) blocks;
  let data = List.to_seq (List.concat blocks) in
  match blocks with
  | [] | [ _ ] -> Tempagg.Engine.eval Tempagg.Engine.Sweep monoid data
  | _ ->
      Tempagg.Engine.eval ~shard_offsets:offsets
        (Tempagg.Engine.Parallel
           { domains = List.length blocks; inner = Tempagg.Engine.Sweep })
        monoid data

let reference window monoid data =
  Tempagg.Reference.eval monoid
    (List.filter_map
       (fun (ivl, v) -> Option.map (fun w -> (w, v)) (clip window ivl))
       data)

let sharded_equals_single ~name ~monoid ~equal_r =
  QCheck2.Test.make ~name ~count:120 ~print:print_case gen_case
    (fun (data, boundaries, window) ->
      with_partition ~boundaries data (fun p ->
          Timeline.equal equal_r
            (reference window monoid data)
            (eval_sharded p window monoid)))

let count_sharded =
  sharded_equals_single ~name:"COUNT: sharded = single heap"
    ~monoid:Tempagg.Monoid.count ~equal_r:Int.equal

let sum_sharded =
  sharded_equals_single ~name:"SUM: sharded = single heap"
    ~monoid:Tempagg.Monoid.sum_int ~equal_r:Int.equal

let min_sharded =
  sharded_equals_single ~name:"MIN: sharded = single heap"
    ~monoid:Tempagg.Monoid.min_int ~equal_r:(Option.equal Int.equal)

let max_sharded =
  sharded_equals_single ~name:"MAX: sharded = single heap"
    ~monoid:Tempagg.Monoid.max_int ~equal_r:(Option.equal Int.equal)

let avg_sharded =
  sharded_equals_single ~name:"AVG: sharded = single heap"
    ~monoid:Tempagg.Monoid.avg_int
    ~equal_r:
      (Option.equal (fun a b ->
           Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.abs a)))

(* ------------------------------------------------------------------ *)
(* Structural invariants                                               *)
(* ------------------------------------------------------------------ *)

let multiset tuples =
  List.sort String.compare
    (List.map
       (fun t ->
         Printf.sprintf "%s=%d" (Interval.to_string (Tuple.valid t)) (value_of t))
       tuples)

let input_multiset data = multiset (List.map tuple_of data)

let materialize_preserves_tuples =
  QCheck2.Test.make ~name:"materialize: multiset preserved, layout sums"
    ~count:120 ~print:print_case gen_case
    (fun (data, boundaries, _) ->
      with_partition ~boundaries data (fun p ->
          let rel = Partition.materialize p in
          let layout = Partition.shard_layout p in
          input_multiset data = multiset (Trel.tuples rel)
          && List.fold_left (fun a (_, n) -> a + n) 0 layout
             = List.length data
          && Partition.cardinality p = List.length data))

(* A shard's layout cardinalities are the joints of [materialize]'s
   order: slicing the materialized tuple list by them recovers exactly
   each shard's own tuples (the contiguous-slice property the parallel
   plan relies on). *)
let contiguous_slices =
  QCheck2.Test.make ~name:"materialize: shards are contiguous slices"
    ~count:120 ~print:print_case gen_case
    (fun (data, boundaries, _) ->
      with_partition ~boundaries data (fun p ->
          let all = Trel.tuples (Partition.materialize p) in
          let rec slices tuples = function
            | [] -> tuples = []
            | (_, n) :: rest ->
                let rec take k acc rem =
                  if k = 0 then (List.rev acc, rem)
                  else
                    match rem with
                    | [] -> (List.rev acc, [])
                    | x :: xs -> take (k - 1) (x :: acc) xs
                in
                let block, rem = take n [] tuples in
                List.length block = n && slices rem rest
          in
          slices all (Partition.shard_layout p)
          && List.concat
               (List.map
                  (fun i -> Partition.shard_tuples p i)
                  (List.init (Partition.shard_count p) Fun.id))
             |> multiset = multiset all))

let split_respects_threshold =
  QCheck2.Test.make ~name:"flush: splits keep results intact" ~count:80
    ~print:print_case gen_case
    (fun (data, boundaries, window) ->
      with_partition ~split_threshold:4 ~boundaries data (fun p ->
          input_multiset data = multiset (Trel.tuples (Partition.materialize p))
          && Timeline.equal Int.equal
               (reference window Tempagg.Monoid.count data)
               (eval_sharded p window Tempagg.Monoid.count)))

let repartition_preserves =
  QCheck2.Test.make ~name:"repartition: contents and timelines survive"
    ~count:80
    ~print:(fun (case, bs) ->
      Printf.sprintf "%s then [%s]" (print_case case)
        (String.concat "," (List.map string_of_int bs)))
    QCheck2.Gen.(pair gen_case gen_boundaries)
    (fun ((data, boundaries, window), boundaries') ->
      with_partition ~boundaries data (fun p ->
          Partition.repartition p boundaries';
          Partition.boundaries p = boundaries'
          && input_multiset data = multiset (Trel.tuples (Partition.materialize p))
          && Timeline.equal Int.equal
               (reference window Tempagg.Monoid.count data)
               (eval_sharded p window Tempagg.Monoid.count)))

let load_roundtrip =
  QCheck2.Test.make ~name:"load: layout and tuples survive reopen" ~count:60
    ~print:print_case gen_case
    (fun (data, boundaries, _) ->
      with_partition ~boundaries data (fun p ->
          let q = Partition.load (Partition.dir p) in
          Partition.boundaries q = Partition.boundaries p
          && Partition.shard_layout q = Partition.shard_layout p
          && multiset (Trel.tuples (Partition.materialize q))
             = multiset (Trel.tuples (Partition.materialize p))))

let choose_boundaries_well_formed =
  QCheck2.Test.make ~name:"choose_boundaries: sorted, in range, bounded"
    ~count:200
    ~print:(fun (shards, sample) ->
      Printf.sprintf "shards=%d sample=[%s]" shards
        (String.concat "," (List.map string_of_int sample)))
    QCheck2.Gen.(
      pair (int_range 1 10) (list_size (int_bound 60) (int_bound (max_time - 1))))
    (fun (shards, sample) ->
      let bs =
        Partition.choose_boundaries ~shards ~lifespan:(0, max_time - 1) sample
      in
      let rec strictly_increasing = function
        | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
        | _ -> true
      in
      strictly_increasing bs
      && List.length bs <= shards - 1
      && List.for_all (fun b -> b > 0 && b <= max_time - 1) bs)

(* ------------------------------------------------------------------ *)
(* Faults: per-shard failure, skip, retry and the parallel fallback    *)
(* ------------------------------------------------------------------ *)

let spread_data n =
  List.init n (fun i -> (iv (i * 4 mod max_time) ((i * 4 mod max_time) + 3), i + 1))

(* Transient read faults on every page: the heap layer's bounded retry
   absorbs all of them, so the partition still reads back whole. *)
let test_transient_faults_recovered () =
  let fault = Fault.create ~transient:1.0 () in
  let data = spread_data 120 in
  with_partition ~fault ~boundaries:[ 50; 100; 150 ] data (fun p ->
      Alcotest.(check bool)
        "tuples survive" true
        (input_multiset data = multiset (Trel.tuples (Partition.materialize p)));
      let io = Partition.io_totals p in
      Alcotest.(check bool) "retries recorded" true (io.Io_stats.retries > 0))

(* Corrupt one shard's file on disk: that shard fails alone under
   [`Fail], reads as a subset under [`Skip], and its siblings are
   untouched either way. *)
let test_corrupt_shard_is_isolated () =
  let data = spread_data 120 in
  with_partition ~boundaries:[ 50; 100; 150 ] data (fun p ->
      let victim = List.hd (Partition.shard_infos p) in
      let path =
        Filename.concat (Partition.dir p) victim.Partition.si_file
      in
      (* Flip a byte inside the first data page, past the header page. *)
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      ignore (Unix.lseek fd 8200 Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
      ignore (Unix.lseek fd 8200 Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      Alcotest.(check bool) "corrupt shard fails" true
        (match Partition.shard_tuples p victim.Partition.si_index with
        | _ -> false
        | exception Heap_file.Corrupt_page _ -> true);
      Alcotest.(check bool) "sibling shard unaffected" true
        (match Partition.shard_tuples p (victim.Partition.si_index + 1) with
        | tuples -> tuples <> []
        | exception Heap_file.Corrupt_page _ -> false);
      let skipped = Partition.shard_tuples ~on_corrupt:`Skip p
          victim.Partition.si_index in
      Alcotest.(check bool) "skip drops only the bad page" true
        (List.length skipped < victim.Partition.si_cardinality);
      let rel = Partition.materialize ~on_corrupt:`Skip p in
      Alcotest.(check bool) "materialize skips, others whole" true
        (Trel.cardinality rel
         = List.length data
           - (victim.Partition.si_cardinality - List.length skipped)))

(* The shard-parallel fallback: pin evaluation shards to storage joints,
   make one shard's k-ordered tree blow up (k = 0 over misordered
   tuples), and the robust engine must re-evaluate just that shard with
   the order-oblivious tree — right answer, degradation recorded. *)
let test_failed_shard_falls_back () =
  (* Shard 2 receives starts 60, 70, 55, 90 in that order: with k = 0
     the tree's frontier reaches 60 before 55 arrives, a hard order
     violation.  Shard 1 stays sorted and must not be re-evaluated. *)
  let data =
    [
      (iv 0 5, 1);
      (iv 60 80, 2);
      (iv 10 20, 3);
      (iv 70 90, 4);
      (iv 55 65, 5);
      (iv 90 99, 6);
    ]
  in
  with_partition ~boundaries:[ 50 ] data (fun p ->
      let keep = Partition.prune p None in
      let blocks =
        List.map
          (fun i ->
            List.map
              (fun t -> (Tuple.valid t, value_of t))
              (Partition.shard_tuples p i))
          keep
      in
      let offsets = Array.make (List.length blocks + 1) 0 in
      List.iteri
        (fun i b -> offsets.(i + 1) <- offsets.(i) + List.length b)
        blocks;
      let expected = Tempagg.Reference.eval Tempagg.Monoid.count data in
      match
        Tempagg.Engine.eval_robust ~shard_offsets:offsets
          (Tempagg.Engine.Parallel
             {
               domains = List.length blocks;
               inner = Tempagg.Engine.Korder_tree { k = 0 };
             })
          Tempagg.Monoid.count
          (List.to_seq (List.concat blocks))
      with
      | Error e -> Alcotest.fail (Tempagg.Engine.error_to_string e)
      | Ok (tl, degradations) ->
          Alcotest.(check bool) "timeline correct" true
            (Timeline.equal Int.equal expected tl);
          Alcotest.(check bool) "shard degradation recorded" true
            (degradations <> []))

let test_bad_boundaries_rejected () =
  let dir = Filename.temp_file "tempagg_part" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      List.iter
        (fun bs ->
          Alcotest.(check bool)
            (Printf.sprintf "[%s] rejected"
               (String.concat "," (List.map string_of_int bs)))
            true
            (match Partition.create ~boundaries:bs ~dir schema with
            | _ -> false
            | exception Invalid_argument _ -> true))
        [ [ 10; 10 ]; [ 20; 10 ]; [ 0 ]; [ -5 ] ])

let test_prune_uses_extents () =
  (* Shard extents: 0 -> [0,5]; 1 (owns [50,100)) -> [50,130] via the
     overhanging tuple; 2 (owns [100,150)) empty -> its owned range,
     conservatively; 3 -> [150,199]. *)
  let data = [ (iv 0 5, 1); (iv 90 130, 3); (iv 150 199, 2) ] in
  with_partition ~boundaries:[ 50; 100; 150 ] data (fun p ->
      Alcotest.(check (list int)) "gap window prunes everything" []
        (Partition.prune p (Some (iv 10 40)));
      (* [90,130] starts in shard 1, so shard 1's extent reaches 130: a
         window inside shard 2's owned range must still scan shard 1
         (the overhang-soundness case) along with the empty shard 2. *)
      Alcotest.(check (list int)) "overhang keeps the owning shard"
        [ 1; 2 ]
        (Partition.prune p (Some (iv 110 120)));
      Alcotest.(check int) "all kept without a window" 4
        (List.length (Partition.prune p None)))

let quick name f = Alcotest.test_case name `Quick f
let prop = QCheck_alcotest.to_alcotest ~long:false

let () =
  (* Some cases route through [Engine.Parallel]'s domains; keep the
     fault seed stable regardless of the environment. *)
  Alcotest.run "partition"
    [
      ( "sharded-vs-single",
        List.map prop
          [
            count_sharded;
            sum_sharded;
            min_sharded;
            max_sharded;
            avg_sharded;
          ] );
      ( "invariants",
        List.map prop
          [
            materialize_preserves_tuples;
            contiguous_slices;
            split_respects_threshold;
            repartition_preserves;
            load_roundtrip;
            choose_boundaries_well_formed;
          ] );
      ( "faults",
        [
          quick "transient faults recovered by retry"
            test_transient_faults_recovered;
          quick "corrupt shard fails alone; skip drops only it"
            test_corrupt_shard_is_isolated;
          quick "failed shard falls back without aborting"
            test_failed_shard_falls_back;
          quick "bad boundaries rejected" test_bad_boundaries_rejected;
          quick "pruning uses extents, overhang included"
            test_prune_uses_extents;
        ] );
    ]
